//! Quickstart: the paper's Example 1.1 end to end.
//!
//! Builds the vehicle-rental schema from DSL text, minimizes the "vehicles
//! rented by discount customers" query, verifies the rewrite is a genuine
//! equivalence both algorithmically and by evaluating on a concrete state,
//! and prints the search-space saving.
//!
//! Run with `cargo run --example quickstart`.

use oocq::{
    answer, answer_union, parse_query, parse_schema, search_space_cost, union_cost, Engine,
    StateBuilder,
};

fn main() {
    let schema = parse_schema(
        r#"
        class Vehicle {}
        class Auto : Vehicle {}
        class Trailer : Vehicle {}
        class Truck : Vehicle {}
        class Client { VehRented: {Vehicle}; }
        class Discount : Client { VehRented: {Auto}; }
        class Regular : Client {}
        "#,
    )
    .expect("schema parses");

    let query = parse_query(
        &schema,
        "{ x | exists y: x in Vehicle & y in Discount & x in y.VehRented }",
    )
    .expect("query parses");

    println!("original : {}", query.display(&schema));

    // Prepare once, decide many times: the Engine memoizes every derived
    // artifact (analysis, terminal classes, expansion) on the handles.
    let engine = Engine::from_env();
    let prepared_schema = engine.prepare_schema(&schema);
    let prepared = engine.prepare(&prepared_schema, &query);

    // Exact minimization (§4 of the paper): the typing constraint
    // Discount.VehRented : {Auto} narrows x from Vehicle to Auto.
    let optimal = engine.minimize(&prepared).expect("query is positive");
    println!("minimized: {}", optimal.display(&schema));

    // The rewrite is an equivalence, certified by the containment algorithm.
    let back = engine.prepare(&prepared_schema, &optimal.queries()[0]);
    assert!(engine.contains_positive(&prepared, &back).unwrap());
    assert!(engine.contains_positive(&back, &prepared).unwrap());
    println!("equivalence: certified in both directions");

    // ... and observable on a concrete database state.
    let auto_c = schema.class_id("Auto").unwrap();
    let truck_c = schema.class_id("Truck").unwrap();
    let disc_c = schema.class_id("Discount").unwrap();
    let reg_c = schema.class_id("Regular").unwrap();
    let veh_rented = schema.attr_id("VehRented").unwrap();

    let mut b = StateBuilder::new();
    let beetle = b.object(auto_c);
    let cherokee = b.object(auto_c);
    let pickup = b.object(truck_c);
    let alice = b.object(disc_c);
    let bob = b.object(reg_c);
    b.set_members(alice, veh_rented, [beetle]);
    b.set_members(bob, veh_rented, [cherokee, pickup]);
    let state = b.finish(&schema).expect("state is legal");

    let before = answer(&schema, &state, &query);
    let after = answer_union(&schema, &state, &optimal);
    println!("answers  : {before:?} == {after:?}");
    assert_eq!(before, after);

    // The point of the exercise: fewer objects are logically accessed.
    let show = |cost: &std::collections::BTreeMap<oocq::ClassId, usize>| {
        cost.iter()
            .map(|(c, n)| format!("{}x{}", schema.class_name(*c), n))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!(
        "search space before: {}",
        show(&search_space_cost(&schema, &query))
    );
    println!(
        "search space after : {}",
        show(&union_cost(&schema, &optimal))
    );
}

//! End-to-end payoff: minimize first, evaluate faster.
//!
//! Generates a sizable vehicle-rental state, evaluates the Example 1.1
//! query before and after minimization, checks the answers coincide, and
//! reports the wall-clock difference plus the extent sizes behind it —
//! the §1 motivation of the paper, observed on data.
//!
//! Run with `cargo run --release --example rental_analytics`.

use oocq::gen::StdRng;
use oocq::gen::{random_state, StateParams};
use oocq::{answer, answer_union, parse_query, samples, Engine};
use std::time::Instant;

fn main() {
    let schema = samples::vehicle_rental();
    let query = parse_query(
        &schema,
        "{ x | exists y: x in Vehicle & y in Discount & x in y.VehRented }",
    )
    .unwrap();
    let engine = Engine::from_env();
    let prepared_schema = engine.prepare_schema(&schema);
    let optimal = engine
        .minimize(&engine.prepare(&prepared_schema, &query))
        .unwrap();

    println!("query    : {}", query.display(&schema));
    println!("minimized: {}\n", optimal.display(&schema));

    let mut rng = StdRng::seed_from_u64(2026);
    for objects in [200, 1000, 5000] {
        let state = random_state(
            &mut rng,
            &schema,
            &StateParams {
                objects,
                fill_prob: 0.9,
                max_set: 8,
            },
        );
        let vehicle_extent = state.extent(schema.class_id("Vehicle").unwrap()).len();
        let auto_extent = state.extent(schema.class_id("Auto").unwrap()).len();

        let t0 = Instant::now();
        let before = answer(&schema, &state, &query);
        let t_before = t0.elapsed();

        let t0 = Instant::now();
        let after = answer_union(&schema, &state, &optimal);
        let t_after = t0.elapsed();

        assert_eq!(before, after, "minimization must preserve the answer");
        println!(
            "objects={objects:5}  |Vehicle|={vehicle_extent:4} -> |Auto|={auto_extent:4}  \
             answers={:3}  naive={t_before:9.1?}  minimized={t_after:9.1?}  speedup={:.1}x",
            after.len(),
            t_before.as_secs_f64() / t_after.as_secs_f64().max(1e-9),
        );
    }
}

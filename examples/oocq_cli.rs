//! A command-line workbench: executes `.oocq` program files — a schema,
//! named queries, and analysis commands (`check`, `explain`, `satisfiable`,
//! `expand`, `minimize`).
//!
//! Run with a file:    `cargo run --example oocq_cli -- path/to/file.oocq`
//! Run the demo:       `cargo run --example oocq_cli`

use oocq::run_workbench;

const DEMO: &str = r#"
schema {
    class Vehicle {}
    class Auto : Vehicle {}
    class Trailer : Vehicle {}
    class Truck : Vehicle {}
    class Client { VehRented: {Vehicle}; }
    class Discount : Client { VehRented: {Auto}; }
    class Regular : Client {}
}

query AllVehicles   = { x | x in Vehicle }
query DiscountRides = { x | exists y: x in Vehicle & y in Discount & x in y.VehRented }
query TruckRides    = { x | exists y: x in Truck & y in Discount & x in y.VehRented }

satisfiable TruckRides
check DiscountRides <= AllVehicles
check AllVehicles == DiscountRides
explain TruckRides <= DiscountRides
expand DiscountRides
minimize DiscountRides
"#;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let source = match args.first() {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => {
            println!("(no file given; running the built-in demo program)\n");
            DEMO.to_owned()
        }
    };
    match run_workbench(&source) {
        Ok(transcript) => print!("{transcript}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

//! A richer domain: a university schema with a three-level hierarchy and
//! several realistic queries, run through the memoizing [`Optimizer`]
//! session. Shows the full surface working together: the DSL, typing-based
//! pruning across multiple refinement sites, certificates, the pipeline
//! report, and evaluation on generated data.
//!
//! Run with `cargo run --example university`.

use oocq::gen::StdRng;
use oocq::gen::{random_state, StateParams};
use oocq::{
    answer, answer_union, decide_containment, minimize_positive_report, parse_query, parse_schema,
    Optimizer,
};

fn main() {
    // People split into staff and students; students into undergrads and
    // grads. Only grads supervise (refinement: Advisor on Grad is a
    // Professor); undergrads take courses taught by any instructor, grads
    // only take seminars.
    let schema = parse_schema(
        r#"
        class Person {}
        class Staff : Person {}
        class Professor : Staff { Teaches: {Course}; }
        class Lecturer : Staff { Teaches: {Lecture}; }
        class Student : Person { Takes: {Course}; }
        class Undergrad : Student {}
        class Grad : Student { Advisor: Professor; Takes: {Seminar}; }
        class Course {}
        class Lecture : Course {}
        class Seminar : Course {}
        "#,
    )
    .expect("schema parses");

    println!("schema statistics: {:?}\n", schema.statistics());

    let mut opt = Optimizer::new(&schema);

    // Q1: courses taken by some student and taught by some staff member.
    let q1 = parse_query(
        &schema,
        "{ c | exists s, t: c in Course & s in Student & t in Staff \
           & c in s.Takes & c in t.Teaches }",
    )
    .unwrap();
    // Q2: seminars taken by a grad student whose advisor teaches them.
    let q2 = parse_query(
        &schema,
        "{ c | exists g: c in Seminar & g in Grad & c in g.Takes & c in g.Advisor.Teaches }",
    )
    .unwrap();

    for (name, q) in [("Q1", &q1), ("Q2", &q2)] {
        println!("== {name}: {}", q.display(&schema));
        let report = minimize_positive_report(&schema, q).unwrap();
        print!("{}", report.render(&schema));
        println!();
    }

    // Containment with a certificate: every Q2 answer is a Q1 answer.
    let m2 = opt.minimize(&q2).unwrap();
    let m1 = opt.minimize(&q1).unwrap();
    let contained = oocq::union_contains(&schema, &m2, &m1).unwrap();
    println!("Q2 <= Q1: {}", if contained { "holds" } else { "FAILS" });
    if let (Some(sub2), true) = (m2.queries().first(), contained) {
        // Show one terminal-level certificate.
        if let Some(sub1) = m1
            .iter()
            .find(|p| oocq::contains_terminal(&schema, sub2, p).unwrap())
        {
            let proof = decide_containment(&schema, sub2, sub1).unwrap();
            for line in proof.render(&schema, sub2, sub1).lines() {
                println!("  {line}");
            }
        }
    }

    // Evaluate original vs minimized on generated data.
    let mut rng = StdRng::seed_from_u64(42);
    let state = random_state(
        &mut rng,
        &schema,
        &StateParams {
            objects: 600,
            fill_prob: 0.85,
            max_set: 5,
        },
    );
    println!("\nstate: {}", state.statistics(&schema));
    for (name, q) in [("Q1", &q1), ("Q2", &q2)] {
        let m = opt.minimize(q).unwrap();
        let naive = answer(&schema, &state, q);
        let optimal = answer_union(&schema, &state, &m);
        assert_eq!(naive, optimal, "{name}: minimization must preserve answers");
        println!(
            "{name}: {} answers; minimized union has {} subquer{}",
            naive.len(),
            m.len(),
            if m.len() == 1 { "y" } else { "ies" }
        );
    }
    println!("\noptimizer cache: {:?}", opt.stats());
}

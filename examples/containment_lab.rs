//! A containment laboratory: the subtle examples of §3, decided live.
//!
//! Replays Examples 1.3, 3.1, 3.2, and 3.3 — the cases where negative atoms
//! and implied inequalities make containment non-obvious — printing the
//! verdict and the containment condition (Theorem 3.1 or one of its
//! corollaries) that applied.
//!
//! Run with `cargo run --example containment_lab`.

use oocq::{parse_query, parse_schema, strategy_for, Engine, Query, Schema, Strategy};

fn check(schema: &Schema, label: &str, q1: &Query, q2: &Query) {
    // Prepare both sides once; the forward check, backward check, and
    // certificate below all reuse the same memoized artifacts.
    let engine = Engine::from_env();
    let ps = engine.prepare_schema(schema);
    let (p1, p2) = (engine.prepare(&ps, q1), engine.prepare(&ps, q2));
    let fwd = engine.contains(&p1, &p2).unwrap();
    let bwd = engine.contains(&p2, &p1).unwrap();
    let rel = match (fwd, bwd) {
        (true, true) => "Q1 == Q2 (equivalent)",
        (true, false) => "Q1 < Q2 (strictly contained)",
        (false, true) => "Q2 < Q1 (strictly contained)",
        (false, false) => "incomparable",
    };
    let strat = |q: &Query| match strategy_for(q) {
        Strategy::Positive => "Cor 3.4",
        Strategy::InequalityFree => "Cor 3.2",
        Strategy::PositiveWithInequalities => "Cor 3.3",
        Strategy::Full => "Thm 3.1",
    };
    println!("{label}");
    println!("  Q1: {}", q1.display(schema));
    println!("  Q2: {}", q2.display(schema));
    println!(
        "  verdict: {rel}   [Q1 ⊆ Q2 via {}; Q2 ⊆ Q1 via {}]",
        strat(q2),
        strat(q1)
    );
    // Print the certificate for the forward direction.
    let proof = engine.decide(&p1, &p2).unwrap();
    for line in proof.render(schema, q1, q2).lines() {
        println!("  Q1 ⊆ Q2 {line}");
    }
    println!();
}

fn main() {
    // ---- Example 1.3: inequalities implied by positive conditions. ----
    let s = parse_schema("class C { A: V; } class V {} class T1 : V {} class T2 : V {}").unwrap();
    let q1 = parse_query(
        &s,
        "{ x | exists y, s, t: x in C & y in C & s in T1 & t in T2 & s = x.A & t = y.A & x != y }",
    )
    .unwrap();
    let q2 = parse_query(
        &s,
        "{ x | exists y, s, t: x in C & y in C & s in T1 & t in T2 & s = x.A & t = y.A }",
    )
    .unwrap();
    check(
        &s,
        "Example 1.3 — `x != y` is implied: T1/T2 objects are distinct, so x.A != y.A",
        &q1,
        &q2,
    );

    // ---- Example 3.1: equalities through attribute congruence. ----
    let s = parse_schema("class C { A: D; B: {D}; } class D {}").unwrap();
    let q1 = parse_query(
        &s,
        "{ x | exists y, z: x in C & y in C & z in D & z = y.A & z in y.B & x = y }",
    )
    .unwrap();
    let q2 = parse_query(&s, "{ y | exists z: y in C & z in D & z = y.A }").unwrap();
    check(
        &s,
        "Example 3.1 — Q1 asks more (membership in y.B), so the containment is strict",
        &q1,
        &q2,
    );

    // ---- Example 3.2: counting distinct objects. ----
    let s = parse_schema("class C {}").unwrap();
    let q1 = parse_query(
        &s,
        "{ x | exists y, z: x in C & y in C & z in C & x != y & y != z }",
    )
    .unwrap();
    let q2 = parse_query(&s, "{ x | exists y: x in C & y in C & x != y }").unwrap();
    let q3 = parse_query(
        &s,
        "{ x | exists y, z: x in C & y in C & z in C & x != y & y != z & x != z }",
    )
    .unwrap();
    check(
        &s,
        "Example 3.2 — a chain of two inequalities still needs only two distinct objects",
        &q1,
        &q2,
    );
    check(
        &s,
        "Example 3.2 — the triangle needs three distinct objects, so it is strictly stronger",
        &q3,
        &q1,
    );

    // ---- Example 3.3: non-membership and the W-augmentation. ----
    let s = parse_schema("class T1 {} class T2 { A: {T1}; }").unwrap();
    let q1 = parse_query(&s, "{ x | exists y: x in T1 & y in T2 }").unwrap();
    let q2 = parse_query(&s, "{ x | exists y: x in T1 & y in T2 & x not in y.A }").unwrap();
    check(
        &s,
        "Example 3.3 — some state puts x inside y.A, so Q1 is NOT contained in Q2",
        &q1,
        &q2,
    );
}

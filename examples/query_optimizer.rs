//! A query-optimizer trace: the paper's Example 1.2 / 4.1 pipeline, step by
//! step.
//!
//! Shows every stage of the §4 minimization on the `N₁ / T₁ T₂ T₃` schema:
//! terminal expansion (Proposition 2.1), per-subquery satisfiability
//! verdicts with reasons (Theorem 2.2), redundancy removal (Theorem 4.2),
//! and variable folding (Theorems 4.3–4.5), ending at the
//! search-space-optimal union `Q₂′ ∪ Q₅`.
//!
//! Run with `cargo run --example query_optimizer`.

use oocq::{
    expand, is_minimal_terminal_positive, minimize_terminal_positive, nonredundant_union,
    parse_query, parse_schema, satisfiability, union_cost, Satisfiability, UnionQuery,
};

fn main() {
    // The schema of Example 1.2: N₁ partitioned into T₁, T₂, T₃; G into
    // H, I. `A : {G}` on N₁ refined to `{I}` on T₃; `B : G` only on T₂/T₃.
    let schema = parse_schema(
        r#"
        class N1 { A: {G}; }
        class T1 : N1 {}
        class T2 : N1 { B: G; }
        class T3 : N1 { A: {I}; B: G; }
        class G {}
        class H : G {}
        class I : G {}
        "#,
    )
    .expect("schema parses");

    let q = parse_query(
        &schema,
        "{ x | exists y, s: x in N1 & y in G & s in H & y = x.B & y in x.A & s in x.A }",
    )
    .expect("query parses");

    println!("input:");
    println!("  Q: {}\n", q.display(&schema));

    // Stage 1 — Proposition 2.1: expand into terminal subqueries.
    let expanded = expand(&schema, &q).expect("well-formed");
    println!(
        "stage 1 — terminal expansion ({} subqueries):",
        expanded.len()
    );
    let mut survivors: Vec<_> = Vec::new();
    for (i, sub) in expanded.iter().enumerate() {
        let verdict = satisfiability(&schema, sub).expect("terminal");
        match verdict {
            Satisfiability::Satisfiable => {
                println!("  Q{} SAT   {}", i + 1, sub.display(&schema));
                survivors.push(sub.clone());
            }
            Satisfiability::Unsatisfiable(reason) => {
                println!("  Q{} UNSAT {}", i + 1, sub.display(&schema));
                println!("        reason: {reason}");
            }
        }
    }

    // Stage 2 — Theorem 4.2: remove redundant subqueries.
    let nonred = nonredundant_union(&schema, &UnionQuery::new(survivors)).unwrap();
    println!(
        "\nstage 2 — nonredundant union ({} subqueries):",
        nonred.len()
    );
    for sub in &nonred {
        println!("  {}", sub.display(&schema));
    }

    // Stage 3 — Theorems 4.3–4.5: minimize variables per subquery.
    println!("\nstage 3 — variable minimization:");
    let mut minimized = UnionQuery::empty();
    for sub in &nonred {
        let m = minimize_terminal_positive(&schema, sub).unwrap();
        if m.var_count() < sub.var_count() {
            println!(
                "  folded {} -> {} variables: {}",
                sub.var_count(),
                m.var_count(),
                m.display(&schema)
            );
        } else {
            println!("  already minimal: {}", m.display(&schema));
        }
        assert!(is_minimal_terminal_positive(&schema, &m).unwrap());
        minimized.push(m);
    }

    println!("\nresult (search-space-optimal):");
    println!("  {}", minimized.display(&schema));
    let cost = union_cost(&schema, &minimized);
    let rendered: Vec<String> = cost
        .iter()
        .map(|(c, n)| format!("{}x{}", schema.class_name(*c), n))
        .collect();
    println!("  cost: {}", rendered.join(" "));
}

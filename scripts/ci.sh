#!/bin/sh
# The repository's CI gate: release build, full test suite, benchmark
# floors, oracle sweeps, lints, formatting.
#
#   scripts/ci.sh
#
# Environment:
#   OOCQ_CI_SKIP_HEAVY=1   skip the build and test stages (used by the
#                          in-tree smoke test, which already runs under
#                          `cargo test` and must not recurse into it)
#
# The fmt stage is skipped gracefully when rustfmt is not installed.
set -eu

cd "$(dirname "$0")/.."

if [ "${OOCQ_CI_SKIP_HEAVY:-0}" != "1" ]; then
    echo "ci: cargo build --release"
    cargo build --release
    echo "ci: cargo test -q"
    cargo test -q
    # Failure-path gate: budgets, panic isolation, backpressure, and the
    # end-to-end deadline walkthrough must stay green by name, so a rename
    # or filter change can't silently drop them from the suite.
    echo "ci: failure-path suite"
    cargo test -q -p oocq-core -- budget times_out timeout
    cargo test -q -p oocq-service -- timeout times_out panicking queue_bound \
        read_error stranded interner
    cargo test -q --test tooling -- oocq_serve_honors_a_request_deadline
    # Pruning gate: bench_prune carries in-binary >=10x branch-reduction
    # floors; a quick run keeps the sub-lattice pruner and the
    # most-constrained-first search honest without re-measuring medians.
    echo "ci: bench_prune smoke (quick mode)"
    OOCQ_BENCH_QUICK=1 cargo run --release -q -p oocq-bench --bin bench_prune \
        -- target/BENCH_prune_smoke.json
    # Constraint gate: bench_constrained asserts in-binary that declared
    # constraints still flip >=3 containment verdicts from fails to holds
    # through the theory hook; quick mode keeps that check without
    # re-measuring medians.
    echo "ci: bench_constrained smoke (quick mode)"
    OOCQ_BENCH_QUICK=1 cargo run --release -q -p oocq-bench --bin bench_constrained \
        -- target/BENCH_constrained_smoke.json
    # Persistence gate: the warm-restart walkthrough populates a cache
    # directory, SIGKILLs the daemon, restarts it over the same directory,
    # and asserts the verdict is served from the replayed log (hits, no
    # misses); bench_persist then re-asserts its in-binary >=5x
    # restart-vs-cold floor in quick mode.
    echo "ci: persistence suite"
    cargo test -q --test tooling -- oocq_serve_warm_restarts_from_the_persistent_cache
    echo "ci: bench_persist smoke (quick mode)"
    OOCQ_BENCH_QUICK=1 cargo run --release -q -p oocq-bench --bin bench_persist \
        -- target/BENCH_persist_smoke.json
    # Soundness gate: the differential oracle sweeps >=500 seeded pairs,
    # cross-checking every engine verdict against brute-force evaluation
    # and demanding a constructive witness for >=99% of refutations — the
    # definitization portfolio steers every refuted pair of this sweep.
    echo "ci: oracle_fuzz sweep (ci mode)"
    cargo run --release -q --bin oracle_fuzz -- --iterations ci
    # Constrained soundness gate: the same oracle over schemas with
    # declared disjoint/total/functional constraints, judged over
    # constraint-legal states only. Any legal-state refutation of a
    # constrained holds is a soundness violation and fails the run. The
    # confirmation gate is the *overall* rate and deliberately lower:
    # steering on constrained schemas must also land inside the legal
    # states, so the random-search fallback carries more of the load
    # (measured ~0.65 overall at 500 pairs).
    echo "ci: oracle_fuzz constrained sweep"
    cargo run --release -q --bin oracle_fuzz -- --constrained \
        --iterations 500 --min-confirm 0.5
    # Serving gate: bench_load carries in-binary floors for singleflight
    # coalescing (>=5x the uncoalesced hot-key throughput); the quick
    # preset exercises the reactor, the legacy accept loop, and the
    # coalescing path end to end over real sockets.
    echo "ci: bench_load smoke (quick mode)"
    OOCQ_BENCH_QUICK=1 cargo run --release -q --bin bench_load \
        -- target/BENCH_load_smoke.json
    # Lint gate: warnings are errors across every target, tests included.
    # Lives inside the heavy guard because the in-tree smoke test runs
    # this script under `cargo test`, where a nested cargo build would
    # block on the build-directory lock.
    if cargo clippy --version >/dev/null 2>&1; then
        echo "ci: cargo clippy --workspace --all-targets -- -D warnings"
        cargo clippy --workspace --all-targets -q -- -D warnings
    else
        echo "ci: clippy not installed, skipping lint check"
    fi
else
    echo "ci: OOCQ_CI_SKIP_HEAVY=1, skipping build and test"
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "ci: cargo fmt --check"
    cargo fmt --all --check
else
    echo "ci: rustfmt not installed, skipping fmt check"
fi

echo "ci: ok"

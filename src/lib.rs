//! # oocq — Containment and Minimization of Positive Conjunctive Queries in OODBs
//!
//! A complete implementation of Edward P.F. Chan's PODS 1992 paper
//! *"Containment and Minimization of Positive Conjunctive Queries in
//! OODB's"*: the OODB schema model with inheritance and the Terminal Class
//! Partitioning Assumption, the conjunctive query language with
//! (non-)membership and (in)equality atoms over object terms, Algorithm
//! *EqualityGraph*, satisfiability of terminal conjunctive queries,
//! containment via non-contradictory variable mappings (Theorem 3.1 and
//! Corollaries 3.2–3.4), union containment (Theorem 4.1), and the exact,
//! search-space-optimal minimization of positive conjunctive queries
//! (Theorems 4.2–4.5).
//!
//! This crate is a facade: each subsystem lives in its own crate
//! (`oocq-schema`, `oocq-query`, `oocq-state`, `oocq-eval`, `oocq-parser`,
//! `oocq-core`, `oocq-rel`, `oocq-gen`), all re-exported here.
//!
//! ## Quickstart
//!
//! Example 1.1 of the paper: discount customers may rent automobiles only,
//! so a query ranging over `Vehicle` can be narrowed to `Auto`. Decisions
//! go through an [`Engine`]: preparing the schema and query once lets every
//! later decision on the same handles reuse the memoized analysis.
//!
//! ```
//! use oocq::{Engine, parse_query, parse_schema};
//!
//! let schema = parse_schema(r#"
//!     class Vehicle {}
//!     class Auto : Vehicle {}
//!     class Trailer : Vehicle {}
//!     class Truck : Vehicle {}
//!     class Client { VehRented: {Vehicle}; }
//!     class Discount : Client { VehRented: {Auto}; }
//!     class Regular : Client {}
//! "#).unwrap();
//!
//! let query = parse_query(
//!     &schema,
//!     "{ x | exists y: x in Vehicle & y in Discount & x in y.VehRented }",
//! ).unwrap();
//!
//! let engine = Engine::from_env();
//! let prepared_schema = engine.prepare_schema(&schema);
//! let prepared = engine.prepare(&prepared_schema, &query);
//!
//! let optimal = engine.minimize(&prepared).unwrap();
//! assert_eq!(
//!     optimal.display(&schema).to_string(),
//!     "{ x | exists y: x in Auto & y in Discount & x in y.VehRented }",
//! );
//! // The one-shot free functions remain as convenience wrappers:
//! assert_eq!(oocq::minimize_positive(&schema, &query).unwrap(), optimal);
//! ```
//!
//! ## Crate map
//!
//! | Module source | Provides |
//! |---|---|
//! | `oocq-schema` | [`Schema`], [`SchemaBuilder`], [`AttrType`], subtyping, terminal classes |
//! | `oocq-query` | [`Query`], [`QueryBuilder`], [`Atom`], [`Term`], [`EqualityGraph`], well-formedness |
//! | `oocq-state` | [`State`], [`StateBuilder`], [`Value`], legal-state validation |
//! | `oocq-eval` | [`answer`], [`answer_union`], 3-valued [`Truth`] |
//! | `oocq-parser` | [`parse_schema`], [`parse_query`], [`parse_union`] |
//! | `oocq-core` | [`Engine`], [`PreparedQuery`], [`contains_terminal`], [`union_contains`], [`minimize_positive`], [`is_satisfiable`], [`expand`] |
//! | `oocq-rel` | [`rel`]: the Chandra–Merlin relational baseline |
//! | `oocq-gen` | [`gen`]: workload and random-instance generators |
//! | `oocq-service` | [`ServiceEngine`], [`serve`], [`CanonicalDecisionCache`] — the `oocq-serve` daemon |
//! | `oocq-oracle` | [`oracle`]: the differential soundness oracle and the `oracle_fuzz` fuzzer |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use oocq_core::{
    compiled_left, contains_positive, contains_positive_with, contains_terminal,
    contains_terminal_full, contains_terminal_full_with, contains_terminal_with, cost_leq,
    decide_containment, decide_containment_with, dispatch_containment_with, equivalent_positive,
    equivalent_terminal, equivalent_terminal_with, expand, expand_satisfiable,
    expand_satisfiable_with, expansion_size, is_minimal_terminal_positive, is_satisfiable,
    minimize_general, minimize_general_with, minimize_positive, minimize_positive_report,
    minimize_positive_report_with, minimize_positive_with, minimize_terminal_general,
    minimize_terminal_general_with, minimize_terminal_positive, nonredundant_union,
    nonredundant_union_with, satisfiability, search_space_cost, strategy_for, strip_non_range,
    term_class, theory_stats, union_contains, union_contains_with, union_cost, union_equivalent,
    var_classes, BranchStats, Budget, Compiled, ConstraintTheory, Containment, CoreError,
    DecisionCache, EmptyTheory, Engine, EngineConfig, MappingWitness, MinimizationReport,
    Optimizer, OptimizerStats, PreparedQuery, PreparedQueryStats, PreparedSchema, Satisfiability,
    SearchOrder, Side, Strategy, Theory, TheoryStats, UnsatReason, MAX_BRANCHES, MAX_CHASE_ROUNDS,
    MAX_CHASE_VARS,
};
pub use oocq_eval::{
    answer, answer_planned, answer_union, answer_with_plan, canonical_contains, canonical_state,
    eval_atom, eval_matrix, refute_containment, CounterExample, Plan, Truth,
};
pub use oocq_parser::{
    parse_program, parse_query, parse_schema, parse_union, Command, ParseError, Program,
};
pub use oocq_query::{
    canonical_form, check_well_formed, find_isomorphism, isomorphic, maximal_classes, normalize,
    Atom, CanonicalQuery, DisplayQuery, DisplayUnion, EqualityGraph, Query, QueryAnalysis,
    QueryBuilder, Term, UnionQuery, VarId, WellFormedError,
};
pub use oocq_schema::{
    samples, AttrId, AttrType, ClassId, Constraint, Schema, SchemaBuilder, SchemaError,
    SchemaStats, TupleType,
};
pub use oocq_service::{
    run_program_with, run_workbench_with, serve, CacheStats, CanonicalDecisionCache, Request,
    RequestStats, ServiceEngine,
};
pub use oocq_state::{
    DisplayState, Object, Oid, State, StateBuilder, StateError, StateStats, Value,
};

pub mod tutorial;
pub mod workbench;

pub use workbench::{dispatch_containment, run_program, run_workbench, WorkbenchError};

/// The Chandra–Merlin relational conjunctive-query baseline.
pub mod rel {
    pub use oocq_rel::*;
}

/// Workload and random-instance generators.
pub mod gen {
    pub use oocq_gen::*;
}

/// The differential soundness oracle: cross-checks containment verdicts
/// against brute-force evaluation, steered by refutation certificates.
pub mod oracle {
    pub use oocq_oracle::*;
}

//! # Tutorial: from schema to search-space-optimal query
//!
//! A guided tour of the library, following the paper's own narrative. Every
//! snippet is a doctest; run them with `cargo test --doc`.
//!
//! ## 1. Schemas are constraints
//!
//! A schema `S = (C, σ, ≺)` declares classes, inheritance, and typed
//! attributes. Subclasses may *refine* inherited attributes to subtypes —
//! this is where the optimization potential lives:
//!
//! ```
//! use oocq::parse_schema;
//!
//! let schema = parse_schema(r#"
//!     class Vehicle {}
//!     class Auto : Vehicle {}
//!     class Truck : Vehicle {}
//!     class Client { Rents: {Vehicle}; }
//!     class Discount : Client { Rents: {Auto}; }   // the refinement
//! "#)?;
//!
//! // Terminal classes partition the objects (the paper's global
//! // assumption): Vehicle's extent is exactly Auto's plus Truck's.
//! let vehicle = schema.class_id("Vehicle").unwrap();
//! assert_eq!(schema.terminal_descendants(vehicle).len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## 2. Queries and the equality graph
//!
//! Queries are conjunctions of range, (in)equality, and (non-)membership
//! atoms. Algorithm *EqualityGraph* closes the explicit equalities under
//! transitivity and attribute congruence — `x = y` forces `x.A = y.A`:
//!
//! ```
//! use oocq::{parse_query, parse_schema, EqualityGraph, Term};
//!
//! let schema = parse_schema("class C { A: C; }")?;
//! let q = parse_query(&schema, "{ x | exists y, u, v: x in C & y in C \
//!     & u in C & v in C & x = y & u = x.A & v = y.A }")?;
//! let graph = EqualityGraph::build(&q);
//! // u and v denote the same object, though no atom says so directly.
//! let u = q.vars().nth(2).unwrap();
//! let v = q.vars().nth(3).unwrap();
//! assert!(graph.same(Term::Var(u), Term::Var(v)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## 3. Satisfiability explains itself
//!
//! Terminal queries (each variable in one terminal class) have decidable
//! satisfiability, with machine-readable reasons — the engine behind
//! Example 4.1's pruning:
//!
//! ```
//! use oocq::{parse_query, parse_schema, satisfiability, Satisfiability};
//!
//! let schema = parse_schema(r#"
//!     class Client { Rents: {Auto}; }
//!     class Auto {} class Truck {}
//! "#)?;
//! let q = parse_query(&schema,
//!     "{ x | exists y: x in Truck & y in Client & x in y.Rents }")?;
//! let Satisfiability::Unsatisfiable(reason) = satisfiability(&schema, &q)? else {
//!     panic!("a Truck can never be in a {{Auto}}-typed set");
//! };
//! assert!(reason.to_string().contains("cannot be a member"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## 4. Containment, certified
//!
//! `Q₁ ⊆ Q₂` is decided through non-contradictory variable mappings; the
//! certificate shows the mapping (or the augmentation branch that refutes
//! containment — here, Example 3.2's triangle):
//!
//! ```
//! use oocq::{decide_containment, parse_query, parse_schema, Containment};
//!
//! let schema = parse_schema("class C {}")?;
//! let chain = parse_query(&schema,
//!     "{ x | exists y, z: x in C & y in C & z in C & x != y & y != z }")?;
//! let triangle = parse_query(&schema,
//!     "{ x | exists y, z: x in C & y in C & z in C & x != y & y != z & x != z }")?;
//! let proof = decide_containment(&schema, &chain, &triangle)?;
//! assert!(!proof.holds());
//! // The refutation names the branch: the state class where x = z.
//! assert!(proof.render(&schema, &chain, &triangle).contains("x = z"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## 5. Minimization, exactly
//!
//! The §4 pipeline returns the search-space-optimal union. The report form
//! traces each stage:
//!
//! ```
//! use oocq::{minimize_positive_report, parse_query, parse_schema};
//!
//! let schema = parse_schema(r#"
//!     class N1 { A: {G}; }
//!     class T1 : N1 {}
//!     class T2 : N1 { B: G; }
//!     class T3 : N1 { A: {I}; B: G; }
//!     class G {} class H : G {} class I : G {}
//! "#)?;
//! let q = parse_query(&schema, "{ x | exists y, s: x in N1 & y in G & s in H \
//!     & y = x.B & y in x.A & s in x.A }")?;
//! let report = minimize_positive_report(&schema, &q)?;
//! assert_eq!(report.expanded, 6);           // Proposition 2.1
//! assert_eq!(report.unsatisfiable.len(), 4); // Theorem 2.2
//! assert_eq!(report.folds.len(), 1);        // Theorem 4.3
//! assert_eq!(report.result.len(), 2);       // Q₂′ ∪ Q₅ of Example 4.1
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## 6. Ground truth: evaluation over states
//!
//! Everything above is syntactic; `oocq-eval` provides the model-theoretic
//! semantics the theorems speak about — including 3-valued logic for nulls:
//!
//! ```
//! use oocq::{answer, parse_query, parse_schema, StateBuilder};
//!
//! let schema = parse_schema("class C { A: D; } class D {}")?;
//! let q = parse_query(&schema, "{ x | exists z: x in C & z in D & z = x.A }")?;
//!
//! let mut b = StateBuilder::new();
//! let c = b.object(schema.class_id("C").unwrap());
//! let _d = b.object(schema.class_id("D").unwrap());
//! let state = b.finish(&schema)?; // c.A is the null value Λ
//!
//! // `z = x.A` is UNKNOWN under nulls, and unknown is not an answer.
//! assert!(answer(&schema, &state, &q).is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Continue with the runnable programs in `examples/` and the workbench
//! format ([`crate::parse_program`] / [`crate::run_workbench`]).

//! Execution of workbench programs (see [`parse_program`]): runs each
//! command against the program's schema and renders the results as text.
//! Shared by the `oocq_cli` example and the golden-file corpus tests.

use crate::{
    contains_positive, contains_terminal, decide_containment, expand, expand_satisfiable,
    minimize_positive, normalize, parse_program, satisfiability, Command, CoreError, ParseError,
    Program, Query, Satisfiability, Schema,
};
use std::fmt::Write as _;

/// Errors from running a workbench program.
#[derive(Debug)]
pub enum WorkbenchError {
    /// The program text failed to parse.
    Parse(ParseError),
    /// A command failed (e.g. minimizing a non-positive query).
    Core(CoreError),
}

impl std::fmt::Display for WorkbenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkbenchError::Parse(e) => write!(f, "parse error at {e}"),
            WorkbenchError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WorkbenchError {}

impl From<ParseError> for WorkbenchError {
    fn from(e: ParseError) -> Self {
        WorkbenchError::Parse(e)
    }
}

impl From<CoreError> for WorkbenchError {
    fn from(e: CoreError) -> Self {
        WorkbenchError::Core(e)
    }
}

/// Containment dispatch across query shapes: §3 for terminal pairs, §4 for
/// positive pairs, left-expansion against a terminal right side.
pub fn dispatch_containment(s: &Schema, qa: &Query, qb: &Query) -> Result<bool, CoreError> {
    if qa.is_terminal(s) && qb.is_terminal(s) {
        return contains_terminal(s, qa, qb);
    }
    if qa.is_positive() && qb.is_positive() {
        return contains_positive(s, qa, qb);
    }
    if qb.is_terminal(s) {
        let ua = expand_satisfiable(s, &normalize(qa, s)?)?;
        for sub in &ua {
            if !contains_terminal(s, sub, qb)? {
                return Ok(false);
            }
        }
        return Ok(true);
    }
    // Outside the decidable fragment the paper establishes.
    Err(CoreError::NotPositive)
}

/// Parse and run a program, returning the rendered transcript.
pub fn run_workbench(source: &str) -> Result<String, WorkbenchError> {
    let program = parse_program(source)?;
    run_program(&program).map_err(Into::into)
}

/// Run an already-parsed program.
pub fn run_program(program: &Program) -> Result<String, CoreError> {
    let s = &program.schema;
    let mut out = String::new();
    for cmd in &program.commands {
        match cmd {
            Command::Satisfiable(name) => {
                let q = program.query(name).expect("validated by the parser");
                let _ = writeln!(out, "satisfiable {name}?");
                let u = expand(s, &normalize(q, s)?)?;
                for sub in &u {
                    match satisfiability(s, sub)? {
                        Satisfiability::Satisfiable => {
                            let _ = writeln!(out, "  SAT   {}", sub.display(s));
                        }
                        Satisfiability::Unsatisfiable(reason) => {
                            let _ = writeln!(out, "  UNSAT {} ({reason})", sub.display(s));
                        }
                    }
                }
            }
            Command::CheckContains(a, b) => {
                let (qa, qb) = (
                    program.query(a).expect("validated"),
                    program.query(b).expect("validated"),
                );
                let holds = dispatch_containment(s, qa, qb)?;
                let _ = writeln!(
                    out,
                    "check {a} <= {b}: {}",
                    if holds { "holds" } else { "FAILS" }
                );
            }
            Command::CheckEquivalent(a, b) => {
                let (qa, qb) = (
                    program.query(a).expect("validated"),
                    program.query(b).expect("validated"),
                );
                let holds =
                    dispatch_containment(s, qa, qb)? && dispatch_containment(s, qb, qa)?;
                let _ = writeln!(
                    out,
                    "check {a} == {b}: {}",
                    if holds { "holds" } else { "FAILS" }
                );
            }
            Command::Explain(a, b) => {
                let (qa, qb) = (
                    program.query(a).expect("validated"),
                    program.query(b).expect("validated"),
                );
                let _ = writeln!(out, "explain {a} <= {b}:");
                if qa.is_terminal(s) && qb.is_terminal(s) {
                    let proof = decide_containment(s, qa, qb)?;
                    for line in proof.render(s, qa, qb).lines() {
                        let _ = writeln!(out, "  {line}");
                    }
                } else {
                    let ua = expand_satisfiable(s, &normalize(qa, s)?)?;
                    let ub = expand_satisfiable(s, &normalize(qb, s)?)?;
                    if ua.is_empty() {
                        let _ = writeln!(
                            out,
                            "  holds vacuously: every branch of {a} is unsatisfiable"
                        );
                    }
                    for sub in &ua {
                        let mut covered = false;
                        for p in &ub {
                            if contains_terminal(s, sub, p)? {
                                covered = true;
                                break;
                            }
                        }
                        let _ = writeln!(
                            out,
                            "  {} {}",
                            if covered { "covered " } else { "UNCOVERED" },
                            sub.display(s)
                        );
                    }
                }
            }
            Command::Expand(name) => {
                let q = program.query(name).expect("validated");
                let u = expand(s, &normalize(q, s)?)?;
                let _ = writeln!(out, "expand {name} ({} branches):", u.len());
                for sub in &u {
                    let _ = writeln!(out, "  {}", sub.display(s));
                }
            }
            Command::Minimize(name) => {
                let q = program.query(name).expect("validated");
                match minimize_positive(s, q) {
                    Ok(m) => {
                        let _ = writeln!(out, "minimize {name}:");
                        if m.is_empty() {
                            let _ = writeln!(out, "  (unsatisfiable: empty union)");
                        }
                        for sub in &m {
                            let _ = writeln!(out, "  {}", sub.display(s));
                        }
                    }
                    Err(e) => {
                        let _ = writeln!(out, "minimize {name}: cannot minimize ({e})");
                    }
                }
            }
        }
        let _ = writeln!(out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcript_for_a_tiny_program() {
        let text = "schema { class C {} } query Q = { x | x in C } \
                    satisfiable Q check Q <= Q minimize Q";
        let out = run_workbench(text).unwrap();
        assert!(out.contains("SAT   { x | x in C }"));
        assert!(out.contains("check Q <= Q: holds"));
        assert!(out.contains("minimize Q:\n  { x | x in C }"));
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(
            run_workbench("query Q = { x | x in C }"),
            Err(WorkbenchError::Parse(_))
        ));
    }

    #[test]
    fn dispatch_rejects_undecidable_shapes() {
        // Non-positive AND non-terminal on the right: outside the fragment.
        let s = crate::parse_schema("class C {} class D : C {}").unwrap();
        let qa = crate::parse_query(&s, "{ x | x in C }").unwrap();
        let qb = crate::parse_query(
            &s,
            "{ x | exists y: x in C & y in C & x != y }",
        )
        .unwrap();
        assert!(dispatch_containment(&s, &qa, &qb).is_err());
    }
}

//! Execution of workbench programs (see [`parse_program`]): runs each
//! command against the program's schema and renders the results as text.
//! Shared by the `oocq_cli` example and the golden-file corpus tests.
//!
//! The actual runner lives in `oocq-service` ([`oocq_service::run_program_with`])
//! so the `oocq-serve` daemon can execute `run` requests with an explicit
//! [`EngineConfig`]; these wrappers preserve the original environment-driven
//! API and its exact output bytes.

use crate::{parse_program, CoreError, EngineConfig, ParseError, Program, Query, Schema};
use oocq_service::RunError;

/// Errors from running a workbench program.
#[derive(Debug)]
pub enum WorkbenchError {
    /// The program text failed to parse.
    Parse(ParseError),
    /// A command failed (e.g. minimizing a non-positive query).
    Core(CoreError),
}

impl std::fmt::Display for WorkbenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkbenchError::Parse(e) => write!(f, "parse error at {e}"),
            WorkbenchError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WorkbenchError {}

impl From<ParseError> for WorkbenchError {
    fn from(e: ParseError) -> Self {
        WorkbenchError::Parse(e)
    }
}

impl From<CoreError> for WorkbenchError {
    fn from(e: CoreError) -> Self {
        WorkbenchError::Core(e)
    }
}

impl From<RunError> for WorkbenchError {
    fn from(e: RunError) -> Self {
        match e {
            RunError::Parse(e) => WorkbenchError::Parse(e),
            RunError::Core(e) => WorkbenchError::Core(e),
        }
    }
}

/// Containment dispatch across query shapes: §3 for terminal pairs, §4 for
/// positive pairs, left-expansion against a terminal right side.
pub fn dispatch_containment(s: &Schema, qa: &Query, qb: &Query) -> Result<bool, CoreError> {
    oocq_core::dispatch_containment(s, qa, qb)
}

/// Parse and run a program, returning the rendered transcript.
pub fn run_workbench(source: &str) -> Result<String, WorkbenchError> {
    let program = parse_program(source)?;
    run_program(&program).map_err(Into::into)
}

/// Run an already-parsed program under the environment configuration
/// (`OOCQ_THREADS`).
pub fn run_program(program: &Program) -> Result<String, CoreError> {
    oocq_service::run_program_with(program, &EngineConfig::from_env())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcript_for_a_tiny_program() {
        let text = "schema { class C {} } query Q = { x | x in C } \
                    satisfiable Q check Q <= Q minimize Q";
        let out = run_workbench(text).unwrap();
        assert!(out.contains("SAT   { x | x in C }"));
        assert!(out.contains("check Q <= Q: holds"));
        assert!(out.contains("minimize Q:\n  { x | x in C }"));
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(
            run_workbench("query Q = { x | x in C }"),
            Err(WorkbenchError::Parse(_))
        ));
    }

    #[test]
    fn dispatch_rejects_undecidable_shapes() {
        // Non-positive AND non-terminal on the right: outside the fragment.
        let s = crate::parse_schema("class C {} class D : C {}").unwrap();
        let qa = crate::parse_query(&s, "{ x | x in C }").unwrap();
        let qb = crate::parse_query(&s, "{ x | exists y: x in C & y in C & x != y }").unwrap();
        assert!(dispatch_containment(&s, &qa, &qb).is_err());
    }
}

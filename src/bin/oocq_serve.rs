//! `oocq-serve` — the concurrent containment/minimization daemon.
//!
//! Speaks the line-delimited protocol of `oocq_service::serve` over
//! stdin/stdout, or over TCP when `OOCQ_LISTEN=<addr:port>` is set.
//! `OOCQ_THREADS` sizes the worker pool; `OOCQ_CACHE_CAPACITY` sizes the
//! canonical decision cache (`0` disables it); `OOCQ_DEADLINE_MS` gives
//! every decision request a wall-clock deadline (`err timeout` on trip,
//! connection and cache stay usable); `OOCQ_QUEUE_BOUND` caps the
//! dispatcher→worker queue (default `16 × threads`), so a slow pool
//! pushes back on the client instead of buffering an unbounded backlog.

fn main() {
    if let Err(e) = oocq_service::daemon_main() {
        eprintln!("oocq-serve: {e}");
        std::process::exit(1);
    }
}

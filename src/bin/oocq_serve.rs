//! `oocq-serve` — the concurrent containment/minimization daemon.
//!
//! Speaks the line-delimited protocol of `oocq_service::serve` over
//! stdin/stdout, or over TCP when `OOCQ_LISTEN=<addr:port>` is set.
//! `OOCQ_THREADS` sizes the worker pool; `OOCQ_CACHE_CAPACITY` sizes the
//! canonical decision cache (`0` disables it).

fn main() {
    if let Err(e) = oocq_service::daemon_main() {
        eprintln!("oocq-serve: {e}");
        std::process::exit(1);
    }
}

//! `oocq-serve` — the concurrent containment/minimization daemon.
//!
//! Speaks the line-delimited protocol of `oocq_service::serve` over
//! stdin/stdout, or over TCP when `OOCQ_LISTEN=<addr:port>` is set.
//! `OOCQ_THREADS` sizes the worker pool; `OOCQ_CACHE_CAPACITY` sizes the
//! canonical decision cache (`0` disables it); `OOCQ_DEADLINE_MS` gives
//! every decision request a wall-clock deadline (`err timeout` on trip,
//! connection and cache stay usable); `OOCQ_QUEUE_BOUND` caps the
//! dispatcher→worker queue (default `16 × threads`), so a slow pool
//! pushes back on the client instead of buffering an unbounded backlog.
//!
//! TCP connections are served by an event-driven reactor multiplexing
//! every session over that one worker pool, with singleflight coalescing
//! of concurrent identical decisions (DESIGN.md §11). `OOCQ_REACTOR=0`
//! restores the thread-per-connection loop (byte-identical transcripts);
//! `OOCQ_MAX_CONNS` caps concurrent connections (default 4096, `err
//! busy` past the cap); `OOCQ_COALESCE=0` disables coalescing.

fn main() {
    if let Err(e) = oocq_service::daemon_main() {
        eprintln!("oocq-serve: {e}");
        std::process::exit(1);
    }
}

//! Emits `BENCH_load.json` (experiment **B11**): throughput and latency of
//! the serving layer under connection concurrency — the first
//! load-oriented point in the bench trajectory (B8 measured per-request
//! cache latency; this measures the transport).
//!
//! Four phases, each against an in-process server on a loopback socket,
//! driven by a single-threaded poll-multiplexed client so the measurement
//! itself stays cheap at a thousand connections:
//!
//! * **reactor / thread_per_conn** — the same cheap cached-containment
//!   workload pipelined over many concurrent connections through the
//!   event-driven reactor (`OOCQ_REACTOR=1`) and the legacy
//!   thread-per-connection loop (`OOCQ_REACTOR=0`). At high connection
//!   counts the legacy path pays a thread (plus a worker pool) per
//!   connection; the reactor multiplexes everything over one fixed pool.
//! * **coalesced / uncoalesced** — every connection hammers the *same*
//!   expensive containment check with the decision cache disabled, with
//!   singleflight coalescing on and off. Coalescing collapses each wave of
//!   identical requests into one branch-engine computation fanned out to
//!   all waiters.
//!
//! In-binary floors (the acceptance bars for this experiment): coalesced
//! hot-key throughput must be ≥5× uncoalesced, and — at the full preset's
//! high connection count — the reactor must sustain ≥2× the req/s of the
//! thread-per-connection path.
//!
//! Usage: `bench_load [OUT.json]` (default `BENCH_load.json`).
//! `OOCQ_BENCH_QUICK=1` selects a small smoke preset (fewer connections,
//! reactor-vs-legacy floor relaxed to parity — contention ratios need the
//! full preset to be meaningful).

use oocq_core::EngineConfig;
use oocq_service::poll::{PollEvent, Poller};
use oocq_service::{accept_loop, CanonicalDecisionCache, ServiceEngine};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The cheap workload: a containment that is a warm cache hit after the
/// first request, so the serving layer (not the engine) dominates.
const CHEAP_SCHEMA: &str = "class C {}";
const CHEAP_QUERY: &str = "{ x | x in C }";
const CHEAP_REQUEST: &str = "contains s Q Q";

/// The hot-key workload: a `Strategy::Full` containment whose branch walk
/// costs a few milliseconds cold — and the cache is disabled, so without
/// coalescing every request pays it.
const HOT_SCHEMA: &str = "class C { items: {C}; }";
const HOT_LEFT: &str = "{ x | exists y0, y1, u, z0, z1, z2: x in C & y0 in C & y0 in x.items \
                        & y1 in C & y1 in x.items & u in C & u not in x.items \
                        & z0 in C & z1 in C & z2 in C }";
const HOT_RIGHT: &str = "{ x | exists y, u2: x in C & y in C & u2 in C & y in x.items \
                         & u2 not in x.items & y != u2 }";
const HOT_REQUEST: &str = "contains s P Q";

struct Preset {
    connections: usize,
    requests_per_conn: usize,
    pipeline_depth: usize,
    hot_connections: usize,
    hot_requests_per_conn: usize,
    /// The reactor-vs-legacy floor only binds at the full preset: at smoke
    /// scale there is no contention for the reactor to win.
    reactor_floor: f64,
}

impl Preset {
    fn from_env() -> Preset {
        if std::env::var("OOCQ_BENCH_QUICK").is_ok_and(|v| v.trim() == "1") {
            Preset {
                connections: 96,
                requests_per_conn: 5,
                pipeline_depth: 2,
                hot_connections: 16,
                hot_requests_per_conn: 3,
                reactor_floor: 0.0,
            }
        } else {
            Preset {
                connections: 1000,
                requests_per_conn: 20,
                pipeline_depth: 4,
                hot_connections: 64,
                hot_requests_per_conn: 8,
                reactor_floor: 2.0,
            }
        }
    }
}

/// An in-process server in either serving mode; stops and joins on drop.
struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Server {
    fn start(engine: ServiceEngine, reactor: bool) -> Server {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            if reactor {
                oocq_service::reactor::run(&listener, &engine, &stop2)
            } else {
                accept_loop(&listener, &engine, &stop2)
            }
        });
        Server {
            addr,
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, SeqCst);
        if let Some(h) = self.handle.take() {
            h.join().unwrap().expect("server loop failed");
        }
    }
}

/// One client connection's state in the poll-multiplexed load generator.
struct ClientConn {
    stream: TcpStream,
    outbuf: Vec<u8>,
    out_pos: usize,
    inbuf: Vec<u8>,
    /// Requests written but unanswered, oldest first (send timestamps).
    awaiting: VecDeque<Instant>,
    sent: usize,
    done: usize,
    /// Still draining the untimed `stats off` handshake ack.
    in_setup: bool,
    want_write: bool,
}

impl ClientConn {
    fn queue(&mut self, line: &str) {
        self.outbuf.extend_from_slice(line.as_bytes());
        self.outbuf.push(b'\n');
    }

    fn flush(&mut self) {
        while self.out_pos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_pos..]) {
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => panic!("client write failed: {e}"),
            }
        }
        if self.out_pos >= self.outbuf.len() {
            self.outbuf.clear();
            self.out_pos = 0;
        }
    }
}

struct Phase {
    name: &'static str,
    mode: &'static str,
    connections: usize,
    requests: usize,
    wall: Duration,
    /// Per-request latencies in nanoseconds, sorted ascending.
    latencies: Vec<u64>,
}

impl Phase {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.wall.as_secs_f64()
    }

    fn percentile_us(&self, p: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let idx =
            ((self.latencies.len() as f64 * p).ceil() as usize).clamp(1, self.latencies.len()) - 1;
        self.latencies[idx] as f64 / 1000.0
    }
}

/// Drive `connections` pipelined connections, each sending
/// `requests_per_conn` copies of `request` with up to `depth` in flight,
/// against `addr`. Returns wall time and per-request latencies. The
/// connect + `stats off` handshake is excluded from the measurement.
fn run_phase(
    name: &'static str,
    mode: &'static str,
    addr: SocketAddr,
    connections: usize,
    requests_per_conn: usize,
    depth: usize,
    request: &str,
) -> Phase {
    let mut poller = Poller::new().expect("poller");
    let mut conns = Vec::with_capacity(connections);
    for token in 0..connections {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true).expect("nonblocking client");
        poller
            .register(stream.as_raw_fd(), token as u64, true, false)
            .expect("register client");
        let mut conn = ClientConn {
            stream,
            outbuf: Vec::new(),
            out_pos: 0,
            inbuf: Vec::new(),
            awaiting: VecDeque::new(),
            sent: 0,
            done: 0,
            in_setup: true,
            want_write: false,
        };
        conn.queue("stats off");
        conn.flush();
        conns.push(conn);
    }

    let mut latencies: Vec<u64> = Vec::with_capacity(connections * requests_per_conn);
    let mut events: Vec<PollEvent> = Vec::new();
    let mut outstanding = connections * requests_per_conn;
    let mut setup_left = connections;
    let mut started: Option<Instant> = None;
    let mut buf = [0u8; 16 * 1024];
    while outstanding > 0 {
        // The measured clock starts once every handshake ack is in.
        if setup_left == 0 && started.is_none() {
            let now = Instant::now();
            started = Some(now);
            for conn in conns.iter_mut() {
                while conn.sent < requests_per_conn && conn.awaiting.len() < depth {
                    conn.queue(request);
                    conn.awaiting.push_back(Instant::now());
                    conn.sent += 1;
                }
                conn.flush();
            }
        }
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(200)))
            .expect("poll wait");
        for ev in &events {
            let conn = &mut conns[ev.token as usize];
            if ev.writable {
                conn.flush();
            }
            if !ev.readable {
                continue;
            }
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => panic!("{name}: server closed connection {} early", ev.token),
                    Ok(n) => conn.inbuf.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => panic!("{name}: client read failed: {e}"),
                }
            }
            // Consume every complete response line buffered so far.
            let mut consumed = 0;
            while let Some(idx) = conn.inbuf[consumed..].iter().position(|&b| b == b'\n') {
                let line = String::from_utf8_lossy(&conn.inbuf[consumed..consumed + idx]);
                assert!(
                    line.contains("] ok "),
                    "{name}: request failed on connection {}: {line}",
                    ev.token
                );
                consumed += idx + 1;
                if conn.in_setup {
                    conn.in_setup = false;
                    setup_left -= 1;
                    continue;
                }
                let sent_at = conn.awaiting.pop_front().expect("unsolicited response");
                latencies.push(sent_at.elapsed().as_nanos() as u64);
                conn.done += 1;
                outstanding -= 1;
                if conn.sent < requests_per_conn {
                    conn.queue(request);
                    conn.awaiting.push_back(Instant::now());
                    conn.sent += 1;
                }
            }
            conn.inbuf.drain(..consumed);
            conn.flush();
        }
        // Keep write interest in sync with buffered output (a large
        // pipelined burst can overrun the socket buffer).
        for (token, conn) in conns.iter_mut().enumerate() {
            let want = conn.out_pos < conn.outbuf.len();
            if want != conn.want_write {
                poller
                    .modify(conn.stream.as_raw_fd(), token as u64, true, want)
                    .expect("modify client interest");
                conn.want_write = want;
            }
        }
    }
    let wall = started.expect("phase never started").elapsed();
    for conn in &conns {
        let _ = poller.deregister(conn.stream.as_raw_fd());
    }
    latencies.sort_unstable();
    Phase {
        name,
        mode,
        connections,
        requests: connections * requests_per_conn,
        wall,
        latencies,
    }
}

fn cheap_engine() -> ServiceEngine {
    let e = ServiceEngine::with_cache(
        EngineConfig::with_threads(2),
        Some(Arc::new(CanonicalDecisionCache::new(1024))),
    );
    e.define_schema("s", CHEAP_SCHEMA).unwrap();
    e.define_query("s", "Q", CHEAP_QUERY).unwrap();
    e
}

/// Cache *disabled*: every uncoalesced request pays the full branch walk,
/// which is exactly what singleflight is supposed to collapse.
fn hot_engine(coalesce: bool) -> ServiceEngine {
    let e =
        ServiceEngine::with_cache(EngineConfig::with_threads(8), None).with_coalescing(coalesce);
    e.define_schema("s", HOT_SCHEMA).unwrap();
    e.define_query("s", "P", HOT_LEFT).unwrap();
    e.define_query("s", "Q", HOT_RIGHT).unwrap();
    e
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_load.json".into());
    let p = Preset::from_env();

    eprintln!(
        "bench_load: {} connections x {} requests (pipeline depth {}), \
         hot-key {} x {}",
        p.connections,
        p.requests_per_conn,
        p.pipeline_depth,
        p.hot_connections,
        p.hot_requests_per_conn
    );

    let reactor = {
        let server = Server::start(cheap_engine(), true);
        run_phase(
            "reactor_cheap",
            "reactor",
            server.addr,
            p.connections,
            p.requests_per_conn,
            p.pipeline_depth,
            CHEAP_REQUEST,
        )
    };
    eprintln!("  reactor: {:.0} req/s", reactor.rps());
    let legacy = {
        let server = Server::start(cheap_engine(), false);
        run_phase(
            "thread_per_conn_cheap",
            "thread_per_conn",
            server.addr,
            p.connections,
            p.requests_per_conn,
            p.pipeline_depth,
            CHEAP_REQUEST,
        )
    };
    eprintln!("  thread-per-conn: {:.0} req/s", legacy.rps());
    let coalesced = {
        let server = Server::start(hot_engine(true), true);
        run_phase(
            "coalesced_hot_key",
            "reactor",
            server.addr,
            p.hot_connections,
            p.hot_requests_per_conn,
            1,
            HOT_REQUEST,
        )
    };
    eprintln!("  coalesced hot key: {:.0} req/s", coalesced.rps());
    let uncoalesced = {
        let server = Server::start(hot_engine(false), true);
        run_phase(
            "uncoalesced_hot_key",
            "reactor",
            server.addr,
            p.hot_connections,
            p.hot_requests_per_conn,
            1,
            HOT_REQUEST,
        )
    };
    eprintln!("  uncoalesced hot key: {:.0} req/s", uncoalesced.rps());

    let reactor_ratio = reactor.rps() / legacy.rps();
    let coalesce_ratio = coalesced.rps() / uncoalesced.rps();
    assert!(
        coalesce_ratio >= 5.0,
        "singleflight floor: coalesced hot-key throughput must be >= 5x \
         uncoalesced (coalesced {:.0} req/s, uncoalesced {:.0} req/s, ratio {:.1})",
        coalesced.rps(),
        uncoalesced.rps(),
        coalesce_ratio,
    );
    assert!(
        reactor_ratio >= p.reactor_floor,
        "reactor floor: event-driven serving must sustain >= {}x the \
         thread-per-connection req/s at {} connections \
         (reactor {:.0} req/s, legacy {:.0} req/s, ratio {:.1})",
        p.reactor_floor,
        p.connections,
        reactor.rps(),
        legacy.rps(),
        reactor_ratio,
    );

    let phases = [&reactor, &legacy, &coalesced, &uncoalesced];
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"experiment\": \"B11\",\n");
    json.push_str("  \"workload\": \"serving_reactor_concurrency_load\",\n");
    json.push_str(&format!(
        "  \"host\": {{ \"cores\": {} }},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str(&format!(
        "  \"config\": {{ \"connections\": {}, \"requests_per_conn\": {}, \
         \"pipeline_depth\": {}, \"hot_connections\": {}, \"hot_requests_per_conn\": {} }},\n",
        p.connections,
        p.requests_per_conn,
        p.pipeline_depth,
        p.hot_connections,
        p.hot_requests_per_conn
    ));
    json.push_str("  \"entries\": [\n");
    for (i, ph) in phases.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"mode\": \"{}\", \"connections\": {}, \
             \"requests\": {}, \"wall_ms\": {:.1}, \"rps\": {:.0}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1} }}{}\n",
            ph.name,
            ph.mode,
            ph.connections,
            ph.requests,
            ph.wall.as_secs_f64() * 1e3,
            ph.rps(),
            ph.percentile_us(0.50),
            ph.percentile_us(0.99),
            ph.percentile_us(0.999),
            if i + 1 == phases.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"ratios\": {{ \"reactor_vs_thread_per_conn\": {:.2}, \"reactor_floor\": {:.1}, \
         \"coalesced_vs_uncoalesced\": {:.2}, \"coalesce_floor\": 5.0 }}\n",
        reactor_ratio, p.reactor_floor, coalesce_ratio
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {out_path}");
    println!(
        "bench_load: reactor {:.1}x thread-per-conn, coalescing {:.1}x uncoalesced",
        reactor_ratio, coalesce_ratio
    );
}

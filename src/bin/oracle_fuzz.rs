//! `oracle_fuzz` — drive the differential soundness oracle over a seeded
//! sweep of `(schema, Q₁, Q₂)` pairs and fail loudly on any disagreement
//! between the containment engine and brute-force evaluation.
//!
//! ```text
//! oracle_fuzz [--seed N] [--iterations N|small|ci] [--duration SECS]
//!             [--states N] [--budget WORK] [--eval-budget WORK]
//!             [--min-confirm RATE] [--no-shrink] [--constrained] [--verbose]
//!
//! `--constrained` sweeps schemas with declared constraints
//! (disjoint/total/functional) instead of the plain rotation, judging
//! verdicts over constraint-legal states only. Because the constrained
//! fails-direction is documented as incomplete (chase-left-only, bounded
//! chase depth), the confirmation gate applies to the *overall* rate there
//! rather than the steered rate, and the default threshold is the same.
//! ```
//!
//! Exit status: `0` when the sweep saw no soundness violation **and** the
//! steered confirmation rate met `--min-confirm` (default 0.99 — the
//! per-obligation definitization portfolio steers every refuted pair of
//! the default sweep, so any regression below ~1.0 is a real one); `1`
//! otherwise; `2` on usage errors. The gate is two-sided on purpose — a
//! verdict flipped from *fails* to *holds* surfaces as a violation, while
//! one flipped from *holds* to *fails* surfaces as a collapsed
//! confirmation rate.

use oocq::oracle::{Oracle, OracleConfig, Outcome};
use oocq::EngineConfig;
use std::time::{Duration, Instant};

struct Args {
    seed: u64,
    iterations: u64,
    duration: Option<Duration>,
    states: Option<usize>,
    budget: Option<u64>,
    eval_budget: Option<u64>,
    min_confirm: f64,
    shrink: bool,
    constrained: bool,
    verbose: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: oracle_fuzz [--seed N] [--iterations N|small|ci] [--duration SECS]\n\
         \x20                  [--states N] [--budget WORK] [--eval-budget WORK]\n\
         \x20                  [--min-confirm RATE] [--no-shrink] [--constrained] [--verbose]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 0,
        iterations: 200,
        duration: None,
        states: None,
        budget: None,
        eval_budget: None,
        min_confirm: 0.99,
        shrink: true,
        constrained: false,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("oracle_fuzz: {name} needs a value");
                usage();
            })
        };
        match flag.as_str() {
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--iterations" => {
                let v = value("--iterations");
                args.iterations = match v.as_str() {
                    "small" => 32,
                    "ci" => 500,
                    n => n.parse().unwrap_or_else(|_| usage()),
                };
            }
            "--duration" => {
                let secs: u64 = value("--duration").parse().unwrap_or_else(|_| usage());
                args.duration = Some(Duration::from_secs(secs));
            }
            "--states" => args.states = Some(value("--states").parse().unwrap_or_else(|_| usage())),
            "--budget" => args.budget = Some(value("--budget").parse().unwrap_or_else(|_| usage())),
            "--eval-budget" => {
                args.eval_budget = Some(value("--eval-budget").parse().unwrap_or_else(|_| usage()))
            }
            "--min-confirm" => {
                args.min_confirm = value("--min-confirm").parse().unwrap_or_else(|_| usage())
            }
            "--no-shrink" => args.shrink = false,
            "--constrained" => args.constrained = true,
            "--verbose" => args.verbose = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("oracle_fuzz: unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut cfg = OracleConfig {
        shrink: args.shrink,
        ..OracleConfig::default()
    };
    if let Some(n) = args.states {
        cfg.states_per_pair = n;
    }
    if let Some(w) = args.budget {
        cfg.engine = EngineConfig::serial().with_budget(oocq::Budget::with_limit(w));
    }
    if let Some(w) = args.eval_budget {
        cfg.eval_budget = w;
    }
    let mut oracle = Oracle::new(cfg);

    let start = Instant::now();
    let mut violations = Vec::new();
    let mut ran = 0u64;
    for seed in args.seed..args.seed + args.iterations {
        if let Some(d) = args.duration {
            if start.elapsed() >= d {
                break;
            }
        }
        let (schema, q1, q2) = if args.constrained {
            oocq::oracle::sweep_constrained_pair(
                seed,
                &oracle.config().query,
                oracle.config().negative_atoms,
            )
        } else {
            oocq::oracle::sweep_pair(seed, &oracle.config().query, oracle.config().negative_atoms)
        };
        let mut rng = oocq::gen::StdRng::seed_from_u64(seed ^ 0x0bbedfeed);
        let outcome = oracle.check_pair(&schema, &q1, &q2, &mut rng);
        ran += 1;
        match outcome {
            Outcome::Violation(v) => {
                eprintln!("seed {seed}: {v}");
                violations.push((seed, v));
            }
            Outcome::RefutedUnconfirmed if args.verbose => {
                eprintln!("seed {seed}: refutation not confirmed");
            }
            _ => {}
        }
    }

    let stats = oracle.stats();
    let elapsed = start.elapsed();
    println!("oracle_fuzz: {stats}");
    println!(
        "oracle_fuzz: {ran} pair(s) in {:.2}s, steered confirmation rate {:.3} \
         (overall {:.3})",
        elapsed.as_secs_f64(),
        stats.steered_confirmation_rate(),
        stats.confirmation_rate(),
    );

    if !violations.is_empty() {
        eprintln!(
            "oracle_fuzz: FAIL — {} soundness violation(s)",
            violations.len()
        );
        std::process::exit(1);
    }
    // Constrained mode gates on the overall rate: steering must synthesize
    // a *constraint-legal* witness, which the documented incompleteness of
    // the constrained fails-direction makes strictly harder; the random
    // legal-state fallback still counts as constructive confirmation.
    let gated = if args.constrained {
        stats.confirmation_rate()
    } else {
        stats.steered_confirmation_rate()
    };
    if gated < args.min_confirm {
        eprintln!(
            "oracle_fuzz: FAIL — {} confirmation rate {:.3} below threshold {:.3}",
            if args.constrained {
                "overall"
            } else {
                "steered"
            },
            gated,
            args.min_confirm
        );
        std::process::exit(1);
    }
    println!("oracle_fuzz: ok");
}

//! Seed-sweep integration tests for the differential soundness oracle:
//! the engine's containment verdicts against brute-force evaluation, the
//! certificate-steered witness synthesis, and the mutation-catching seam
//! (`check_verdict` fed a deliberately wrong verdict must flag it).

use oocq::gen::StdRng;
use oocq::oracle::{sweep_pair, Oracle, OracleConfig, Outcome, ViolationKind};
use oocq::{answer, parse_query, parse_schema, Containment};

/// The headline sweep: across a deterministic seed range, no verdict is
/// ever refuted by evaluation, and the overwhelming majority of claimed
/// refutations are confirmed *constructively* by a certificate-steered
/// witness state (the paper's completeness argument, replayed on concrete
/// states).
#[test]
fn sweep_finds_no_violations_and_steers_most_refutations() {
    let mut oracle = Oracle::new(OracleConfig::default());
    let violations = oracle.sweep(0..128);
    assert!(
        violations.is_empty(),
        "soundness violation:\n{}",
        violations[0]
    );
    let st = oracle.stats().clone();
    assert_eq!(st.pairs, 128);
    assert_eq!(st.violations, 0);
    assert!(st.refuted > 0, "sweep produced no refutations: {st}");
    assert!(
        st.holds_unrefuted + st.holds_vacuous > 0,
        "sweep produced no containments: {st}"
    );
    assert_eq!(st.unconfirmed, 0, "unconfirmed refutations: {st}");
    assert!(
        st.steered_confirmation_rate() >= 0.99,
        "steering below threshold: {st}"
    );
}

/// A verdict flipped from *fails* to *holds* is caught as a soundness
/// violation, and the reported witness is independently checkable: it
/// answers Q1 but not Q2 on the reported state, and the violation's
/// workbench program replays the disputed check.
#[test]
fn lying_holds_verdict_is_caught_and_replayable() {
    let schema = parse_schema("class C {}\nclass D {}").unwrap();
    let q1 = parse_query(&schema, "{ x | x in C }").unwrap();
    let q2 = parse_query(&schema, "{ x | x in D }").unwrap();
    // The real engine refutes C ⊆ D, of course.
    assert!(!oocq::decide_containment(&schema, &q1, &q2).unwrap().holds());

    let mut oracle = Oracle::new(OracleConfig::default());
    let lie = Containment::Holds(Vec::new());
    let mut rng = StdRng::seed_from_u64(1);
    let Outcome::Violation(v) = oracle.check_verdict(&schema, &q1, &q2, &lie, &mut rng) else {
        panic!("lying `holds` verdict went uncaught");
    };
    assert_eq!(v.kind, ViolationKind::Containment);
    assert_eq!(oracle.stats().violations, 1);

    // The witness is real: in Q1's answer, not in Q2's.
    assert!(answer(&schema, &v.state, &v.q1).contains(&v.witness));
    assert!(!answer(&schema, &v.state, &v.q2).contains(&v.witness));

    // The rendered program replays the disputed decision end to end (the
    // unmutated engine refutes it, which is exactly the disagreement the
    // violation records).
    let transcript = oocq::run_workbench(&v.program).unwrap();
    assert!(
        transcript.contains("check Q1 <= Q2: FAILS"),
        "transcript: {transcript}"
    );
}

/// A verdict flipped from *holds* to *fails* cannot produce a witness —
/// steering and random search both come up empty, which is what the
/// `oracle_fuzz` confirmation-rate gate alarms on.
#[test]
fn lying_fails_verdict_is_never_confirmed() {
    let schema = parse_schema("class C { A: {C}; }").unwrap();
    let q1 = parse_query(&schema, "{ x | exists y: x in C & y in C & x in y.A }").unwrap();
    let q2 = parse_query(&schema, "{ x | x in C }").unwrap();
    // Real verdict: holds (Q2 is a pure relaxation of Q1).
    assert!(oocq::decide_containment(&schema, &q1, &q2).unwrap().holds());

    let mut oracle = Oracle::new(OracleConfig::default());
    let lie = Containment::Fails {
        augmentation: Vec::new(),
    };
    let mut rng = StdRng::seed_from_u64(2);
    match oracle.check_verdict(&schema, &q1, &q2, &lie, &mut rng) {
        Outcome::RefutedUnconfirmed => {}
        other => panic!("lying `fails` verdict was confirmed: {other:?}"),
    }
    let st = oracle.stats();
    assert_eq!(st.refuted, 1);
    assert_eq!(st.confirmed_steered + st.confirmed_searched, 0);
    assert_eq!(st.unconfirmed, 1);
    assert!(st.steered_confirmation_rate() < 0.95);
}

/// A lying unsatisfiability claim (`HoldsVacuously`) is caught by the
/// emptiness cross-check: the "unsatisfiable" query answers on a random
/// state.
#[test]
fn lying_vacuous_verdict_is_caught() {
    let schema = parse_schema("class C {}").unwrap();
    let q = parse_query(&schema, "{ x | x in C }").unwrap();
    let mut oracle = Oracle::new(OracleConfig::default());
    let lie = Containment::HoldsVacuously(
        match oocq::satisfiability(
            &schema,
            &parse_query(&schema, "{ x | x in C & x not in C }").unwrap(),
        )
        .unwrap()
        {
            oocq::Satisfiability::Unsatisfiable(r) => r,
            _ => panic!("expected an unsat reason to borrow"),
        },
    );
    let mut rng = StdRng::seed_from_u64(3);
    let Outcome::Violation(v) = oracle.check_verdict(&schema, &q, &q, &lie, &mut rng) else {
        panic!("lying vacuous verdict went uncaught");
    };
    assert_eq!(v.kind, ViolationKind::Vacuity);
    assert!(answer(&schema, &v.state, &v.q1).contains(&v.witness));
}

/// Steering works end to end on a hand-built refuted pair: the engine's
/// failing branch freezes into a state that confirms the refutation
/// without any random search.
#[test]
fn steered_confirmation_on_a_known_refuted_pair() {
    let schema = parse_schema("class C {}").unwrap();
    let q1 = parse_query(&schema, "{ x | x in C }").unwrap();
    let q2 = parse_query(&schema, "{ x | exists y: x in C & y in C & x != y }").unwrap();
    let mut oracle = Oracle::new(OracleConfig::default());
    let mut rng = StdRng::seed_from_u64(4);
    match oracle.check_pair(&schema, &q1, &q2, &mut rng) {
        Outcome::RefutedConfirmed { steered } => assert!(steered, "fell back to random search"),
        other => panic!("expected a steered confirmation, got {other:?}"),
    }
}

/// The evaluation budget is honored: an absurdly small work limit turns
/// the cross-check into a recoverable `EvalExhausted`, never a hang.
#[test]
fn evaluation_budget_trips_recoverably() {
    let schema = parse_schema("class C {}").unwrap();
    let q = parse_query(&schema, "{ x | x in C }").unwrap();
    let mut oracle = Oracle::new(OracleConfig {
        eval_budget: 1,
        ..OracleConfig::default()
    });
    let lie_free_truth = Containment::Holds(Vec::new());
    let mut rng = StdRng::seed_from_u64(5);
    match oracle.check_verdict(&schema, &q, &q, &lie_free_truth, &mut rng) {
        Outcome::EvalExhausted => {}
        other => panic!("expected EvalExhausted, got {other:?}"),
    }
    assert_eq!(oracle.stats().eval_exhausted, 1);
}

/// The sweep's pair generation is a pure function of the seed, so reported
/// seeds replay exactly.
#[test]
fn sweep_pairs_replay_by_seed() {
    let cfg = OracleConfig::default();
    for seed in [0u64, 1, 2, 3, 17, 123] {
        let (sa, qa1, qa2) = sweep_pair(seed, &cfg.query, cfg.negative_atoms);
        let (sb, qb1, qb2) = sweep_pair(seed, &cfg.query, cfg.negative_atoms);
        assert_eq!(qa1.display(&sa).to_string(), qb1.display(&sb).to_string());
        assert_eq!(qa2.display(&sa).to_string(), qb2.display(&sb).to_string());
    }
}

//! Every worked example of the paper, replayed end-to-end through the
//! public API (parser → algorithms → evaluator). These are the E1–E8
//! experiments of EXPERIMENTS.md in test form.

use oocq::{
    answer, answer_union, canonical_contains, contains_terminal, equivalent_terminal, expand,
    expand_satisfiable, is_minimal_terminal_positive, is_satisfiable, minimize_positive,
    parse_query, parse_schema, refute_containment, satisfiability, union_cost, union_equivalent,
    Satisfiability, Schema, StateBuilder, UnionQuery,
};

fn vehicle_schema() -> Schema {
    parse_schema(
        r#"
        class Vehicle {}
        class Auto : Vehicle {}
        class Trailer : Vehicle {}
        class Truck : Vehicle {}
        class Client { VehRented: {Vehicle}; }
        class Discount : Client { VehRented: {Auto}; }
        class Regular : Client {}
        "#,
    )
    .unwrap()
}

fn n1_schema() -> Schema {
    parse_schema(
        r#"
        class N1 { A: {G}; }
        class T1 : N1 {}
        class T2 : N1 { B: G; }
        class T3 : N1 { A: {I}; B: G; }
        class G {}
        class H : G {}
        class I : G {}
        "#,
    )
    .unwrap()
}

/// E1 / Example 1.1: the Vehicle query is equivalent to the Auto query.
#[test]
fn e1_example_11_vehicle_narrows_to_auto() {
    let s = vehicle_schema();
    let q = parse_query(
        &s,
        "{ x | exists y: x in Vehicle & y in Discount & x in y.VehRented }",
    )
    .unwrap();
    let m = minimize_positive(&s, &q).unwrap();
    assert_eq!(
        m.display(&s).to_string(),
        "{ x | exists y: x in Auto & y in Discount & x in y.VehRented }"
    );

    // Observable equivalence on a state exercising every class.
    let veh = s.attr_id("VehRented").unwrap();
    let mut b = StateBuilder::new();
    let a1 = b.object(s.class_id("Auto").unwrap());
    let a2 = b.object(s.class_id("Auto").unwrap());
    let t1 = b.object(s.class_id("Truck").unwrap());
    let d = b.object(s.class_id("Discount").unwrap());
    let r = b.object(s.class_id("Regular").unwrap());
    b.set_members(d, veh, [a1]);
    b.set_members(r, veh, [a2, t1]);
    let st = b.finish(&s).unwrap();
    assert_eq!(answer(&s, &st, &q), answer_union(&s, &st, &m));
    assert_eq!(answer(&s, &st, &q).len(), 1);
}

/// E2 / Examples 1.2 & 4.1: `Q ≡ Q₂′ ∪ Q₅`, search-space-optimal.
#[test]
fn e2_example_12_41_full_pipeline() {
    let s = n1_schema();
    let q = parse_query(
        &s,
        "{ x | exists y, s: x in N1 & y in G & s in H & y = x.B & y in x.A & s in x.A }",
    )
    .unwrap();
    let m = minimize_positive(&s, &q).unwrap();
    assert_eq!(m.len(), 2);
    let q2_prime = parse_query(
        &s,
        "{ x | exists y: x in T2 & y in H & y = x.B & y in x.A }",
    )
    .unwrap();
    let q5 = parse_query(
        &s,
        "{ x | exists y, s: x in T2 & y in I & s in H & y = x.B & y in x.A & s in x.A }",
    )
    .unwrap();
    let expected = UnionQuery::new(vec![q2_prime, q5]);
    assert!(union_equivalent(&s, &m, &expected).unwrap());
    // Neither subquery contains the other (nonredundancy).
    assert!(!contains_terminal(&s, &expected.queries()[0], &expected.queries()[1]).unwrap());
    assert!(!contains_terminal(&s, &expected.queries()[1], &expected.queries()[0]).unwrap());
    // And both are variable-minimal.
    for sub in &m {
        assert!(is_minimal_terminal_positive(&s, sub).unwrap());
    }
    // Cost: T2 twice, H twice, I once — and nothing else.
    let cost = union_cost(&s, &m);
    let get = |n: &str| cost.get(&s.class_id(n).unwrap()).copied().unwrap_or(0);
    assert_eq!(
        (get("T1"), get("T2"), get("T3"), get("H"), get("I")),
        (0, 2, 0, 2, 1)
    );
}

/// E3 / Example 1.3: conditions imply `x ≠ y`, so adding it changes nothing.
#[test]
fn e3_example_13_implied_inequality() {
    let s = parse_schema("class C { A: V; } class V {} class T1 : V {} class T2 : V {}").unwrap();
    let q1 = parse_query(
        &s,
        "{ x | exists y, s, t: x in C & y in C & s in T1 & t in T2 & s = x.A & t = y.A & x != y }",
    )
    .unwrap();
    let q2 = parse_query(
        &s,
        "{ x | exists y, s, t: x in C & y in C & s in T1 & t in T2 & s = x.A & t = y.A }",
    )
    .unwrap();
    assert!(equivalent_terminal(&s, &q1, &q2).unwrap());
}

/// E4 / Example 2.1: the vehicle query expands to exactly three terminal
/// subqueries, one per terminal descendant of Vehicle.
#[test]
fn e4_example_21_expansion() {
    let s = vehicle_schema();
    let q = parse_query(
        &s,
        "{ x | exists y: x in Vehicle & y in Discount & x in y.VehRented }",
    )
    .unwrap();
    let u = expand(&s, &q).unwrap();
    assert_eq!(u.len(), 3);
    let classes: Vec<&str> = u
        .iter()
        .map(|sub| s.class_name(sub.terminal_class_of(sub.free_var()).unwrap()))
        .collect();
    assert_eq!(classes, ["Auto", "Trailer", "Truck"]);
    // Only the Auto branch is satisfiable.
    assert_eq!(expand_satisfiable(&s, &q).unwrap().len(), 1);
}

/// E5 / Example 3.1: `Q₁ ⊆ Q₂` and `Q₂ ⊄ Q₁`, with the canonical-state
/// oracle agreeing.
#[test]
fn e5_example_31_one_directional_containment() {
    let s = parse_schema("class C { A: D; B: {D}; } class D {}").unwrap();
    let q1 = parse_query(
        &s,
        "{ x | exists y, z: x in C & y in C & z in D & z = y.A & z in y.B & x = y }",
    )
    .unwrap();
    let q2 = parse_query(&s, "{ y | exists z: y in C & z in D & z = y.A }").unwrap();
    assert!(contains_terminal(&s, &q1, &q2).unwrap());
    assert!(!contains_terminal(&s, &q2, &q1).unwrap());
    assert_eq!(canonical_contains(&s, &q1, &q2), Some(true));
    assert_eq!(canonical_contains(&s, &q2, &q1), Some(false));
}

/// E6 / Example 3.2: `Q₁ ≡ Q₂` but `Q₁ ⊄ Q₃` (counting distinct objects),
/// cross-checked by brute force on explicit states.
#[test]
fn e6_example_32_counting_distinct_objects() {
    let s = parse_schema("class C {}").unwrap();
    let q1 = parse_query(
        &s,
        "{ x | exists y, z: x in C & y in C & z in C & x != y & y != z }",
    )
    .unwrap();
    let q2 = parse_query(&s, "{ x | exists y: x in C & y in C & x != y }").unwrap();
    let q3 = parse_query(
        &s,
        "{ x | exists y, z: x in C & y in C & z in C & x != y & y != z & x != z }",
    )
    .unwrap();
    assert!(equivalent_terminal(&s, &q1, &q2).unwrap());
    assert!(contains_terminal(&s, &q3, &q1).unwrap());
    assert!(!contains_terminal(&s, &q1, &q3).unwrap());

    // Brute force: on a 2-object state, Q1 answers but Q3 does not.
    let c = s.class_id("C").unwrap();
    let mut b = StateBuilder::new();
    b.object(c);
    b.object(c);
    let two = b.finish(&s).unwrap();
    let u1 = UnionQuery::single(q1);
    let u3 = UnionQuery::single(q3);
    assert!(refute_containment(&s, &[two], &u1, &u3).is_some());
}

/// E7 / Example 3.3: the non-membership direction fails, and a concrete
/// witness state shows why.
#[test]
fn e7_example_33_non_membership() {
    let s = parse_schema("class T1 {} class T2 { A: {T1}; }").unwrap();
    let q1 = parse_query(&s, "{ x | exists y: x in T1 & y in T2 }").unwrap();
    let q2 = parse_query(&s, "{ x | exists y: x in T1 & y in T2 & x not in y.A }").unwrap();
    assert!(contains_terminal(&s, &q2, &q1).unwrap());
    assert!(!contains_terminal(&s, &q1, &q2).unwrap());

    // Witness: a state where the only T1 object IS in y.A.
    let a = s.attr_id("A").unwrap();
    let mut b = StateBuilder::new();
    let x = b.object(s.class_id("T1").unwrap());
    let y = b.object(s.class_id("T2").unwrap());
    b.set_members(y, a, [x]);
    let st = b.finish(&s).unwrap();
    assert!(answer(&s, &st, &q1).contains(&x));
    assert!(!answer(&s, &st, &q2).contains(&x));
}

/// E8: the satisfiability verdicts of Example 4.1, with reasons.
#[test]
fn e8_example_41_satisfiability_table() {
    let s = n1_schema();
    let q = parse_query(
        &s,
        "{ x | exists y, s: x in N1 & y in G & s in H & y = x.B & y in x.A & s in x.A }",
    )
    .unwrap();
    let u = expand(&s, &q).unwrap();
    assert_eq!(u.len(), 6);
    let verdicts: Vec<bool> = u
        .iter()
        .map(|sub| is_satisfiable(&s, sub).unwrap())
        .collect();
    // Order: (T1,H), (T1,I), (T2,H), (T2,I), (T3,H), (T3,I).
    assert_eq!(verdicts, [false, false, true, true, false, false]);
    // The unsatisfiable ones carry the reasons the paper argues informally.
    for (i, sub) in u.iter().enumerate() {
        if !verdicts[i] {
            let Satisfiability::Unsatisfiable(reason) = satisfiability(&s, sub).unwrap() else {
                panic!("expected unsat");
            };
            let msg = reason.to_string();
            assert!(
                msg.contains("no attribute `B`") || msg.contains("cannot be a member"),
                "unexpected reason: {msg}"
            );
        }
    }
}

//! A catalog of hand-constructed containment cases that pin down the
//! subtle mechanisms of Theorem 3.1 — each test documents which mechanism
//! would give the wrong answer if removed.

use oocq::{contains_terminal, equivalent_terminal, parse_query, parse_schema};

/// The `W` (membership-augmentation) mechanism is load-bearing: without it,
/// a naive single-mapping check would wrongly accept this containment.
///
/// `Q₁` has the set term `y.A` (via `w ∈ y.A`) but never asserts `x ∈ y.A`;
/// `Q₂` demands `x ∉ y.A`. On states where `x` happens to be a member, `Q₁`
/// answers and `Q₂` does not — detected exactly by the branch
/// `Q₁ & {x ∈ y.A}`.
#[test]
fn w_augmentation_rejects_false_containment() {
    let s = parse_schema("class T1 {} class T2 { A: {T1}; }").unwrap();
    let q1 = parse_query(
        &s,
        "{ x | exists y, w: x in T1 & y in T2 & w in T1 & w in y.A }",
    )
    .unwrap();
    let q2 = parse_query(&s, "{ x | exists y: x in T1 & y in T2 & x not in y.A }").unwrap();
    // With W = ∅ alone the identity mapping would be non-contradictory
    // (x ∈ y.A is not derivable in Q₁) — the W branch refutes it.
    assert!(!contains_terminal(&s, &q1, &q2).unwrap());
    // Sanity: the reverse strict direction also fails (Q₂ lacks w ∈ y.A).
    assert!(!contains_terminal(&s, &q2, &q1).unwrap());
}

/// Deep congruence cascades: equality of bases propagates through two
/// attribute hops before the mapping's equality atom becomes derivable.
#[test]
fn congruence_cascade_derives_two_hop_equalities() {
    let s = parse_schema("class C { A: C; B: C; }").unwrap();
    let q1 = parse_query(
        &s,
        "{ x | exists y, u, v, w1, w2: x in C & y in C & u in C & v in C & w1 in C & w2 in C \
           & x = y & u = x.A & v = y.A & w1 = u.B & w2 = v.B }",
    )
    .unwrap();
    // Q₂ asks for the A-then-B path only; μ(w) = w2 needs u = v (congruence
    // round 1) and then w1 = w2 (round 2).
    let q2 = parse_query(
        &s,
        "{ x | exists u, w: x in C & u in C & w in C & u = x.A & w = u.B }",
    )
    .unwrap();
    assert!(contains_terminal(&s, &q1, &q2).unwrap());
    // The reverse also holds: Q₁'s duplicated path folds onto Q₂'s single
    // path (map x,y ↦ x; u,v ↦ u; w1,w2 ↦ w) — the queries are equivalent,
    // and minimization indeed collapses Q₁ to Q₂'s size.
    assert!(contains_terminal(&s, &q2, &q1).unwrap());
    let m = oocq::minimize_terminal_positive(&s, &q1).unwrap();
    assert_eq!(m.var_count(), q2.var_count());
}

/// Membership derives through equated owners and equated members
/// simultaneously (`s ∈ [x]`, `t ∈ [y]` in the §3.1 definition).
#[test]
fn membership_derivation_through_both_sides() {
    let s = parse_schema("class T1 {} class T2 { A: {T1}; }").unwrap();
    let q1 = parse_query(
        &s,
        "{ x | exists x2, y, y2: x in T1 & x2 in T1 & y in T2 & y2 in T2 \
           & x = x2 & y = y2 & x2 in y2.A }",
    )
    .unwrap();
    let q2 = parse_query(&s, "{ x | exists y: x in T1 & y in T2 & x in y.A }").unwrap();
    assert!(contains_terminal(&s, &q1, &q2).unwrap());
    assert!(contains_terminal(&s, &q2, &q1).unwrap());
}

/// Refined set attributes: a membership into a `{Auto}`-typed set IS a
/// membership into the inherited `{Vehicle}`-typed attribute — same
/// attribute name, so the mapping carries over; the refinement only
/// constrains satisfiability, not derivability.
#[test]
fn refined_attribute_memberships_are_compatible() {
    let s = parse_schema(
        "class Vehicle {} class Auto : Vehicle {}
         class Client { R: {Vehicle}; } class Discount : Client { R: {Auto}; }
         class Regular : Client {}",
    )
    .unwrap();
    let q1 = parse_query(&s, "{ x | exists y: x in Auto & y in Discount & x in y.R }").unwrap();
    let q2 = parse_query(&s, "{ x | exists y: x in Auto & y in Regular & x in y.R }").unwrap();
    // Different owner classes: incomparable (range atoms must match exactly).
    assert!(!contains_terminal(&s, &q1, &q2).unwrap());
    assert!(!contains_terminal(&s, &q2, &q1).unwrap());
    // But weakening the member side is fine within one owner class.
    let q3 = parse_query(&s, "{ x | exists y: x in Auto & y in Discount & x in y.R }").unwrap();
    assert!(equivalent_terminal(&s, &q1, &q3).unwrap());
}

/// An inequality whose operands are attribute terms: non-contradiction
/// requires both terms to EXIST as object terms in the target (the paper's
/// "f(s) and g(t) are object terms in Q" condition).
#[test]
fn inequality_over_attribute_terms_needs_witness_terms() {
    let s = parse_schema("class C { A: C; }").unwrap();
    // Q₂ requires x.A ≠ y.A.
    let q2 = parse_query(
        &s,
        "{ x | exists y, u, v: x in C & y in C & u in C & v in C \
           & u = x.A & v = y.A & u != v }",
    )
    .unwrap();
    // Q₁ has both attribute terms; nothing proves them distinct, nothing
    // merges them. On the augmentation branch that merges u and v, the
    // inequality is contradicted and no mapping exists — so Q₁ ⊄ Q₂.
    let q1 = parse_query(
        &s,
        "{ x | exists y, u, v: x in C & y in C & u in C & v in C & u = x.A & v = y.A }",
    )
    .unwrap();
    assert!(!contains_terminal(&s, &q1, &q2).unwrap());
    // Q₁ augmented with nothing still contains the weaker Q₃ without the
    // inequality.
    assert!(contains_terminal(&s, &q2, &q1).unwrap());

    // A query LACKING the attribute terms entirely can never map the
    // inequality's operands: not contained either.
    let bare = parse_query(&s, "{ x | exists y: x in C & y in C }").unwrap();
    assert!(!contains_terminal(&s, &bare, &q2).unwrap());
}

/// The free-variable anchor (condition (i)): a mapping exists but sends the
/// answer variable to the wrong equivalence class, so containment fails.
#[test]
fn free_variable_anchor_is_enforced() {
    let s = parse_schema("class T1 {} class T2 { A: {T1}; }").unwrap();
    // Q₂ answers the member; Q₁ answers a DIFFERENT T1 object.
    let q1 = parse_query(
        &s,
        "{ x | exists m, y: x in T1 & m in T1 & y in T2 & m in y.A }",
    )
    .unwrap();
    let q2 = parse_query(&s, "{ m | exists y: m in T1 & y in T2 & m in y.A }").unwrap();
    // Atom-wise Q₂ maps into Q₁ (m ↦ m, y ↦ y), but τ(μ(m)) ≠ τ(x):
    assert!(!contains_terminal(&s, &q1, &q2).unwrap());
    // Equating x and m repairs it.
    let q1_eq = parse_query(
        &s,
        "{ x | exists m, y: x in T1 & m in T1 & y in T2 & m in y.A & x = m }",
    )
    .unwrap();
    assert!(contains_terminal(&s, &q1_eq, &q2).unwrap());
}

/// Unsatisfiable augmentation branches are vacuous: Example 1.3's pattern
/// at one more level of indirection (the merge is killed two congruence
/// steps later).
#[test]
fn deep_inconsistent_augmentations_are_skipped() {
    // x ≠ y is implied: x.A and y.A hold D-objects whose P values live in
    // disjoint terminal classes S1/S2.
    let s = parse_schema(
        "class C { A: D; } class D { P: V; } class V {} class S1 : V {} class S2 : V {}",
    )
    .unwrap();
    let q1 = parse_query(
        &s,
        "{ x | exists y, d1, d2, p1, p2: x in C & y in C & d1 in D & d2 in D \
           & p1 in S1 & p2 in S2 & d1 = x.A & d2 = y.A & p1 = d1.P & p2 = d2.P & x != y }",
    )
    .unwrap();
    let q2 = parse_query(
        &s,
        "{ x | exists y, d1, d2, p1, p2: x in C & y in C & d1 in D & d2 in D \
           & p1 in S1 & p2 in S2 & d1 = x.A & d2 = y.A & p1 = d1.P & p2 = d2.P }",
    )
    .unwrap();
    // Merging x=y forces d1=d2 (congruence on A) then p1=p2 (congruence on
    // P) — a class conflict S1/S2 two steps away. The branch is skipped, so
    // the queries are equivalent just like in Example 1.3.
    assert!(equivalent_terminal(&s, &q1, &q2).unwrap());
}

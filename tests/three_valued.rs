//! Edge-case semantics of the 3-valued evaluation (§2.2): the null value
//! `Λ` in every atom position, null sets vs. empty sets, and how the
//! algorithms stay sound in the presence of unknowns.

use oocq::{
    answer, answer_planned, contains_terminal, parse_query, parse_schema, Query, Schema,
    StateBuilder,
};
use std::collections::BTreeSet;

fn schema() -> Schema {
    parse_schema("class C { A: D; B: {D}; } class D {}").unwrap()
}

fn q(s: &Schema, text: &str) -> Query {
    parse_query(s, text).unwrap()
}

#[test]
fn equality_with_null_is_unknown_in_both_orientations() {
    let s = schema();
    let mut b = StateBuilder::new();
    let _c = b.object(s.class_id("C").unwrap()); // A, B null
    let _d = b.object(s.class_id("D").unwrap());
    let st = b.finish(&s).unwrap();
    for text in [
        "{ x | exists z: x in C & z in D & z = x.A }",
        "{ x | exists z: x in C & z in D & x.A = z }",
    ] {
        assert!(answer(&s, &st, &q(&s, text)).is_empty(), "{text}");
    }
}

#[test]
fn inequality_with_null_is_unknown_not_true() {
    // x.A is null: `z != x.A` is unknown, so nothing qualifies.
    let s = schema();
    let mut b = StateBuilder::new();
    let _c = b.object(s.class_id("C").unwrap());
    let _d = b.object(s.class_id("D").unwrap());
    let st = b.finish(&s).unwrap();
    let query = q(&s, "{ x | exists z: x in C & z in D & z != x.A }");
    assert!(answer(&s, &st, &query).is_empty());
    // With A set to some OTHER object, the inequality is definitely true.
    let mut b = StateBuilder::new();
    let c = b.object(s.class_id("C").unwrap());
    let d1 = b.object(s.class_id("D").unwrap());
    let d2 = b.object(s.class_id("D").unwrap());
    b.set_obj(c, s.attr_id("A").unwrap(), d1);
    let st = b.finish(&s).unwrap();
    let ans = answer(&s, &st, &query);
    assert_eq!(ans, BTreeSet::from([c]));
    let _ = d2;
}

#[test]
fn null_set_vs_empty_set_for_membership_and_non_membership() {
    let s = schema();
    let a = s.attr_id("B").unwrap();
    // Object with NULL set.
    let mut b = StateBuilder::new();
    let c_null = b.object(s.class_id("C").unwrap());
    let d = b.object(s.class_id("D").unwrap());
    let st_null = b.finish(&s).unwrap();
    // Object with EMPTY set.
    let mut b = StateBuilder::new();
    let c_empty = b.object(s.class_id("C").unwrap());
    let d2 = b.object(s.class_id("D").unwrap());
    b.set_members(c_empty, a, []);
    let st_empty = b.finish(&s).unwrap();

    let member = q(&s, "{ z | exists x: z in D & x in C & z in x.B }");
    let non_member = q(&s, "{ z | exists x: z in D & x in C & z not in x.B }");

    // Null set: both membership AND non-membership are unknown.
    assert!(answer(&s, &st_null, &member).is_empty());
    assert!(answer(&s, &st_null, &non_member).is_empty());
    // Empty set: membership false, non-membership true.
    assert!(answer(&s, &st_empty, &member).is_empty());
    assert_eq!(answer(&s, &st_empty, &non_member), BTreeSet::from([d2]));
    let _ = (c_null, d);
}

#[test]
fn unknown_is_contagious_through_conjunction() {
    // One true atom + one unknown atom: the matrix is unknown, not true.
    let s = schema();
    let mut b = StateBuilder::new();
    let c = b.object(s.class_id("C").unwrap());
    let d = b.object(s.class_id("D").unwrap());
    b.set_obj(c, s.attr_id("A").unwrap(), d); // A set, B null
    let st = b.finish(&s).unwrap();
    let query = q(&s, "{ z | exists x: z in D & x in C & z = x.A & z in x.B }");
    assert!(answer(&s, &st, &query).is_empty());
    // Dropping the unknown conjunct makes the object qualify.
    let query = q(&s, "{ z | exists x: z in D & x in C & z = x.A }");
    assert_eq!(answer(&s, &st, &query), BTreeSet::from([d]));
}

#[test]
fn existential_quantification_needs_only_one_true_branch() {
    // Two C objects: one with null A, one with A = d. The null one does not
    // block the existential.
    let s = schema();
    let mut b = StateBuilder::new();
    let _c_null = b.object(s.class_id("C").unwrap());
    let c_set = b.object(s.class_id("C").unwrap());
    let d = b.object(s.class_id("D").unwrap());
    b.set_obj(c_set, s.attr_id("A").unwrap(), d);
    let st = b.finish(&s).unwrap();
    let query = q(&s, "{ z | exists x: z in D & x in C & z = x.A }");
    assert_eq!(answer(&s, &st, &query), BTreeSet::from([d]));
}

#[test]
fn example_31_containment_reflects_null_semantics() {
    // The paper's informal argument for Example 3.1: whenever Q1 is
    // satisfied, y.A is non-null — so Q1 ⊆ Q2 despite 3-valued logic.
    // Verified here on states, alongside the algorithmic verdict.
    let s = schema();
    let q1 = q(
        &s,
        "{ x | exists y, z: x in C & y in C & z in D & z = y.A & z in y.B & x = y }",
    );
    let q2 = q(&s, "{ y | exists z: y in C & z in D & z = y.A }");
    assert!(contains_terminal(&s, &q1, &q2).unwrap());

    let mut b = StateBuilder::new();
    let c = b.object(s.class_id("C").unwrap());
    let d = b.object(s.class_id("D").unwrap());
    b.set_obj(c, s.attr_id("A").unwrap(), d);
    b.set_members(c, s.attr_id("B").unwrap(), [d]);
    let st = b.finish(&s).unwrap();
    let a1 = answer(&s, &st, &q1);
    let a2 = answer(&s, &st, &q2);
    assert!(a1.is_subset(&a2));
    assert_eq!(a1, BTreeSet::from([c]));
}

#[test]
fn planned_evaluator_handles_null_generators() {
    // The planned evaluator binds z from x.A; with x.A null it must produce
    // nothing (and agree with naive).
    let s = schema();
    let mut b = StateBuilder::new();
    let _c = b.object(s.class_id("C").unwrap());
    let _d = b.object(s.class_id("D").unwrap());
    let st = b.finish(&s).unwrap();
    let query = q(&s, "{ x | exists z: x in C & z in D & z = x.A }");
    assert_eq!(answer_planned(&s, &st, &query), answer(&s, &st, &query));
    assert!(answer_planned(&s, &st, &query).is_empty());
}

#[test]
fn non_range_atoms_are_two_valued() {
    // Range and non-range atoms never evaluate to unknown: an object either
    // is in a class or is not.
    let s = schema();
    let mut b = StateBuilder::new();
    let c = b.object(s.class_id("C").unwrap());
    let d = b.object(s.class_id("D").unwrap());
    let st = b.finish(&s).unwrap();
    let query = q(&s, "{ x | x not in D }");
    // Needs normalization? `x` has no range atom — evaluator falls back to
    // all oids.
    assert_eq!(answer(&s, &st, &query), BTreeSet::from([c]));
    let query = q(&s, "{ x | x not in C }");
    assert_eq!(answer(&s, &st, &query), BTreeSet::from([d]));
}

//! Differential tests for the parallel branch engine: under any
//! [`EngineConfig`] the containment certificate — witness list, witness
//! order, and failing branch — must be byte-identical to the serial
//! engine's, and the full Theorem 3.1 enumeration must agree with the
//! corollary fast paths wherever both apply.

use oocq::gen::{random_schema, random_terminal_positive, QueryParams, Rng, SchemaParams, StdRng};
use oocq::{
    contains_terminal_full_with, contains_terminal_with, decide_containment_with,
    expand_satisfiable_with, normalize, union_contains_with, Atom, EngineConfig, Query, Schema,
    Term, UnionQuery,
};

fn test_schema(seed: u64) -> Schema {
    match seed % 4 {
        0 => oocq::samples::vehicle_rental(),
        1 => oocq::samples::n1_partition(),
        2 => oocq::samples::example_31(),
        _ => random_schema(
            &mut StdRng::seed_from_u64(seed),
            &SchemaParams {
                roots: 2,
                branching: 2,
                object_attrs: 2,
                set_attrs: 1,
                refine_prob: 0.4,
            },
        ),
    }
}

/// Append random inequality / non-membership atoms so that `strategy_for`
/// selects the branchier corollaries (and, with both kinds, Theorem 3.1
/// itself).
fn add_negative_atoms(rng: &mut impl Rng, schema: &Schema, q: &Query, count: usize) -> Query {
    let mut extra = Vec::new();
    let vars: Vec<_> = q.vars().collect();
    for _ in 0..count {
        let i = vars[rng.gen_range(0..vars.len())];
        let j = vars[rng.gen_range(0..vars.len())];
        if rng.gen_bool(0.5) {
            if i != j {
                extra.push(Atom::Neq(Term::Var(i), Term::Var(j)));
            }
        } else if let Some([cls]) = q.range_of(j) {
            let set_attrs: Vec<_> = schema
                .effective_type(*cls)
                .iter()
                .filter(|(_, t)| t.is_set())
                .map(|(&a, _)| a)
                .collect();
            if !set_attrs.is_empty() {
                let a = set_attrs[rng.gen_range(0..set_attrs.len())];
                extra.push(Atom::NonMember(i, j, a));
            }
        }
    }
    q.with_extra_atoms(extra)
}

/// A parallel configuration that forces the threaded path even for tiny
/// branch spaces (so every test case exercises the worker pool).
fn forced_parallel(threads: usize) -> EngineConfig {
    EngineConfig {
        threads,
        min_parallel_branches: 1,
        ..EngineConfig::serial()
    }
}

/// The full certificate — every witness mapping, their order, and the
/// failing augmentation on refusal — is identical under serial and
/// parallel configurations, across random general terminal queries that
/// exercise all four strategies.
#[test]
fn parallel_certificates_match_serial() {
    for seed in 0..96u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb57a);
        let p = QueryParams { vars: 3, atoms: 4 };
        let base1 = random_terminal_positive(&mut rng, &schema, &p);
        let base2 = random_terminal_positive(&mut rng, &schema, &p);
        // Vary the negative-atom mix so q2 hits Positive, InequalityFree,
        // MembershipFree, and Full across the sweep.
        let q1 = add_negative_atoms(&mut rng, &schema, &base1, (seed % 3) as usize);
        let q2 = add_negative_atoms(&mut rng, &schema, &base2, (seed % 4) as usize);
        let serial = decide_containment_with(&schema, &q1, &q2, &EngineConfig::serial()).unwrap();
        for threads in [2, 4, 8] {
            let par =
                decide_containment_with(&schema, &q1, &q2, &forced_parallel(threads)).unwrap();
            assert_eq!(
                serial,
                par,
                "seed {seed}, {threads} threads: certificates diverge for\n  q1 = {}\n  q2 = {}",
                q1.display(&schema),
                q2.display(&schema)
            );
        }
    }
}

/// The full Theorem 3.1 enumeration (all S × W branches) agrees with the
/// strategy-selected fast path (Corollaries 3.2–3.4 where applicable) on
/// every random pair, serial and parallel alike.
#[test]
fn full_enumeration_agrees_with_fast_paths() {
    for seed in 0..64u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa57);
        let p = QueryParams { vars: 3, atoms: 3 };
        let base1 = random_terminal_positive(&mut rng, &schema, &p);
        let base2 = random_terminal_positive(&mut rng, &schema, &p);
        let q1 = add_negative_atoms(&mut rng, &schema, &base1, 1);
        let q2 = add_negative_atoms(&mut rng, &schema, &base2, (seed % 3) as usize);
        let fast = contains_terminal_with(&schema, &q1, &q2, &EngineConfig::serial()).unwrap();
        let full_serial =
            contains_terminal_full_with(&schema, &q1, &q2, &EngineConfig::serial()).unwrap();
        let full_par = contains_terminal_full_with(&schema, &q1, &q2, &forced_parallel(4)).unwrap();
        assert_eq!(
            fast,
            full_serial,
            "seed {seed}: corollary fast path disagrees with full enumeration for\n  q1 = {}\n  q2 = {}",
            q1.display(&schema),
            q2.display(&schema)
        );
        assert_eq!(
            full_serial, full_par,
            "seed {seed}: full enumeration not deterministic"
        );
    }
}

/// Theorem 4.1 union containment is configuration-independent: the pairwise
/// sweep reaches the same verdict serial and parallel.
#[test]
fn union_containment_matches_serial() {
    for seed in 0..48u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0114);
        let p = QueryParams { vars: 3, atoms: 3 };
        let m = UnionQuery::new(
            (0..3)
                .map(|_| random_terminal_positive(&mut rng, &schema, &p))
                .collect(),
        );
        let n = UnionQuery::new(
            (0..3)
                .map(|_| random_terminal_positive(&mut rng, &schema, &p))
                .collect(),
        );
        let serial = union_contains_with(&schema, &m, &n, &EngineConfig::serial()).unwrap();
        let par = union_contains_with(&schema, &m, &n, &forced_parallel(4)).unwrap();
        assert_eq!(serial, par, "seed {seed}");
    }
}

/// Proposition 2.1 expansion filtering keeps the same subqueries in the
/// same order under any configuration.
#[test]
fn satisfiable_expansion_matches_serial() {
    for seed in 0..48u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xe4a);
        let q = oocq::gen::random_positive(&mut rng, &schema, &QueryParams { vars: 3, atoms: 3 });
        let n = normalize(&q, &schema).unwrap();
        let serial = expand_satisfiable_with(&schema, &n, &EngineConfig::serial()).unwrap();
        let par = expand_satisfiable_with(&schema, &n, &forced_parallel(4)).unwrap();
        assert_eq!(serial, par, "seed {seed}");
    }
}

/// `OOCQ_THREADS`-style configs with absurd thread counts still terminate
/// and agree (workers are clamped to the branch count).
#[test]
fn oversubscribed_thread_count_is_safe() {
    let schema = oocq::samples::example_31();
    let mut rng = StdRng::seed_from_u64(99);
    let p = QueryParams { vars: 3, atoms: 4 };
    let q1 = random_terminal_positive(&mut rng, &schema, &p);
    let q2 = random_terminal_positive(&mut rng, &schema, &p);
    let serial = decide_containment_with(&schema, &q1, &q2, &EngineConfig::serial()).unwrap();
    let par = decide_containment_with(&schema, &q1, &q2, &forced_parallel(64)).unwrap();
    assert_eq!(serial, par);
}

//! Differential tests for the parallel branch engine: under any
//! [`EngineConfig`] the containment certificate — witness list, witness
//! order, and failing branch — must be byte-identical to the serial
//! engine's, and the full Theorem 3.1 enumeration must agree with the
//! corollary fast paths wherever both apply.

use oocq::gen::{random_schema, random_terminal_positive, QueryParams, Rng, SchemaParams, StdRng};
use oocq::{
    contains_terminal_full_with, contains_terminal_with, decide_containment_with,
    expand_satisfiable_with, normalize, union_contains_with, Atom, Containment, Engine,
    EngineConfig, Query, QueryBuilder, Schema, SearchOrder, Term, UnionQuery,
};

fn test_schema(seed: u64) -> Schema {
    match seed % 4 {
        0 => oocq::samples::vehicle_rental(),
        1 => oocq::samples::n1_partition(),
        2 => oocq::samples::example_31(),
        _ => random_schema(
            &mut StdRng::seed_from_u64(seed),
            &SchemaParams {
                roots: 2,
                branching: 2,
                object_attrs: 2,
                set_attrs: 1,
                refine_prob: 0.4,
            },
        ),
    }
}

/// Append random inequality / non-membership atoms so that `strategy_for`
/// selects the branchier corollaries (and, with both kinds, Theorem 3.1
/// itself).
fn add_negative_atoms(rng: &mut impl Rng, schema: &Schema, q: &Query, count: usize) -> Query {
    let mut extra = Vec::new();
    let vars: Vec<_> = q.vars().collect();
    for _ in 0..count {
        let i = vars[rng.gen_range(0..vars.len())];
        let j = vars[rng.gen_range(0..vars.len())];
        if rng.gen_bool(0.5) {
            if i != j {
                extra.push(Atom::Neq(Term::Var(i), Term::Var(j)));
            }
        } else if let Some([cls]) = q.range_of(j) {
            let set_attrs: Vec<_> = schema
                .effective_type(*cls)
                .iter()
                .filter(|(_, t)| t.is_set())
                .map(|(&a, _)| a)
                .collect();
            if !set_attrs.is_empty() {
                let a = set_attrs[rng.gen_range(0..set_attrs.len())];
                extra.push(Atom::NonMember(i, j, a));
            }
        }
    }
    q.with_extra_atoms(extra)
}

/// A parallel configuration that forces the threaded path even for tiny
/// branch spaces (so every test case exercises the worker pool).
fn forced_parallel(threads: usize) -> EngineConfig {
    EngineConfig {
        threads,
        min_parallel_branches: 1,
        ..EngineConfig::serial()
    }
}

/// The full certificate — every witness mapping, their order, and the
/// failing augmentation on refusal — is identical under serial and
/// parallel configurations, across random general terminal queries that
/// exercise all four strategies.
#[test]
fn parallel_certificates_match_serial() {
    for seed in 0..96u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb57a);
        let p = QueryParams { vars: 3, atoms: 4 };
        let base1 = random_terminal_positive(&mut rng, &schema, &p);
        let base2 = random_terminal_positive(&mut rng, &schema, &p);
        // Vary the negative-atom mix so q2 hits Positive, InequalityFree,
        // MembershipFree, and Full across the sweep.
        let q1 = add_negative_atoms(&mut rng, &schema, &base1, (seed % 3) as usize);
        let q2 = add_negative_atoms(&mut rng, &schema, &base2, (seed % 4) as usize);
        let serial = decide_containment_with(&schema, &q1, &q2, &EngineConfig::serial()).unwrap();
        for threads in [2, 4, 8] {
            let par =
                decide_containment_with(&schema, &q1, &q2, &forced_parallel(threads)).unwrap();
            assert_eq!(
                serial,
                par,
                "seed {seed}, {threads} threads: certificates diverge for\n  q1 = {}\n  q2 = {}",
                q1.display(&schema),
                q2.display(&schema)
            );
        }
    }
}

/// The full Theorem 3.1 enumeration (all S × W branches) agrees with the
/// strategy-selected fast path (Corollaries 3.2–3.4 where applicable) on
/// every random pair, serial and parallel alike.
#[test]
fn full_enumeration_agrees_with_fast_paths() {
    for seed in 0..64u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa57);
        let p = QueryParams { vars: 3, atoms: 3 };
        let base1 = random_terminal_positive(&mut rng, &schema, &p);
        let base2 = random_terminal_positive(&mut rng, &schema, &p);
        let q1 = add_negative_atoms(&mut rng, &schema, &base1, 1);
        let q2 = add_negative_atoms(&mut rng, &schema, &base2, (seed % 3) as usize);
        let fast = contains_terminal_with(&schema, &q1, &q2, &EngineConfig::serial()).unwrap();
        let full_serial =
            contains_terminal_full_with(&schema, &q1, &q2, &EngineConfig::serial()).unwrap();
        let full_par = contains_terminal_full_with(&schema, &q1, &q2, &forced_parallel(4)).unwrap();
        assert_eq!(
            fast,
            full_serial,
            "seed {seed}: corollary fast path disagrees with full enumeration for\n  q1 = {}\n  q2 = {}",
            q1.display(&schema),
            q2.display(&schema)
        );
        assert_eq!(
            full_serial, full_par,
            "seed {seed}: full enumeration not deterministic"
        );
    }
}

/// Theorem 4.1 union containment is configuration-independent: the pairwise
/// sweep reaches the same verdict serial and parallel.
#[test]
fn union_containment_matches_serial() {
    for seed in 0..48u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0114);
        let p = QueryParams { vars: 3, atoms: 3 };
        let m = UnionQuery::new(
            (0..3)
                .map(|_| random_terminal_positive(&mut rng, &schema, &p))
                .collect(),
        );
        let n = UnionQuery::new(
            (0..3)
                .map(|_| random_terminal_positive(&mut rng, &schema, &p))
                .collect(),
        );
        let serial = union_contains_with(&schema, &m, &n, &EngineConfig::serial()).unwrap();
        let par = union_contains_with(&schema, &m, &n, &forced_parallel(4)).unwrap();
        assert_eq!(serial, par, "seed {seed}");
    }
}

/// Proposition 2.1 expansion filtering keeps the same subqueries in the
/// same order under any configuration.
#[test]
fn satisfiable_expansion_matches_serial() {
    for seed in 0..48u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xe4a);
        let q = oocq::gen::random_positive(&mut rng, &schema, &QueryParams { vars: 3, atoms: 3 });
        let n = normalize(&q, &schema).unwrap();
        let serial = expand_satisfiable_with(&schema, &n, &EngineConfig::serial()).unwrap();
        let par = expand_satisfiable_with(&schema, &n, &forced_parallel(4)).unwrap();
        assert_eq!(serial, par, "seed {seed}");
    }
}

/// The decision-relevant part of a certificate: the verdict plus the
/// sequence of augmentations it speaks about. Witness *assignments* may
/// legitimately differ between homomorphism search orders (any
/// non-contradictory mapping certifies a branch), but the verdict, the
/// branch walk, and on failure the first refuting augmentation are fixed
/// by Theorem 3.1 alone.
fn certificate_shape(c: &Containment) -> (bool, Vec<Vec<Atom>>) {
    match c {
        Containment::HoldsVacuously(_) => (true, Vec::new()),
        Containment::Holds(ws) => (true, ws.iter().map(|w| w.augmentation.clone()).collect()),
        Containment::FailsRightUnsatisfiable(_) => (false, Vec::new()),
        Containment::Fails { augmentation } => (false, vec![augmentation.clone()]),
    }
}

/// Homomorphism search order and sub-lattice pruning are decision-neutral:
/// across a seed sweep hitting all four strategies, every variant config —
/// static order, scrambled order, pruning off, and both at once — reaches
/// the same verdict over the same augmentation sequence as the default
/// most-constrained-first pruned engine.
#[test]
fn search_order_and_pruning_preserve_certificate_shapes() {
    for seed in 0..96u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb57a);
        let p = QueryParams { vars: 3, atoms: 4 };
        let base1 = random_terminal_positive(&mut rng, &schema, &p);
        let base2 = random_terminal_positive(&mut rng, &schema, &p);
        let q1 = add_negative_atoms(&mut rng, &schema, &base1, (seed % 3) as usize);
        let q2 = add_negative_atoms(&mut rng, &schema, &base2, (seed % 4) as usize);
        let reference =
            decide_containment_with(&schema, &q1, &q2, &EngineConfig::serial()).unwrap();
        let want = certificate_shape(&reference);
        let variants = [
            EngineConfig::serial().with_search_order(SearchOrder::Static),
            EngineConfig::serial().with_search_order(SearchOrder::Scrambled(
                seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            )),
            EngineConfig::serial().without_pruning(),
            EngineConfig::serial()
                .without_pruning()
                .with_search_order(SearchOrder::Static),
        ];
        for (k, cfg) in variants.iter().enumerate() {
            let got = decide_containment_with(&schema, &q1, &q2, cfg).unwrap();
            assert_eq!(
                want,
                certificate_shape(&got),
                "seed {seed}, variant {k}: decision drifts for\n  q1 = {}\n  q2 = {}",
                q1.display(&schema),
                q2.display(&schema)
            );
        }
    }
}

/// A block the pruner collapses wholesale: `Q₁` pins `u ∉ y.A`, so `Q₂`'s
/// non-membership maps to `u` with no danger bits and the empty-`W` witness
/// certifies every one of the 2^10 membership subsets. The verdict and the
/// full certificate must match the unpruned engine while the stats show the
/// walk never happened.
#[test]
fn pruning_collapses_dominated_subsets_without_changing_the_certificate() {
    let schema = oocq::samples::example_33();
    let t1 = schema.class_id("T1").unwrap();
    let t2 = schema.class_id("T2").unwrap();
    let a = schema.attr_id("A").unwrap();
    const FLOATERS: usize = 10;

    let mut b = QueryBuilder::new("x0");
    let x0 = b.free();
    b.range(x0, [t1]);
    let u = b.var("u");
    let y = b.var("y");
    b.range(u, [t1]).range(y, [t2]);
    b.member(x0, y, a);
    b.non_member(u, y, a);
    for i in 1..=FLOATERS {
        let zi = b.var(&format!("z{i}"));
        b.range(zi, [t1]);
    }
    let q1 = b.build();

    let mut b = QueryBuilder::new("x");
    let x = b.free();
    let u2 = b.var("u");
    let y2 = b.var("y");
    b.range(x, [t1]).range(u2, [t1]).range(y2, [t2]);
    b.non_member(u2, y2, a);
    let q2 = b.build();

    let run = |cfg: EngineConfig| {
        let engine = Engine::new(cfg);
        let ps = engine.prepare_schema(&schema);
        let p1 = engine.prepare(&ps, &q1);
        let p2 = engine.prepare(&ps, &q2);
        let proof = engine.decide(&p1, &p2).unwrap();
        (proof, p1.stats().branch_stats)
    };

    let (pruned, pstats) = run(EngineConfig::serial());
    let (unpruned, ustats) = run(EngineConfig::serial().without_pruning());
    assert!(pruned.holds());
    assert_eq!(pruned, unpruned, "pruning altered the certificate");

    let total = 1u64 << FLOATERS;
    assert_eq!(pstats.branches_planned, total);
    assert_eq!(ustats.branches_planned, total);
    assert_eq!(
        ustats.branches_evaluated, total,
        "baseline walks everything"
    );
    assert_eq!(ustats.branches_skipped, 0);
    assert_eq!(
        pstats.branches_evaluated, 1,
        "one evaluation should certify the whole block: {pstats:?}"
    );
    assert_eq!(pstats.branches_skipped, total - 1);
    assert!(pstats.mapping_searches >= 1);
    assert!(
        pstats.mapping_searches < ustats.mapping_searches,
        "pruned engine should run far fewer homomorphism searches \
         ({} vs {})",
        pstats.mapping_searches,
        ustats.mapping_searches
    );
}

/// `OOCQ_THREADS`-style configs with absurd thread counts still terminate
/// and agree (workers are clamped to the branch count).
#[test]
fn oversubscribed_thread_count_is_safe() {
    let schema = oocq::samples::example_31();
    let mut rng = StdRng::seed_from_u64(99);
    let p = QueryParams { vars: 3, atoms: 4 };
    let q1 = random_terminal_positive(&mut rng, &schema, &p);
    let q2 = random_terminal_positive(&mut rng, &schema, &p);
    let serial = decide_containment_with(&schema, &q1, &q2, &EngineConfig::serial()).unwrap();
    let par = decide_containment_with(&schema, &q1, &q2, &forced_parallel(64)).unwrap();
    assert_eq!(serial, par);
}

/// The `OOCQ_PRUNE=0` exhaustive walk honors work budgets and deadlines
/// through exactly the same mechanism as the pruned walk — a recoverable
/// `timeout` error, never a hang — with the same precedence pinned on both
/// paths: a refutation found before exhaustion is conclusive (`Fails`
/// outranks the tripped budget), while a `Holds` claim is only valid for a
/// complete walk, so there the budget error wins.
#[test]
fn budgets_and_deadlines_bind_pruned_and_exhaustive_walks_identically() {
    use oocq::Budget;
    use std::time::Duration;

    let schema = oocq::samples::example_33();
    let t1 = schema.class_id("T1").unwrap();
    let t2 = schema.class_id("T2").unwrap();
    let a = schema.attr_id("A").unwrap();
    const FLOATERS: usize = 10;

    // Q1: the 2^10-branch floater workload of the pruning test.
    let mut b = QueryBuilder::new("x0");
    let x0 = b.free();
    b.range(x0, [t1]);
    let u = b.var("u");
    let y = b.var("y");
    b.range(u, [t1]).range(y, [t2]);
    b.member(x0, y, a);
    b.non_member(u, y, a);
    for i in 1..=FLOATERS {
        let zi = b.var(&format!("z{i}"));
        b.range(zi, [t1]);
    }
    let q1 = b.build();

    // Q2 (holds): certified on every branch, so the verdict needs the whole
    // walk — the workload a budget must be able to interrupt.
    let mut b = QueryBuilder::new("x");
    let x = b.free();
    let u2 = b.var("u");
    let y2 = b.var("y");
    b.range(x, [t1]).range(u2, [t1]).range(y2, [t2]);
    b.non_member(u2, y2, a);
    let q2_holds = b.build();

    // Q2 (fails): same strategy tier as the holds workload (positive with a
    // non-membership, so the identical 2^10 W-space is planned), but its
    // free variable ranges over T2 while Q1's ranges over T1 — no branch
    // admits a mapping, so the very first one refutes and the rest of the
    // space is moot.
    let mut b = QueryBuilder::new("x");
    let x = b.free();
    let u3 = b.var("u");
    let y3 = b.var("y");
    b.range(x, [t2]).range(u3, [t1]).range(y3, [t2]);
    b.non_member(u3, y3, a);
    let q2_fails = b.build();

    let pruned = |budget: Budget| EngineConfig::serial().with_budget(budget);
    let exhaustive = |budget: Budget| EngineConfig::serial().without_pruning().with_budget(budget);

    // Unlimited: identical certificates on both workloads (baseline).
    for q2 in [&q2_holds, &q2_fails] {
        let p = decide_containment_with(&schema, &q1, q2, &pruned(Budget::unlimited())).unwrap();
        let e =
            decide_containment_with(&schema, &q1, q2, &exhaustive(Budget::unlimited())).unwrap();
        assert_eq!(p, e, "certificates drift without budgets");
    }
    let reference =
        decide_containment_with(&schema, &q1, &q2_fails, &pruned(Budget::unlimited())).unwrap();
    assert!(!reference.holds());

    // A one-unit work limit: both walks trip the identical recoverable
    // timeout on the holds workload.
    for cfg in [
        pruned(Budget::with_limit(1)),
        exhaustive(Budget::with_limit(1)),
    ] {
        let err = decide_containment_with(&schema, &q1, &q2_holds, &cfg).unwrap_err();
        assert!(
            err.to_string().starts_with("timeout"),
            "expected a recoverable timeout, got: {err}"
        );
    }

    // A mid-size limit, far below the exhaustive holds-walk (which charges
    // at least one unit per 2^10 branches) but enough to reach the first
    // branch's refutation: the exhaustive walk still trips on the holds
    // workload at this limit...
    const MID: u64 = 512;
    let err = decide_containment_with(
        &schema,
        &q1,
        &q2_holds,
        &exhaustive(Budget::with_limit(MID)),
    )
    .unwrap_err();
    assert!(err.to_string().starts_with("timeout"), "got: {err}");
    // ...while on the refuted workload BOTH walks return the conclusive
    // `Fails` certificate under the very same limit: refutation outranks
    // budget exhaustion on the pruned and exhaustive paths alike.
    for cfg in [
        pruned(Budget::with_limit(MID)),
        exhaustive(Budget::with_limit(MID)),
    ] {
        let got = decide_containment_with(&schema, &q1, &q2_fails, &cfg).unwrap();
        assert_eq!(got, reference, "refutation must outrank the budget trip");
    }

    // An already-expired deadline: every combination trips the same
    // recoverable timeout before concluding anything.
    for q2 in [&q2_holds, &q2_fails] {
        for cfg in [
            pruned(Budget::with_deadline(Duration::ZERO)),
            exhaustive(Budget::with_deadline(Duration::ZERO)),
        ] {
            let err = decide_containment_with(&schema, &q1, q2, &cfg).unwrap_err();
            assert!(err.to_string().starts_with("timeout"), "got: {err}");
        }
    }
}

//! Error-reporting quality of the parsers: every diagnostic carries the
//! right position and names the offending construct.

use oocq::{parse_program, parse_query, parse_schema, parse_union};

fn schema() -> oocq::Schema {
    parse_schema("class C { A: C; S: {C}; } class D : C {}").unwrap()
}

#[test]
fn schema_error_positions() {
    // Unknown parent on line 2.
    let err = parse_schema("class A {}\nclass B : Nope {}").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.message.contains("Nope"));

    // Bad token inside a class body.
    let err = parse_schema("class A { 5: B; }").unwrap_err();
    assert_eq!(err.line, 1);
    assert!(err.message.contains("unexpected character"));

    // Missing braces.
    let err = parse_schema("class A").unwrap_err();
    assert!(err.message.contains("expected"));
}

#[test]
fn query_error_positions() {
    let s = schema();
    // Undeclared variable on line 2.
    let err = parse_query(&s, "{ x | x in C\n  & x = zz }").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.message.contains("undeclared variable `zz`"));

    // Unknown class.
    let err = parse_query(&s, "{ x | x in Unknown }").unwrap_err();
    assert!(err.message.contains("unknown class `Unknown`"));

    // Unknown attribute in a path.
    let err = parse_query(&s, "{ x | exists y: x in C & y = x.Bogus }").unwrap_err();
    assert!(err.message.contains("unknown attribute `Bogus`"));

    // Operator soup.
    let err = parse_query(&s, "{ x | x ~ y }").unwrap_err();
    assert!(err.message.contains("unexpected character `~`"));

    // `not` without `in`.
    let err = parse_query(&s, "{ x | exists y: x not y }").unwrap_err();
    assert!(err.message.contains("expected `in` after `not`"));
}

#[test]
fn union_error_positions() {
    let s = schema();
    let err = parse_union(&s, "{ x | x in C } union { y | y in Nope }").unwrap_err();
    assert!(err.message.contains("unknown class"));
    // Garbage between members.
    let err = parse_union(&s, "{ x | x in C } onion { x | x in C }").unwrap_err();
    assert!(err.message.contains("end of input") || err.message.contains("expected"));
}

#[test]
fn program_error_positions() {
    // Commands referencing queries defined later are still unknown at use.
    let err =
        parse_program("schema { class C {} }\ncheck Q <= Q\nquery Q = { x | x in C }").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.message.contains("unknown query `Q`"));

    // Wrong operator in a check.
    let err =
        parse_program("schema { class C {} } query Q = { x | x in C } check Q != Q").unwrap_err();
    assert!(err.message.contains("expected `<=`"));
}

#[test]
fn display_of_errors_is_position_prefixed() {
    let err = parse_schema("class A : Nope {}").unwrap_err();
    let text = err.to_string();
    assert!(text.starts_with("1:"), "got {text}");
}

#[test]
fn deeply_nested_but_valid_inputs_parse() {
    let s = schema();
    // A long conjunction with every atom family and path sugar.
    let q = parse_query(
        &s,
        "{ x | exists y, z: x in C | D & y in C & z in C \
           & y = x.A & z != x.A.A & z in y.S & z not in x.A.S & x not in D }",
    )
    .unwrap();
    assert!(q.var_count() >= 3);
    // Round trip of the desugared form.
    let text = q.display(&s).to_string();
    assert_eq!(parse_query(&s, &text).unwrap(), q);
}

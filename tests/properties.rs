//! Randomized validation of the algorithms against independent oracles: the
//! canonical-state ("frozen query") characterization for positive
//! containment, and brute-force evaluation over random legal states for
//! everything else. Every proof the extended abstract omits is exercised
//! here semantically.
//!
//! Each test sweeps a deterministic seed range, so failures reproduce by
//! seed without a shrinker dependency; the helper panics name the seed.

use oocq::gen::{
    random_positive, random_state, random_terminal_positive, state_family, QueryParams, Rng,
    SchemaParams, StateParams, StdRng,
};
use oocq::{
    answer, answer_union, canonical_contains, contains_terminal, cost_leq, expand,
    is_minimal_terminal_positive, is_satisfiable, minimize_positive, minimize_terminal_positive,
    nonredundant_union, normalize, parse_query, refute_containment, union_cost, union_equivalent,
    Atom, Query, QueryBuilder, Schema, UnionQuery,
};

fn test_schema(seed: u64) -> Schema {
    // Rotate through the sample schemas plus a random one.
    match seed % 4 {
        0 => oocq::samples::vehicle_rental(),
        1 => oocq::samples::n1_partition(),
        2 => oocq::samples::example_31(),
        _ => oocq::gen::random_schema(
            &mut StdRng::seed_from_u64(seed),
            &SchemaParams {
                roots: 2,
                branching: 2,
                object_attrs: 2,
                set_attrs: 1,
                refine_prob: 0.4,
            },
        ),
    }
}

/// Append random negative atoms (inequalities / non-memberships) to a
/// terminal positive query, producing a general terminal query.
fn add_negative_atoms(rng: &mut impl Rng, schema: &Schema, q: &Query, count: usize) -> Query {
    let mut extra = Vec::new();
    let vars: Vec<_> = q.vars().collect();
    for _ in 0..count {
        let i = vars[rng.gen_range(0..vars.len())];
        let j = vars[rng.gen_range(0..vars.len())];
        if rng.gen_bool(0.6) {
            if i != j {
                extra.push(Atom::Neq(oocq::Term::Var(i), oocq::Term::Var(j)));
            }
        } else if let Some([cls]) = q.range_of(j) {
            // Only set-typed attributes of j's class keep the query
            // well-formed (an object-typed attribute on the right of `∉`
            // would make the term mixed).
            let set_attrs: Vec<_> = schema
                .effective_type(*cls)
                .iter()
                .filter(|(_, t)| t.is_set())
                .map(|(&a, _)| a)
                .collect();
            if !set_attrs.is_empty() {
                let a = set_attrs[rng.gen_range(0..set_attrs.len())];
                extra.push(Atom::NonMember(i, j, a));
            }
        }
    }
    q.with_extra_atoms(extra)
}

/// Corollary 3.4 agrees exactly with the canonical-state oracle for pairs of
/// terminal positive queries.
#[test]
fn containment_matches_canonical_oracle() {
    for seed in 0..64u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let p = QueryParams { vars: 3, atoms: 4 };
        let q1 = random_terminal_positive(&mut rng, &schema, &p);
        let q2 = random_terminal_positive(&mut rng, &schema, &p);
        let algo = contains_terminal(&schema, &q1, &q2).unwrap();
        match canonical_contains(&schema, &q1, &q2) {
            Some(oracle) => assert_eq!(algo, oracle, "seed {seed}"),
            // No canonical state: q1 unsatisfiable, contained in anything.
            None => assert!(algo, "seed {seed}"),
        }
    }
}

/// Containment verdicts are never refuted by evaluation on random states,
/// including for queries with negative atoms (Theorem 3.1). The sweep
/// routes through the soundness oracle (`oocq-oracle`) — the repo's single
/// cross-check implementation — which strengthens the original ad-hoc spot
/// check: claimed containments are attacked on random states *and* claimed
/// refutations must be confirmed by a concrete witness state.
#[test]
fn containment_never_refuted_by_evaluation() {
    use oocq::oracle::{Oracle, OracleConfig, Outcome};
    let mut oracle = Oracle::new(OracleConfig::default());
    for seed in 0..64u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let p = QueryParams { vars: 3, atoms: 3 };
        let base1 = random_terminal_positive(&mut rng, &schema, &p);
        let base2 = random_terminal_positive(&mut rng, &schema, &p);
        let q1 = add_negative_atoms(&mut rng, &schema, &base1, 2);
        let q2 = add_negative_atoms(&mut rng, &schema, &base2, 2);
        match oracle.check_pair(&schema, &q1, &q2, &mut rng) {
            Outcome::Violation(v) => panic!("seed {seed}: {v}"),
            Outcome::EngineError(e) => panic!("seed {seed}: engine error {e}"),
            _ => {}
        }
    }
    let st = oracle.stats();
    assert_eq!(st.violations, 0);
    assert!(
        st.refuted > 0 && st.holds_unrefuted > 0,
        "sweep must exercise both verdicts: {st}"
    );
}

/// Regression pin for the ad-hoc `refute_containment` spot check the
/// oracle sweep above replaced: the direct brute-force call still reports
/// no counterexample for engine-certified containments over the original
/// seed range and state shapes.
#[test]
fn refute_containment_agrees_with_certified_containments() {
    for seed in 0..16u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let p = QueryParams { vars: 3, atoms: 3 };
        let base1 = random_terminal_positive(&mut rng, &schema, &p);
        let base2 = random_terminal_positive(&mut rng, &schema, &p);
        let q1 = add_negative_atoms(&mut rng, &schema, &base1, 2);
        let q2 = add_negative_atoms(&mut rng, &schema, &base2, 2);
        if contains_terminal(&schema, &q1, &q2).unwrap() {
            let states = state_family(
                &mut rng,
                &schema,
                4,
                &StateParams {
                    objects: 10,
                    fill_prob: 0.7,
                    max_set: 3,
                },
            );
            let ce = refute_containment(
                &schema,
                &states,
                &UnionQuery::single(q1),
                &UnionQuery::single(q2),
            );
            assert!(
                ce.is_none(),
                "seed {seed}: algorithmic ⊆ refuted by state {ce:?}"
            );
        }
    }
}

/// Minimization preserves answers on random states and never increases the
/// search-space cost.
#[test]
fn minimization_preserves_semantics() {
    for seed in 0..64u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let q = random_positive(&mut rng, &schema, &QueryParams { vars: 3, atoms: 4 });
        let m = minimize_positive(&schema, &q).unwrap();
        // The minimized union never costs more than the satisfiable terminal
        // expansion it is derived from (dropping subqueries and folding
        // variables only removes occurrences). Note the cost CAN be
        // incomparable with the unexpanded original — Example 4.1's result
        // mentions T2 twice while the original mentions it once.
        let expanded = oocq::expand_satisfiable(&schema, &normalize(&q, &schema).unwrap()).unwrap();
        assert!(
            cost_leq(&union_cost(&schema, &m), &union_cost(&schema, &expanded)),
            "seed {seed}"
        );
        // Answers agree on random states.
        for _ in 0..3 {
            let st = random_state(
                &mut rng,
                &schema,
                &StateParams {
                    objects: 12,
                    fill_prob: 0.75,
                    max_set: 3,
                },
            );
            assert_eq!(
                answer(&schema, &st, &q),
                answer_union(&schema, &st, &m),
                "seed {seed}"
            );
        }
        // Every piece is minimal, and the union is nonredundant.
        for sub in &m {
            assert!(
                is_minimal_terminal_positive(&schema, sub).unwrap(),
                "seed {seed}"
            );
        }
        assert_eq!(
            nonredundant_union(&schema, &m).unwrap().len(),
            m.len(),
            "seed {seed}"
        );
    }
}

/// Proposition 2.1: expansion preserves answers on random states.
#[test]
fn expansion_preserves_semantics() {
    for seed in 0..64u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let q = random_positive(&mut rng, &schema, &QueryParams { vars: 3, atoms: 3 });
        let u = expand(&schema, &q).unwrap();
        for _ in 0..3 {
            let st = random_state(
                &mut rng,
                &schema,
                &StateParams {
                    objects: 10,
                    fill_prob: 0.8,
                    max_set: 3,
                },
            );
            assert_eq!(
                answer(&schema, &st, &q),
                answer_union(&schema, &st, &u),
                "seed {seed}"
            );
        }
    }
}

/// Satisfiability soundness both ways: unsat ⇒ empty answers everywhere;
/// sat (terminal positive) ⇒ the canonical state is a witness.
#[test]
fn satisfiability_is_sound_and_witnessed() {
    for seed in 0..64u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x55aa);
        let q = random_terminal_positive(&mut rng, &schema, &QueryParams { vars: 3, atoms: 4 });
        if is_satisfiable(&schema, &q).unwrap() {
            let (st, free_obj) = oocq::canonical_state(&schema, &q)
                .expect("satisfiable terminal positive query freezes");
            assert!(answer(&schema, &st, &q).contains(&free_obj), "seed {seed}");
        } else {
            for _ in 0..3 {
                let st = random_state(
                    &mut rng,
                    &schema,
                    &StateParams {
                        objects: 12,
                        fill_prob: 0.9,
                        max_set: 4,
                    },
                );
                assert!(answer(&schema, &st, &q).is_empty(), "seed {seed}");
            }
        }
    }
}

/// Display/parse round trip on random (possibly non-terminal) queries.
#[test]
fn display_parse_round_trip() {
    for seed in 0..64u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
        let base = random_positive(&mut rng, &schema, &QueryParams { vars: 4, atoms: 5 });
        let q = add_negative_atoms(&mut rng, &schema, &base, 2);
        let text = q.display(&schema).to_string();
        let parsed = parse_query(&schema, &text).unwrap();
        assert_eq!(parsed, q, "seed {seed}: round trip failed for {text}");
    }
}

/// Theorem 4.3: folding through any found self-mapping preserves
/// equivalence — checked by evaluation.
#[test]
fn folding_preserves_equivalence() {
    for seed in 0..64u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf00d);
        let q = random_terminal_positive(&mut rng, &schema, &QueryParams { vars: 4, atoms: 5 });
        if !is_satisfiable(&schema, &q).unwrap() {
            continue;
        }
        let m = minimize_terminal_positive(&schema, &q).unwrap();
        assert!(
            oocq::equivalent_terminal(&schema, &q, &m).unwrap(),
            "seed {seed}"
        );
        for _ in 0..2 {
            let st = random_state(
                &mut rng,
                &schema,
                &StateParams {
                    objects: 10,
                    fill_prob: 0.8,
                    max_set: 3,
                },
            );
            assert_eq!(
                answer(&schema, &st, &q),
                answer(&schema, &st, &m),
                "seed {seed}"
            );
        }
    }
}

/// Theorem 4.5 corollary: equivalent minimal terminal positive queries have
/// the same number of variables (non-contradictory mappings between them are
/// bijections).
#[test]
fn minimal_equivalents_have_equal_size() {
    for seed in 0..64u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x42);
        let q = random_terminal_positive(&mut rng, &schema, &QueryParams { vars: 4, atoms: 5 });
        if !is_satisfiable(&schema, &q).unwrap() {
            continue;
        }
        // Two minimizations reached from syntactically different but
        // equivalent starting points (q and q with a cloned redundant var).
        let m1 = minimize_terminal_positive(&schema, &q).unwrap();
        let padded = {
            // Clone the free variable into a fresh equated variable.
            let mut b = QueryBuilder::new(q.var_name(q.free_var()));
            let mut ids = Vec::new();
            for v in q.vars() {
                if v == q.free_var() {
                    ids.push(b.free());
                } else {
                    ids.push(b.var(q.var_name(v)));
                }
            }
            for atom in q.atoms() {
                b.atom(atom.map_vars(|v| ids[v.index()]));
            }
            let clone = b.var("_clone");
            let fc = q.terminal_class_of(q.free_var()).unwrap();
            b.range(clone, [fc]);
            b.eq_vars(ids[q.free_var().index()], clone);
            b.build()
        };
        let m2 = minimize_terminal_positive(&schema, &padded).unwrap();
        assert!(
            oocq::equivalent_terminal(&schema, &m1, &m2).unwrap(),
            "seed {seed}"
        );
        assert_eq!(m1.var_count(), m2.var_count(), "seed {seed}");
        // Theorem 4.5: every non-contradictory mapping between equivalent
        // minimal queries is a bijection — the results are isomorphic.
        assert!(
            oocq::isomorphic(&m1, &m2),
            "seed {seed}: not isomorphic:\n  {m1:?}\n  {m2:?}"
        );
    }
}

/// Theorem 4.2: the nonredundant union is canonical — reversing the input
/// order yields an equivalent union of the same length.
#[test]
fn nonredundant_union_is_canonical() {
    for seed in 0..48u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7777);
        let p = QueryParams { vars: 3, atoms: 3 };
        let qs: Vec<Query> = (0..4)
            .map(|_| random_terminal_positive(&mut rng, &schema, &p))
            .collect();
        let fwd = UnionQuery::new(qs.clone());
        let rev = UnionQuery::new(qs.into_iter().rev().collect());
        let nf = nonredundant_union(&schema, &fwd).unwrap();
        let nr = nonredundant_union(&schema, &rev).unwrap();
        assert_eq!(nf.len(), nr.len(), "seed {seed}");
        assert!(union_equivalent(&schema, &nf, &nr).unwrap(), "seed {seed}");
    }
}

/// The general-query minimizer (§5 extension) preserves answers on random
/// states, including with negative atoms.
#[test]
fn general_minimizer_preserves_semantics() {
    for seed in 0..48u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6e6e);
        let base = random_terminal_positive(&mut rng, &schema, &QueryParams { vars: 3, atoms: 3 });
        let q = add_negative_atoms(&mut rng, &schema, &base, 2);
        let m = oocq::minimize_general(&schema, &q).unwrap();
        for _ in 0..3 {
            let st = random_state(
                &mut rng,
                &schema,
                &StateParams {
                    objects: 12,
                    fill_prob: 0.8,
                    max_set: 3,
                },
            );
            assert_eq!(
                answer(&schema, &st, &q),
                answer_union(&schema, &st, &m),
                "seed {seed}: general minimization changed answers for {}",
                q.display(&schema)
            );
        }
    }
}

/// The planned evaluator agrees exactly with the naive evaluator, including
/// on queries with negative atoms and null-heavy states.
#[test]
fn planned_evaluator_matches_naive() {
    for seed in 0..64u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd1ce);
        let base = random_terminal_positive(&mut rng, &schema, &QueryParams { vars: 3, atoms: 4 });
        let q = add_negative_atoms(&mut rng, &schema, &base, 2);
        for fill in [0.3, 0.9] {
            let st = random_state(
                &mut rng,
                &schema,
                &StateParams {
                    objects: 14,
                    fill_prob: fill,
                    max_set: 3,
                },
            );
            assert_eq!(
                oocq::answer_planned(&schema, &st, &q),
                answer(&schema, &st, &q),
                "seed {seed}"
            );
        }
    }
}

/// Normalization (§2.3 repairs) preserves answers.
#[test]
fn normalization_preserves_semantics() {
    for seed in 0..48u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x31415);
        // Build a query with a missing range atom: y used only via x's
        // attribute equality.
        let q = random_positive(&mut rng, &schema, &QueryParams { vars: 3, atoms: 3 });
        let n = normalize(&q, &schema).unwrap();
        for _ in 0..2 {
            let st = random_state(
                &mut rng,
                &schema,
                &StateParams {
                    objects: 10,
                    fill_prob: 0.8,
                    max_set: 3,
                },
            );
            assert_eq!(
                answer(&schema, &st, &q),
                answer(&schema, &st, &n),
                "seed {seed}"
            );
        }
    }
}

/// The prepared [`oocq::Engine`] path returns verdicts identical to the
/// free-function path across the generator workloads: terminal and general
/// containment, equivalence, dispatch (including a non-terminal left side
/// against a terminal right), positive containment, minimization, and
/// satisfiable expansion.
#[test]
fn engine_path_matches_free_functions() {
    let engine = oocq::Engine::serial();
    for seed in 0..48u64 {
        let schema = test_schema(seed);
        let ps = engine.prepare_schema(&schema);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xe9e9);
        let p = QueryParams { vars: 3, atoms: 4 };
        let t1 = random_terminal_positive(&mut rng, &schema, &p);
        let t2 = random_terminal_positive(&mut rng, &schema, &p);
        let g1 = add_negative_atoms(&mut rng, &schema, &t1, 2);
        let g2 = add_negative_atoms(&mut rng, &schema, &t2, 2);
        let pos = random_positive(&mut rng, &schema, &QueryParams { vars: 3, atoms: 3 });

        let (pt1, pt2) = (engine.prepare(&ps, &t1), engine.prepare(&ps, &t2));
        let (pg1, pg2) = (engine.prepare(&ps, &g1), engine.prepare(&ps, &g2));
        let ppos = engine.prepare(&ps, &pos);

        assert_eq!(
            engine.contains(&pt1, &pt2).unwrap(),
            contains_terminal(&schema, &t1, &t2).unwrap(),
            "seed {seed}: terminal containment"
        );
        assert_eq!(
            engine.contains(&pg1, &pg2).unwrap(),
            contains_terminal(&schema, &g1, &g2).unwrap(),
            "seed {seed}: general containment"
        );
        assert_eq!(
            engine.equivalent(&pg1, &pg2).unwrap(),
            oocq::equivalent_terminal(&schema, &g1, &g2).unwrap(),
            "seed {seed}: equivalence"
        );
        assert_eq!(
            engine.contains_positive(&ppos, &pt2).unwrap(),
            oocq::contains_positive(&schema, &pos, &t2).unwrap(),
            "seed {seed}: positive containment"
        );
        assert_eq!(
            engine.dispatch(&ppos, &pt1).unwrap(),
            oocq::dispatch_containment(&schema, &pos, &t1).unwrap(),
            "seed {seed}: dispatch"
        );
        assert_eq!(
            engine.minimize(&ppos),
            minimize_positive(&schema, &pos),
            "seed {seed}: minimization"
        );
        assert_eq!(
            engine.expand_satisfiable(&ppos),
            oocq::expand_satisfiable(&schema, &pos),
            "seed {seed}: expansion"
        );
        assert_eq!(
            engine.satisfiability(&pt1),
            oocq::satisfiability(&schema, &t1),
            "seed {seed}: satisfiability"
        );
    }
}

/// Reusing one [`oocq::PreparedQuery`] across 100 repeated decisions is
/// observable: the shared decision cache answers every warm lookup, and the
/// handle's build counters show each artifact was derived at most once.
#[test]
fn prepared_reuse_is_observable_in_counters() {
    let schema = oocq::samples::vehicle_rental();
    let cache = std::sync::Arc::new(oocq::CanonicalDecisionCache::new(256));
    let engine = oocq::Engine::serial().with_cache(cache.clone());
    let ps = engine.prepare_schema(&schema);
    let q1 = parse_query(
        &schema,
        "{ x | exists y: x in Vehicle & y in Discount & x in y.VehRented }",
    )
    .unwrap();
    let q2 = parse_query(&schema, "{ x | x in Vehicle }").unwrap();
    let (p1, p2) = (engine.prepare(&ps, &q1), engine.prepare(&ps, &q2));
    let first = engine.dispatch(&p1, &p2).unwrap();
    let min_first = engine.minimize(&p1).unwrap();
    for _ in 0..99 {
        assert_eq!(engine.dispatch(&p1, &p2).unwrap(), first);
        assert_eq!(engine.minimize(&p1).unwrap(), min_first);
    }
    let st = cache.stats();
    assert!(st.contains_hits >= 99, "warm containment must hit: {st:?}");
    assert!(st.minimize_hits >= 99, "warm minimization must hit: {st:?}");
    for p in [&p1, &p2] {
        let s = p.stats();
        assert!(
            s.analysis_builds <= 1
                && s.classes_builds <= 1
                && s.satisfiability_builds <= 1
                && s.canonical_builds <= 1
                && s.branch_builds <= 1,
            "artifacts rebuilt across repeated decisions: {s:?}"
        );
        // Raw and normalized expansions are distinct memos.
        assert!(s.expansion_builds <= 2, "{s:?}");
    }
}

/// The workbench transcript runner agrees with the direct API: for a random
/// pair of queries rendered into a program, `check A <= B` reports exactly
/// what `contains_terminal` decides.
#[test]
fn workbench_matches_direct_api() {
    for seed in 0..32u64 {
        let schema = test_schema(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3333);
        let p = QueryParams { vars: 2, atoms: 2 };
        let qa = random_terminal_positive(&mut rng, &schema, &p);
        let qb = random_terminal_positive(&mut rng, &schema, &p);
        let program = format!(
            "schema {{\n{}}}\nquery A = {}\nquery B = {}\ncheck A <= B",
            schema,
            qa.display(&schema),
            qb.display(&schema),
        );
        let transcript = oocq::run_workbench(&program).unwrap();
        let direct = oocq::contains_terminal(&schema, &qa, &qb).unwrap();
        let expect = if direct {
            "check A <= B: holds"
        } else {
            "check A <= B: FAILS"
        };
        assert!(
            transcript.contains(expect),
            "seed {seed}: transcript {transcript:?} vs direct {direct} for program:\n{program}"
        );
    }
}

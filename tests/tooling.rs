//! Integration of the introspection tooling: Graphviz exports, schema and
//! state statistics, query displays, and the optimizer session — over
//! generated workloads rather than handcrafted fixtures.

use oocq::gen::StdRng;
use oocq::gen::{random_schema, random_state, workload_schema, SchemaParams, StateParams};
use oocq::{parse_schema, Optimizer, QueryBuilder};

#[test]
fn schema_dot_round_trips_through_generated_schemas() {
    let mut rng = StdRng::seed_from_u64(99);
    let s = random_schema(&mut rng, &SchemaParams::default());
    let dot = s.to_dot();
    // Every class appears exactly once as a node definition.
    for c in s.classes() {
        let needle = format!("\"{}\" [label=", s.class_name(c));
        assert_eq!(dot.matches(&needle).count(), 1);
    }
    // Edge count equals the number of declared parent links.
    let edges: usize = s.classes().map(|c| s.parents(c).len()).sum();
    assert_eq!(dot.matches(" -> ").count(), edges);
}

#[test]
fn schema_statistics_of_generated_schema() {
    let mut rng = StdRng::seed_from_u64(5);
    let p = SchemaParams {
        roots: 3,
        branching: 4,
        object_attrs: 1,
        set_attrs: 1,
        refine_prob: 0.0,
    };
    let s = random_schema(&mut rng, &p);
    let st = s.statistics();
    assert_eq!(st.roots, 3);
    assert_eq!(st.terminals, 12);
    assert_eq!(st.depth, 1);
    assert_eq!(st.max_fanout, 4);
    assert_eq!(st.declared_attrs, 6); // (1 obj + 1 set) per root
}

#[test]
fn state_statistics_and_dot_agree_on_edge_counts() {
    let s = workload_schema(2);
    let mut rng = StdRng::seed_from_u64(17);
    let st = random_state(
        &mut rng,
        &s,
        &StateParams {
            objects: 20,
            fill_prob: 0.7,
            max_set: 3,
        },
    );
    let stats = st.statistics(&s);
    assert_eq!(stats.objects, 20);
    let dot = st.to_dot(&s);
    // Solid edges = object attrs; dashed edges = set members.
    assert_eq!(dot.matches("style=dashed").count(), stats.set_members);
    let solid = dot.matches(" -> ").count() - stats.set_members;
    assert_eq!(solid, stats.object_attrs);
    // The textual dump mentions every object.
    let dump = st.display(&s).to_string();
    for o in st.oids() {
        assert!(dump.contains(&format!("{o}:")));
    }
}

#[test]
fn oocq_serve_answers_a_containment_request() {
    use std::io::Write as _;
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_oocq-serve"))
        .env("OOCQ_THREADS", "2")
        .env_remove("OOCQ_LISTEN")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn oocq-serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            b"stats off\n\
              ping\n\
              schema s class C {}\\nclass D : C {}\\nclass E : C {}\n\
              query s Q { x | x in D }\n\
              query s R { x | x in C }\n\
              contains s Q R\n\
              contains s R Q\n\
              quit\n",
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines,
        [
            "[0] ok stats off",
            "[1] ok pong",
            "[2] ok session s: 3 classes",
            "[3] ok query Q defined in session s",
            "[4] ok query R defined in session s",
            "[5] ok holds",
            "[6] ok FAILS",
            "[7] ok bye",
        ],
        "unexpected daemon transcript:\n{text}"
    );
}

/// `OOCQ_DEADLINE_MS` bounds a branch-explosion `contains` in wall time
/// (the check walks 2^19 membership branches unless the deadline trips),
/// and the same connection keeps answering afterwards. The inequality
/// chain keeps the candidates asymmetric so the decision cache's
/// canonical labeling stays cheap (see DESIGN.md §8).
#[test]
fn oocq_serve_honors_a_request_deadline_and_recovers() {
    use std::io::Write as _;
    use std::process::{Command, Stdio};

    let vars: Vec<String> = (1..=19).map(|i| format!("x{i}")).collect();
    let chain: String = vars
        .windows(2)
        .map(|w| format!(" & {} != {}", w[0], w[1]))
        .collect();
    let ranges: String = vars.iter().map(|v| format!(" & {v} in T1")).collect();
    let big = format!(
        "{{ x0 | exists {}, z, y: x0 in T1{ranges}{chain} & z in T1 & y in T2 & x0 in y.A & z not in y.A }}",
        vars.join(", "),
    );
    let input = format!(
        "stats off\n\
         schema s class T1 {{}} class T2 {{ A: {{T1}}; }}\n\
         query s Big {big}\n\
         query s R {{ x | exists u, y: x in T1 & u in T1 & y in T2 & u not in y.A }}\n\
         contains s Big R\n\
         ping\n\
         contains s R R\n\
         quit\n"
    );
    let start = std::time::Instant::now();
    let mut child = Command::new(env!("CARGO_BIN_EXE_oocq-serve"))
        .env("OOCQ_THREADS", "2")
        .env("OOCQ_DEADLINE_MS", "50")
        .env_remove("OOCQ_LISTEN")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn oocq-serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(
        start.elapsed() < std::time::Duration::from_secs(60),
        "deadline must bound wall time"
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines[4].starts_with("[4] err timeout"), "{text}");
    assert_eq!(lines[5], "[5] ok pong", "{text}");
    assert_eq!(lines[6], "[6] ok holds", "{text}");
    assert_eq!(lines[7], "[7] ok bye", "{text}");
}

/// A SIGKILL'd `oocq-serve` leaves a replayable verdict log behind: a
/// fresh process over the same `OOCQ_CACHE_DIR` answers the same
/// containment from the pre-warmed cache — zero decision recomputation —
/// and `stats show` reports the replay (DESIGN.md §13).
#[test]
fn oocq_serve_warm_restarts_from_the_persistent_cache() {
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::process::{Command, Stdio};

    let dir = std::env::temp_dir().join(format!("oocq-tooling-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    const SETUP: &str = "stats off\n\
          schema s class C {}\\nclass D : C {}\n\
          query s Q { x | x in D }\n\
          query s R { x | x in C }\n\
          contains s Q R\n";
    let spawn = || {
        Command::new(env!("CARGO_BIN_EXE_oocq-serve"))
            .env("OOCQ_THREADS", "2")
            .env("OOCQ_CACHE_DIR", &dir)
            .env_remove("OOCQ_LISTEN")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn oocq-serve")
    };

    // First lifetime: populate the verdict log, then die hard (SIGKILL, no
    // graceful shutdown) — exactly the crash the append-only format must
    // absorb. Killing only after the verdict line guarantees the append
    // has already been issued.
    let mut child = spawn();
    let mut stdin = child.stdin.take().unwrap();
    stdin.write_all(SETUP.as_bytes()).unwrap();
    stdin.flush().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let verdict = loop {
        let line = lines.next().expect("daemon closed stdout early").unwrap();
        if line.starts_with("[4]") {
            break line;
        }
    };
    assert_eq!(verdict, "[4] ok holds");
    child.kill().unwrap();
    let _ = child.wait();

    // Second lifetime over the same directory: the verdict is served from
    // the replayed log (hits, no misses) and the persistence counters say
    // so. `stats show` is only sent after the verdict line arrives —
    // decision requests run on the worker pool, so sending both up front
    // would let the stats snapshot race the in-flight decision.
    let mut child = spawn();
    let mut stdin = child.stdin.take().unwrap();
    stdin.write_all(SETUP.as_bytes()).unwrap();
    stdin.flush().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let verdict = loop {
        let line = lines.next().expect("daemon closed stdout early").unwrap();
        if line.starts_with("[4]") {
            break line;
        }
    };
    assert_eq!(verdict, "[4] ok holds");
    stdin.write_all(b"stats show\nquit\n").unwrap();
    stdin.flush().unwrap();
    let stats = lines.next().expect("no stats line").unwrap();
    assert!(
        stats.contains("contains_misses=0") && !stats.contains("contains_hits=0"),
        "restart recomputed instead of hitting: {stats}"
    );
    assert!(
        stats.contains("persist:") && !stats.contains("persist: off"),
        "persistence inactive on restart: {stats}"
    );
    assert!(
        !stats.contains("loaded=0"),
        "restart did not replay the verdict log: {stats}"
    );
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn optimizer_session_over_a_workload() {
    let s = parse_schema(
        "class Vehicle {} class Auto : Vehicle {} class Truck : Vehicle {}
         class Client { R: {Vehicle}; } class Discount : Client { R: {Auto}; }",
    )
    .unwrap();
    let mut opt = Optimizer::new(&s);
    // A workload of repeated queries: each distinct query minimized once.
    let make = |cls: &str| {
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id(cls).unwrap()]);
        b.range(y, [s.class_id("Discount").unwrap()]);
        b.member(x, y, s.attr_id("R").unwrap());
        b.build()
    };
    for _ in 0..5 {
        for cls in ["Vehicle", "Auto", "Truck"] {
            let q = make(cls);
            let m = opt.minimize(&q).unwrap();
            match cls {
                "Truck" => assert!(m.is_empty()), // unsatisfiable
                _ => assert_eq!(m.len(), 1),
            }
        }
    }
    let stats = opt.stats();
    assert_eq!(stats.minimize_misses, 3);
    assert_eq!(stats.minimize_hits, 12);
}

/// `oracle_fuzz` runs end to end in its small preset: the sweep completes
/// with no soundness violations, the confirmation gate passes, and the
/// stats report reaches stdout.
#[test]
fn oracle_fuzz_small_preset_passes() {
    use std::process::Command;
    let out = Command::new(env!("CARGO_BIN_EXE_oracle_fuzz"))
        .args(["--iterations", "small", "--seed", "7"])
        .output()
        .expect("oracle_fuzz must be spawnable");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "oracle_fuzz failed:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("pairs=32"), "{stdout}");
    assert!(stdout.contains("violations=0"), "{stdout}");
    assert!(stdout.trim_end().ends_with("oracle_fuzz: ok"), "{stdout}");
}

/// `bench_load` runs end to end in its quick preset: the reactor, the
/// legacy thread-per-connection loop, and the coalesced/uncoalesced
/// hot-key phases all complete over real sockets, the singleflight floor
/// holds, and the JSON report lands where asked.
#[test]
fn bench_load_quick_preset_passes() {
    use std::process::Command;
    let out_path =
        std::env::temp_dir().join(format!("bench_load_smoke_{}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_bench_load"))
        .arg(&out_path)
        .env("OOCQ_BENCH_QUICK", "1")
        .output()
        .expect("bench_load must be spawnable");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "bench_load failed:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    let json = std::fs::read_to_string(&out_path).expect("bench_load must write its report");
    std::fs::remove_file(&out_path).ok();
    assert!(json.contains("\"experiment\": \"B11\""), "{json}");
    assert!(json.contains("\"coalesced_vs_uncoalesced\""), "{json}");
    assert!(
        stdout.contains("coalescing") && stdout.contains("thread-per-conn"),
        "{stdout}"
    );
}

/// `scripts/ci.sh` is runnable and wires the right gates. The heavy stages
/// (build + test) are skipped via `OOCQ_CI_SKIP_HEAVY=1` — this test
/// already runs under `cargo test` and must not recurse into it — so the
/// smoke test exercises the script's plumbing plus the fmt stage (which
/// itself degrades to a skip when rustfmt is absent).
#[test]
fn ci_script_smoke() {
    use std::process::Command;
    let script = concat!(env!("CARGO_MANIFEST_DIR"), "/scripts/ci.sh");
    let out = Command::new("sh")
        .arg(script)
        .env("OOCQ_CI_SKIP_HEAVY", "1")
        .output()
        .expect("scripts/ci.sh must be spawnable");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "ci.sh failed:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("skipping build and test"), "{stdout}");
    assert!(stdout.trim_end().ends_with("ci: ok"), "{stdout}");
}

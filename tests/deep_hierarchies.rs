//! Multi-level inheritance: the paper's machinery on hierarchies deeper
//! than the examples' two levels. Expansion counts, containment across
//! levels, and minimization with mid-level range atoms.

use oocq::gen::deep_schema;
use oocq::{
    contains_positive, contains_terminal, expand, expansion_size, minimize_positive, parse_query,
    union_equivalent, UnionQuery,
};

#[test]
fn expansion_counts_multiply_down_the_tree() {
    // depth 3, branching 2: the root has 8 terminals, mid-level C0 has 4.
    let s = deep_schema(3, 2);
    let q = parse_query(&s, "{ x | exists y: x in C & y in C0 & y = x.next }").unwrap();
    assert_eq!(expansion_size(&s, &q).unwrap(), 8 * 4);
    let u = expand(&s, &q).unwrap();
    assert_eq!(u.len(), 32);
    // All combinations are satisfiable: `next : C` admits every terminal.
    assert_eq!(oocq::expand_satisfiable(&s, &q).unwrap().len(), 32);
}

#[test]
fn range_at_different_levels_orders_queries() {
    // { x in C0 } ⊆ { x in C } and both strict against a sibling subtree.
    let s = deep_schema(3, 2);
    let level = |cls: &str| parse_query(&s, &format!("{{ x | x in {cls} }}")).unwrap();
    assert!(contains_positive(&s, &level("C0"), &level("C")).unwrap());
    assert!(!contains_positive(&s, &level("C"), &level("C0")).unwrap());
    assert!(contains_positive(&s, &level("C010"), &level("C01")).unwrap());
    assert!(!contains_positive(&s, &level("C010"), &level("C00")).unwrap());
    // Disjoint subtrees are incomparable.
    assert!(!contains_positive(&s, &level("C0"), &level("C1")).unwrap());
    assert!(!contains_positive(&s, &level("C1"), &level("C0")).unwrap());
}

#[test]
fn union_of_children_equals_parent() {
    // Under the partitioning assumption, C0 ∪ C1 ≡ C.
    let s = deep_schema(2, 2);
    let q = parse_query(&s, "{ x | x in C }").unwrap();
    let parent = oocq::expand_satisfiable(&s, &q).unwrap();
    let q0 = parse_query(&s, "{ x | x in C0 }").unwrap();
    let q1 = parse_query(&s, "{ x | x in C1 }").unwrap();
    let mut children = UnionQuery::empty();
    for part in [q0, q1] {
        for sub in oocq::expand_satisfiable(&s, &part).unwrap() {
            children.push(sub);
        }
    }
    assert!(union_equivalent(&s, &parent, &children).unwrap());
}

#[test]
fn terminal_containment_ignores_intermediate_levels() {
    // Two terminal queries over the same leaf: classic folding containment,
    // unaffected by the depth of the hierarchy above.
    let s = deep_schema(4, 2);
    let q1 = parse_query(
        &s,
        "{ x | exists y, z: x in C0000 & y in C0000 & z in C0000 & y = x.next & z = y.next }",
    )
    .unwrap();
    let q2 = parse_query(&s, "{ x | exists y: x in C0000 & y in C0000 & y = x.next }").unwrap();
    assert!(contains_terminal(&s, &q1, &q2).unwrap());
    assert!(!contains_terminal(&s, &q2, &q1).unwrap());
}

#[test]
fn minimization_scales_over_deep_trees() {
    // The star query at the root expands to (2^2)^2 = 16 subqueries before
    // minimization; spokes collapse within each subquery and subsumed
    // subqueries drop out.
    let s = deep_schema(2, 2);
    let q = parse_query(
        &s,
        "{ x | exists y, z: x in C & y in C & z in C & y in x.items & z in x.items }",
    )
    .unwrap();
    let m = minimize_positive(&s, &q).unwrap();
    // Each subquery keeps one spoke.
    for sub in &m {
        assert_eq!(sub.var_count(), 2);
    }
    // x has 4 terminal choices and the (merged) spoke 4: at most 16 remain;
    // no pair is redundant because terminal classes differ pairwise.
    assert_eq!(m.len(), 16);
    assert!(oocq::union_equivalent(
        &s,
        &m,
        &oocq::expand_satisfiable(
            &s,
            &parse_query(&s, "{ x | exists y: x in C & y in C & y in x.items }").unwrap()
        )
        .unwrap()
    )
    .unwrap());
}

//! Exhaustive cross-validation on a small query space: every terminal
//! positive query over the Example 3.3 schema with up to three variables
//! and atoms drawn from a fixed pool, pairwise checked — Corollary 3.4's
//! verdict must agree with the canonical-state oracle on *all* pairs, not
//! just random samples.

use oocq::{canonical_contains, contains_terminal, is_satisfiable, Query, QueryBuilder, Schema};

/// Enumerate queries: variables v0 (free), v1, v2 with fixed classes
/// (v0 ∈ T1, v1 ∈ T2, v2 ∈ T1), and any subset of the candidate atom pool.
fn enumerate_queries(s: &Schema) -> Vec<Query> {
    let t1 = s.class_id("T1").unwrap();
    let t2 = s.class_id("T2").unwrap();
    let a = s.attr_id("A").unwrap();
    let mut out = Vec::new();
    // Atom pool indices: 0: v0 ∈ v1.A, 1: v2 ∈ v1.A, 2: v0 = v2.
    for mask in 0u8..8 {
        let mut b = QueryBuilder::new("v0");
        let v0 = b.free();
        let v1 = b.var("v1");
        let v2 = b.var("v2");
        b.range(v0, [t1]).range(v1, [t2]).range(v2, [t1]);
        if mask & 1 != 0 {
            b.member(v0, v1, a);
        }
        if mask & 2 != 0 {
            b.member(v2, v1, a);
        }
        if mask & 4 != 0 {
            b.eq_vars(v0, v2);
        }
        out.push(b.build());
    }
    // Two-variable variants.
    for mask in 0u8..2 {
        let mut b = QueryBuilder::new("v0");
        let v0 = b.free();
        let v1 = b.var("v1");
        b.range(v0, [t1]).range(v1, [t2]);
        if mask & 1 != 0 {
            b.member(v0, v1, a);
        }
        out.push(b.build());
    }
    // One-variable variants.
    for cls in [t1, t2] {
        let mut b = QueryBuilder::new("v0");
        let v0 = b.free();
        b.range(v0, [cls]);
        out.push(b.build());
    }
    out
}

#[test]
fn corollary_34_agrees_with_canonical_oracle_on_all_pairs() {
    let s = oocq::parse_schema("class T1 {} class T2 { A: {T1}; }").unwrap();
    let queries = enumerate_queries(&s);
    assert_eq!(queries.len(), 12);
    let mut checked = 0usize;
    for q1 in &queries {
        for q2 in &queries {
            let algo = contains_terminal(&s, q1, q2).unwrap();
            match canonical_contains(&s, q1, q2) {
                Some(oracle) => assert_eq!(
                    algo,
                    oracle,
                    "disagreement:\n  Q1 = {}\n  Q2 = {}",
                    q1.display(&s),
                    q2.display(&s)
                ),
                None => assert!(algo, "unsat Q1 must be contained in everything"),
            }
            checked += 1;
        }
    }
    assert_eq!(checked, 144);
}

#[test]
fn containment_is_a_preorder_on_the_space() {
    // Reflexivity and transitivity over the whole enumerated space.
    let s = oocq::parse_schema("class T1 {} class T2 { A: {T1}; }").unwrap();
    let queries = enumerate_queries(&s);
    let n = queries.len();
    let mut cont = vec![vec![false; n]; n];
    for (i, q1) in queries.iter().enumerate() {
        for (j, q2) in queries.iter().enumerate() {
            cont[i][j] = contains_terminal(&s, q1, q2).unwrap();
        }
        assert!(cont[i][i], "reflexivity failed for {}", q1.display(&s));
    }
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                if cont[i][j] && cont[j][k] {
                    assert!(
                        cont[i][k],
                        "transitivity failed: {} <= {} <= {}",
                        queries[i].display(&s),
                        queries[j].display(&s),
                        queries[k].display(&s)
                    );
                }
            }
        }
    }
}

#[test]
fn minimization_lands_on_a_least_element_of_each_equivalence_class() {
    // For every satisfiable query in the space, its minimized form is
    // equivalent, minimal, and no smaller equivalent query exists in the
    // space.
    let s = oocq::parse_schema("class T1 {} class T2 { A: {T1}; }").unwrap();
    let queries = enumerate_queries(&s);
    for q in &queries {
        if !is_satisfiable(&s, q).unwrap() {
            continue;
        }
        let m = oocq::minimize_terminal_positive(&s, q).unwrap();
        assert!(oocq::equivalent_terminal(&s, q, &m).unwrap());
        assert!(oocq::is_minimal_terminal_positive(&s, &m).unwrap());
        for other in &queries {
            if is_satisfiable(&s, other).unwrap()
                && oocq::equivalent_terminal(&s, q, other).unwrap()
            {
                assert!(
                    m.var_count() <= other.var_count(),
                    "{} not minimal: {} is smaller",
                    m.display(&s),
                    other.display(&s)
                );
            }
        }
    }
}

//! Golden-file tests: every workbench program in `tests/corpus/` runs and
//! its transcript matches the committed `.expected` file exactly.
//!
//! Regenerate the expectations after an intentional output change with
//! `UPDATE_EXPECT=1 cargo test --test corpus`.

use oocq::run_workbench;
use std::path::Path;

fn check(name: &str) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let program = std::fs::read_to_string(dir.join(format!("{name}.oocq")))
        .unwrap_or_else(|e| panic!("missing corpus program {name}: {e}"));
    let transcript = run_workbench(&program).unwrap_or_else(|e| panic!("{name} failed: {e}"));
    let expected_path = dir.join(format!("{name}.expected"));
    if std::env::var_os("UPDATE_EXPECT").is_some() {
        std::fs::write(&expected_path, &transcript).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&expected_path)
        .unwrap_or_else(|e| panic!("missing {name}.expected ({e}); run with UPDATE_EXPECT=1"));
    assert_eq!(
        transcript, expected,
        "transcript drift for {name}; run with UPDATE_EXPECT=1 if intentional"
    );
}

#[test]
fn vehicle_rental() {
    check("vehicle_rental");
}

#[test]
fn n1_partition() {
    check("n1_partition");
}

#[test]
fn inequalities() {
    check("inequalities");
}

#[test]
fn paths() {
    check("paths");
}

#[test]
fn university() {
    check("university");
}

//! Union-level behaviour (§4: Theorems 4.1 and 4.2) through the public API
//! and the parser's `union` syntax.

use oocq::{
    nonredundant_union, parse_schema, parse_union, union_contains, union_equivalent, UnionQuery,
};

fn setup() -> (oocq::Schema, UnionQuery, UnionQuery) {
    let s = parse_schema(
        "class Vehicle {} class Auto : Vehicle {} class Truck : Vehicle {}
         class Trailer : Vehicle {} class Client { VehRented: {Vehicle}; }
         class Discount : Client { VehRented: {Auto}; }",
    )
    .unwrap();
    let m = parse_union(&s, "{ x | x in Auto } union { x | x in Truck }").unwrap();
    let n = parse_union(
        &s,
        "{ x | x in Truck } union { x | x in Auto } union { x | x in Trailer }",
    )
    .unwrap();
    (s, m, n)
}

#[test]
fn theorem_41_pairwise_containment() {
    let (s, m, n) = setup();
    assert!(union_contains(&s, &m, &n).unwrap());
    assert!(!union_contains(&s, &n, &m).unwrap());
    assert!(!union_equivalent(&s, &m, &n).unwrap());
}

#[test]
fn empty_union_is_least_element() {
    let (s, m, _) = setup();
    let empty = UnionQuery::empty();
    assert!(union_contains(&s, &empty, &m).unwrap());
    assert!(!union_contains(&s, &m, &empty).unwrap());
    assert!(union_equivalent(&s, &empty, &UnionQuery::empty()).unwrap());
}

#[test]
fn union_with_unsatisfiable_member_collapses() {
    let s = setup().0;
    // The Truck-for-discount branch is unsatisfiable; the union equals its
    // Auto part.
    let with_dead = parse_union(
        &s,
        "{ x | exists y: x in Auto & y in Discount & x in y.VehRented } union \
         { x | exists y: x in Truck & y in Discount & x in y.VehRented }",
    )
    .unwrap();
    let alive = parse_union(
        &s,
        "{ x | exists y: x in Auto & y in Discount & x in y.VehRented }",
    )
    .unwrap();
    assert!(union_equivalent(&s, &with_dead, &alive).unwrap());
    let nr = nonredundant_union(&s, &with_dead).unwrap();
    assert_eq!(nr.len(), 1);
}

#[test]
fn theorem_42_nonredundant_forms_are_memberwise_equivalent() {
    let (s, _, n) = setup();
    // Two different presentations of the same union.
    let forward = nonredundant_union(&s, &n).unwrap();
    let reversed: UnionQuery = n.iter().rev().cloned().collect();
    let backward = nonredundant_union(&s, &reversed).unwrap();
    assert_eq!(forward.len(), backward.len());
    // Each member of one has exactly one equivalent partner in the other.
    for q in &forward {
        let partners = backward
            .iter()
            .filter(|p| oocq::equivalent_terminal(&s, q, p).unwrap())
            .count();
        assert_eq!(
            partners,
            1,
            "member {} lacks a unique partner",
            q.display(&s)
        );
    }
}

#[test]
fn subsumption_inside_one_union() {
    let s = setup().0;
    // A constrained Auto query is redundant next to the plain Auto query.
    let u = parse_union(
        &s,
        "{ x | exists y: x in Auto & y in Discount & x in y.VehRented } union { x | x in Auto }",
    )
    .unwrap();
    let nr = nonredundant_union(&s, &u).unwrap();
    assert_eq!(nr.len(), 1);
    assert_eq!(nr.queries()[0].var_count(), 1);
    assert!(union_equivalent(&s, &u, &nr).unwrap());
}

#[test]
fn union_answers_distribute_over_members() {
    use oocq::{answer, answer_union, StateBuilder};
    let (s, m, _) = setup();
    let mut b = StateBuilder::new();
    let a = b.object(s.class_id("Auto").unwrap());
    let t = b.object(s.class_id("Truck").unwrap());
    let _tr = b.object(s.class_id("Trailer").unwrap());
    let st = b.finish(&s).unwrap();
    let whole = answer_union(&s, &st, &m);
    let mut parts = std::collections::BTreeSet::new();
    for q in &m {
        parts.extend(answer(&s, &st, q));
    }
    assert_eq!(whole, parts);
    assert_eq!(whole, std::collections::BTreeSet::from([a, t]));
}

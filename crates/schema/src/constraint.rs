//! Declared schema constraints: disjointness, totality, functionality.
//!
//! Chan's model constrains legal states only through the Terminal Class
//! Partitioning Assumption. A [`Constraint`] narrows the legal states
//! further, in the direction of description-logic-style schema constraints
//! (Calvanese–De Giacomo–Lenzerini):
//!
//! * [`Constraint::Disjoint`]`(A, B)` — no object belongs to both `A` and
//!   `B`. Under terminal partitioning this is equivalent to: every common
//!   terminal descendant of `A` and `B` has an empty extent in every legal
//!   state (a *dead* terminal).
//! * [`Constraint::Total`]`(C, a)` — every object of class `C` (or a
//!   subclass) has a non-null value for attribute `a`; for a set-valued
//!   `a`, a non-empty set.
//! * [`Constraint::Functional`]`(C, a)` — the set-valued attribute `a`
//!   holds at most one member on every object of class `C` (or a
//!   subclass).
//!
//! Constraints are validated and normalized by
//! [`SchemaBuilder::finish`](crate::SchemaBuilder::finish): disjointness
//! pairs are ordered by class id, the list is sorted and duplicate-free,
//! and contradictions (a class disjoint from itself or from a relative in
//! the hierarchy, totality of an undeclared attribute, functionality of a
//! non-set attribute) are rejected. The containment engine compiles them
//! into query augmentations — see `oocq-core`'s `theory` module.

use crate::ids::{AttrId, ClassId};

/// One declared schema constraint. See the module docs for semantics.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Constraint {
    /// `A` and `B` share no object in any legal state (normalized so the
    /// first class id is the smaller).
    Disjoint(ClassId, ClassId),
    /// Every object of the class has a non-null (for sets: non-empty)
    /// value for the attribute.
    Total(ClassId, AttrId),
    /// The set-valued attribute holds at most one member per object of the
    /// class.
    Functional(ClassId, AttrId),
}

impl Constraint {
    /// The normal form used for ordering, deduplication, and rendering:
    /// disjointness with the smaller class id first.
    pub fn normalized(self) -> Constraint {
        match self {
            Constraint::Disjoint(a, b) if b < a => Constraint::Disjoint(b, a),
            other => other,
        }
    }
}

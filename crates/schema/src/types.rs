//! Type expressions over class names (`type-expr(C)` in the paper, §2.1).
//!
//! Following Lecluse–Richard (reference [24] of the paper) a class is mapped
//! by `σ` to a *tuple type* whose components are attribute/type pairs. The
//! paper restricts attribute component types to the two forms actually used
//! by its term language (`x.A` denoting an object, `x ∈ y.A` denoting set
//! membership): a class name (object-valued attribute) or a set of a class
//! name (set-valued attribute). This loses no representational power for the
//! query class studied — see the remark after Example 1.1 referencing [16].

use crate::ids::{AttrId, ClassId};
use std::collections::BTreeMap;

/// The type of a single attribute component inside a tuple type.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AttrType {
    /// Object-valued attribute: the component holds the identifier of an
    /// object belonging to the named class (or one of its descendants), or
    /// the null value `Λ`.
    Object(ClassId),
    /// Set-valued attribute: the component holds a set object whose members
    /// belong to the named class (or its descendants), or the null value `Λ`.
    SetOf(ClassId),
}

impl AttrType {
    /// The class name mentioned by this type expression.
    #[inline]
    pub fn class(self) -> ClassId {
        match self {
            AttrType::Object(c) | AttrType::SetOf(c) => c,
        }
    }

    /// `true` for `SetOf` types.
    #[inline]
    pub fn is_set(self) -> bool {
        matches!(self, AttrType::SetOf(_))
    }
}

/// A tuple type: a finite map from attribute names to component types.
///
/// `σ(C)` for each class `C`. Stored as a `BTreeMap` so iteration order is
/// deterministic (important for reproducible expansion/minimization output).
pub type TupleType = BTreeMap<AttrId, AttrType>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_type_class_extraction() {
        let c = ClassId::from_index(4);
        assert_eq!(AttrType::Object(c).class(), c);
        assert_eq!(AttrType::SetOf(c).class(), c);
    }

    #[test]
    fn attr_type_set_discrimination() {
        let c = ClassId::from_index(0);
        assert!(!AttrType::Object(c).is_set());
        assert!(AttrType::SetOf(c).is_set());
    }
}

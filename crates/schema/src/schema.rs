//! Schemas `S = (C, σ, ≺)` (§2.1 of the paper).
//!
//! A schema is a set of class names `C`, a mapping `σ` from class names to
//! tuple types, and a partial order `≺` (the user-defined inheritance
//! hierarchy; `A ≺ B` reads "A is a subclass of B"). The hierarchy must have
//! no cycle of length greater than one. We only admit *consistent* schemas in
//! the sense of Lecluse–Richard: a subclass may refine an inherited attribute
//! only to a subtype.
//!
//! Throughout the library the **Terminal Class Partitioning Assumption**
//! holds: in every legal state, the objects of a non-terminal class are
//! partitioned by the objects of its terminal descendants. The schema
//! therefore precomputes the set of terminal descendants of every class.

use crate::constraint::Constraint;
use crate::error::SchemaError;
use crate::ids::{AttrId, ClassId};
use crate::types::{AttrType, TupleType};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Incremental builder for [`Schema`].
///
/// Classes are declared first, then edges and attribute declarations; all
/// closure computation and consistency checking happens in
/// [`SchemaBuilder::finish`].
#[derive(Default, Clone, Debug)]
pub struct SchemaBuilder {
    class_names: Vec<String>,
    class_by_name: HashMap<String, ClassId>,
    attr_names: Vec<String>,
    attr_by_name: HashMap<String, AttrId>,
    /// `parents[c]` = direct superclasses of `c`.
    parents: Vec<Vec<ClassId>>,
    /// Attributes declared directly on each class (before inheritance).
    declared: Vec<TupleType>,
    /// Declared constraints, validated in [`SchemaBuilder::finish`].
    constraints: Vec<Constraint>,
}

impl SchemaBuilder {
    /// Create an empty builder.
    pub fn new() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Declare a new class.
    pub fn class(&mut self, name: &str) -> Result<ClassId, SchemaError> {
        if self.class_by_name.contains_key(name) {
            return Err(SchemaError::DuplicateClass(name.to_owned()));
        }
        let id = ClassId::from_index(self.class_names.len());
        self.class_names.push(name.to_owned());
        self.class_by_name.insert(name.to_owned(), id);
        self.parents.push(Vec::new());
        self.declared.push(TupleType::new());
        Ok(id)
    }

    /// Intern an attribute name (idempotent).
    pub fn attr(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.attr_by_name.get(name) {
            return id;
        }
        let id = AttrId::from_index(self.attr_names.len());
        self.attr_names.push(name.to_owned());
        self.attr_by_name.insert(name.to_owned(), id);
        id
    }

    /// Declare `child ≺ parent`. Self-edges are ignored (the partial order
    /// is reflexive by definition); duplicate edges are rejected.
    pub fn subclass(&mut self, child: ClassId, parent: ClassId) -> Result<(), SchemaError> {
        if child == parent {
            return Ok(());
        }
        if self.parents[child.index()].contains(&parent) {
            return Err(SchemaError::DuplicateEdge {
                child: self.class_names[child.index()].clone(),
                parent: self.class_names[parent.index()].clone(),
            });
        }
        self.parents[child.index()].push(parent);
        Ok(())
    }

    /// Declare attribute `name : ty` directly on `class`.
    pub fn attribute(
        &mut self,
        class: ClassId,
        name: &str,
        ty: AttrType,
    ) -> Result<AttrId, SchemaError> {
        let attr = self.attr(name);
        if self.declared[class.index()].contains_key(&attr) {
            return Err(SchemaError::DuplicateAttribute {
                class: self.class_names[class.index()].clone(),
                attr: name.to_owned(),
            });
        }
        self.declared[class.index()].insert(attr, ty);
        Ok(attr)
    }

    /// Look up a class declared earlier on this builder.
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// Look up an attribute interned earlier on this builder (lookup only —
    /// unlike [`SchemaBuilder::attr`], never interns a new name).
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attr_by_name.get(name).copied()
    }

    /// Declare a constraint. Validation (unknown attribute, contradiction
    /// with terminal partitioning, duplicates) happens in
    /// [`SchemaBuilder::finish`], which needs the computed closure.
    pub fn constraint(&mut self, c: Constraint) -> &mut Self {
        self.constraints.push(c);
        self
    }

    /// Validate the hierarchy, compute the subtyping closure, resolve
    /// attribute inheritance, and freeze into an immutable [`Schema`].
    pub fn finish(self) -> Result<Schema, SchemaError> {
        let n = self.class_names.len();

        // Children lists (inverse of `parents`).
        let mut children: Vec<Vec<ClassId>> = vec![Vec::new(); n];
        for (c, ps) in self.parents.iter().enumerate() {
            for &p in ps {
                children[p.index()].push(ClassId::from_index(c));
            }
        }

        // Topological order with parents before children (DFS over the
        // `parents` relation; a back edge means a cycle of length > 1).
        let order = topo_order(&self.parents, &self.class_names)?;

        // Reflexive-transitive ancestor sets as bitsets:
        // ancestors[c] ∋ d  ⟺  c ≺ d or c = d.
        let words = n.div_ceil(64);
        let mut ancestors: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
        for &c in &order {
            let ci = c.index();
            ancestors[ci][ci / 64] |= 1u64 << (ci % 64);
            // Clone parent masks to appease the borrow checker; hierarchies
            // are small (tens of classes) so this is never hot.
            let masks: Vec<Vec<u64>> = self.parents[ci]
                .iter()
                .map(|p| ancestors[p.index()].clone())
                .collect();
            for mask in masks {
                for (w, m) in ancestors[ci].iter_mut().zip(mask) {
                    *w |= m;
                }
            }
        }

        // Effective tuple types, resolved in topological order.
        let mut effective: Vec<TupleType> = vec![TupleType::new(); n];
        let subclass = |a: ClassId, b: ClassId| -> bool {
            ancestors[a.index()][b.index() / 64] >> (b.index() % 64) & 1 == 1
        };
        let attr_subtype = |a: AttrType, b: AttrType| -> bool {
            match (a, b) {
                (AttrType::Object(x), AttrType::Object(y)) => subclass(x, y),
                (AttrType::SetOf(x), AttrType::SetOf(y)) => subclass(x, y),
                _ => false,
            }
        };
        for &c in &order {
            let ci = c.index();
            // Gather every inherited candidate type per attribute.
            let mut inherited: HashMap<AttrId, Vec<AttrType>> = HashMap::new();
            for &p in &self.parents[ci] {
                for (&a, &t) in &effective[p.index()] {
                    inherited.entry(a).or_default().push(t);
                }
            }
            let mut eff = TupleType::new();
            for (&a, cands) in &inherited {
                if self.declared[ci].contains_key(&a) {
                    continue; // resolved by redeclaration below
                }
                // Pick a candidate that is a subtype of all others; if the
                // candidates are incomparable the schema is ambiguous.
                let best = cands
                    .iter()
                    .copied()
                    .find(|&t| cands.iter().all(|&u| attr_subtype(t, u)));
                match best {
                    Some(t) => {
                        eff.insert(a, t);
                    }
                    None => {
                        return Err(SchemaError::AmbiguousInheritance {
                            class: self.class_names[ci].clone(),
                            attr: self.attr_names[a.index()].clone(),
                        })
                    }
                }
            }
            for (&a, &t) in &self.declared[ci] {
                if let Some(cands) = inherited.get(&a) {
                    for &u in cands {
                        if !attr_subtype(t, u) {
                            return Err(SchemaError::InvalidRefinement {
                                class: self.class_names[ci].clone(),
                                attr: self.attr_names[a.index()].clone(),
                                declared: display_attr_type(&self.class_names, t),
                                inherited: display_attr_type(&self.class_names, u),
                            });
                        }
                    }
                }
                eff.insert(a, t);
            }
            effective[ci] = eff;
        }

        // Terminal classes: no proper descendant.
        let terminals: Vec<ClassId> = (0..n)
            .map(ClassId::from_index)
            .filter(|c| children[c.index()].is_empty())
            .collect();

        // Terminal descendants per class (sorted by id for determinism).
        let mut term_desc: Vec<Vec<ClassId>> = vec![Vec::new(); n];
        for &t in &terminals {
            for (c, desc) in term_desc.iter_mut().enumerate() {
                if subclass(t, ClassId::from_index(c)) {
                    desc.push(t);
                }
            }
        }

        // Validate, normalize, and order the declared constraints.
        let render = |c: &Constraint| render_constraint(c, &self.class_names, &self.attr_names);
        let mut constraints: Vec<Constraint> = Vec::with_capacity(self.constraints.len());
        for raw in &self.constraints {
            let c = raw.normalized();
            let invalid = |reason: &str| SchemaError::InvalidConstraint {
                constraint: render(&c),
                reason: reason.to_owned(),
            };
            match c {
                Constraint::Disjoint(a, b) => {
                    if a == b {
                        return Err(invalid("a class is never disjoint from itself"));
                    }
                    if subclass(a, b) || subclass(b, a) {
                        return Err(invalid(
                            "the classes are related in the hierarchy, so disjointness \
                             contradicts terminal partitioning",
                        ));
                    }
                }
                Constraint::Total(cl, at) => {
                    if !effective[cl.index()].contains_key(&at) {
                        return Err(invalid("the class has no such attribute"));
                    }
                }
                Constraint::Functional(cl, at) => match effective[cl.index()].get(&at) {
                    None => return Err(invalid("the class has no such attribute")),
                    Some(AttrType::Object(_)) => {
                        return Err(invalid(
                            "functionality applies to set-valued attributes only",
                        ))
                    }
                    Some(AttrType::SetOf(_)) => {}
                },
            }
            constraints.push(c);
        }
        constraints.sort();
        if let Some(w) = constraints.windows(2).find(|w| w[0] == w[1]) {
            return Err(SchemaError::DuplicateConstraint(render(&w[0])));
        }

        // Dead terminals: killed by a disjointness pair they descend from.
        let mut dead = vec![false; n];
        for c in &constraints {
            if let Constraint::Disjoint(a, b) = *c {
                for &t in &terminals {
                    if subclass(t, a) && subclass(t, b) {
                        dead[t.index()] = true;
                    }
                }
            }
        }

        let constraints_text: Arc<str> = Arc::from(
            constraints
                .iter()
                .map(|c| format!("{}\n", render(c)))
                .collect::<String>()
                .as_str(),
        );

        Ok(Schema {
            class_names: self.class_names,
            class_by_name: self.class_by_name,
            attr_names: self.attr_names,
            attr_by_name: self.attr_by_name,
            parents: self.parents,
            children,
            declared: self.declared,
            effective,
            ancestors,
            terminals,
            term_desc,
            constraints,
            dead,
            constraints_text,
        })
    }
}

/// Render one constraint in the DSL syntax accepted by `oocq-parser`.
fn render_constraint(c: &Constraint, class_names: &[String], attr_names: &[String]) -> String {
    match *c {
        Constraint::Disjoint(a, b) => format!(
            "constraint disjoint {} {};",
            class_names[a.index()],
            class_names[b.index()]
        ),
        Constraint::Total(cl, at) => format!(
            "constraint total {}.{};",
            class_names[cl.index()],
            attr_names[at.index()]
        ),
        Constraint::Functional(cl, at) => format!(
            "constraint functional {}.{};",
            class_names[cl.index()],
            attr_names[at.index()]
        ),
    }
}

fn display_attr_type(class_names: &[String], t: AttrType) -> String {
    match t {
        AttrType::Object(c) => class_names[c.index()].clone(),
        AttrType::SetOf(c) => format!("{{{}}}", class_names[c.index()]),
    }
}

/// DFS-based topological sort of classes such that every class appears after
/// all of its (direct and indirect) superclasses. Errors on cycles.
fn topo_order(parents: &[Vec<ClassId>], names: &[String]) -> Result<Vec<ClassId>, SchemaError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n = parents.len();
    let mut mark = vec![Mark::White; n];
    let mut order = Vec::with_capacity(n);
    // Iterative DFS; (node, next-parent-index) frames.
    for start in 0..n {
        if mark[start] != Mark::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        mark[start] = Mark::Grey;
        while let Some(&mut (node, ref mut ix)) = stack.last_mut() {
            if *ix < parents[node].len() {
                let p = parents[node][*ix].index();
                *ix += 1;
                match mark[p] {
                    Mark::White => {
                        mark[p] = Mark::Grey;
                        stack.push((p, 0));
                    }
                    Mark::Grey => {
                        return Err(SchemaError::InheritanceCycle(names[p].clone()));
                    }
                    Mark::Black => {}
                }
            } else {
                mark[node] = Mark::Black;
                order.push(ClassId::from_index(node));
                stack.pop();
            }
        }
    }
    Ok(order)
}

/// An immutable, validated schema.
///
/// Construct via [`SchemaBuilder`]. All derived structure — the
/// reflexive-transitive subclass relation, effective (inherited) tuple types,
/// terminal classes, and terminal descendant sets — is precomputed.
#[derive(Clone, Debug)]
pub struct Schema {
    class_names: Vec<String>,
    class_by_name: HashMap<String, ClassId>,
    attr_names: Vec<String>,
    attr_by_name: HashMap<String, AttrId>,
    parents: Vec<Vec<ClassId>>,
    children: Vec<Vec<ClassId>>,
    declared: Vec<TupleType>,
    effective: Vec<TupleType>,
    /// Bitset per class: reflexive-transitive ancestors.
    ancestors: Vec<Vec<u64>>,
    terminals: Vec<ClassId>,
    term_desc: Vec<Vec<ClassId>>,
    /// Declared constraints, normalized and sorted.
    constraints: Vec<Constraint>,
    /// `dead[c]`: `c` is a terminal class forced empty in every legal state
    /// by a disjointness constraint.
    dead: Vec<bool>,
    /// The rendered `constraint …;` lines (empty for a constraint-free
    /// schema), shared so fingerprinting them is a pointer copy.
    constraints_text: Arc<str>,
}

impl Schema {
    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.class_names.len()
    }

    /// Number of interned attribute names.
    pub fn attr_count(&self) -> usize {
        self.attr_names.len()
    }

    /// Iterate over every class id in declaration order.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.class_count()).map(ClassId::from_index)
    }

    /// Name of a class.
    pub fn class_name(&self, c: ClassId) -> &str {
        &self.class_names[c.index()]
    }

    /// Name of an attribute.
    pub fn attr_name(&self, a: AttrId) -> &str {
        &self.attr_names[a.index()]
    }

    /// Look up a class by name.
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// Look up an attribute by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attr_by_name.get(name).copied()
    }

    /// Reflexive subclass test: `a ≺ b` or `a = b`.
    #[inline]
    pub fn is_subclass(&self, a: ClassId, b: ClassId) -> bool {
        self.ancestors[a.index()][b.index() / 64] >> (b.index() % 64) & 1 == 1
    }

    /// Strict subclass test: `a ≺ b` and `a ≠ b`.
    #[inline]
    pub fn is_strict_subclass(&self, a: ClassId, b: ClassId) -> bool {
        a != b && self.is_subclass(a, b)
    }

    /// Is `c` a terminal class (no proper descendant)?
    pub fn is_terminal(&self, c: ClassId) -> bool {
        self.children[c.index()].is_empty()
    }

    /// All terminal classes, in declaration order.
    pub fn terminals(&self) -> &[ClassId] {
        &self.terminals
    }

    /// The terminal descendants of `c` (including `c` itself when terminal).
    ///
    /// Under the Terminal Class Partitioning Assumption the extent of `c` in
    /// any legal state is the disjoint union of the extents of exactly these
    /// classes.
    pub fn terminal_descendants(&self, c: ClassId) -> &[ClassId] {
        &self.term_desc[c.index()]
    }

    /// Direct superclasses of `c`.
    pub fn parents(&self, c: ClassId) -> &[ClassId] {
        &self.parents[c.index()]
    }

    /// Direct subclasses of `c`.
    pub fn children(&self, c: ClassId) -> &[ClassId] {
        &self.children[c.index()]
    }

    /// The attributes declared directly on `c` (no inheritance).
    pub fn declared_type(&self, c: ClassId) -> &TupleType {
        &self.declared[c.index()]
    }

    /// `σ(c)` with inheritance resolved: every attribute `c` possesses, at
    /// its most refined type.
    pub fn effective_type(&self, c: ClassId) -> &TupleType {
        &self.effective[c.index()]
    }

    /// The effective type of attribute `a` on class `c`, if `c` has it.
    pub fn attr_type(&self, c: ClassId, a: AttrId) -> Option<AttrType> {
        self.effective[c.index()].get(&a).copied()
    }

    /// Subtype relation on attribute type expressions (§2.1): covariant in
    /// the class for both object and set types, never across the two kinds.
    pub fn attr_subtype(&self, a: AttrType, b: AttrType) -> bool {
        match (a, b) {
            (AttrType::Object(x), AttrType::Object(y)) => self.is_subclass(x, y),
            (AttrType::SetOf(x), AttrType::SetOf(y)) => self.is_subclass(x, y),
            _ => false,
        }
    }

    /// Subtype relation on whole tuple types: `a ≤ b` iff `a` has every
    /// attribute of `b` at a subtype.
    pub fn tuple_subtype(&self, a: &TupleType, b: &TupleType) -> bool {
        b.iter()
            .all(|(attr, &tb)| a.get(attr).is_some_and(|&ta| self.attr_subtype(ta, tb)))
    }

    /// Render an attribute type with class names.
    pub fn display_attr_type(&self, t: AttrType) -> String {
        display_attr_type(&self.class_names, t)
    }

    /// The declared constraints, normalized and sorted.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Does this schema declare any constraint?
    pub fn has_constraints(&self) -> bool {
        !self.constraints.is_empty()
    }

    /// Is `c` a terminal class whose extent is forced empty in every legal
    /// state by a disjointness constraint?
    pub fn is_dead_terminal(&self, c: ClassId) -> bool {
        self.dead[c.index()]
    }

    /// The rendered `constraint …;` lines (empty string when there are
    /// none). This is the theory fingerprint the decision caches fold into
    /// their keys, and the exact text [`Schema`]'s `Display` appends after
    /// the class blocks.
    pub fn constraints_text(&self) -> &Arc<str> {
        &self.constraints_text
    }

    /// Render one constraint in DSL syntax (no trailing newline).
    pub fn display_constraint(&self, c: &Constraint) -> String {
        render_constraint(c, &self.class_names, &self.attr_names)
    }
}

impl fmt::Display for Schema {
    /// Renders the schema in the DSL syntax accepted by `oocq-parser`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in self.classes() {
            write!(f, "class {}", self.class_name(c))?;
            if !self.parents(c).is_empty() {
                let ps: Vec<&str> = self
                    .parents(c)
                    .iter()
                    .map(|&p| self.class_name(p))
                    .collect();
                write!(f, " : {}", ps.join(", "))?;
            }
            let decl = self.declared_type(c);
            if decl.is_empty() {
                writeln!(f, " {{}}")?;
            } else {
                writeln!(f, " {{")?;
                for (&a, &t) in decl {
                    writeln!(f, "  {}: {};", self.attr_name(a), self.display_attr_type(t))?;
                }
                writeln!(f, "}}")?;
            }
        }
        f.write_str(&self.constraints_text)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Schema {
        // D ≺ B, D ≺ C, B ≺ A, C ≺ A
        let mut b = SchemaBuilder::new();
        let a = b.class("A").unwrap();
        let bb = b.class("B").unwrap();
        let c = b.class("C").unwrap();
        let d = b.class("D").unwrap();
        b.subclass(bb, a).unwrap();
        b.subclass(c, a).unwrap();
        b.subclass(d, bb).unwrap();
        b.subclass(d, c).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn subclass_is_reflexive_and_transitive() {
        let s = diamond();
        let (a, d) = (s.class_id("A").unwrap(), s.class_id("D").unwrap());
        assert!(s.is_subclass(a, a));
        assert!(s.is_subclass(d, a));
        assert!(!s.is_subclass(a, d));
        assert!(!s.is_strict_subclass(a, a));
        assert!(s.is_strict_subclass(d, a));
    }

    #[test]
    fn terminals_of_diamond() {
        let s = diamond();
        let d = s.class_id("D").unwrap();
        assert_eq!(s.terminals(), &[d]);
        assert!(s.is_terminal(d));
        assert!(!s.is_terminal(s.class_id("A").unwrap()));
        assert_eq!(s.terminal_descendants(s.class_id("A").unwrap()), &[d]);
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = SchemaBuilder::new();
        let x = b.class("X").unwrap();
        let y = b.class("Y").unwrap();
        b.subclass(x, y).unwrap();
        b.subclass(y, x).unwrap();
        assert!(matches!(b.finish(), Err(SchemaError::InheritanceCycle(_))));
    }

    #[test]
    fn self_edge_is_ignored() {
        let mut b = SchemaBuilder::new();
        let x = b.class("X").unwrap();
        b.subclass(x, x).unwrap();
        let s = b.finish().unwrap();
        assert!(s.is_terminal(x));
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut b = SchemaBuilder::new();
        b.class("X").unwrap();
        assert!(matches!(b.class("X"), Err(SchemaError::DuplicateClass(_))));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = SchemaBuilder::new();
        let x = b.class("X").unwrap();
        let y = b.class("Y").unwrap();
        b.subclass(x, y).unwrap();
        assert!(matches!(
            b.subclass(x, y),
            Err(SchemaError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn attributes_are_inherited() {
        let mut b = SchemaBuilder::new();
        let person = b.class("Person").unwrap();
        let student = b.class("Student").unwrap();
        b.subclass(student, person).unwrap();
        b.attribute(person, "Friend", AttrType::Object(person))
            .unwrap();
        let s = b.finish().unwrap();
        let friend = s.attr_id("Friend").unwrap();
        assert_eq!(
            s.attr_type(s.class_id("Student").unwrap(), friend),
            Some(AttrType::Object(s.class_id("Person").unwrap()))
        );
        // ... but declared_type of Student stays empty.
        assert!(s.declared_type(s.class_id("Student").unwrap()).is_empty());
    }

    #[test]
    fn valid_refinement_accepted_and_wins() {
        let mut b = SchemaBuilder::new();
        let person = b.class("Person").unwrap();
        let student = b.class("Student").unwrap();
        b.subclass(student, person).unwrap();
        b.attribute(person, "Friend", AttrType::Object(person))
            .unwrap();
        b.attribute(student, "Friend", AttrType::Object(student))
            .unwrap();
        let s = b.finish().unwrap();
        let friend = s.attr_id("Friend").unwrap();
        let student = s.class_id("Student").unwrap();
        assert_eq!(
            s.attr_type(student, friend),
            Some(AttrType::Object(student))
        );
    }

    #[test]
    fn invalid_refinement_rejected() {
        let mut b = SchemaBuilder::new();
        let person = b.class("Person").unwrap();
        let student = b.class("Student").unwrap();
        let rock = b.class("Rock").unwrap();
        b.subclass(student, person).unwrap();
        b.attribute(person, "Friend", AttrType::Object(person))
            .unwrap();
        b.attribute(student, "Friend", AttrType::Object(rock))
            .unwrap();
        assert!(matches!(
            b.finish(),
            Err(SchemaError::InvalidRefinement { .. })
        ));
    }

    #[test]
    fn object_to_set_refinement_rejected() {
        let mut b = SchemaBuilder::new();
        let p = b.class("P").unwrap();
        let q = b.class("Q").unwrap();
        b.subclass(q, p).unwrap();
        b.attribute(p, "A", AttrType::Object(p)).unwrap();
        b.attribute(q, "A", AttrType::SetOf(p)).unwrap();
        assert!(matches!(
            b.finish(),
            Err(SchemaError::InvalidRefinement { .. })
        ));
    }

    #[test]
    fn diamond_inheritance_resolves_to_most_specific() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A").unwrap();
        let b1 = b.class("B1").unwrap();
        let b2 = b.class("B2").unwrap();
        let d = b.class("D").unwrap();
        b.subclass(b1, a).unwrap();
        b.subclass(b2, a).unwrap();
        b.subclass(d, b1).unwrap();
        b.subclass(d, b2).unwrap();
        b.attribute(b1, "X", AttrType::Object(b1)).unwrap();
        b.attribute(b2, "X", AttrType::Object(a)).unwrap();
        // B1 ≤ A, so Object(B1) is a subtype of Object(A): D gets Object(B1).
        let s = b.finish().unwrap();
        let x = s.attr_id("X").unwrap();
        assert_eq!(
            s.attr_type(s.class_id("D").unwrap(), x),
            Some(AttrType::Object(s.class_id("B1").unwrap()))
        );
    }

    #[test]
    fn ambiguous_diamond_inheritance_rejected() {
        let mut b = SchemaBuilder::new();
        let b1 = b.class("B1").unwrap();
        let b2 = b.class("B2").unwrap();
        let d = b.class("D").unwrap();
        let u = b.class("U").unwrap();
        let v = b.class("V").unwrap();
        b.subclass(d, b1).unwrap();
        b.subclass(d, b2).unwrap();
        b.attribute(b1, "X", AttrType::Object(u)).unwrap();
        b.attribute(b2, "X", AttrType::Object(v)).unwrap();
        assert!(matches!(
            b.finish(),
            Err(SchemaError::AmbiguousInheritance { .. })
        ));
    }

    #[test]
    fn ambiguity_resolved_by_redeclaration() {
        let mut b = SchemaBuilder::new();
        let b1 = b.class("B1").unwrap();
        let b2 = b.class("B2").unwrap();
        let d = b.class("D").unwrap();
        let u = b.class("U").unwrap();
        let v = b.class("V").unwrap();
        let w = b.class("W").unwrap();
        b.subclass(w, u).unwrap();
        b.subclass(w, v).unwrap();
        b.subclass(d, b1).unwrap();
        b.subclass(d, b2).unwrap();
        b.attribute(b1, "X", AttrType::Object(u)).unwrap();
        b.attribute(b2, "X", AttrType::Object(v)).unwrap();
        b.attribute(d, "X", AttrType::Object(w)).unwrap();
        let s = b.finish().unwrap();
        let x = s.attr_id("X").unwrap();
        assert_eq!(
            s.attr_type(s.class_id("D").unwrap(), x),
            Some(AttrType::Object(s.class_id("W").unwrap()))
        );
    }

    #[test]
    fn tuple_subtype_checks_width_and_depth() {
        let s = diamond();
        let a = s.class_id("A").unwrap();
        let d = s.class_id("D").unwrap();
        let mut sup = TupleType::new();
        let mut sub = TupleType::new();
        let attr = AttrId::from_index(0);
        sup.insert(attr, AttrType::Object(a));
        sub.insert(attr, AttrType::Object(d));
        assert!(s.tuple_subtype(&sub, &sup));
        assert!(!s.tuple_subtype(&sup, &sub));
        // Width subtyping: extra attributes on the subtype are fine.
        sub.insert(AttrId::from_index(1), AttrType::SetOf(a));
        assert!(s.tuple_subtype(&sub, &sup));
        assert!(s.tuple_subtype(&sub, &TupleType::new()));
    }

    #[test]
    fn display_round_trips_class_names() {
        let s = diamond();
        let text = s.to_string();
        assert!(text.contains("class D : B, C"));
    }

    /// Two unrelated roots P, Q with a common terminal descendant T2 (and a
    /// live sibling T1 under B), plus attributes to constrain.
    fn constrained() -> SchemaBuilder {
        let mut b = SchemaBuilder::new();
        let p = b.class("P").unwrap();
        let q = b.class("Q").unwrap();
        let bb = b.class("B").unwrap();
        let t1 = b.class("T1").unwrap();
        let t2 = b.class("T2").unwrap();
        b.subclass(t1, bb).unwrap();
        b.subclass(t2, bb).unwrap();
        b.subclass(t2, p).unwrap();
        b.subclass(t2, q).unwrap();
        b.attribute(t1, "F", AttrType::Object(t1)).unwrap();
        b.attribute(t1, "Items", AttrType::SetOf(t1)).unwrap();
        b
    }

    #[test]
    fn disjointness_kills_common_terminal_descendants() {
        let mut b = constrained();
        let (p, q) = (b.class_id("P").unwrap(), b.class_id("Q").unwrap());
        // Declared in the unnormalized order on purpose.
        b.constraint(Constraint::Disjoint(q, p));
        let s = b.finish().unwrap();
        let (t1, t2) = (s.class_id("T1").unwrap(), s.class_id("T2").unwrap());
        assert!(s.has_constraints());
        assert_eq!(s.constraints(), &[Constraint::Disjoint(p, q)]);
        assert!(s.is_dead_terminal(t2));
        assert!(!s.is_dead_terminal(t1));
        assert!(!s.is_dead_terminal(p), "non-terminals are never dead");
    }

    #[test]
    fn constraint_free_schema_renders_and_fingerprints_as_before() {
        let s = diamond();
        assert!(!s.has_constraints());
        assert_eq!(s.constraints_text().as_ref(), "");
        assert!(!s.to_string().contains("constraint"));
    }

    #[test]
    fn constraints_render_after_class_blocks_in_sorted_order() {
        let mut b = constrained();
        let (p, q, t1) = (
            b.class_id("P").unwrap(),
            b.class_id("Q").unwrap(),
            b.class_id("T1").unwrap(),
        );
        let f = b.attr("F");
        let items = b.attr("Items");
        b.constraint(Constraint::Functional(t1, items));
        b.constraint(Constraint::Total(t1, f));
        b.constraint(Constraint::Disjoint(q, p));
        let s = b.finish().unwrap();
        let text = s.to_string();
        let expected = "constraint disjoint P Q;\nconstraint total T1.F;\n\
                        constraint functional T1.Items;\n";
        assert!(text.ends_with(expected), "{text}");
        assert_eq!(s.constraints_text().as_ref(), expected);
    }

    #[test]
    fn self_and_hierarchy_disjointness_rejected() {
        let mut b = constrained();
        let p = b.class_id("P").unwrap();
        b.constraint(Constraint::Disjoint(p, p));
        assert!(matches!(
            b.finish(),
            Err(SchemaError::InvalidConstraint { .. })
        ));
        let mut b = constrained();
        let (bb, t1) = (b.class_id("B").unwrap(), b.class_id("T1").unwrap());
        b.constraint(Constraint::Disjoint(bb, t1));
        let err = b.finish().unwrap_err();
        assert!(err.to_string().contains("terminal partitioning"), "{err}");
    }

    #[test]
    fn totality_and_functionality_are_validated() {
        // Totality of an attribute the class does not have.
        let mut b = constrained();
        let p = b.class_id("P").unwrap();
        let f = b.attr("F");
        b.constraint(Constraint::Total(p, f));
        assert!(matches!(
            b.finish(),
            Err(SchemaError::InvalidConstraint { .. })
        ));
        // Functionality of an object-valued attribute.
        let mut b = constrained();
        let t1 = b.class_id("T1").unwrap();
        let f = b.attr("F");
        b.constraint(Constraint::Functional(t1, f));
        let err = b.finish().unwrap_err();
        assert!(err.to_string().contains("set-valued"), "{err}");
        // Totality is fine for both kinds; inherited attributes count.
        let mut b = constrained();
        let t1 = b.class_id("T1").unwrap();
        let (f, items) = (b.attr("F"), b.attr("Items"));
        b.constraint(Constraint::Total(t1, f));
        b.constraint(Constraint::Total(t1, items));
        assert!(b.finish().is_ok());
    }

    #[test]
    fn duplicate_constraints_rejected_after_normalization() {
        let mut b = constrained();
        let (p, q) = (b.class_id("P").unwrap(), b.class_id("Q").unwrap());
        b.constraint(Constraint::Disjoint(p, q));
        b.constraint(Constraint::Disjoint(q, p));
        assert!(matches!(
            b.finish(),
            Err(SchemaError::DuplicateConstraint(_))
        ));
    }
}

/// Aggregate shape metrics of a schema (see [`Schema::statistics`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaStats {
    /// Total classes.
    pub classes: usize,
    /// Terminal classes.
    pub terminals: usize,
    /// Maximal (root) classes.
    pub roots: usize,
    /// Longest subclass chain (edges), 0 for a flat schema.
    pub depth: usize,
    /// Largest direct-subclass fan-out of any class.
    pub max_fanout: usize,
    /// Attribute declarations (before inheritance).
    pub declared_attrs: usize,
    /// Attribute slots after inheritance, summed over classes.
    pub effective_attrs: usize,
}

impl Schema {
    /// Hierarchy and attribute metrics, used by the experiment harness to
    /// describe generated workloads.
    pub fn statistics(&self) -> SchemaStats {
        // Depth via longest path over the parents relation (acyclic).
        let mut depth_of = vec![usize::MAX; self.class_count()];
        fn depth(s: &Schema, c: ClassId, memo: &mut [usize]) -> usize {
            if memo[c.index()] != usize::MAX {
                return memo[c.index()];
            }
            let d = s
                .parents(c)
                .iter()
                .map(|&p| depth(s, p, memo) + 1)
                .max()
                .unwrap_or(0);
            memo[c.index()] = d;
            d
        }
        let depth = self
            .classes()
            .map(|c| depth(self, c, &mut depth_of))
            .max()
            .unwrap_or(0);
        SchemaStats {
            classes: self.class_count(),
            terminals: self.terminals().len(),
            roots: self
                .classes()
                .filter(|&c| self.parents(c).is_empty())
                .count(),
            depth,
            max_fanout: self
                .classes()
                .map(|c| self.children(c).len())
                .max()
                .unwrap_or(0),
            declared_attrs: self.classes().map(|c| self.declared_type(c).len()).sum(),
            effective_attrs: self.classes().map(|c| self.effective_type(c).len()).sum(),
        }
    }
}

#[cfg(test)]
mod stats_tests {
    use crate::samples;

    #[test]
    fn vehicle_rental_statistics() {
        let s = samples::vehicle_rental();
        let st = s.statistics();
        assert_eq!(st.classes, 7);
        assert_eq!(st.terminals, 5);
        assert_eq!(st.roots, 2);
        assert_eq!(st.depth, 1);
        assert_eq!(st.max_fanout, 3);
        assert_eq!(st.declared_attrs, 3); // VehRented x2 + AssignedTo
                                          // Effective: Vehicle(1)+Auto(1)+Trailer(1)+Truck(1)+Client(1)
                                          // +Discount(1)+Regular(1) = 7.
        assert_eq!(st.effective_attrs, 7);
    }

    #[test]
    fn deep_chain_depth() {
        let mut b = crate::SchemaBuilder::new();
        let a = b.class("A").unwrap();
        let bb = b.class("B").unwrap();
        let c = b.class("C").unwrap();
        b.subclass(bb, a).unwrap();
        b.subclass(c, bb).unwrap();
        let s = b.finish().unwrap();
        assert_eq!(s.statistics().depth, 2);
        assert_eq!(s.statistics().max_fanout, 1);
    }
}

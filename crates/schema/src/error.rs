//! Errors raised while building or validating a schema.

use std::error::Error;
use std::fmt;

/// Failure modes of [`SchemaBuilder::finish`](crate::SchemaBuilder::finish)
/// and the incremental builder methods.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SchemaError {
    /// Two classes were declared with the same name.
    DuplicateClass(String),
    /// A class name was referenced (as a parent or in an attribute type)
    /// but never declared.
    UnknownClass(String),
    /// The inheritance hierarchy has a cycle of length greater than one,
    /// which §2.1 forbids.
    InheritanceCycle(String),
    /// The same attribute was declared twice on one class.
    DuplicateAttribute {
        /// The declaring class.
        class: String,
        /// The repeated attribute.
        attr: String,
    },
    /// A subclass redeclares an inherited attribute with a type that is not
    /// a subtype of the inherited type, violating schema consistency in the
    /// sense of Lecluse–Richard \[24\].
    InvalidRefinement {
        /// The redeclaring class.
        class: String,
        /// The refined attribute.
        attr: String,
        /// The type declared on the subclass.
        declared: String,
        /// The type inherited from a superclass.
        inherited: String,
    },
    /// Two superclasses hand down incomparable types for the same attribute
    /// and the subclass does not redeclare it to disambiguate.
    AmbiguousInheritance {
        /// The inheriting class.
        class: String,
        /// The ambiguous attribute.
        attr: String,
    },
    /// An edge `child ≺ parent` was declared twice.
    DuplicateEdge {
        /// The subclass.
        child: String,
        /// The superclass.
        parent: String,
    },
    /// A declared constraint is malformed: disjointness of a class with
    /// itself or a hierarchy relative (contradicting terminal
    /// partitioning), totality of an undeclared attribute, or
    /// functionality of a non-set attribute.
    InvalidConstraint {
        /// The constraint, rendered in DSL syntax.
        constraint: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The same constraint (after normalization) was declared twice.
    DuplicateConstraint(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateClass(name) => {
                write!(f, "class `{name}` declared more than once")
            }
            SchemaError::UnknownClass(name) => write!(f, "unknown class `{name}`"),
            SchemaError::InheritanceCycle(name) => write!(
                f,
                "inheritance hierarchy has a cycle through class `{name}`"
            ),
            SchemaError::DuplicateAttribute { class, attr } => {
                write!(f, "attribute `{attr}` declared twice on class `{class}`")
            }
            SchemaError::InvalidRefinement {
                class,
                attr,
                declared,
                inherited,
            } => write!(
                f,
                "class `{class}` redeclares attribute `{attr}` as `{declared}`, \
                 which is not a subtype of the inherited `{inherited}`"
            ),
            SchemaError::AmbiguousInheritance { class, attr } => write!(
                f,
                "class `{class}` inherits incomparable types for attribute `{attr}` \
                 and must redeclare it"
            ),
            SchemaError::DuplicateEdge { child, parent } => {
                write!(f, "edge `{child} ≺ {parent}` declared twice")
            }
            SchemaError::InvalidConstraint { constraint, reason } => {
                write!(f, "invalid `{constraint}`: {reason}")
            }
            SchemaError::DuplicateConstraint(c) => {
                write!(f, "`{c}` declared more than once")
            }
        }
    }
}

impl Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_names() {
        let e = SchemaError::InvalidRefinement {
            class: "Auto".into(),
            attr: "Owner".into(),
            declared: "Truck".into(),
            inherited: "Person".into(),
        };
        let s = e.to_string();
        assert!(s.contains("Auto") && s.contains("Owner") && s.contains("Person"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn Error) {}
        takes_err(&SchemaError::UnknownClass("X".into()));
    }
}

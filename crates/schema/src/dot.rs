//! Graphviz export of the inheritance hierarchy.
//!
//! Renders the class DAG with attribute declarations, in the style of the
//! paper's schema figures (Examples 1.1 and 1.2): inheritance edges point
//! from subclass to superclass; each node lists its *declared* attributes;
//! terminal classes are drawn with a double border (they are the classes
//! whose extents actually hold objects under the partitioning assumption).

use crate::schema::Schema;

impl Schema {
    /// Render the hierarchy as a Graphviz `digraph`.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph schema {\n  rankdir=BT;\n  node [shape=record];\n");
        for c in self.classes() {
            let name = self.class_name(c);
            let mut label = name.to_owned();
            let decl = self.declared_type(c);
            if !decl.is_empty() {
                label.push('|');
                let attrs: Vec<String> = decl
                    .iter()
                    .map(|(&a, &t)| {
                        format!("{}: {}", self.attr_name(a), self.display_attr_type(t))
                            .replace('{', "\\{")
                            .replace('}', "\\}")
                    })
                    .collect();
                label.push_str(&attrs.join("\\l"));
                label.push_str("\\l");
            }
            let peripheries = if self.is_terminal(c) { 2 } else { 1 };
            out.push_str(&format!(
                "  \"{name}\" [label=\"{{{label}}}\", peripheries={peripheries}];\n"
            ));
        }
        for c in self.classes() {
            for &p in self.parents(c) {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    self.class_name(c),
                    self.class_name(p)
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::samples;

    #[test]
    fn dot_mentions_every_class_and_edge() {
        let s = samples::vehicle_rental();
        let dot = s.to_dot();
        assert!(dot.starts_with("digraph schema {"));
        for name in ["Vehicle", "Auto", "Discount", "Regular"] {
            assert!(dot.contains(&format!("\"{name}\"")), "missing {name}");
        }
        assert!(dot.contains("\"Auto\" -> \"Vehicle\""));
        assert!(dot.contains("\"Discount\" -> \"Client\""));
        // Set types are brace-escaped for the record syntax.
        assert!(dot.contains("VehRented: \\{Vehicle\\}"));
    }

    #[test]
    fn terminals_get_double_border() {
        let s = samples::single_class();
        let dot = s.to_dot();
        assert!(dot.contains("peripheries=2"));
    }
}

//! The example schemas of the paper, reconstructed from its figures and
//! prose. Shared by tests, examples, and the experiment harness.

use crate::ids::ClassId;
use crate::schema::{Schema, SchemaBuilder};
use crate::types::AttrType;

/// The vehicle-rental schema of **Example 1.1**.
///
/// `Auto`, `Trailer`, `Truck` are terminal subclasses of `Vehicle`;
/// `Discount` and `Regular` are terminal subclasses of `Client`. Clients rent
/// vehicles via the set-valued attribute `VehRented : {Vehicle}`, which
/// `Discount` refines to `{Auto}` — discount customers may rent automobiles
/// only. This refinement is what makes the paper's rewrite of
/// `x ∈ Vehicle` into `x ∈ Auto` sound.
pub fn vehicle_rental() -> Schema {
    let mut b = SchemaBuilder::new();
    let vehicle = b.class("Vehicle").unwrap();
    let auto = b.class("Auto").unwrap();
    let trailer = b.class("Trailer").unwrap();
    let truck = b.class("Truck").unwrap();
    let client = b.class("Client").unwrap();
    let discount = b.class("Discount").unwrap();
    let regular = b.class("Regular").unwrap();
    b.subclass(auto, vehicle).unwrap();
    b.subclass(trailer, vehicle).unwrap();
    b.subclass(truck, vehicle).unwrap();
    b.subclass(discount, client).unwrap();
    b.subclass(regular, client).unwrap();
    b.attribute(client, "VehRented", AttrType::SetOf(vehicle))
        .unwrap();
    b.attribute(discount, "VehRented", AttrType::SetOf(auto))
        .unwrap();
    // A little extra structure so evaluation workloads are not degenerate.
    b.attribute(vehicle, "AssignedTo", AttrType::Object(client))
        .unwrap();
    b.finish().unwrap()
}

/// The schema of **Example 1.2** (and Example 4.1).
///
/// `N₁` is partitioned by terminals `T₁, T₂, T₃`; `G` by terminals `H, I`;
/// `N₂` by terminals `U₁, U₂` (present in the figure, unused by the
/// queries). Attribute declarations follow the prose:
///
/// * `N₁.A : {G}` — inherited by `T₁` and `T₂`, refined on `T₃` to `{I}`
///   ("if x denotes an object from T₃, then its A-component contains objects
///   from the class I");
/// * `B : G` is declared on `T₂` and `T₃` but **not** on `N₁` or `T₁`
///   ("x cannot be an object from T₁ because T₁ does not have the
///   attribute B").
pub fn n1_partition() -> Schema {
    let mut b = SchemaBuilder::new();
    let n1 = b.class("N1").unwrap();
    let t1 = b.class("T1").unwrap();
    let t2 = b.class("T2").unwrap();
    let t3 = b.class("T3").unwrap();
    let g = b.class("G").unwrap();
    let h = b.class("H").unwrap();
    let i = b.class("I").unwrap();
    let n2 = b.class("N2").unwrap();
    let u1 = b.class("U1").unwrap();
    let u2 = b.class("U2").unwrap();
    b.subclass(t1, n1).unwrap();
    b.subclass(t2, n1).unwrap();
    b.subclass(t3, n1).unwrap();
    b.subclass(h, g).unwrap();
    b.subclass(i, g).unwrap();
    b.subclass(u1, n2).unwrap();
    b.subclass(u2, n2).unwrap();
    b.attribute(n1, "A", AttrType::SetOf(g)).unwrap();
    b.attribute(t3, "A", AttrType::SetOf(i)).unwrap();
    b.attribute(t2, "B", AttrType::Object(g)).unwrap();
    b.attribute(t3, "B", AttrType::Object(g)).unwrap();
    b.finish().unwrap()
}

/// The schema of **Example 1.3**.
///
/// `C` is a terminal class with an object-valued attribute `A : V`, where
/// `V` is partitioned by the unrelated terminal classes `T₁` and `T₂` — so
/// `T₁` and `T₂` are both subtypes of `type(C.A)` as the example requires.
pub fn unrelated_subtypes() -> Schema {
    let mut b = SchemaBuilder::new();
    let c = b.class("C").unwrap();
    let v = b.class("V").unwrap();
    let t1 = b.class("T1").unwrap();
    let t2 = b.class("T2").unwrap();
    b.subclass(t1, v).unwrap();
    b.subclass(t2, v).unwrap();
    b.attribute(c, "A", AttrType::Object(v)).unwrap();
    b.finish().unwrap()
}

/// The schema of **Example 3.1**.
///
/// Terminal classes `C` and `D`; `C.A : D` (object-valued, used by
/// `z = y.A`) and `C.B : {D}` so that `{D}` is a subtype of `type(C.B)`.
pub fn example_31() -> Schema {
    let mut b = SchemaBuilder::new();
    let c = b.class("C").unwrap();
    let d = b.class("D").unwrap();
    b.attribute(c, "A", AttrType::Object(d)).unwrap();
    b.attribute(c, "B", AttrType::SetOf(d)).unwrap();
    b.finish().unwrap()
}

/// The schema of **Example 3.2**: a single terminal class `C` with no
/// attributes. Containment there hinges purely on counting distinct objects.
pub fn single_class() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class("C").unwrap();
    b.finish().unwrap()
}

/// The schema of **Example 3.3**.
///
/// Distinct terminal classes `T₁` and `T₂` with `T₂.A : {T₁}`, making `T₁` a
/// subclass of `type(T₂.A)`'s member class.
pub fn example_33() -> Schema {
    let mut b = SchemaBuilder::new();
    let t1 = b.class("T1").unwrap();
    let t2 = b.class("T2").unwrap();
    b.attribute(t2, "A", AttrType::SetOf(t1)).unwrap();
    b.finish().unwrap()
}

/// Convenience: look up a class that is known to exist in a sample schema.
pub fn class(s: &Schema, name: &str) -> ClassId {
    s.class_id(name)
        .unwrap_or_else(|| panic!("sample schema lacks class `{name}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AttrType;

    #[test]
    fn vehicle_rental_terminals() {
        let s = vehicle_rental();
        let names: Vec<&str> = s.terminals().iter().map(|&c| s.class_name(c)).collect();
        assert_eq!(names, ["Auto", "Trailer", "Truck", "Discount", "Regular"]);
    }

    #[test]
    fn discount_refines_veh_rented_to_autos() {
        let s = vehicle_rental();
        let veh_rented = s.attr_id("VehRented").unwrap();
        let auto = class(&s, "Auto");
        assert_eq!(
            s.attr_type(class(&s, "Discount"), veh_rented),
            Some(AttrType::SetOf(auto))
        );
        let vehicle = class(&s, "Vehicle");
        assert_eq!(
            s.attr_type(class(&s, "Regular"), veh_rented),
            Some(AttrType::SetOf(vehicle))
        );
    }

    #[test]
    fn n1_partition_attribute_layout() {
        let s = n1_partition();
        let a = s.attr_id("A").unwrap();
        let bb = s.attr_id("B").unwrap();
        // T1 has A (inherited {G}) but no B.
        assert_eq!(
            s.attr_type(class(&s, "T1"), a),
            Some(AttrType::SetOf(class(&s, "G")))
        );
        assert_eq!(s.attr_type(class(&s, "T1"), bb), None);
        // T3 refines A to {I}.
        assert_eq!(
            s.attr_type(class(&s, "T3"), a),
            Some(AttrType::SetOf(class(&s, "I")))
        );
        // T2 and T3 both carry B : G.
        for t in ["T2", "T3"] {
            assert_eq!(
                s.attr_type(class(&s, t), bb),
                Some(AttrType::Object(class(&s, "G")))
            );
        }
    }

    #[test]
    fn n1_terminal_descendants() {
        let s = n1_partition();
        let n1 = class(&s, "N1");
        let names: Vec<&str> = s
            .terminal_descendants(n1)
            .iter()
            .map(|&c| s.class_name(c))
            .collect();
        assert_eq!(names, ["T1", "T2", "T3"]);
        let g = class(&s, "G");
        let names: Vec<&str> = s
            .terminal_descendants(g)
            .iter()
            .map(|&c| s.class_name(c))
            .collect();
        assert_eq!(names, ["H", "I"]);
    }

    #[test]
    fn unrelated_subtypes_layout() {
        let s = unrelated_subtypes();
        assert!(s.is_terminal(class(&s, "T1")));
        assert!(s.is_terminal(class(&s, "T2")));
        assert!(s.is_terminal(class(&s, "C")));
        assert!(!s.is_terminal(class(&s, "V")));
        let a = s.attr_id("A").unwrap();
        assert_eq!(
            s.attr_type(class(&s, "C"), a),
            Some(AttrType::Object(class(&s, "V")))
        );
    }

    #[test]
    fn all_samples_build() {
        // Each sample's builder must validate.
        let _ = vehicle_rental();
        let _ = n1_partition();
        let _ = unrelated_subtypes();
        let _ = example_31();
        let _ = single_class();
        let _ = example_33();
    }
}

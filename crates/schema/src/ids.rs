//! Interned identifiers for schema-level names.
//!
//! Classes and attributes are referred to by dense `u32` newtypes so that the
//! containment/minimization hot loops (homomorphism search, equality-graph
//! closure) can index into vectors instead of hashing strings.

use std::fmt;

/// Identifier of a class name in a [`Schema`](crate::Schema).
///
/// `ClassId`s are dense indices assigned in declaration order by
/// [`SchemaBuilder`](crate::SchemaBuilder); they are only meaningful relative
/// to the schema that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub(crate) u32);

/// Identifier of an attribute name in a [`Schema`](crate::Schema).
///
/// Attribute names are interned schema-wide (the paper treats an attribute
/// name such as `A` as global: `x.A` is well-typed whenever `x`'s class
/// declares `A`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub(crate) u32);

impl ClassId {
    /// Dense index of this class, suitable for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a `ClassId` from an index previously obtained via
    /// [`ClassId::index`]. The caller must ensure the index belongs to the
    /// same schema.
    #[inline]
    pub fn from_index(ix: usize) -> ClassId {
        ClassId(u32::try_from(ix).expect("class index exceeds u32"))
    }
}

impl AttrId {
    /// Dense index of this attribute, suitable for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct an `AttrId` from an index previously obtained via
    /// [`AttrId::index`].
    #[inline]
    pub fn from_index(ix: usize) -> AttrId {
        AttrId(u32::try_from(ix).expect("attribute index exceeds u32"))
    }
}

impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClassId({})", self.0)
    }
}

impl fmt::Debug for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AttrId({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_id_round_trips_through_index() {
        let id = ClassId(7);
        assert_eq!(ClassId::from_index(id.index()), id);
    }

    #[test]
    fn attr_id_round_trips_through_index() {
        let id = AttrId(3);
        assert_eq!(AttrId::from_index(id.index()), id);
    }

    #[test]
    fn ids_are_ordered_by_declaration_index() {
        assert!(ClassId(1) < ClassId(2));
        assert!(AttrId(0) < AttrId(9));
    }
}

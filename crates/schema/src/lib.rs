//! # oocq-schema
//!
//! OODB schemas for the query model of Chan, *Containment and Minimization
//! of Positive Conjunctive Queries in OODB's* (PODS 1992), §2.1.
//!
//! A schema `S = (C, σ, ≺)` consists of class names `C`, a mapping `σ` from
//! class names to tuple types, and the inheritance partial order `≺`. This
//! crate provides:
//!
//! * [`SchemaBuilder`] / [`Schema`] — construction with validation of
//!   acyclicity and Lecluse–Richard consistency (refinements must be
//!   subtypes), plus precomputed subclass closure, effective (inherited)
//!   tuple types, terminal classes, and terminal descendant sets;
//! * [`AttrType`] / [`TupleType`] — the type expressions `type-expr(C)`;
//! * [`samples`] — the paper's example schemas, used throughout the test
//!   suite and the experiment harness.
//!
//! The **Terminal Class Partitioning Assumption** is global to the library:
//! objects of a non-terminal class are partitioned by its terminal
//! descendants in every legal state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constraint;
mod dot;
mod error;
mod ids;
pub mod samples;
mod schema;
mod types;

pub use constraint::Constraint;
pub use error::SchemaError;
pub use ids::{AttrId, ClassId};
pub use schema::{Schema, SchemaBuilder, SchemaStats};
pub use types::{AttrType, TupleType};

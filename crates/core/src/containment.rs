//! Containment of terminal conjunctive queries (§3) and of unions of
//! terminal positive conjunctive queries (Theorem 4.1).
//!
//! Theorem 3.1: `Q₁ ⊆ Q₂` iff for every consistent augmentation `Q₁&S`
//! (`S` a satisfiable set of equalities among `Q₁`'s variables) and every
//! subset `W` of the satisfiable membership augmentations `T`, there is a
//! non-contradictory variable mapping `μ : Q₂ → Q₁&S&W` with
//! `τ(μ(t₂)) = τ(t₁)` for every standardization function `τ` — i.e.
//! `μ(t₂) ∈ [t₁]`.
//!
//! The corollaries specialize: `Q₂` inequality-free needs only the `W`
//! subsets (Cor. 3.2); `Q₂` positive-plus-inequalities needs only the
//! augmentations `S` (Cor. 3.3); `Q₂` positive needs a single mapping
//! `Q₂ → Q₁` (Cor. 3.4). [`strategy_for`] picks the cheapest sound variant;
//! [`contains_terminal_full`] forces the full Theorem 3.1 enumeration (used
//! by the benchmarks to measure what the corollaries save).

use crate::derive::{find_mapping, MappingGoal, TargetCtx};
use crate::error::CoreError;
use crate::explain::{Containment, MappingWitness};
use crate::satisfiability::{self, strip_non_range, var_classes, Satisfiability};
use oocq_query::{Atom, Query, QueryAnalysis, Term, UnionQuery, VarId};
use oocq_schema::{AttrType, ClassId, Schema};

/// Upper bound on the number of variable-partition augmentations times
/// membership subsets explored by the full Theorem 3.1 check, as a guard
/// against accidentally exponential inputs.
const MAX_BRANCHES: u64 = 1 << 22;

/// Which containment condition applies, by the atom content of the
/// right-hand query `Q₂`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Corollary 3.4: `Q₂` positive — one mapping `Q₂ → Q₁`.
    Positive,
    /// Corollary 3.2: `Q₂` has no inequality atom — enumerate `W` only.
    InequalityFree,
    /// Corollary 3.3: `Q₂` positive plus inequalities — enumerate `S` only.
    PositiveWithInequalities,
    /// Theorem 3.1: enumerate both `S` and `W`.
    Full,
}

/// The cheapest sound strategy for deciding `… ⊆ q2`.
pub fn strategy_for(q2: &Query) -> Strategy {
    if q2.is_positive() {
        Strategy::Positive
    } else if q2.is_positive_with_inequalities() {
        Strategy::PositiveWithInequalities
    } else if q2.is_inequality_free() {
        Strategy::InequalityFree
    } else {
        Strategy::Full
    }
}

/// Decide `q1 ⊆ q2` for terminal conjunctive queries, choosing the cheapest
/// applicable condition among Theorem 3.1 and Corollaries 3.2–3.4.
///
/// An unsatisfiable `q1` is contained in everything; a satisfiable `q1` is
/// never contained in an unsatisfiable `q2`.
///
/// # Examples
///
/// Example 3.2 of the paper: a chain of two inequalities is equivalent to a
/// single one (two distinct objects satisfy both), but the triangle needs
/// three:
///
/// ```
/// use oocq_core::contains_terminal;
/// use oocq_query::QueryBuilder;
/// use oocq_schema::samples;
///
/// let s = samples::single_class();
/// let c = s.class_id("C").unwrap();
/// let chain = |neqs: &[(usize, usize)]| {
///     let mut b = QueryBuilder::new("x0");
///     let vars: Vec<_> = std::iter::once(b.free())
///         .chain((1..3).map(|i| b.var(&format!("x{i}"))))
///         .collect();
///     for &v in &vars { b.range(v, [c]); }
///     for &(i, j) in neqs { b.neq_vars(vars[i], vars[j]); }
///     b.build()
/// };
/// let two = chain(&[(0, 1), (1, 2)]);
/// let three = chain(&[(0, 1), (1, 2), (0, 2)]);
/// assert!(contains_terminal(&s, &three, &two).unwrap());
/// assert!(!contains_terminal(&s, &two, &three).unwrap());
/// ```
pub fn contains_terminal(schema: &Schema, q1: &Query, q2: &Query) -> Result<bool, CoreError> {
    Ok(decide_with(schema, q1, q2, strategy_for(q2))?.holds())
}

/// Decide `q1 ⊆ q2` and return the full certificate: witness mappings for
/// every consistent augmentation branch on success, the failing branch on
/// refusal. See [`Containment`].
pub fn decide_containment(
    schema: &Schema,
    q1: &Query,
    q2: &Query,
) -> Result<Containment, CoreError> {
    decide_with(schema, q1, q2, strategy_for(q2))
}

/// Decide `q1 ⊆ q2` using the full Theorem 3.1 enumeration regardless of
/// `q2`'s shape (sound for every terminal `q2`; used to benchmark the
/// corollaries' savings).
pub fn contains_terminal_full(schema: &Schema, q1: &Query, q2: &Query) -> Result<bool, CoreError> {
    Ok(decide_with(schema, q1, q2, Strategy::Full)?.holds())
}

/// `q1 ≡ q2` for terminal conjunctive queries.
pub fn equivalent_terminal(schema: &Schema, q1: &Query, q2: &Query) -> Result<bool, CoreError> {
    Ok(contains_terminal(schema, q1, q2)? && contains_terminal(schema, q2, q1)?)
}

fn is_sat(schema: &Schema, q: &Query) -> Result<bool, CoreError> {
    let classes = var_classes(schema, q)?;
    let analysis = QueryAnalysis::of(q);
    Ok(matches!(
        satisfiability::check(schema, q, &classes, &analysis),
        Satisfiability::Satisfiable
    ))
}

fn decide_with(
    schema: &Schema,
    q1: &Query,
    q2: &Query,
    strategy: Strategy,
) -> Result<Containment, CoreError> {
    if let Satisfiability::Unsatisfiable(reason) = satisfiability::satisfiability(schema, q1)? {
        return Ok(Containment::HoldsVacuously(reason));
    }
    if let Satisfiability::Unsatisfiable(reason) = satisfiability::satisfiability(schema, q2)? {
        return Ok(Containment::FailsRightUnsatisfiable(reason));
    }
    let q1 = strip_non_range(q1);
    let q2 = strip_non_range(q2);
    let classes1 = var_classes(schema, &q1)?;
    let classes2 = var_classes(schema, &q2)?;

    let enum_s = matches!(
        strategy,
        Strategy::Full | Strategy::PositiveWithInequalities
    );
    let enum_w = matches!(strategy, Strategy::Full | Strategy::InequalityFree);

    let s_choices = if enum_s {
        equality_augmentations(&q1, &classes1)
    } else {
        vec![Vec::new()]
    };

    let mut branches: u64 = 0;
    let mut witnesses: Vec<MappingWitness> = Vec::new();
    for s_atoms in s_choices {
        let q1s = q1.with_extra_atoms(s_atoms.clone());
        if !is_sat(schema, &q1s)? {
            continue; // inconsistent augmentation: vacuous branch
        }
        let w_candidates = if enum_w {
            membership_candidates(schema, &q1s, &classes1)
        } else {
            Vec::new()
        };
        assert!(
            w_candidates.len() <= 22,
            "containment check has {} membership candidates; the Theorem 3.1 \
             subset enumeration would not terminate in reasonable time",
            w_candidates.len()
        );
        let subsets: u64 = 1u64 << w_candidates.len();
        for mask in 0..subsets {
            branches += 1;
            if branches > MAX_BRANCHES {
                // Give up loudly rather than loop for hours; callers at this
                // size should restructure their queries.
                panic!(
                    "containment check exceeded {MAX_BRANCHES} augmentation branches; \
                     query too large for the Theorem 3.1 enumeration"
                );
            }
            let w_atoms: Vec<Atom> = w_candidates
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, a)| a.clone())
                .collect();
            let mut augmentation: Vec<Atom> = s_atoms.clone();
            augmentation.extend(w_atoms.iter().cloned());
            let q1sw = q1s.with_extra_atoms(w_atoms);
            if !is_sat(schema, &q1sw)? {
                continue;
            }
            let ctx = TargetCtx::new(schema, q1sw)?;
            let goal = MappingGoal {
                source: &q2,
                source_classes: &classes2,
                free_anchor: ctx.q.free_var(),
                avoid_in_image: None,
            };
            match find_mapping(&ctx, &goal) {
                Some(assignment) => witnesses.push(MappingWitness {
                    augmentation,
                    assignment,
                }),
                None => return Ok(Containment::Fails { augmentation }),
            }
        }
    }
    Ok(Containment::Holds(witnesses))
}

/// Enumerate the equality-augmentation candidates `S` of Theorem 3.1: one
/// per partition of `q1`'s variable equivalence classes, merging only
/// blocks whose variables share a terminal class (merging across classes is
/// always inconsistent, so those partitions are skipped at the source).
fn equality_augmentations(q1: &Query, classes: &[ClassId]) -> Vec<Vec<Atom>> {
    let analysis = QueryAnalysis::of(q1);
    let graph = analysis.graph();
    // Current variable blocks: representative variable per equivalence class.
    let mut reps: Vec<VarId> = Vec::new();
    let mut seen_roots: Vec<usize> = Vec::new();
    for v in q1.vars() {
        let r = graph.class_id(Term::Var(v)).expect("var node");
        if !seen_roots.contains(&r) {
            seen_roots.push(r);
            reps.push(v);
        }
    }
    let block_class: Vec<ClassId> = reps.iter().map(|v| classes[v.index()]).collect();
    let k = reps.len();

    // Restricted-growth enumeration of partitions of the k blocks, where a
    // block may only join a group of the same terminal class.
    let mut out: Vec<Vec<Atom>> = Vec::new();
    let mut assignment = vec![0usize; k];
    fn recurse(
        i: usize,
        groups: &mut Vec<ClassId>,
        assignment: &mut [usize],
        block_class: &[ClassId],
        out: &mut Vec<Vec<usize>>,
    ) {
        if i == assignment.len() {
            out.push(assignment.to_vec());
            return;
        }
        for g in 0..groups.len() {
            if groups[g] == block_class[i] {
                assignment[i] = g;
                recurse(i + 1, groups, assignment, block_class, out);
            }
        }
        groups.push(block_class[i]);
        assignment[i] = groups.len() - 1;
        recurse(i + 1, groups, assignment, block_class, out);
        groups.pop();
    }
    let mut partitions: Vec<Vec<usize>> = Vec::new();
    recurse(
        0,
        &mut Vec::new(),
        &mut assignment,
        &block_class,
        &mut partitions,
    );

    for p in partitions {
        let mut atoms: Vec<Atom> = Vec::new();
        let mut first_of_group: Vec<Option<VarId>> = vec![None; k];
        for (block, &g) in p.iter().enumerate() {
            match first_of_group[g] {
                None => first_of_group[g] = Some(reps[block]),
                Some(first) => atoms.push(Atom::Eq(Term::Var(first), Term::Var(reps[block]))),
            }
        }
        out.push(atoms);
    }
    out
}

/// The candidate membership augmentations `T` of Theorem 3.1 for `Q₁&S`:
/// atoms `x ∈ t.P` with `x` a variable, `t.P` a set term, the addition
/// satisfiable, and the membership not already derivable (adding a derivable
/// membership changes nothing, so it is pruned to halve the subset space).
fn membership_candidates(schema: &Schema, q1s: &Query, classes: &[ClassId]) -> Vec<Atom> {
    // `Q₁&S` has the same variables as `Q₁`, so the caller's class vector
    // stays valid.
    debug_assert_eq!(classes.len(), q1s.var_count());
    let analysis = QueryAnalysis::of(q1s);
    let graph = analysis.graph();

    // One representative set term per equivalence class of set terms.
    let mut set_reps: Vec<(VarId, oocq_schema::AttrId)> = Vec::new();
    let mut seen: Vec<usize> = Vec::new();
    for &t in graph.terms() {
        if let Term::Attr(v, a) = t {
            if analysis.is_set_term(t) {
                let root = graph.class_id(t).expect("node");
                if !seen.contains(&root) {
                    seen.push(root);
                    set_reps.push((v, a));
                }
            }
        }
    }

    let derivable = |x: VarId, t: VarId, a: oocq_schema::AttrId| {
        q1s.atoms().iter().any(|atom| {
            matches!(atom, Atom::Member(s, u, b)
                if *b == a
                    && graph.same(Term::Var(*s), Term::Var(x))
                    && graph.same(Term::Var(*u), Term::Var(t)))
        })
    };
    let contradicted = |x: VarId, t: VarId, a: oocq_schema::AttrId| {
        q1s.atoms().iter().any(|atom| {
            matches!(atom, Atom::NonMember(s, u, b)
                if *b == a
                    && graph.same(Term::Var(*s), Term::Var(x))
                    && graph.same(Term::Var(*u), Term::Var(t)))
        })
    };

    let mut out: Vec<Atom> = Vec::new();
    for &(t, a) in &set_reps {
        let Some(AttrType::SetOf(d)) = schema.attr_type(classes[t.index()], a) else {
            continue; // ill-typed set term: Q₁&S was unsatisfiable anyway
        };
        for x in q1s.vars() {
            if !schema.terminal_descendants(d).contains(&classes[x.index()]) {
                continue; // x can never be a member: not in T
            }
            if derivable(x, t, a) || contradicted(x, t, a) {
                continue;
            }
            out.push(Atom::Member(x, t, a));
        }
    }
    out
}

/// Theorem 4.1: containment of unions of terminal **positive** conjunctive
/// queries is pairwise: `M ⊆ N` iff every satisfiable `Qᵢ` of `M` is
/// contained in some `Pⱼ` of `N`.
pub fn union_contains(schema: &Schema, m: &UnionQuery, n: &UnionQuery) -> Result<bool, CoreError> {
    for q in m {
        if !q.is_positive() {
            return Err(CoreError::NotPositive);
        }
    }
    for p in n {
        if !p.is_positive() {
            return Err(CoreError::NotPositive);
        }
    }
    'outer: for q in m {
        if !is_sat(schema, q)? {
            continue; // unsatisfiable subquery contributes nothing
        }
        for p in n {
            if contains_terminal(schema, q, p)? {
                continue 'outer;
            }
        }
        return Ok(false);
    }
    Ok(true)
}

/// `M ≡ N` for unions of terminal positive conjunctive queries.
pub fn union_equivalent(schema: &Schema, m: &UnionQuery, n: &UnionQuery) -> Result<bool, CoreError> {
    Ok(union_contains(schema, m, n)? && union_contains(schema, n, m)?)
}

/// Containment of arbitrary (not necessarily terminal) **positive**
/// conjunctive queries: normalize, expand to terminal unions
/// (Proposition 2.1), then apply Theorem 4.1.
pub fn contains_positive(schema: &Schema, q1: &Query, q2: &Query) -> Result<bool, CoreError> {
    if !q1.is_positive() || !q2.is_positive() {
        return Err(CoreError::NotPositive);
    }
    let n1 = oocq_query::normalize(q1, schema)?;
    let n2 = oocq_query::normalize(q2, schema)?;
    let u1 = crate::expand::expand_satisfiable(schema, &n1)?;
    let u2 = crate::expand::expand_satisfiable(schema, &n2)?;
    union_contains(schema, &u1, &u2)
}

/// `q1 ≡ q2` for positive conjunctive queries.
pub fn equivalent_positive(schema: &Schema, q1: &Query, q2: &Query) -> Result<bool, CoreError> {
    Ok(contains_positive(schema, q1, q2)? && contains_positive(schema, q2, q1)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;

    #[test]
    fn example_31_containment_both_directions() {
        let s = samples::example_31();
        let c = s.class_id("C").unwrap();
        let d = s.class_id("D").unwrap();
        let a = s.attr_id("A").unwrap();
        let bb = s.attr_id("B").unwrap();

        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [c]).range(y, [c]).range(z, [d]);
        b.eq_attr(z, y, a);
        b.member(z, y, bb);
        b.eq_vars(x, y);
        let q1 = b.build();

        let mut b = QueryBuilder::new("y");
        let y2 = b.free();
        let z2 = b.var("z");
        b.range(y2, [c]).range(z2, [d]);
        b.eq_attr(z2, y2, a);
        let q2 = b.build();

        assert!(contains_terminal(&s, &q1, &q2).unwrap());
        assert!(!contains_terminal(&s, &q2, &q1).unwrap());
        assert!(!equivalent_terminal(&s, &q1, &q2).unwrap());
        let _ = (x, y, z);
    }

    /// The three inequality-chain queries of Example 3.2.
    fn example_32_query(s: &Schema, extra_xz: bool) -> (Query, Query) {
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [c]).range(y, [c]).range(z, [c]);
        b.neq_vars(x, y).neq_vars(y, z);
        if extra_xz {
            b.neq_vars(x, z);
        }
        let q1_or_3 = b.build();

        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).neq_vars(x, y);
        (q1_or_3, b.build())
    }

    #[test]
    fn example_32_two_distinct_objects_suffice() {
        let s = samples::single_class();
        let (q1, q2) = example_32_query(&s, false);
        assert!(contains_terminal(&s, &q1, &q2).unwrap());
        assert!(contains_terminal(&s, &q2, &q1).unwrap());
        assert!(equivalent_terminal(&s, &q1, &q2).unwrap());
    }

    #[test]
    fn example_32_three_distinct_objects_are_stronger() {
        let s = samples::single_class();
        let (q3, _) = example_32_query(&s, true);
        let (q1, _) = example_32_query(&s, false);
        assert!(contains_terminal(&s, &q3, &q1).unwrap());
        assert!(!contains_terminal(&s, &q1, &q3).unwrap());
    }

    #[test]
    fn example_33_non_membership_direction() {
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [t1]).range(y, [t2]);
        let q1 = b.build();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [t1]).range(y, [t2]);
        b.non_member(x, y, a);
        let q2 = b.build();
        assert!(contains_terminal(&s, &q2, &q1).unwrap());
        assert!(!contains_terminal(&s, &q1, &q2).unwrap());
    }

    #[test]
    fn example_13_implied_inequality_equivalence() {
        let s = samples::unrelated_subtypes();
        let c = s.class_id("C").unwrap();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let build = |with_neq: bool| {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            let y = b.var("y");
            let sv = b.var("s");
            let tv = b.var("t");
            b.range(x, [c]).range(y, [c]).range(sv, [t1]).range(tv, [t2]);
            b.eq_attr(sv, x, a);
            b.eq_attr(tv, y, a);
            if with_neq {
                b.neq_vars(x, y);
            }
            b.build()
        };
        let q1 = build(true);
        let q2 = build(false);
        assert!(contains_terminal(&s, &q1, &q2).unwrap());
        assert!(contains_terminal(&s, &q2, &q1).unwrap());
    }

    #[test]
    fn unsat_left_is_contained_in_everything() {
        let s = samples::unrelated_subtypes();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("T1").unwrap()]);
        b.range(y, [s.class_id("T2").unwrap()]);
        b.eq_vars(x, y);
        let unsat = b.build();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("T2").unwrap()]);
        let other = b.build();
        assert!(contains_terminal(&s, &unsat, &other).unwrap());
        assert!(!contains_terminal(&s, &other, &unsat).unwrap());
    }

    #[test]
    fn strategy_selection() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mk = |neq: bool, nonmem: bool| {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            let y = b.var("y");
            b.range(x, [c]).range(y, [c]);
            if neq {
                b.neq_vars(x, y);
            }
            if nonmem {
                // C has no attributes; use a synthetic atom anyway (strategy
                // selection is purely syntactic).
                b.non_member(x, y, oocq_schema::AttrId::from_index(0));
            }
            b.build()
        };
        assert_eq!(strategy_for(&mk(false, false)), Strategy::Positive);
        assert_eq!(
            strategy_for(&mk(true, false)),
            Strategy::PositiveWithInequalities
        );
        assert_eq!(strategy_for(&mk(false, true)), Strategy::InequalityFree);
        assert_eq!(strategy_for(&mk(true, true)), Strategy::Full);
    }

    #[test]
    fn full_agrees_with_fast_paths_on_paper_examples() {
        let s = samples::single_class();
        let (q1, q2) = example_32_query(&s, false);
        assert!(contains_terminal_full(&s, &q1, &q2).unwrap());
        assert!(contains_terminal_full(&s, &q2, &q1).unwrap());
        let (q3, _) = example_32_query(&s, true);
        assert!(!contains_terminal_full(&s, &q1, &q3).unwrap());
    }

    #[test]
    fn union_containment_is_pairwise() {
        let s = samples::vehicle_rental();
        let mk = |cls: &str| {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            b.range(x, [s.class_id(cls).unwrap()]);
            b.build()
        };
        let m = UnionQuery::new(vec![mk("Auto"), mk("Truck")]);
        let n = UnionQuery::new(vec![mk("Truck"), mk("Auto"), mk("Trailer")]);
        assert!(union_contains(&s, &m, &n).unwrap());
        assert!(!union_contains(&s, &n, &m).unwrap());
        assert!(union_equivalent(&s, &m, &m).unwrap());
    }

    #[test]
    fn union_containment_requires_positive() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).neq_vars(x, y);
        let u = UnionQuery::single(b.build());
        assert!(matches!(
            union_contains(&s, &u, &u),
            Err(CoreError::NotPositive)
        ));
    }

    #[test]
    fn positive_containment_via_expansion_example_11() {
        // { x in Vehicle … } ≡ { x in Auto … } for the discount query.
        let s = samples::vehicle_rental();
        let veh = s.attr_id("VehRented").unwrap();
        let mk = |cls: &str| {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            let y = b.var("y");
            b.range(x, [s.class_id(cls).unwrap()]);
            b.range(y, [s.class_id("Discount").unwrap()]);
            b.member(x, y, veh);
            b.build()
        };
        let vehicle_q = mk("Vehicle");
        let auto_q = mk("Auto");
        assert!(equivalent_positive(&s, &vehicle_q, &auto_q).unwrap());
        // But not equivalent to the Truck version (which is unsatisfiable,
        // hence strictly below).
        let truck_q = mk("Truck");
        assert!(contains_positive(&s, &truck_q, &auto_q).unwrap());
        assert!(!contains_positive(&s, &auto_q, &truck_q).unwrap());
    }
}

//! Containment of terminal conjunctive queries (§3) and of unions of
//! terminal positive conjunctive queries (Theorem 4.1).
//!
//! Theorem 3.1: `Q₁ ⊆ Q₂` iff for every consistent augmentation `Q₁&S`
//! (`S` a satisfiable set of equalities among `Q₁`'s variables) and every
//! subset `W` of the satisfiable membership augmentations `T`, there is a
//! non-contradictory variable mapping `μ : Q₂ → Q₁&S&W` with
//! `τ(μ(t₂)) = τ(t₁)` for every standardization function `τ` — i.e.
//! `μ(t₂) ∈ [t₁]`.
//!
//! The corollaries specialize: `Q₂` inequality-free needs only the `W`
//! subsets (Cor. 3.2); `Q₂` positive-plus-inequalities needs only the
//! augmentations `S` (Cor. 3.3); `Q₂` positive needs a single mapping
//! `Q₂ → Q₁` (Cor. 3.4). [`strategy_for`] picks the cheapest sound variant;
//! [`contains_terminal_full`] forces the full Theorem 3.1 enumeration (used
//! by the benchmarks to measure what the corollaries save).
//!
//! Branch enumeration and scheduling live in [`crate::branch`]: the
//! functions here build a [`BranchPlan`] and run it under an
//! [`EngineConfig`] — either the caller's (the `*_with` variants) or the
//! environment's ([`EngineConfig::from_env`], honouring `OOCQ_THREADS`).

use crate::branch::{par_prefix, BranchBase, BranchPlan, EngineConfig};
use crate::error::CoreError;
use crate::explain::Containment;
use crate::satisfiability::{self, strip_non_range, var_classes, Satisfiability};
use oocq_query::{Query, QueryAnalysis, UnionQuery};
use oocq_schema::Schema;

/// Which containment condition applies, by the atom content of the
/// right-hand query `Q₂`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Corollary 3.4: `Q₂` positive — one mapping `Q₂ → Q₁`.
    Positive,
    /// Corollary 3.2: `Q₂` has no inequality atom — enumerate `W` only.
    InequalityFree,
    /// Corollary 3.3: `Q₂` positive plus inequalities — enumerate `S` only.
    PositiveWithInequalities,
    /// Theorem 3.1: enumerate both `S` and `W`.
    Full,
}

/// The cheapest sound strategy for deciding `… ⊆ q2`.
pub fn strategy_for(q2: &Query) -> Strategy {
    if q2.is_positive() {
        Strategy::Positive
    } else if q2.is_positive_with_inequalities() {
        Strategy::PositiveWithInequalities
    } else if q2.is_inequality_free() {
        Strategy::InequalityFree
    } else {
        Strategy::Full
    }
}

/// Decide `q1 ⊆ q2` for terminal conjunctive queries, choosing the cheapest
/// applicable condition among Theorem 3.1 and Corollaries 3.2–3.4.
///
/// An unsatisfiable `q1` is contained in everything; a satisfiable `q1` is
/// never contained in an unsatisfiable `q2`.
///
/// # Examples
///
/// Example 3.2 of the paper: a chain of two inequalities is equivalent to a
/// single one (two distinct objects satisfy both), but the triangle needs
/// three:
///
/// ```
/// use oocq_core::contains_terminal;
/// use oocq_query::QueryBuilder;
/// use oocq_schema::samples;
///
/// let s = samples::single_class();
/// let c = s.class_id("C").unwrap();
/// let chain = |neqs: &[(usize, usize)]| {
///     let mut b = QueryBuilder::new("x0");
///     let vars: Vec<_> = std::iter::once(b.free())
///         .chain((1..3).map(|i| b.var(&format!("x{i}"))))
///         .collect();
///     for &v in &vars { b.range(v, [c]); }
///     for &(i, j) in neqs { b.neq_vars(vars[i], vars[j]); }
///     b.build()
/// };
/// let two = chain(&[(0, 1), (1, 2)]);
/// let three = chain(&[(0, 1), (1, 2), (0, 2)]);
/// assert!(contains_terminal(&s, &three, &two).unwrap());
/// assert!(!contains_terminal(&s, &two, &three).unwrap());
/// ```
pub fn contains_terminal(schema: &Schema, q1: &Query, q2: &Query) -> Result<bool, CoreError> {
    contains_terminal_with(schema, q1, q2, &EngineConfig::from_env())
}

/// [`contains_terminal`] under an explicit [`EngineConfig`]. Consults (and
/// feeds) `cfg.cache` when one is installed; the cached value is the same
/// boolean the engine computes, so the cache is observationally invisible.
pub fn contains_terminal_with(
    schema: &Schema,
    q1: &Query,
    q2: &Query,
    cfg: &EngineConfig,
) -> Result<bool, CoreError> {
    if let Some(cache) = cfg.decision_cache() {
        if let Some(hit) = cache.get_contains(schema, q1, q2) {
            return Ok(hit);
        }
    }
    let holds = decide_with(schema, q1, q2, strategy_for(q2), cfg, false)?.holds();
    if let Some(cache) = cfg.decision_cache() {
        cache.put_contains(schema, q1, q2, holds);
    }
    Ok(holds)
}

/// Decide `q1 ⊆ q2` and return the full certificate: witness mappings for
/// every consistent augmentation branch on success, the failing branch on
/// refusal. See [`Containment`].
pub fn decide_containment(
    schema: &Schema,
    q1: &Query,
    q2: &Query,
) -> Result<Containment, CoreError> {
    decide_containment_with(schema, q1, q2, &EngineConfig::from_env())
}

/// [`decide_containment`] under an explicit [`EngineConfig`]. The
/// certificate is independent of the configuration: parallel runs report
/// the same witnesses in the same order, and the same failing branch, as
/// [`EngineConfig::serial`].
pub fn decide_containment_with(
    schema: &Schema,
    q1: &Query,
    q2: &Query,
    cfg: &EngineConfig,
) -> Result<Containment, CoreError> {
    decide_with(schema, q1, q2, strategy_for(q2), cfg, true)
}

/// Decide `q1 ⊆ q2` using the full Theorem 3.1 enumeration regardless of
/// `q2`'s shape (sound for every terminal `q2`; used to benchmark the
/// corollaries' savings).
pub fn contains_terminal_full(schema: &Schema, q1: &Query, q2: &Query) -> Result<bool, CoreError> {
    contains_terminal_full_with(schema, q1, q2, &EngineConfig::from_env())
}

/// [`contains_terminal_full`] under an explicit [`EngineConfig`].
pub fn contains_terminal_full_with(
    schema: &Schema,
    q1: &Query,
    q2: &Query,
    cfg: &EngineConfig,
) -> Result<bool, CoreError> {
    Ok(decide_with(schema, q1, q2, Strategy::Full, cfg, false)?.holds())
}

/// `q1 ≡ q2` for terminal conjunctive queries.
pub fn equivalent_terminal(schema: &Schema, q1: &Query, q2: &Query) -> Result<bool, CoreError> {
    equivalent_terminal_with(schema, q1, q2, &EngineConfig::from_env())
}

/// [`equivalent_terminal`] under an explicit [`EngineConfig`]. With
/// `cfg.iso_fast_path` (the default), structurally isomorphic queries are
/// recognized as equivalent without running Theorem 3.1 at all — a variable
/// renaming preserves the answer set, so isomorphic queries are equivalent
/// over every schema.
pub fn equivalent_terminal_with(
    schema: &Schema,
    q1: &Query,
    q2: &Query,
    cfg: &EngineConfig,
) -> Result<bool, CoreError> {
    if cfg.iso_fast_path && oocq_query::isomorphic(q1, q2) {
        return Ok(true);
    }
    Ok(
        contains_terminal_with(schema, q1, q2, cfg)?
            && contains_terminal_with(schema, q2, q1, cfg)?,
    )
}

fn is_sat(schema: &Schema, q: &Query) -> Result<bool, CoreError> {
    let classes = var_classes(schema, q)?;
    let analysis = QueryAnalysis::of(q);
    Ok(matches!(
        satisfiability::check(schema, q, &classes, &analysis),
        Satisfiability::Satisfiable
    ))
}

fn decide_with(
    schema: &Schema,
    q1: &Query,
    q2: &Query,
    strategy: Strategy,
    cfg: &EngineConfig,
    collect: bool,
) -> Result<Containment, CoreError> {
    if let Some(theory) = crate::theory::active_theory(cfg, schema) {
        return crate::theory::decide_pair_with_theory(
            theory.as_ref(),
            schema,
            q1,
            q2,
            strategy,
            cfg,
            collect,
        );
    }
    decide_plain(schema, q1, q2, strategy, cfg, collect)
}

/// The theory-free terminal decision: satisfiability screens on both
/// sides, then the Theorem 3.1 branch enumeration. This is the body every
/// decision ran through before theories existed; [`decide_with`] still
/// bottoms out here (directly, or per compiled branch via
/// [`crate::theory::decide_pair_with_theory`]).
pub(crate) fn decide_plain(
    schema: &Schema,
    q1: &Query,
    q2: &Query,
    strategy: Strategy,
    cfg: &EngineConfig,
    collect: bool,
) -> Result<Containment, CoreError> {
    if let Satisfiability::Unsatisfiable(reason) = satisfiability::satisfiability(schema, q1)? {
        return Ok(Containment::HoldsVacuously(reason));
    }
    if let Satisfiability::Unsatisfiable(reason) = satisfiability::satisfiability(schema, q2)? {
        return Ok(Containment::FailsRightUnsatisfiable(reason));
    }
    let q1 = strip_non_range(q1);
    let q2 = strip_non_range(q2);
    let classes1 = var_classes(schema, &q1)?;
    let classes2 = var_classes(schema, &q2)?;
    let base1 = BranchBase::build(&q1, &classes1);
    decide_sides(
        schema, &q1, &classes1, &base1, &q2, &classes2, strategy, cfg, collect,
    )
}

/// Run the Theorem 3.1 branch enumeration over pre-derived sides: both
/// queries stripped and known satisfiable, terminal classes resolved, and
/// the left side's shared branch state ([`BranchBase`]) already built —
/// either just above ([`decide_with`]) or memoized on a
/// [`PreparedQuery`](crate::PreparedQuery). This is the single implementation
/// both the free functions and the [`Engine`](crate::Engine) bottom out in.
#[allow(clippy::too_many_arguments)]
pub(crate) fn decide_sides(
    schema: &Schema,
    q1: &Query,
    classes1: &[oocq_schema::ClassId],
    base1: &BranchBase,
    q2: &Query,
    classes2: &[oocq_schema::ClassId],
    strategy: Strategy,
    cfg: &EngineConfig,
    collect: bool,
) -> Result<Containment, CoreError> {
    let mut enum_s = matches!(
        strategy,
        Strategy::Full | Strategy::PositiveWithInequalities
    );
    let mut enum_w = matches!(strategy, Strategy::Full | Strategy::InequalityFree);

    // Cost-based dispatch: before any block is materialized, downgrade an
    // enumeration dimension the prepared analysis proves trivial. These are
    // exact structural facts about `Q₁`, not heuristics — without a set
    // term every `T(S)` is empty, and without two mergeable equivalence
    // blocks the identity partition is the only consistent `S` — so the
    // downgraded plan enumerates the very same branches.
    if enum_w && !crate::branch::has_set_terms(&base1.analysis) {
        enum_w = false;
    }
    if enum_s && !crate::branch::has_mergeable_blocks(q1, classes1, &base1.analysis) {
        enum_s = false;
    }
    // The empty partition is always a consistent `S`, so its candidate
    // count bounds the branch space from below: provably-over-limit spaces
    // are rejected here, before planning charges the budget for partitions.
    if enum_w {
        let floor = crate::branch::w_candidate_floor(schema, q1, classes1, base1);
        if floor > 63 {
            return Err(CoreError::BranchSpaceOverflow {
                candidates: floor,
                limit: crate::MAX_BRANCHES,
            });
        }
        if 1u64 << floor > crate::MAX_BRANCHES {
            return Err(CoreError::BranchLimit {
                branches: 1u64 << floor,
                limit: crate::MAX_BRANCHES,
            });
        }
    }

    let plan = BranchPlan::build(schema, q1, classes1, base1, enum_s, enum_w, &cfg.budget)?;
    plan.run(q2, classes2, cfg, collect)
}

/// Theorem 4.1: containment of unions of terminal **positive** conjunctive
/// queries is pairwise: `M ⊆ N` iff every satisfiable `Qᵢ` of `M` is
/// contained in some `Pⱼ` of `N`.
pub fn union_contains(schema: &Schema, m: &UnionQuery, n: &UnionQuery) -> Result<bool, CoreError> {
    union_contains_with(schema, m, n, &EngineConfig::from_env())
}

/// [`union_contains`] under an explicit [`EngineConfig`]. With
/// `cfg.threads > 1` the per-`Qᵢ` checks of Theorem 4.1 fan out across the
/// worker pool (each inner containment then runs serially — the queries are
/// positive, so each is a single branch anyway).
pub fn union_contains_with(
    schema: &Schema,
    m: &UnionQuery,
    n: &UnionQuery,
    cfg: &EngineConfig,
) -> Result<bool, CoreError> {
    union_contains_inner(schema, m, n, cfg, false)
}

/// [`union_contains_with`] with the per-subquery vacuity check optionally
/// skipped: `presatisfied` asserts every subquery of `m` is already known
/// satisfiable (true of satisfiability-filtered expansions), in which case
/// the Theorem 4.1 sweep goes straight to the pairwise checks.
pub(crate) fn union_contains_inner(
    schema: &Schema,
    m: &UnionQuery,
    n: &UnionQuery,
    cfg: &EngineConfig,
    presatisfied: bool,
) -> Result<bool, CoreError> {
    for q in m {
        if !q.is_positive() {
            return Err(CoreError::NotPositive);
        }
    }
    for p in n {
        if !p.is_positive() {
            return Err(CoreError::NotPositive);
        }
    }
    let queries: Vec<&Query> = m.iter().collect();
    let parallel = cfg.threads > 1 && queries.len() >= 2;
    let inner = if parallel {
        cfg.serial_inner()
    } else {
        cfg.clone()
    };
    // Is Qᵢ covered — unsatisfiable, or contained in some Pⱼ?
    let covered = |i: usize| -> Result<bool, CoreError> {
        cfg.budget.charge(1)?;
        let q = queries[i];
        if !presatisfied && !is_sat(schema, q)? {
            return Ok(true); // unsatisfiable subquery contributes nothing
        }
        for p in n {
            if contains_terminal_with(schema, q, p, &inner)? {
                return Ok(true);
            }
        }
        Ok(false)
    };
    let results = par_prefix(
        queries.len(),
        if parallel { cfg.threads } else { 1 },
        covered,
        |r| !matches!(r, Ok(true)),
    );
    for (_, r) in results {
        if !r? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// `M ≡ N` for unions of terminal positive conjunctive queries.
pub fn union_equivalent(
    schema: &Schema,
    m: &UnionQuery,
    n: &UnionQuery,
) -> Result<bool, CoreError> {
    Ok(union_contains(schema, m, n)? && union_contains(schema, n, m)?)
}

/// Containment of arbitrary (not necessarily terminal) **positive**
/// conjunctive queries: normalize, expand to terminal unions
/// (Proposition 2.1), then apply Theorem 4.1.
pub fn contains_positive(schema: &Schema, q1: &Query, q2: &Query) -> Result<bool, CoreError> {
    contains_positive_with(schema, q1, q2, &EngineConfig::from_env())
}

/// [`contains_positive`] under an explicit [`EngineConfig`] (governing both
/// the expansion filter and the pairwise union checks).
pub fn contains_positive_with(
    schema: &Schema,
    q1: &Query,
    q2: &Query,
    cfg: &EngineConfig,
) -> Result<bool, CoreError> {
    if !q1.is_positive() || !q2.is_positive() {
        return Err(CoreError::NotPositive);
    }
    if let Some(cache) = cfg.decision_cache() {
        if let Some(hit) = cache.get_contains(schema, q1, q2) {
            return Ok(hit);
        }
    }
    let n1 = oocq_query::normalize(q1, schema)?;
    let n2 = oocq_query::normalize(q2, schema)?;
    let u1 = crate::expand::expand_satisfiable_with(schema, &n1, cfg)?;
    let u2 = crate::expand::expand_satisfiable_with(schema, &n2, cfg)?;
    let holds = union_contains_with(schema, &u1, &u2, cfg)?;
    if let Some(cache) = cfg.decision_cache() {
        cache.put_contains(schema, q1, q2, holds);
    }
    Ok(holds)
}

/// `q1 ≡ q2` for positive conjunctive queries.
pub fn equivalent_positive(schema: &Schema, q1: &Query, q2: &Query) -> Result<bool, CoreError> {
    Ok(contains_positive(schema, q1, q2)? && contains_positive(schema, q2, q1)?)
}

/// Containment dispatch across query shapes: §3 for terminal pairs, §4 for
/// positive pairs, left-expansion against a terminal right side. Shapes
/// outside the fragment the paper proves decidable are rejected with
/// [`CoreError::NotPositive`].
pub fn dispatch_containment(schema: &Schema, qa: &Query, qb: &Query) -> Result<bool, CoreError> {
    dispatch_containment_with(schema, qa, qb, &EngineConfig::from_env())
}

/// [`dispatch_containment`] under an explicit [`EngineConfig`].
pub fn dispatch_containment_with(
    schema: &Schema,
    qa: &Query,
    qb: &Query,
    cfg: &EngineConfig,
) -> Result<bool, CoreError> {
    if qa.is_terminal(schema) && qb.is_terminal(schema) {
        return contains_terminal_with(schema, qa, qb, cfg);
    }
    if qa.is_positive() && qb.is_positive() {
        return contains_positive_with(schema, qa, qb, cfg);
    }
    if qb.is_terminal(schema) {
        let ua = crate::expand::expand_satisfiable_with(
            schema,
            &oocq_query::normalize(qa, schema)?,
            cfg,
        )?;
        for sub in &ua {
            if !contains_terminal_with(schema, sub, qb, cfg)? {
                return Ok(false);
            }
        }
        return Ok(true);
    }
    // Outside the decidable fragment the paper establishes.
    Err(CoreError::NotPositive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;
    use std::time::Duration;

    #[test]
    fn example_31_containment_both_directions() {
        let s = samples::example_31();
        let c = s.class_id("C").unwrap();
        let d = s.class_id("D").unwrap();
        let a = s.attr_id("A").unwrap();
        let bb = s.attr_id("B").unwrap();

        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [c]).range(y, [c]).range(z, [d]);
        b.eq_attr(z, y, a);
        b.member(z, y, bb);
        b.eq_vars(x, y);
        let q1 = b.build();

        let mut b = QueryBuilder::new("y");
        let y2 = b.free();
        let z2 = b.var("z");
        b.range(y2, [c]).range(z2, [d]);
        b.eq_attr(z2, y2, a);
        let q2 = b.build();

        assert!(contains_terminal(&s, &q1, &q2).unwrap());
        assert!(!contains_terminal(&s, &q2, &q1).unwrap());
        assert!(!equivalent_terminal(&s, &q1, &q2).unwrap());
        let _ = (x, y, z);
    }

    /// The three inequality-chain queries of Example 3.2.
    fn example_32_query(s: &Schema, extra_xz: bool) -> (Query, Query) {
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [c]).range(y, [c]).range(z, [c]);
        b.neq_vars(x, y).neq_vars(y, z);
        if extra_xz {
            b.neq_vars(x, z);
        }
        let q1_or_3 = b.build();

        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).neq_vars(x, y);
        (q1_or_3, b.build())
    }

    #[test]
    fn example_32_two_distinct_objects_suffice() {
        let s = samples::single_class();
        let (q1, q2) = example_32_query(&s, false);
        assert!(contains_terminal(&s, &q1, &q2).unwrap());
        assert!(contains_terminal(&s, &q2, &q1).unwrap());
        assert!(equivalent_terminal(&s, &q1, &q2).unwrap());
    }

    #[test]
    fn example_32_three_distinct_objects_are_stronger() {
        let s = samples::single_class();
        let (q3, _) = example_32_query(&s, true);
        let (q1, _) = example_32_query(&s, false);
        assert!(contains_terminal(&s, &q3, &q1).unwrap());
        assert!(!contains_terminal(&s, &q1, &q3).unwrap());
    }

    #[test]
    fn example_33_non_membership_direction() {
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [t1]).range(y, [t2]);
        let q1 = b.build();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [t1]).range(y, [t2]);
        b.non_member(x, y, a);
        let q2 = b.build();
        assert!(contains_terminal(&s, &q2, &q1).unwrap());
        assert!(!contains_terminal(&s, &q1, &q2).unwrap());
    }

    #[test]
    fn example_13_implied_inequality_equivalence() {
        let s = samples::unrelated_subtypes();
        let c = s.class_id("C").unwrap();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let build = |with_neq: bool| {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            let y = b.var("y");
            let sv = b.var("s");
            let tv = b.var("t");
            b.range(x, [c])
                .range(y, [c])
                .range(sv, [t1])
                .range(tv, [t2]);
            b.eq_attr(sv, x, a);
            b.eq_attr(tv, y, a);
            if with_neq {
                b.neq_vars(x, y);
            }
            b.build()
        };
        let q1 = build(true);
        let q2 = build(false);
        assert!(contains_terminal(&s, &q1, &q2).unwrap());
        assert!(contains_terminal(&s, &q2, &q1).unwrap());
    }

    #[test]
    fn unsat_left_is_contained_in_everything() {
        let s = samples::unrelated_subtypes();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("T1").unwrap()]);
        b.range(y, [s.class_id("T2").unwrap()]);
        b.eq_vars(x, y);
        let unsat = b.build();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("T2").unwrap()]);
        let other = b.build();
        assert!(contains_terminal(&s, &unsat, &other).unwrap());
        assert!(!contains_terminal(&s, &other, &unsat).unwrap());
    }

    #[test]
    fn strategy_selection() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mk = |neq: bool, nonmem: bool| {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            let y = b.var("y");
            b.range(x, [c]).range(y, [c]);
            if neq {
                b.neq_vars(x, y);
            }
            if nonmem {
                // C has no attributes; use a synthetic atom anyway (strategy
                // selection is purely syntactic).
                b.non_member(x, y, oocq_schema::AttrId::from_index(0));
            }
            b.build()
        };
        assert_eq!(strategy_for(&mk(false, false)), Strategy::Positive);
        assert_eq!(
            strategy_for(&mk(true, false)),
            Strategy::PositiveWithInequalities
        );
        assert_eq!(strategy_for(&mk(false, true)), Strategy::InequalityFree);
        assert_eq!(strategy_for(&mk(true, true)), Strategy::Full);
    }

    #[test]
    fn full_agrees_with_fast_paths_on_paper_examples() {
        let s = samples::single_class();
        let (q1, q2) = example_32_query(&s, false);
        assert!(contains_terminal_full(&s, &q1, &q2).unwrap());
        assert!(contains_terminal_full(&s, &q2, &q1).unwrap());
        let (q3, _) = example_32_query(&s, true);
        assert!(!contains_terminal_full(&s, &q1, &q3).unwrap());
    }

    #[test]
    fn parallel_engine_matches_serial_certificates() {
        // Force the Full strategy (both S and W enumerated) and compare the
        // entire certificate — witness list, order, failing branch — between
        // the serial reference engine and a 4-thread pool with no serial
        // fallback.
        let s = samples::single_class();
        let par = EngineConfig {
            threads: 4,
            min_parallel_branches: 1,
            ..EngineConfig::serial()
        };
        let ser = EngineConfig::serial();
        let (q1, q2) = example_32_query(&s, false);
        let (q3, _) = example_32_query(&s, true);
        for (a, b) in [(&q1, &q2), (&q2, &q1), (&q1, &q3), (&q3, &q1)] {
            let serial = decide_containment_with(&s, a, b, &ser).unwrap();
            let parallel = decide_containment_with(&s, a, b, &par).unwrap();
            assert_eq!(serial, parallel);
        }
    }

    #[test]
    fn branch_limit_is_recoverable() {
        // One set term plus 23 candidate member variables makes 2^23
        // membership subsets — over MAX_BRANCHES. Strategy must be
        // InequalityFree (q2 has a non-membership atom) so W is enumerated.
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x0");
        let x0 = b.free();
        b.range(x0, [t1]);
        for i in 1..24 {
            let xi = b.var(&format!("x{i}"));
            b.range(xi, [t1]);
        }
        let y = b.var("y");
        b.range(y, [t2]);
        // x0 ∈ y.A makes y.A a set term; x1..x23 are then 23 fresh candidate
        // memberships (x0's is derivable, hence pruned).
        b.member(x0, y, a);
        let q1 = b.build();

        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y2 = b.var("y");
        b.range(x, [t1]).range(y2, [t2]);
        b.non_member(x, y2, a);
        let q2 = b.build();

        assert_eq!(strategy_for(&q2), Strategy::InequalityFree);
        assert!(matches!(
            contains_terminal(&s, &q1, &q2),
            Err(CoreError::BranchLimit { branches, limit })
                if branches > limit && limit == crate::MAX_BRANCHES
        ));
    }

    #[test]
    fn branch_space_overflow_is_reported_not_saturated() {
        // 65 candidate memberships push 2^|T(S)| past what a 64-bit subset
        // mask can even represent. The old code saturated `1 << 65` silently;
        // now the engine reports the real candidate count up front.
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x0");
        let x0 = b.free();
        b.range(x0, [t1]);
        for i in 1..=65 {
            let xi = b.var(&format!("x{i}"));
            b.range(xi, [t1]);
        }
        let y = b.var("y");
        b.range(y, [t2]);
        b.member(x0, y, a);
        let q1 = b.build();

        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y2 = b.var("y");
        b.range(x, [t1]).range(y2, [t2]);
        b.non_member(x, y2, a);
        let q2 = b.build();

        assert!(matches!(
            contains_terminal(&s, &q1, &q2),
            Err(CoreError::BranchSpaceOverflow { candidates: 65, limit })
                if limit == crate::MAX_BRANCHES
        ));
    }

    /// A 2^n membership-subset space that Theorem 3.1 must walk to the end:
    /// `Q₁ ⊆ Q₂` *holds*, so no early refutation cuts the scan short, and
    /// with `candidates` below 22 the size guard never fires either — only a
    /// budget can stop it. The pair is also *prune-resistant*: `Q₂`'s
    /// non-membership `u ∉ y.A` maps to the first `xi` whose membership the
    /// current `W` excludes (the `xi` precede `z` in pool order), so every
    /// witness carries a live danger bit and breaks as soon as that `xi`
    /// joins `W`; only at the full subset does `u` fall through to `z`.
    /// The monotone pruner therefore never collapses the block, and the
    /// engine really walks all 2^n masks, which is what the budget tests
    /// here rely on.
    fn explosion_pair(s: &Schema, candidates: usize) -> (Query, Query) {
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x0");
        let x0 = b.free();
        b.range(x0, [t1]);
        for i in 1..=candidates {
            let xi = b.var(&format!("x{i}"));
            b.range(xi, [t1]);
        }
        let z = b.var("z");
        let y = b.var("y");
        b.range(z, [t1]).range(y, [t2]);
        b.member(x0, y, a);
        b.non_member(z, y, a);
        let q1 = b.build();

        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let u = b.var("u");
        let y2 = b.var("y");
        b.range(x, [t1]).range(u, [t1]).range(y2, [t2]);
        b.non_member(u, y2, a);
        (q1, b.build())
    }

    #[test]
    fn work_limit_times_out_serial_runs_and_is_recoverable() {
        let s = samples::example_33();
        let (q1, q2) = explosion_pair(&s, 12); // 2^12 branches
        assert_eq!(strategy_for(&q2), Strategy::InequalityFree);
        let tiny = EngineConfig::serial().with_budget(crate::Budget::with_limit(100));
        assert!(matches!(
            contains_terminal_with(&s, &q1, &q2, &tiny),
            Err(CoreError::Timeout {
                deadline: false,
                ..
            })
        ));
        // The trip is scoped to that budget: a fresh config decides fine —
        // and the containment genuinely holds, so the full 2^12 walk was
        // the only way there.
        assert!(contains_terminal_with(&s, &q1, &q2, &EngineConfig::serial()).unwrap());
    }

    #[test]
    fn work_limit_times_out_parallel_runs_unless_a_refutation_concludes() {
        let s = samples::example_33();
        let (q1, q2) = explosion_pair(&s, 12);
        let par = |budget| EngineConfig {
            threads: 4,
            min_parallel_branches: 1,
            ..EngineConfig::serial().with_budget(budget)
        };
        assert!(matches!(
            contains_terminal_with(&s, &q1, &q2, &par(crate::Budget::with_limit(100))),
            Err(CoreError::Timeout {
                deadline: false,
                ..
            })
        ));
        // A generous budget changes nothing about the decision.
        assert!(
            contains_terminal_with(&s, &q1, &q2, &par(crate::Budget::with_limit(1 << 20))).unwrap()
        );
        // Reversed, containment fails at an early branch: the refutation is
        // conclusive, so even a tight budget may return it — and whichever
        // of `Fails`/`Timeout` wins the race, it must never claim `Holds`.
        match contains_terminal_with(&s, &q2, &q1, &par(crate::Budget::with_limit(100))) {
            Ok(holds) => assert!(!holds),
            Err(e) => assert!(matches!(e, CoreError::Timeout { .. }), "{e:?}"),
        }
    }

    #[test]
    fn expired_deadline_times_out_before_any_real_work() {
        let s = samples::example_33();
        let (q1, q2) = explosion_pair(&s, 12);
        let cfg = EngineConfig::serial().with_budget(crate::Budget::with_deadline(Duration::ZERO));
        assert!(matches!(
            contains_terminal_with(&s, &q1, &q2, &cfg),
            Err(CoreError::Timeout { deadline: true, .. })
        ));
    }

    #[test]
    fn union_containment_is_pairwise() {
        let s = samples::vehicle_rental();
        let mk = |cls: &str| {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            b.range(x, [s.class_id(cls).unwrap()]);
            b.build()
        };
        let m = UnionQuery::new(vec![mk("Auto"), mk("Truck")]);
        let n = UnionQuery::new(vec![mk("Truck"), mk("Auto"), mk("Trailer")]);
        assert!(union_contains(&s, &m, &n).unwrap());
        assert!(!union_contains(&s, &n, &m).unwrap());
        assert!(union_equivalent(&s, &m, &m).unwrap());
    }

    #[test]
    fn union_containment_requires_positive() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).neq_vars(x, y);
        let u = UnionQuery::single(b.build());
        assert!(matches!(
            union_contains(&s, &u, &u),
            Err(CoreError::NotPositive)
        ));
    }

    #[test]
    fn iso_fast_path_is_invisible_in_equivalence() {
        // With and without the isomorphism short-circuit, equivalent_terminal
        // answers identically — including on a renamed pair (fast path fires)
        // and on non-isomorphic pairs both equivalent and inequivalent.
        let s = samples::single_class();
        let (q1, q2) = example_32_query(&s, false);
        let (q3, _) = example_32_query(&s, true);
        // A renamed copy of q1: isomorphic, so the fast path fires.
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("a");
        let a = b.free();
        let bv = b.var("b");
        let cv = b.var("c");
        b.range(a, [c]).range(bv, [c]).range(cv, [c]);
        b.neq_vars(a, bv).neq_vars(bv, cv);
        let q1_renamed = b.build();
        assert!(oocq_query::isomorphic(&q1, &q1_renamed));
        assert!(!oocq_query::isomorphic(&q1, &q2));

        let on = EngineConfig::serial();
        let off = EngineConfig::serial().without_iso_fast_path();
        for (x, y) in [
            (&q1, &q1_renamed),
            (&q1, &q2),
            (&q2, &q1),
            (&q1, &q3),
            (&q3, &q1),
        ] {
            assert_eq!(
                equivalent_terminal_with(&s, x, y, &on).unwrap(),
                equivalent_terminal_with(&s, x, y, &off).unwrap(),
            );
        }
        // q1 ≡ q2 holds despite non-isomorphism; q1 ≢ q3.
        assert!(equivalent_terminal_with(&s, &q1, &q2, &on).unwrap());
        assert!(!equivalent_terminal_with(&s, &q1, &q3, &on).unwrap());
    }

    /// A fake cache that counts traffic and remembers puts verbatim —
    /// enough to observe the entry points consulting and feeding it.
    struct CountingCache {
        store: std::sync::Mutex<std::collections::HashMap<(String, String), bool>>,
        gets: std::sync::atomic::AtomicUsize,
        hits: std::sync::atomic::AtomicUsize,
        puts: std::sync::atomic::AtomicUsize,
    }

    impl CountingCache {
        fn new() -> Self {
            CountingCache {
                store: std::sync::Mutex::new(std::collections::HashMap::new()),
                gets: 0.into(),
                hits: 0.into(),
                puts: 0.into(),
            }
        }
        fn key(schema: &Schema, q1: &Query, q2: &Query) -> (String, String) {
            (
                q1.display(schema).to_string(),
                q2.display(schema).to_string(),
            )
        }
    }

    impl crate::DecisionCache for CountingCache {
        fn get_contains(&self, schema: &Schema, q1: &Query, q2: &Query) -> Option<bool> {
            use std::sync::atomic::Ordering::Relaxed;
            self.gets.fetch_add(1, Relaxed);
            let hit = self
                .store
                .lock()
                .unwrap()
                .get(&Self::key(schema, q1, q2))
                .copied();
            if hit.is_some() {
                self.hits.fetch_add(1, Relaxed);
            }
            hit
        }
        fn put_contains(&self, schema: &Schema, q1: &Query, q2: &Query, holds: bool) {
            self.puts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.store
                .lock()
                .unwrap()
                .insert(Self::key(schema, q1, q2), holds);
        }
        fn get_minimized(&self, _schema: &Schema, _q: &Query) -> Option<oocq_query::UnionQuery> {
            None
        }
        fn put_minimized(&self, _schema: &Schema, _q: &Query, _result: &oocq_query::UnionQuery) {}
    }

    #[test]
    fn decision_cache_is_consulted_and_invisible() {
        use std::sync::atomic::Ordering::Relaxed;
        let s = samples::single_class();
        let (q1, q2) = example_32_query(&s, false);
        let cache = std::sync::Arc::new(CountingCache::new());
        let cached = EngineConfig::serial().with_cache(cache.clone());
        let plain = EngineConfig::serial();

        let cold = contains_terminal_with(&s, &q1, &q2, &cached).unwrap();
        assert_eq!(cache.hits.load(Relaxed), 0);
        assert_eq!(cache.puts.load(Relaxed), 1);
        let warm = contains_terminal_with(&s, &q1, &q2, &cached).unwrap();
        assert_eq!(cache.hits.load(Relaxed), 1);
        assert_eq!(cache.puts.load(Relaxed), 1, "hits are not re-put");
        let uncached = contains_terminal_with(&s, &q1, &q2, &plain).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(cold, uncached, "cache-on equals cache-off");
    }

    #[test]
    fn positive_containment_via_expansion_example_11() {
        // { x in Vehicle … } ≡ { x in Auto … } for the discount query.
        let s = samples::vehicle_rental();
        let veh = s.attr_id("VehRented").unwrap();
        let mk = |cls: &str| {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            let y = b.var("y");
            b.range(x, [s.class_id(cls).unwrap()]);
            b.range(y, [s.class_id("Discount").unwrap()]);
            b.member(x, y, veh);
            b.build()
        };
        let vehicle_q = mk("Vehicle");
        let auto_q = mk("Auto");
        assert!(equivalent_positive(&s, &vehicle_q, &auto_q).unwrap());
        // But not equivalent to the Truck version (which is unsatisfiable,
        // hence strictly below).
        let truck_q = mk("Truck");
        assert!(contains_positive(&s, &truck_q, &auto_q).unwrap());
        assert!(!contains_positive(&s, &auto_q, &truck_q).unwrap());
    }
}

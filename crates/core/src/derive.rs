//! Derivability of positive atoms, contradiction of negative atoms, and the
//! search for non-contradictory variable mappings (§3.1).
//!
//! For a terminal conjunctive query `Q` with equality graph `E(Q)`:
//!
//! * `Q ⊢ x ∈ C` iff `x ∈ C` is an atom of `Q`;
//! * `Q ⊢ f(x) = g(y)` iff there are `s ∈ [x]`, `t ∈ [y]` with `f(s)`,
//!   `g(t)` object terms of `Q` and `f(s) ∈ [g(t)]`;
//! * `Q ⊢ x ∈ y.A` iff there are `s ∈ [x]`, `t ∈ [y]` with `s ∈ t.A` an
//!   atom of `Q`;
//! * `Q` does not contradict `f(x) ≠ g(y)` iff there are `s ∈ [x]`,
//!   `t ∈ [y]` with `f(s)`, `g(t)` object terms and `Q & {f(s) ≠ g(t)}`
//!   satisfiable — by the satisfiability procedure this reduces to the two
//!   terms lying in *different* equivalence classes;
//! * `Q` does not contradict `x ∉ y.A` iff some `t ∈ [y]` has `t.A` a set
//!   term of `Q` and `Q & {x ∉ t.A}` is satisfiable — which reduces to the
//!   absence of a derivable membership `x ∈ t.A`.
//!
//! A variable mapping `μ : Q₂ → Q₁` is **non-contradictory** when `Q₁`
//! derives `μ(A)` for every positive atom `A` of `Q₂` and does not
//! contradict `μ(A)` for every inequality/non-membership atom. Because the
//! congruence closure of `E(Q)` merges `s.A` across equated bases, every
//! derivability test above is a constant number of class lookups.

use crate::error::CoreError;
use crate::satisfiability::var_classes;
use oocq_query::{Atom, Query, QueryAnalysis, Term, VarId};
use oocq_schema::{AttrId, ClassId, Schema};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Derivability indexes over a target query, computed once and shared by
/// every [`TargetCtx`] built on the same (query, analysis) pair. The branch
/// engine builds one of these per `S`-augmentation and reuses it across all
/// `2^|W|` membership subsets of that augmentation. `Clone` lets a prepared
/// query hand its memoized base indexes to the empty-augmentation block
/// without a rebuild.
#[derive(Clone)]
pub(crate) struct TargetIndexes {
    /// Derived membership instances `(root[s], root[t], A)` for each atom
    /// `s ∈ t.A`.
    pub(crate) members: HashSet<(usize, usize, AttrId)>,
    /// For `(root of base-variable class, A)`: the class of the object term
    /// `s.A` (unique when present, by congruence).
    obj_attr_image: HashMap<(usize, AttrId), usize>,
    /// `(root of base-variable class, A)` pairs for which some `t.A` is a
    /// set term.
    set_attr_present: HashSet<(usize, AttrId)>,
    /// Variables grouped by terminal class, candidate pools for the search.
    by_class: HashMap<ClassId, Vec<VarId>>,
}

impl TargetIndexes {
    /// Build the indexes for `q` under the given analysis.
    pub(crate) fn build(q: &Query, classes: &[ClassId], analysis: &QueryAnalysis) -> TargetIndexes {
        let graph = analysis.graph();
        let var_root = |v: VarId| {
            graph
                .class_id(Term::Var(v))
                .expect("variable is always a node")
        };

        let mut members = HashSet::new();
        for a in q.atoms() {
            if let Atom::Member(x, y, attr) = a {
                members.insert((var_root(*x), var_root(*y), *attr));
            }
        }
        let mut obj_attr_image = HashMap::new();
        let mut set_attr_present = HashSet::new();
        for &t in graph.terms() {
            if let Term::Attr(v, a) = t {
                let key = (var_root(v), a);
                if analysis.is_object_term(t) {
                    obj_attr_image.insert(key, graph.class_id(t).unwrap());
                } else if analysis.is_set_term(t) {
                    set_attr_present.insert(key);
                }
            }
        }
        let mut by_class: HashMap<ClassId, Vec<VarId>> = HashMap::new();
        for v in q.vars() {
            by_class.entry(classes[v.index()]).or_default().push(v);
        }
        TargetIndexes {
            members,
            obj_attr_image,
            set_attr_present,
            by_class,
        }
    }
}

/// A containment target `Q₁` (possibly augmented) viewed through precomputed
/// indexes that answer derivability queries in O(1). Borrows all heavy state
/// (query, classes, analysis, indexes), so constructing one per augmentation
/// branch costs only a clone of the membership key set — which the branch
/// engine then extends in place with the branch's `W` atoms.
pub(crate) struct TargetCtx<'s> {
    pub(crate) schema: &'s Schema,
    /// Terminal class of each variable.
    pub(crate) classes: &'s [ClassId],
    pub(crate) analysis: &'s QueryAnalysis,
    shared: &'s TargetIndexes,
    /// Membership keys: `shared.members` plus any per-branch `W` additions.
    members: HashSet<(usize, usize, AttrId)>,
}

impl<'s> TargetCtx<'s> {
    /// View a terminal target query through prebuilt indexes.
    pub(crate) fn new(
        schema: &'s Schema,
        classes: &'s [ClassId],
        analysis: &'s QueryAnalysis,
        shared: &'s TargetIndexes,
    ) -> TargetCtx<'s> {
        TargetCtx {
            schema,
            classes,
            analysis,
            shared,
            members: shared.members.clone(),
        }
    }

    /// Record an additional derived membership `(root[x], root[t], A)` —
    /// used by the branch engine to fold a branch's `W` atoms into the
    /// index without re-scanning the query.
    pub(crate) fn add_member_key(&mut self, key: (usize, usize, AttrId)) {
        self.members.insert(key);
    }

    #[inline]
    fn var_root(&self, v: VarId) -> usize {
        self.analysis
            .graph()
            .class_id(Term::Var(v))
            .expect("variable is always a node")
    }

    /// The equivalence class of the object denoted by a (mapped) term, if
    /// the target has a matching object term.
    fn term_image(&self, t: Term) -> Option<usize> {
        match t {
            Term::Var(v) => Some(self.var_root(v)),
            Term::Attr(v, a) => self
                .shared
                .obj_attr_image
                .get(&(self.var_root(v), a))
                .copied(),
        }
    }

    /// `Q ⊢ μ(x) ∈ C`.
    pub(crate) fn derives_range(&self, v: VarId, c: ClassId) -> bool {
        self.classes[v.index()] == c
    }

    /// `Q ⊢ a = b` for mapped terms.
    pub(crate) fn derives_eq(&self, a: Term, b: Term) -> bool {
        match (self.term_image(a), self.term_image(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// `Q ⊢ x ∈ y.A` for mapped variables.
    pub(crate) fn derives_member(&self, x: VarId, y: VarId, a: AttrId) -> bool {
        self.members
            .contains(&(self.var_root(x), self.var_root(y), a))
    }

    /// Does `Q` *not* contradict `a ≠ b` for mapped terms?
    pub(crate) fn not_contradict_neq(&self, a: Term, b: Term) -> bool {
        match (self.term_image(a), self.term_image(b)) {
            (Some(x), Some(y)) => x != y,
            _ => false,
        }
    }

    /// Does `Q` *not* contradict `x ∉ y.A` for mapped variables?
    pub(crate) fn not_contradict_nonmember(&self, x: VarId, y: VarId, a: AttrId) -> bool {
        let key = (self.var_root(y), a);
        self.shared.set_attr_present.contains(&key) && !self.derives_member(x, y, a)
    }

    /// Does `Q` *not* contradict `x ∉ C₁ ∨ … ∨ Cₙ`? (Only used defensively;
    /// §2.5 strips non-range atoms from satisfiable queries.)
    pub(crate) fn not_contradict_nonrange(&self, v: VarId, cs: &[ClassId]) -> bool {
        !cs.iter()
            .any(|&c| self.schema.is_subclass(self.classes[v.index()], c))
    }

    /// Check one atom of the source query under a (partial) mapping whose
    /// entries for this atom's variables are all set.
    pub(crate) fn atom_holds(&self, atom: &Atom, map: &[VarId]) -> bool {
        let m = |v: VarId| map[v.index()];
        match atom {
            Atom::Range(v, cs) => cs.len() == 1 && self.derives_range(m(*v), cs[0]),
            Atom::Eq(a, b) => self.derives_eq(a.with_var(m(a.var())), b.with_var(m(b.var()))),
            Atom::Member(x, y, attr) => self.derives_member(m(*x), m(*y), *attr),
            Atom::Neq(a, b) => {
                self.not_contradict_neq(a.with_var(m(a.var())), b.with_var(m(b.var())))
            }
            Atom::NonMember(x, y, attr) => self.not_contradict_nonmember(m(*x), m(*y), *attr),
            Atom::NonRange(v, cs) => self.not_contradict_nonrange(m(*v), cs),
        }
    }

    /// Variables of the target in a given terminal class.
    pub(crate) fn vars_of_class(&self, c: ClassId) -> &[VarId] {
        self.shared
            .by_class
            .get(&c)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Are two target variables in the same equivalence class of `E(Q)`?
    pub(crate) fn same_var_class(&self, a: VarId, b: VarId) -> bool {
        self.var_root(a) == self.var_root(b)
    }
}

/// An owning bundle of everything a [`TargetCtx`] borrows, for callers (the
/// minimizers) that index one query at a time rather than sharing state
/// across branches.
pub(crate) struct TargetData {
    q: Query,
    classes: Vec<ClassId>,
    analysis: QueryAnalysis,
    indexes: TargetIndexes,
}

impl TargetData {
    /// Analyse and index a terminal target query.
    pub(crate) fn new(schema: &Schema, q: Query) -> Result<TargetData, CoreError> {
        let classes = var_classes(schema, &q)?;
        let analysis = QueryAnalysis::of(&q);
        let indexes = TargetIndexes::build(&q, &classes, &analysis);
        Ok(TargetData {
            q,
            classes,
            analysis,
            indexes,
        })
    }

    /// The indexed query.
    pub(crate) fn query(&self) -> &Query {
        &self.q
    }

    /// Borrow a [`TargetCtx`] view.
    pub(crate) fn ctx<'s>(&'s self, schema: &'s Schema) -> TargetCtx<'s> {
        TargetCtx::new(schema, &self.classes, &self.analysis, &self.indexes)
    }
}

/// Options for the mapping search.
pub(crate) struct MappingGoal<'a> {
    /// The source query `Q₂`.
    pub(crate) source: &'a Query,
    /// Terminal class of each source variable.
    pub(crate) source_classes: &'a [ClassId],
    /// The target variable class the mapped free variable must land in
    /// (condition (i): `τ(μ(t₂)) = τ(t₁)`).
    pub(crate) free_anchor: VarId,
    /// A target variable that must NOT appear in the image (used by
    /// minimization to search for non-surjective self-maps); `None` for
    /// plain containment.
    pub(crate) avoid_in_image: Option<VarId>,
}

/// Candidate-selection strategy for [`find_mapping_with`].
///
/// `MostConstrained` is the production order. `Static` is the historical
/// free-variable-first declaration-order search and `Scrambled` a
/// deterministically permuted variant of it; both are kept as differential
/// references — whether a non-contradictory mapping *exists* for a branch is
/// independent of the order the search tries variables in, so every order
/// must reach the same verdict on every branch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SearchOrder {
    /// Dynamic most-constrained-first selection with forward checking:
    /// always extend the variable with the smallest live candidate pool,
    /// and filter pools through every atom that has exactly one unmapped
    /// variable left.
    #[default]
    MostConstrained,
    /// The free variable first, then declaration order; no propagation.
    Static,
    /// Declaration order deterministically permuted by the seed; no
    /// propagation. Differential-test reference only.
    Scrambled(u64),
}

/// Shared homomorphism-search counters, aggregated into
/// [`crate::branch::BranchStats`]. Atomic so the parallel branch runner's
/// workers can share one instance.
#[derive(Debug, Default)]
pub(crate) struct MappingCounters {
    /// Completed `find_mapping` searches.
    pub(crate) searches: AtomicU64,
    /// Candidate assignments retracted across those searches.
    pub(crate) backtracks: AtomicU64,
}

impl MappingCounters {
    fn record(&self, backtracks: u64) {
        self.searches.fetch_add(1, Ordering::Relaxed);
        self.backtracks.fetch_add(backtracks, Ordering::Relaxed);
    }
}

/// Find a non-contradictory variable mapping `μ : source → target`
/// satisfying conditions (i) and (ii) of Theorem 3.1 (and optionally
/// avoiding a target variable in its image). Returns the mapping as a
/// vector indexed by source variable.
pub(crate) fn find_mapping(ctx: &TargetCtx<'_>, goal: &MappingGoal<'_>) -> Option<Vec<VarId>> {
    find_mapping_with(ctx, goal, SearchOrder::MostConstrained, None)
}

/// [`find_mapping`] under an explicit [`SearchOrder`], with optional search
/// counters.
pub(crate) fn find_mapping_with(
    ctx: &TargetCtx<'_>,
    goal: &MappingGoal<'_>,
    order: SearchOrder,
    counters: Option<&MappingCounters>,
) -> Option<Vec<VarId>> {
    match order {
        SearchOrder::MostConstrained => search_most_constrained(ctx, goal, counters),
        SearchOrder::Static => {
            let q2 = goal.source;
            let mut vars: Vec<VarId> = Vec::with_capacity(q2.var_count());
            vars.push(q2.free_var());
            vars.extend(q2.vars().filter(|&v| v != q2.free_var()));
            search_in_order(ctx, goal, vars, counters)
        }
        SearchOrder::Scrambled(seed) => {
            let q2 = goal.source;
            let mut vars: Vec<VarId> = q2.vars().collect();
            // Fisher–Yates with an inline xorshift so the permutation is a
            // pure function of the seed.
            let mut state = seed | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for i in (1..vars.len()).rev() {
                vars.swap(i, (next() % (i as u64 + 1)) as usize);
            }
            search_in_order(ctx, goal, vars, counters)
        }
    }
}

/// The initial candidate pool for one source variable: the target variables
/// of its terminal class, minus `avoid_in_image`, with the free variable
/// further anchored to `[free_anchor]` (condition (i)).
fn initial_pool(ctx: &TargetCtx<'_>, goal: &MappingGoal<'_>, v: VarId) -> Vec<VarId> {
    ctx.vars_of_class(goal.source_classes[v.index()])
        .iter()
        .copied()
        .filter(|&w| {
            if Some(w) == goal.avoid_in_image {
                return false;
            }
            if v == goal.source.free_var() {
                ctx.same_var_class(w, goal.free_anchor)
            } else {
                true
            }
        })
        .collect()
}

/// Reference search: try variables in the fixed order given, checking each
/// atom as soon as its last variable is mapped. No propagation.
fn search_in_order(
    ctx: &TargetCtx<'_>,
    goal: &MappingGoal<'_>,
    order: Vec<VarId>,
    counters: Option<&MappingCounters>,
) -> Option<Vec<VarId>> {
    let q2 = goal.source;
    let n = q2.var_count();
    let mut map = vec![VarId::from_index(0); n];
    if n == 0 {
        if let Some(c) = counters {
            c.record(0);
        }
        return Some(map);
    }
    let mut position = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        position[v.index()] = i;
    }
    // Atoms become checkable once their last variable is mapped.
    let mut ready: Vec<Vec<&Atom>> = vec![Vec::new(); n];
    for a in q2.atoms() {
        let depth = a
            .vars()
            .iter()
            .map(|v| position[v.index()])
            .max()
            .unwrap_or(0);
        ready[depth].push(a);
    }
    let candidates: Vec<Vec<VarId>> = order.iter().map(|&v| initial_pool(ctx, goal, v)).collect();

    fn recurse(
        ctx: &TargetCtx<'_>,
        order: &[VarId],
        candidates: &[Vec<VarId>],
        ready: &[Vec<&Atom>],
        map: &mut [VarId],
        depth: usize,
        backtracks: &mut u64,
    ) -> bool {
        if depth == order.len() {
            return true;
        }
        let v = order[depth];
        for &w in &candidates[depth] {
            map[v.index()] = w;
            if ready[depth].iter().all(|a| ctx.atom_holds(a, map))
                && recurse(ctx, order, candidates, ready, map, depth + 1, backtracks)
            {
                return true;
            }
            *backtracks += 1;
        }
        false
    }
    let mut backtracks = 0u64;
    let found = recurse(
        ctx,
        &order,
        &candidates,
        &ready,
        &mut map,
        0,
        &mut backtracks,
    );
    if let Some(c) = counters {
        c.record(backtracks);
    }
    found.then_some(map)
}

/// A candidate still in its pool (pools mark removals with the depth they
/// were filtered at, so backtracking restores them in O(1) per entry).
const LIVE: u32 = u32::MAX;

/// Most-constrained-first search state. Pools keep their deterministic
/// construction order throughout — forward filtering only *marks* entries
/// removed — so candidate iteration order (and hence the witness found) is
/// a pure function of the goal, never of the filtering history.
struct Mcf<'a, 's> {
    ctx: &'a TargetCtx<'s>,
    atoms: Vec<&'a Atom>,
    /// Distinct variables of each atom.
    atom_vars: Vec<Vec<VarId>>,
    /// Atom indices touching each source variable.
    atoms_of: Vec<Vec<usize>>,
    /// Distinct not-yet-assigned variables per atom.
    unassigned_in: Vec<usize>,
    assigned: Vec<bool>,
    map: Vec<VarId>,
    pool: Vec<Vec<VarId>>,
    /// `LIVE`, or the depth at which forward filtering removed the entry.
    removed: Vec<Vec<u32>>,
    live: Vec<usize>,
    /// Per-depth `(var, pool position)` removals, for undo.
    trail: Vec<Vec<(u32, u32)>>,
    backtracks: u64,
}

impl Mcf<'_, '_> {
    /// The unassigned variable with the smallest live pool; ties broken by
    /// connectivity to already-assigned variables, then variable index —
    /// all deterministic.
    fn pick(&self) -> usize {
        let mut best = (usize::MAX, usize::MAX, usize::MAX);
        for v in 0..self.map.len() {
            if self.assigned[v] {
                continue;
            }
            let connected = self.atoms_of[v]
                .iter()
                .filter(|&&ai| self.unassigned_in[ai] < self.atom_vars[ai].len())
                .count();
            let key = (self.live[v], usize::MAX - connected, v);
            if key < best {
                best = key;
            }
        }
        best.2
    }

    /// Map `v ↦ w`: check every atom this completes, and forward-filter the
    /// pool of the single remaining variable of every atom this brings to
    /// one unassigned variable. Returns `false` on a contradiction or an
    /// emptied pool; effects stay recorded either way and are reverted by
    /// `undo`.
    fn assign(&mut self, v: usize, w: VarId, depth: usize) -> bool {
        self.map[v] = w;
        self.assigned[v] = true;
        for &ai in &self.atoms_of[v] {
            self.unassigned_in[ai] -= 1;
        }
        for i in 0..self.atoms_of[v].len() {
            let ai = self.atoms_of[v][i];
            match self.unassigned_in[ai] {
                0 if !self.ctx.atom_holds(self.atoms[ai], &self.map) => {
                    return false;
                }
                0 => {}
                1 => {
                    let u = self.atom_vars[ai]
                        .iter()
                        .find(|&&u| !self.assigned[u.index()])
                        .expect("an unassigned variable remains")
                        .index();
                    let saved = self.map[u];
                    for pos in 0..self.pool[u].len() {
                        if self.removed[u][pos] != LIVE {
                            continue;
                        }
                        self.map[u] = self.pool[u][pos];
                        if !self.ctx.atom_holds(self.atoms[ai], &self.map) {
                            self.removed[u][pos] = depth as u32;
                            self.trail[depth].push((u as u32, pos as u32));
                            self.live[u] -= 1;
                        }
                    }
                    self.map[u] = saved;
                    if self.live[u] == 0 {
                        return false;
                    }
                }
                _ => {}
            }
        }
        true
    }

    /// Revert one `assign` at the given depth.
    fn undo(&mut self, v: usize, depth: usize) {
        while let Some((u, pos)) = self.trail[depth].pop() {
            self.removed[u as usize][pos as usize] = LIVE;
            self.live[u as usize] += 1;
        }
        for &ai in &self.atoms_of[v] {
            self.unassigned_in[ai] += 1;
        }
        self.assigned[v] = false;
    }

    fn solve(&mut self, depth: usize) -> bool {
        if depth == self.map.len() {
            return true;
        }
        let v = self.pick();
        for pos in 0..self.pool[v].len() {
            if self.removed[v][pos] != LIVE {
                continue;
            }
            let w = self.pool[v][pos];
            if self.assign(v, w, depth) && self.solve(depth + 1) {
                return true;
            }
            self.undo(v, depth);
            self.backtracks += 1;
        }
        false
    }
}

/// Most-constrained-first search with forward checking. Finds a mapping iff
/// the reference searches do (the candidate space and the constraints are
/// identical; only the exploration order differs), but fails inconsistent
/// subtrees as soon as any pool empties instead of at the first atom check
/// that happens to observe the conflict.
fn search_most_constrained(
    ctx: &TargetCtx<'_>,
    goal: &MappingGoal<'_>,
    counters: Option<&MappingCounters>,
) -> Option<Vec<VarId>> {
    let q2 = goal.source;
    let n = q2.var_count();
    let mut map = vec![VarId::from_index(0); n];
    if n == 0 {
        if let Some(c) = counters {
            c.record(0);
        }
        return Some(map);
    }
    let atoms: Vec<&Atom> = q2.atoms().iter().collect();
    let atom_vars: Vec<Vec<VarId>> = atoms
        .iter()
        .map(|a| {
            let mut vs: Vec<VarId> = Vec::new();
            for v in a.vars() {
                if !vs.contains(&v) {
                    vs.push(v);
                }
            }
            vs
        })
        .collect();
    let mut atoms_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ai, vs) in atom_vars.iter().enumerate() {
        for v in vs {
            atoms_of[v.index()].push(ai);
        }
    }
    let unassigned_in: Vec<usize> = atom_vars.iter().map(Vec::len).collect();
    let mut pool: Vec<Vec<VarId>> = q2.vars().map(|v| initial_pool(ctx, goal, v)).collect();
    // Single-variable atoms constrain their pool up front (a unary filter
    // subsumes checking the atom at assignment time, but the later check is
    // kept for uniformity — it always passes).
    for (ai, a) in atoms.iter().enumerate() {
        if let [v] = atom_vars[ai][..] {
            pool[v.index()].retain(|&w| {
                map[v.index()] = w;
                ctx.atom_holds(a, &map)
            });
        }
    }
    let live: Vec<usize> = pool.iter().map(Vec::len).collect();
    if live.contains(&0) {
        if let Some(c) = counters {
            c.record(0);
        }
        return None;
    }
    let removed: Vec<Vec<u32>> = pool.iter().map(|p| vec![LIVE; p.len()]).collect();
    let mut s = Mcf {
        ctx,
        atoms,
        atom_vars,
        atoms_of,
        unassigned_in,
        assigned: vec![false; n],
        map,
        pool,
        removed,
        live,
        trail: vec![Vec::new(); n],
        backtracks: 0,
    };
    let found = s.solve(0);
    if let Some(c) = counters {
        c.record(s.backtracks);
    }
    found.then_some(s.map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;

    /// Example 3.1's Q₁ indexed as a target.
    fn example_31_data(s: &Schema) -> TargetData {
        let c = s.class_id("C").unwrap();
        let d = s.class_id("D").unwrap();
        let a = s.attr_id("A").unwrap();
        let bb = s.attr_id("B").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [c]).range(y, [c]).range(z, [d]);
        b.eq_attr(z, y, a);
        b.member(z, y, bb);
        b.eq_vars(x, y);
        TargetData::new(s, b.build()).unwrap()
    }

    #[test]
    fn derives_equality_through_congruent_base() {
        // Q₁ ⊢ z = x.A even though the atom says z = y.A, because x = y.
        let s = samples::example_31();
        let data = example_31_data(&s);
        let ctx = data.ctx(&s);
        let a = s.attr_id("A").unwrap();
        let x = VarId::from_index(0);
        let z = VarId::from_index(2);
        assert!(ctx.derives_eq(Term::Var(z), Term::Attr(x, a)));
        // But not z = x.B (B is a set term).
        let bb = s.attr_id("B").unwrap();
        assert!(!ctx.derives_eq(Term::Var(z), Term::Attr(x, bb)));
    }

    #[test]
    fn derives_membership_through_equalities() {
        let s = samples::example_31();
        let data = example_31_data(&s);
        let ctx = data.ctx(&s);
        let bb = s.attr_id("B").unwrap();
        let x = VarId::from_index(0);
        let z = VarId::from_index(2);
        // Atom is z ∈ y.B; x = y makes z ∈ x.B derivable.
        assert!(ctx.derives_member(z, x, bb));
        assert!(!ctx.derives_member(x, x, bb));
    }

    #[test]
    fn non_contradiction_of_inequalities() {
        let s = samples::example_31();
        let data = example_31_data(&s);
        let ctx = data.ctx(&s);
        let x = VarId::from_index(0);
        let y = VarId::from_index(1);
        let z = VarId::from_index(2);
        // x = y: inequality x ≠ y IS contradicted.
        assert!(!ctx.not_contradict_neq(Term::Var(x), Term::Var(y)));
        // x vs z: fine.
        assert!(ctx.not_contradict_neq(Term::Var(x), Term::Var(z)));
    }

    #[test]
    fn non_contradiction_of_non_membership() {
        let s = samples::example_31();
        let data = example_31_data(&s);
        let ctx = data.ctx(&s);
        let bb = s.attr_id("B").unwrap();
        let a = s.attr_id("A").unwrap();
        let x = VarId::from_index(0);
        let z = VarId::from_index(2);
        // z ∈ y.B is an atom (and x = y): z ∉ x.B is contradicted.
        assert!(!ctx.not_contradict_nonmember(z, x, bb));
        // x ∉ x.B: x.B is a set term (via x = y) and x ∈ x.B not derivable.
        assert!(ctx.not_contradict_nonmember(x, x, bb));
        // x ∉ x.A: A is not a set term anywhere — contradicted (Ex. 3.3's
        // mechanism).
        assert!(!ctx.not_contradict_nonmember(x, x, a));
    }

    #[test]
    fn example_31_containment_mapping_exists() {
        // μ : Q₂ → Q₁ with μ(y) = x, μ(z) = z.
        let s = samples::example_31();
        let data = example_31_data(&s);
        let ctx = data.ctx(&s);
        let c = s.class_id("C").unwrap();
        let d = s.class_id("D").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("y");
        let y2 = b.free();
        let z2 = b.var("z");
        b.range(y2, [c]).range(z2, [d]);
        b.eq_attr(z2, y2, a);
        let q2 = b.build();
        let classes2 = var_classes(&s, &q2).unwrap();
        let goal = MappingGoal {
            source: &q2,
            source_classes: &classes2,
            free_anchor: data.query().free_var(),
            avoid_in_image: None,
        };
        let map = find_mapping(&ctx, &goal).expect("mapping must exist");
        // μ(y) must be x or y (the [x] class), μ(z) = z.
        assert!(map[y2.index()].index() <= 1);
        assert_eq!(map[z2.index()].index(), 2);
    }

    #[test]
    fn example_31_reverse_mapping_fails() {
        // No mapping from Q₁ into Q₂: z ∈ y.B has no derivation in Q₂.
        let s = samples::example_31();
        let c = s.class_id("C").unwrap();
        let d = s.class_id("D").unwrap();
        let a = s.attr_id("A").unwrap();
        let bb = s.attr_id("B").unwrap();

        let mut b = QueryBuilder::new("y");
        let y2 = b.free();
        let z2 = b.var("z");
        b.range(y2, [c]).range(z2, [d]);
        b.eq_attr(z2, y2, a);
        let data = TargetData::new(&s, b.build()).unwrap();
        let ctx = data.ctx(&s);

        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [c]).range(y, [c]).range(z, [d]);
        b.eq_attr(z, y, a);
        b.member(z, y, bb);
        b.eq_vars(x, y);
        let q1 = b.build();
        let classes1 = var_classes(&s, &q1).unwrap();
        let goal = MappingGoal {
            source: &q1,
            source_classes: &classes1,
            free_anchor: data.query().free_var(),
            avoid_in_image: None,
        };
        assert!(find_mapping(&ctx, &goal).is_none());
    }

    #[test]
    fn avoid_in_image_constrains_search() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]);
        let q = b.build();
        let data = TargetData::new(&s, q.clone()).unwrap();
        let ctx = data.ctx(&s);
        let classes = var_classes(&s, &q).unwrap();
        // Self-map avoiding y exists (fold y onto x)...
        let goal = MappingGoal {
            source: &q,
            source_classes: &classes,
            free_anchor: x,
            avoid_in_image: Some(y),
        };
        let map = find_mapping(&ctx, &goal).unwrap();
        assert_eq!(map, vec![x, x]);
        // ... but avoiding x does not: the free variable must stay in [x].
        let goal = MappingGoal {
            source: &q,
            source_classes: &classes,
            free_anchor: x,
            avoid_in_image: Some(x),
        };
        assert!(find_mapping(&ctx, &goal).is_none());
    }
}

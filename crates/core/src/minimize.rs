//! Exact minimization of positive conjunctive queries (§4).
//!
//! The pipeline of §4 turns a positive conjunctive query into an equivalent
//! union of terminal positive conjunctive queries that is
//! **search-space-optimal** among all unions of positive conjunctive
//! queries:
//!
//! 1. expand into a union of terminal queries (Proposition 2.1) and drop the
//!    unsatisfiable subqueries;
//! 2. remove redundant subqueries (a `Qᵢ` contained in some other `Qⱼ`),
//!    yielding a *nonredundant* union — unique up to per-subquery
//!    equivalence by Theorem 4.2;
//! 3. minimize the variables of each remaining subquery by repeatedly
//!    folding it through a non-contradictory self-mapping that preserves the
//!    free variable (Theorem 4.3); by Corollary 4.4 the query is minimal
//!    exactly when every such self-map is bijective.
//!
//! Optimality is measured by [`search_space_cost`]: the number of
//! occurrences of each terminal class in `term-class(Q, x)` summed over the
//! variables `x` — the objects the query logically accesses.

use crate::branch::EngineConfig;
use crate::containment::contains_terminal_with;
use crate::derive::{find_mapping, MappingGoal, TargetData};
use crate::error::CoreError;
use crate::expand::expand_satisfiable_with;
use crate::satisfiability::{is_satisfiable, var_classes};
use oocq_query::{isomorphic, normalize, Atom, Query, UnionQuery};
use oocq_schema::{ClassId, Schema};
use std::collections::BTreeMap;

/// `term-class(Q, x)` (§4): the terminal descendant classes the variable `x`
/// ranges over in `Q`.
pub fn term_class(schema: &Schema, q: &Query, x: oocq_query::VarId) -> Vec<ClassId> {
    let mut out: Vec<ClassId> = q
        .range_of(x)
        .into_iter()
        .flatten()
        .flat_map(|&c| schema.terminal_descendants(c))
        .copied()
        .collect();
    out.sort();
    out.dedup();
    out
}

/// The search-space cost of one conjunctive query: for each terminal class,
/// the number of occurrences in `term-class(Q, y)` over all variables `y`.
pub fn search_space_cost(schema: &Schema, q: &Query) -> BTreeMap<ClassId, usize> {
    let mut cost = BTreeMap::new();
    for v in q.vars() {
        for c in term_class(schema, q, v) {
            *cost.entry(c).or_insert(0) += 1;
        }
    }
    cost
}

/// The search-space cost of a union: the sum over its subqueries.
pub fn union_cost(schema: &Schema, u: &UnionQuery) -> BTreeMap<ClassId, usize> {
    let mut cost = BTreeMap::new();
    for q in u {
        for (c, n) in search_space_cost(schema, q) {
            *cost.entry(c).or_insert(0) += n;
        }
    }
    cost
}

/// Componentwise comparison of costs: `a ≤ b` iff every terminal class
/// occurs in `a` at most as often as in `b` (§4's "more optimal" condition 2
/// — condition 1, equivalence, is checked separately).
pub fn cost_leq(a: &BTreeMap<ClassId, usize>, b: &BTreeMap<ClassId, usize>) -> bool {
    a.iter().all(|(c, &n)| n <= b.get(c).copied().unwrap_or(0))
}

/// Remove redundant subqueries from a union of terminal positive conjunctive
/// queries: unsatisfiable subqueries are dropped, then any `Qᵢ` contained in
/// a retained `Qⱼ` (`j ≠ i`) is dropped, keeping the first representative of
/// each equivalence group.
pub fn nonredundant_union(schema: &Schema, u: &UnionQuery) -> Result<UnionQuery, CoreError> {
    nonredundant_union_with(schema, u, &EngineConfig::from_env())
}

/// [`nonredundant_union`] under an explicit [`EngineConfig`] (governing the
/// pairwise containment checks: threads, decision cache, and the
/// isomorphism fast path).
pub fn nonredundant_union_with(
    schema: &Schema,
    u: &UnionQuery,
    cfg: &EngineConfig,
) -> Result<UnionQuery, CoreError> {
    let sat: Vec<&Query> = u
        .iter()
        .map(|q| Ok::<_, CoreError>((q, is_satisfiable(schema, q)?)))
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .filter_map(|(q, s)| s.then_some(q))
        .collect();
    let dropped = redundancy_flags(schema, &sat, cfg)?;
    Ok(sat
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !dropped[*i])
        .map(|(_, q)| q.clone())
        .collect())
}

/// For a slice of satisfiable terminal positive queries: which are redundant
/// (contained in a retained other)? Equivalent groups keep their first
/// member.
fn redundancy_flags(
    schema: &Schema,
    sat: &[&Query],
    cfg: &EngineConfig,
) -> Result<Vec<bool>, CoreError> {
    let n = sat.len();
    // contains[i][j] = Qᵢ ⊆ Qⱼ.
    let mut cont = vec![vec![false; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            // One unit per pair: the O(n²) sweep is the §4 pipeline's own
            // contribution to the blowup, over and above the per-pair
            // Theorem 3.1 work (which charges the same budget internally).
            cfg.budget.charge(1)?;
            // Expansion branches of one query are frequently renamed copies
            // of each other; isomorphic queries are equivalent, so both
            // directions hold without running Theorem 3.1.
            if cfg.iso_fast_path && isomorphic(sat[i], sat[j]) {
                cont[i][j] = true;
                cont[j][i] = true;
            } else {
                cont[i][j] = contains_terminal_with(schema, sat[i], sat[j], cfg)?;
                cont[j][i] = contains_terminal_with(schema, sat[j], sat[i], cfg)?;
            }
        }
    }
    let mut dropped = vec![false; n];
    for i in 0..n {
        if dropped[i] {
            continue;
        }
        for j in 0..n {
            if i == j || dropped[j] || !cont[i][j] {
                continue;
            }
            if cont[j][i] {
                // Equivalent pair: keep the earlier one.
                if j < i {
                    dropped[i] = true;
                    break;
                }
            } else {
                // Strictly contained: redundant.
                dropped[i] = true;
                break;
            }
        }
    }
    Ok(dropped)
}

/// Drop trivially-true reflexive equality atoms `t = t` produced by folding.
fn drop_reflexive_eq(q: &Query) -> Query {
    let identity: Vec<_> = q.vars().collect();
    let folded = q.apply_mapping(&identity); // sorts + dedups atoms
    let atoms: Vec<Atom> = folded
        .atoms()
        .iter()
        .filter(|a| !matches!(a, Atom::Eq(s, t) if s == t))
        .cloned()
        .collect();
    let mut b = oocq_query::QueryBuilder::new(folded.var_name(folded.free_var()));
    let mut ids = Vec::with_capacity(folded.var_count());
    for v in folded.vars() {
        if v == folded.free_var() {
            ids.push(b.free());
        } else {
            ids.push(b.var(folded.var_name(v)));
        }
    }
    for a in atoms {
        b.atom(a.map_vars(|v| ids[v.index()]));
    }
    b.build()
}

/// Minimize the variables of a satisfiable terminal positive conjunctive
/// query (Theorem 4.3 / Corollary 4.4): repeatedly fold the query through a
/// non-surjective non-contradictory self-mapping that preserves the free
/// variable, until every such self-mapping is bijective.
pub fn minimize_terminal_positive(schema: &Schema, q: &Query) -> Result<Query, CoreError> {
    if !q.is_positive() {
        return Err(CoreError::NotPositive);
    }
    let free_name = q.var_name(q.free_var()).to_owned();
    let mut cur = q.clone();
    cur.dedup_atoms();
    if !is_satisfiable(schema, &cur)? {
        return Ok(cur);
    }
    'outer: loop {
        let classes = var_classes(schema, &cur)?;
        let free = cur.free_var();
        let data = TargetData::new(schema, cur.clone())?;
        let ctx = data.ctx(schema);
        for drop in cur.vars() {
            let goal = MappingGoal {
                source: data.query(),
                source_classes: &classes,
                free_anchor: free,
                avoid_in_image: Some(drop),
            };
            if let Some(map) = find_mapping(&ctx, &goal) {
                cur = drop_reflexive_eq(&cur.apply_mapping(&map));
                continue 'outer;
            }
        }
        break;
    }
    // Cosmetic: if folding renamed the answer variable (it may map the free
    // variable to an equated partner), restore the original name when free.
    if cur.var_name(cur.free_var()) != free_name
        && !cur.vars().any(|v| cur.var_name(v) == free_name)
    {
        let fv = cur.free_var();
        cur.rename_var(fv, &free_name);
    }
    Ok(cur)
}

/// Is the terminal positive query minimal already (Corollary 4.4: every
/// non-contradictory free-variable-preserving self-mapping is bijective)?
pub fn is_minimal_terminal_positive(schema: &Schema, q: &Query) -> Result<bool, CoreError> {
    if !q.is_positive() {
        return Err(CoreError::NotPositive);
    }
    if !is_satisfiable(schema, q)? {
        return Ok(true);
    }
    let classes = var_classes(schema, q)?;
    let data = TargetData::new(schema, q.clone())?;
    let ctx = data.ctx(schema);
    for drop in q.vars() {
        let goal = MappingGoal {
            source: data.query(),
            source_classes: &classes,
            free_anchor: q.free_var(),
            avoid_in_image: Some(drop),
        };
        if find_mapping(&ctx, &goal).is_some() {
            return Ok(false);
        }
    }
    Ok(true)
}

/// A full trace of the §4 pipeline produced by
/// [`minimize_positive_report`]: what was expanded, which branches died and
/// why, what was dropped as redundant, and which subqueries folded.
#[derive(Clone, Debug)]
pub struct MinimizationReport {
    /// The normalized input (§2.3 repairs applied).
    pub normalized: Query,
    /// Size of the terminal expansion (Proposition 2.1).
    pub expanded: usize,
    /// Unsatisfiable branches, with reasons (Theorem 2.2).
    pub unsatisfiable: Vec<(Query, crate::satisfiability::UnsatReason)>,
    /// Branches dropped as redundant (Theorem 4.2).
    pub redundant: Vec<Query>,
    /// Variable folds: `(before, after)` for each subquery that shrank
    /// (Theorems 4.3–4.5).
    pub folds: Vec<(Query, Query)>,
    /// The search-space-optimal result.
    pub result: UnionQuery,
}

impl MinimizationReport {
    /// Render the whole trace with resolved names.
    pub fn render(&self, schema: &Schema) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "normalized: {}", self.normalized.display(schema));
        let _ = writeln!(
            out,
            "expanded: {} branch(es), {} unsatisfiable, {} redundant",
            self.expanded,
            self.unsatisfiable.len(),
            self.redundant.len()
        );
        for (q, reason) in &self.unsatisfiable {
            let _ = writeln!(out, "  unsat: {}  ({reason})", q.display(schema));
        }
        for q in &self.redundant {
            let _ = writeln!(out, "  redundant: {}", q.display(schema));
        }
        for (before, after) in &self.folds {
            let _ = writeln!(
                out,
                "  folded {} -> {} vars: {}",
                before.var_count(),
                after.var_count(),
                after.display(schema)
            );
        }
        let _ = writeln!(out, "result: {}", self.result.display(schema));
        out
    }
}

/// [`minimize_positive`] with a full pipeline trace.
pub fn minimize_positive_report(
    schema: &Schema,
    q: &Query,
) -> Result<MinimizationReport, CoreError> {
    minimize_positive_report_with(schema, q, &EngineConfig::from_env())
}

/// [`minimize_positive_report`] under an explicit [`EngineConfig`]. The
/// trace itself is never cached (it is a rendering artifact, cheap relative
/// to its size), but the redundancy checks it runs honour the
/// configuration's cache and fast path.
pub fn minimize_positive_report_with(
    schema: &Schema,
    q: &Query,
    cfg: &EngineConfig,
) -> Result<MinimizationReport, CoreError> {
    use crate::satisfiability::{satisfiability, Satisfiability};
    if !q.is_positive() {
        return Err(CoreError::NotPositive);
    }
    let normalized = normalize(q, schema)?;
    let expanded_union = crate::expand::expand(schema, &normalized)?;
    let expanded = expanded_union.len();
    let mut unsatisfiable = Vec::new();
    let mut survivors: Vec<Query> = Vec::new();
    for sub in &expanded_union {
        match satisfiability(schema, sub)? {
            Satisfiability::Satisfiable => {
                survivors.push(crate::satisfiability::strip_non_range(sub))
            }
            Satisfiability::Unsatisfiable(reason) => unsatisfiable.push((sub.clone(), reason)),
        }
    }
    let refs: Vec<&Query> = survivors.iter().collect();
    let dropped = redundancy_flags(schema, &refs, cfg)?;
    let mut redundant = Vec::new();
    let mut kept: Vec<Query> = Vec::new();
    for (i, sub) in survivors.iter().enumerate() {
        if dropped[i] {
            redundant.push(sub.clone());
        } else {
            kept.push(sub.clone());
        }
    }
    let mut folds = Vec::new();
    let mut result = UnionQuery::empty();
    for sub in kept {
        let m = minimize_terminal_positive(schema, &sub)?;
        if m.var_count() < sub.var_count() {
            folds.push((sub, m.clone()));
        }
        result.push(m);
    }
    Ok(MinimizationReport {
        normalized,
        expanded,
        unsatisfiable,
        redundant,
        folds,
        result,
    })
}

/// The full §4 pipeline: an exact, search-space-optimal minimization of a
/// positive conjunctive query, returned as a union of minimal terminal
/// positive conjunctive queries.
///
/// The input is normalized first (§2.3), so conditions (ii)/(iii) need not
/// hold on entry. The empty union is returned for unsatisfiable queries.
///
/// # Examples
///
/// The paper's Example 1.1: typing narrows `Vehicle` to `Auto`.
///
/// ```
/// use oocq_core::minimize_positive;
/// use oocq_query::QueryBuilder;
/// use oocq_schema::samples;
///
/// let s = samples::vehicle_rental();
/// let mut b = QueryBuilder::new("x");
/// let x = b.free();
/// let y = b.var("y");
/// b.range(x, [s.class_id("Vehicle").unwrap()]);
/// b.range(y, [s.class_id("Discount").unwrap()]);
/// b.member(x, y, s.attr_id("VehRented").unwrap());
/// let optimal = minimize_positive(&s, &b.build()).unwrap();
/// assert_eq!(
///     optimal.display(&s).to_string(),
///     "{ x | exists y: x in Auto & y in Discount & x in y.VehRented }",
/// );
/// ```
pub fn minimize_positive(schema: &Schema, q: &Query) -> Result<UnionQuery, CoreError> {
    minimize_positive_with(schema, q, &EngineConfig::from_env())
}

/// [`minimize_positive`] under an explicit [`EngineConfig`]. When
/// `cfg.cache` is installed, the whole pipeline result is memoized per
/// exact query — minimization output carries variable names, so the cache
/// key must distinguish renamed inputs (see
/// [`DecisionCache`](crate::DecisionCache)'s contract) — while the
/// pairwise redundancy checks inside additionally benefit from the
/// canonical containment entries.
pub fn minimize_positive_with(
    schema: &Schema,
    q: &Query,
    cfg: &EngineConfig,
) -> Result<UnionQuery, CoreError> {
    if !q.is_positive() {
        return Err(CoreError::NotPositive);
    }
    if let Some(cache) = &cfg.cache {
        if let Some(hit) = cache.get_minimized(schema, q) {
            return Ok(hit);
        }
    }
    let normalized = normalize(q, schema)?;
    let expanded = expand_satisfiable_with(schema, &normalized, cfg)?;
    let result = minimize_pipeline(schema, &expanded, cfg)?;
    if let Some(cache) = &cfg.cache {
        cache.put_minimized(schema, q, &result);
    }
    Ok(result)
}

/// The §4 pipeline downstream of expansion — redundancy elimination
/// (Theorem 4.1 pairwise) then per-subquery variable folding (Theorem 4.3)
/// — over a union whose subqueries are already satisfiability-filtered (the
/// contract of [`expand_satisfiable_with`] output). Shared by
/// [`minimize_positive_with`] and [`Engine::minimize`](crate::Engine), which
/// differ only in where the expansion comes from.
pub(crate) fn minimize_pipeline(
    schema: &Schema,
    expanded: &UnionQuery,
    cfg: &EngineConfig,
) -> Result<UnionQuery, CoreError> {
    let sat: Vec<&Query> = expanded.iter().collect();
    let dropped = redundancy_flags(schema, &sat, cfg)?;
    let minimized: Result<Vec<Query>, CoreError> = sat
        .iter()
        .enumerate()
        .filter(|(i, _)| !dropped[*i])
        .map(|(_, sub)| {
            cfg.budget.charge(1)?;
            minimize_terminal_positive(schema, sub)
        })
        .collect();
    Ok(UnionQuery::new(minimized?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;

    #[test]
    fn example_41_full_pipeline() {
        // Q ≡ Q₂′ ∪ Q₅ with Q₂′ minimized to one bound variable.
        let s = samples::n1_partition();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("s");
        b.range(x, [s.class_id("N1").unwrap()]);
        b.range(y, [s.class_id("G").unwrap()]);
        b.range(z, [s.class_id("H").unwrap()]);
        b.eq_attr(y, x, s.attr_id("B").unwrap());
        b.member(y, x, s.attr_id("A").unwrap());
        b.member(z, x, s.attr_id("A").unwrap());
        let q = b.build();

        let result = minimize_positive(&s, &q).unwrap();
        assert_eq!(result.len(), 2);
        // Q₂′: { x | exists y (x ∈ T₂ & y ∈ H & y = x.B & y ∈ x.A) }.
        let q2p = &result.queries()[0];
        assert_eq!(q2p.var_count(), 2);
        assert_eq!(
            q2p.terminal_class_of(q2p.free_var()),
            Some(s.class_id("T2").unwrap())
        );
        // Q₅ keeps its three variables (y ∈ I and s ∈ H cannot merge).
        let q5 = &result.queries()[1];
        assert_eq!(q5.var_count(), 3);
        assert_eq!(
            q5.terminal_class_of(q5.free_var()),
            Some(s.class_id("T2").unwrap())
        );
    }

    #[test]
    fn example_11_pipeline_rewrites_vehicle_to_auto() {
        let s = samples::vehicle_rental();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        b.range(y, [s.class_id("Discount").unwrap()]);
        b.member(x, y, s.attr_id("VehRented").unwrap());
        let result = minimize_positive(&s, &b.build()).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(
            result.queries()[0].display(&s).to_string(),
            "{ x | exists y: x in Auto & y in Discount & x in y.VehRented }"
        );
    }

    #[test]
    fn folding_collapses_redundant_variables() {
        // x ∈ C with two interchangeable witnesses y, z (same constraints):
        // minimization folds z onto y.
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [t2]).range(y, [t1]).range(z, [t1]);
        b.member(y, x, a);
        b.member(z, x, a);
        let q = b.build();
        assert!(!is_minimal_terminal_positive(&s, &q).unwrap());
        let m = minimize_terminal_positive(&s, &q).unwrap();
        assert_eq!(m.var_count(), 2);
        assert!(is_minimal_terminal_positive(&s, &m).unwrap());
        // Folding must preserve equivalence.
        assert!(crate::containment::equivalent_terminal(&s, &q, &m).unwrap());
    }

    #[test]
    fn equated_variable_chains_collapse() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [c]).range(y, [c]).range(z, [c]);
        b.eq_vars(x, y).eq_vars(y, z);
        let m = minimize_terminal_positive(&s, &b.build()).unwrap();
        assert_eq!(m.var_count(), 1);
        assert_eq!(m.var_name(m.free_var()), "x");
        assert_eq!(m.atoms().len(), 1); // just the range atom
    }

    #[test]
    fn minimal_query_is_left_alone() {
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [t1]).range(y, [t2]);
        b.member(x, y, a);
        let q = b.build();
        assert!(is_minimal_terminal_positive(&s, &q).unwrap());
        let m = minimize_terminal_positive(&s, &q).unwrap();
        assert!(m.same_modulo_atom_order(&q));
    }

    #[test]
    fn nonredundant_union_drops_contained_and_duplicate_subqueries() {
        let s = samples::vehicle_rental();
        let auto = s.class_id("Auto").unwrap();
        let mk_simple = || {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            b.range(x, [auto]);
            b.build()
        };
        let mk_restricted = || {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            let y = b.var("y");
            b.range(x, [auto]);
            b.range(y, [s.class_id("Discount").unwrap()]);
            b.member(x, y, s.attr_id("VehRented").unwrap());
            b.build()
        };
        // restricted ⊆ simple; duplicates of simple collapse to one.
        let u = UnionQuery::new(vec![mk_restricted(), mk_simple(), mk_simple()]);
        let nr = nonredundant_union(&s, &u).unwrap();
        assert_eq!(nr.len(), 1);
        assert_eq!(nr.queries()[0].var_count(), 1);
    }

    #[test]
    fn nonredundant_union_iso_fast_path_is_invisible() {
        // A union with a renamed duplicate (isomorphic pair), a strictly
        // contained subquery, and an incomparable one: with and without the
        // isomorphism fast path the retained set is identical.
        let s = samples::vehicle_rental();
        let auto = s.class_id("Auto").unwrap();
        let mk_simple = |free: &str| {
            let mut b = QueryBuilder::new(free);
            let x = b.free();
            b.range(x, [auto]);
            b.build()
        };
        let mk_restricted = || {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            let y = b.var("y");
            b.range(x, [auto]);
            b.range(y, [s.class_id("Discount").unwrap()]);
            b.member(x, y, s.attr_id("VehRented").unwrap());
            b.build()
        };
        let mk_truck = || {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            b.range(x, [s.class_id("Truck").unwrap()]);
            b.build()
        };
        let u = UnionQuery::new(vec![
            mk_restricted(),
            mk_simple("x"),
            mk_simple("renamed"),
            mk_truck(),
        ]);
        let on = crate::EngineConfig::serial();
        let off = crate::EngineConfig::serial().without_iso_fast_path();
        let nr_on = nonredundant_union_with(&s, &u, &on).unwrap();
        let nr_off = nonredundant_union_with(&s, &u, &off).unwrap();
        assert_eq!(nr_on, nr_off);
        assert_eq!(nr_on.len(), 2); // simple("x") + truck survive
    }

    #[test]
    fn nonredundant_union_drops_unsatisfiable_subqueries() {
        let s = samples::unrelated_subtypes();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [t1]).range(y, [t2]).eq_vars(x, y);
        let unsat = b.build();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [t1]);
        let sat = b.build();
        let nr = nonredundant_union(&s, &UnionQuery::new(vec![unsat, sat])).unwrap();
        assert_eq!(nr.len(), 1);
    }

    #[test]
    fn search_space_cost_counts_terminal_occurrences() {
        let s = samples::vehicle_rental();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        b.range(y, [s.class_id("Discount").unwrap()]);
        b.member(x, y, s.attr_id("VehRented").unwrap());
        let q = b.build();
        let cost = search_space_cost(&s, &q);
        assert_eq!(cost.get(&s.class_id("Auto").unwrap()), Some(&1));
        assert_eq!(cost.get(&s.class_id("Truck").unwrap()), Some(&1));
        assert_eq!(cost.get(&s.class_id("Discount").unwrap()), Some(&1));
        assert_eq!(cost.get(&s.class_id("Regular").unwrap()), None);
    }

    #[test]
    fn minimization_reduces_search_space_cost() {
        let s = samples::vehicle_rental();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        b.range(y, [s.class_id("Discount").unwrap()]);
        b.member(x, y, s.attr_id("VehRented").unwrap());
        let q = b.build();
        let before = search_space_cost(&s, &q);
        let minimized = minimize_positive(&s, &q).unwrap();
        let after = union_cost(&s, &minimized);
        assert!(cost_leq(&after, &before));
        assert!(!cost_leq(&before, &after));
    }

    #[test]
    fn minimized_subqueries_are_minimal_and_nonredundant() {
        let s = samples::n1_partition();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("N1").unwrap()]);
        b.range(y, [s.class_id("G").unwrap()]);
        b.member(y, x, s.attr_id("A").unwrap());
        let q = b.build();
        let result = minimize_positive(&s, &q).unwrap();
        for sub in &result {
            assert!(is_minimal_terminal_positive(&s, sub).unwrap());
        }
        let nr = nonredundant_union(&s, &result).unwrap();
        assert_eq!(nr.len(), result.len());
    }

    #[test]
    fn unsatisfiable_query_minimizes_to_empty_union() {
        let s = samples::unrelated_subtypes();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("T1").unwrap()]);
        b.range(y, [s.class_id("T2").unwrap()]);
        b.eq_vars(x, y);
        let result = minimize_positive(&s, &b.build()).unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn non_positive_input_rejected() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).neq_vars(x, y);
        assert!(matches!(
            minimize_positive(&s, &b.build()),
            Err(CoreError::NotPositive)
        ));
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;

    #[test]
    fn report_traces_example_41() {
        let s = samples::n1_partition();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("s");
        b.range(x, [s.class_id("N1").unwrap()]);
        b.range(y, [s.class_id("G").unwrap()]);
        b.range(z, [s.class_id("H").unwrap()]);
        b.eq_attr(y, x, s.attr_id("B").unwrap());
        b.member(y, x, s.attr_id("A").unwrap());
        b.member(z, x, s.attr_id("A").unwrap());
        let q = b.build();
        let report = minimize_positive_report(&s, &q).unwrap();
        assert_eq!(report.expanded, 6);
        assert_eq!(report.unsatisfiable.len(), 4);
        assert_eq!(report.redundant.len(), 0);
        assert_eq!(report.folds.len(), 1);
        assert_eq!(report.result.len(), 2);
        // The report's result agrees with the plain pipeline.
        let plain = minimize_positive(&s, &q).unwrap();
        assert_eq!(report.result, plain);
        let text = report.render(&s);
        assert!(text.contains("expanded: 6 branch(es), 4 unsatisfiable, 0 redundant"));
        assert!(text.contains("folded 3 -> 2 vars"));
    }

    #[test]
    fn report_counts_redundant_subqueries() {
        // Two interchangeable members in a set: the expansion over a
        // two-leaf schema yields branches where one subsumes another? Use
        // star over the vehicle schema: Vehicle expands to 3 branches, two
        // unsat, none redundant; instead craft redundancy via a disjunctive
        // range producing a duplicate branch.
        let s = samples::vehicle_rental();
        let auto = s.class_id("Auto").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        // x in Auto | Auto — the expansion dedups choices, so instead use
        // two variables equated across the same class, which fold.
        let y = b.var("y");
        b.range(x, [auto]).range(y, [auto]).eq_vars(x, y);
        let q = b.build();
        let report = minimize_positive_report(&s, &q).unwrap();
        assert_eq!(report.expanded, 1);
        assert_eq!(report.folds.len(), 1);
        assert_eq!(report.result.queries()[0].var_count(), 1);
    }
}

//! Containment certificates: *why* `Q₁ ⊆ Q₂` holds or fails.
//!
//! Theorem 3.1 makes containment an ∀∃ statement: for every consistent
//! augmentation branch of `Q₁` there must exist a non-contradictory mapping
//! from `Q₂`. A positive answer is certified by one mapping per branch; a
//! negative answer by a single branch with no mapping. [`decide_containment`]
//! returns these certificates, and [`Containment::render`] prints them in
//! the paper's vocabulary — the `containment_lab` example shows the output.

use crate::satisfiability::UnsatReason;
use oocq_query::{Atom, Query, VarId};
use oocq_schema::Schema;
use std::fmt::Write as _;

/// One certified branch of a containment proof: the augmentation atoms
/// `S ∪ W` added to `Q₁`, and the witnessing variable mapping `μ`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MappingWitness {
    /// Equality (`S`) and membership (`W`) atoms, in `Q₁`'s variable ids.
    pub augmentation: Vec<Atom>,
    /// `μ`: for each variable of `Q₂` (by index), the `Q₁` variable it maps
    /// to.
    pub assignment: Vec<VarId>,
}

/// The outcome of a containment decision, with evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Containment {
    /// `Q₁` is unsatisfiable, hence contained in everything.
    HoldsVacuously(UnsatReason),
    /// Containment holds; one witness mapping per consistent augmentation
    /// branch (branches whose augmented query is unsatisfiable are vacuous
    /// and omitted).
    Holds(Vec<MappingWitness>),
    /// `Q₂` is unsatisfiable while `Q₁` is not.
    FailsRightUnsatisfiable(UnsatReason),
    /// Some consistent augmentation branch of `Q₁` admits no
    /// non-contradictory mapping from `Q₂`.
    Fails {
        /// The augmentation atoms of the failing branch (empty = `Q₁`
        /// itself).
        augmentation: Vec<Atom>,
    },
}

impl Containment {
    /// Did containment hold?
    pub fn holds(&self) -> bool {
        matches!(self, Containment::HoldsVacuously(_) | Containment::Holds(_))
    }

    /// The augmentation atoms of the refuting branch, if the verdict is
    /// [`Containment::Fails`]. This is the certificate the soundness oracle
    /// steers state synthesis with: freezing `Q₁` plus these atoms yields a
    /// canonical state on which `Q₁` answers and `Q₂` must not.
    pub fn failing_augmentation(&self) -> Option<&[Atom]> {
        match self {
            Containment::Fails { augmentation } => Some(augmentation),
            _ => None,
        }
    }

    /// The per-branch mapping witnesses, if the verdict is
    /// [`Containment::Holds`].
    pub fn witnesses(&self) -> Option<&[MappingWitness]> {
        match self {
            Containment::Holds(ws) => Some(ws),
            _ => None,
        }
    }

    /// Render the certificate using the queries' variable names and the
    /// schema's class/attribute names.
    pub fn render(&self, schema: &Schema, q1: &Query, q2: &Query) -> String {
        let mut out = String::new();
        let atom_str = |a: &Atom| render_atom(schema, q1, a);
        match self {
            Containment::HoldsVacuously(reason) => {
                let _ = writeln!(out, "holds vacuously: Q1 is unsatisfiable ({reason})");
            }
            Containment::Holds(witnesses) => {
                let _ = writeln!(out, "holds: {} branch(es) certified", witnesses.len());
                for w in witnesses {
                    if w.augmentation.is_empty() {
                        let _ = writeln!(out, "  branch Q1:");
                    } else {
                        let atoms: Vec<String> = w.augmentation.iter().map(atom_str).collect();
                        let _ = writeln!(out, "  branch Q1 & {{{}}}:", atoms.join(", "));
                    }
                    let pairs: Vec<String> = w
                        .assignment
                        .iter()
                        .enumerate()
                        .map(|(ix, v)| {
                            format!(
                                "{} -> {}",
                                q2.var_name(VarId::from_index(ix)),
                                var_display(q1, *v)
                            )
                        })
                        .collect();
                    let _ = writeln!(out, "    mu: {}", pairs.join(", "));
                }
            }
            Containment::FailsRightUnsatisfiable(reason) => {
                let _ = writeln!(out, "fails: Q2 is unsatisfiable ({reason}) but Q1 is not");
            }
            Containment::Fails { augmentation } => {
                if augmentation.is_empty() {
                    let _ = writeln!(out, "fails: no non-contradictory mapping from Q2 to Q1");
                } else {
                    let atoms: Vec<String> = augmentation.iter().map(atom_str).collect();
                    let _ = writeln!(
                        out,
                        "fails: no non-contradictory mapping from Q2 to Q1 & {{{}}}",
                        atoms.join(", ")
                    );
                }
            }
        }
        out
    }
}

/// `q`'s name for `v`, tolerating variables beyond `q`'s variable space.
///
/// Certificates produced under a rewriting theory refer to the *compiled*
/// left query, which may carry chase-witness variables the original query
/// lacks. Rendering against the original must then degrade to a positional
/// placeholder instead of panicking — callers wanting real names render
/// against [`crate::compiled_left`].
pub(crate) fn var_display(q: &Query, v: VarId) -> String {
    if v.index() < q.var_count() {
        q.var_name(v).to_owned()
    } else {
        format!("_v{}", v.index())
    }
}

/// Render one atom with names (in `q`'s variable namespace).
pub(crate) fn render_atom(schema: &Schema, q: &Query, a: &Atom) -> String {
    use oocq_query::Term;
    let term = |t: &Term| match t {
        Term::Var(v) => var_display(q, *v),
        Term::Attr(v, at) => format!("{}.{}", var_display(q, *v), schema.attr_name(*at)),
    };
    match a {
        Atom::Range(v, cs) => {
            let names: Vec<&str> = cs.iter().map(|&c| schema.class_name(c)).collect();
            format!("{} in {}", var_display(q, *v), names.join(" | "))
        }
        Atom::NonRange(v, cs) => {
            let names: Vec<&str> = cs.iter().map(|&c| schema.class_name(c)).collect();
            format!("{} not in {}", var_display(q, *v), names.join(" | "))
        }
        Atom::Eq(s, t) => format!("{} = {}", term(s), term(t)),
        Atom::Neq(s, t) => format!("{} != {}", term(s), term(t)),
        Atom::Member(x, y, at) => format!(
            "{} in {}.{}",
            var_display(q, *x),
            var_display(q, *y),
            schema.attr_name(*at)
        ),
        Atom::NonMember(x, y, at) => format!(
            "{} not in {}.{}",
            var_display(q, *x),
            var_display(q, *y),
            schema.attr_name(*at)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::decide_containment;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;

    #[test]
    fn positive_containment_certificate_has_one_branch() {
        let s = samples::vehicle_rental();
        let auto = s.class_id("Auto").unwrap();
        let mk = |extra: bool| {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            if extra {
                let y = b.var("y");
                b.range(y, [s.class_id("Discount").unwrap()]);
                b.member(x, y, s.attr_id("VehRented").unwrap());
            }
            b.range(x, [auto]);
            b.build()
        };
        let q1 = mk(true);
        let q2 = mk(false);
        let proof = decide_containment(&s, &q1, &q2).unwrap();
        assert!(proof.holds());
        let Containment::Holds(ws) = &proof else {
            panic!("expected mapping witnesses");
        };
        assert_eq!(ws.len(), 1);
        assert!(ws[0].augmentation.is_empty());
        let text = proof.render(&s, &q1, &q2);
        assert!(text.contains("mu: x -> x"));
    }

    #[test]
    fn vacuous_containment_reports_unsat_reason() {
        let s = samples::unrelated_subtypes();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("T1").unwrap()]);
        b.range(y, [s.class_id("T2").unwrap()]);
        b.eq_vars(x, y);
        let unsat = b.build();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("T1").unwrap()]);
        let q2 = b.build();
        let proof = decide_containment(&s, &unsat, &q2).unwrap();
        assert!(matches!(proof, Containment::HoldsVacuously(_)));
        assert!(proof.render(&s, &unsat, &q2).contains("vacuously"));
    }

    #[test]
    fn failure_names_the_failing_augmentation() {
        // Example 3.2: Q1 (chain) ⊄ Q3 (triangle); the failing branch is the
        // augmentation that merges x and z.
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let chain = |close: bool| {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            let y = b.var("y");
            let z = b.var("z");
            b.range(x, [c]).range(y, [c]).range(z, [c]);
            b.neq_vars(x, y).neq_vars(y, z);
            if close {
                b.neq_vars(x, z);
            }
            b.build()
        };
        let q1 = chain(false);
        let q3 = chain(true);
        let proof = decide_containment(&s, &q1, &q3).unwrap();
        assert!(!proof.holds());
        let Containment::Fails { augmentation } = &proof else {
            panic!("expected failing branch");
        };
        assert_eq!(augmentation.len(), 1);
        let text = proof.render(&s, &q1, &q3);
        assert!(text.contains("x = z"), "got: {text}");
    }

    #[test]
    fn right_unsat_failure() {
        let s = samples::unrelated_subtypes();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("T1").unwrap()]);
        let sat = b.build();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("T1").unwrap()]);
        b.range(y, [s.class_id("T2").unwrap()]);
        b.eq_vars(x, y);
        let unsat = b.build();
        let proof = decide_containment(&s, &sat, &unsat).unwrap();
        assert!(matches!(proof, Containment::FailsRightUnsatisfiable(_)));
    }

    #[test]
    fn witnesses_cover_every_consistent_branch() {
        // Example 3.2's Q1 ⊆ Q2 under Cor 3.3: branches = consistent
        // partitions of {x, y, z}. x=y, y=z, x=y=z are inconsistent (the
        // inequalities), x=z is consistent: 2 branches total (identity, x=z).
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [c]).range(y, [c]).range(z, [c]);
        b.neq_vars(x, y).neq_vars(y, z);
        let q1 = b.build();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).neq_vars(x, y);
        let q2 = b.build();
        let proof = decide_containment(&s, &q1, &q2).unwrap();
        let Containment::Holds(ws) = &proof else {
            panic!("expected witnesses");
        };
        assert_eq!(ws.len(), 2);
        assert!(ws.iter().any(|w| !w.augmentation.is_empty()));
    }
}

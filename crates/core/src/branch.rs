//! The branch engine behind the Theorem 3.1 containment enumeration.
//!
//! Theorem 3.1 quantifies over *branches*: one per pair `(S, W)` of a
//! consistent equality augmentation `S` of `Q₁` and a subset `W` of the
//! satisfiable membership augmentations of `Q₁&S`. The engine makes that
//! branch space explicit and cheap to walk:
//!
//! * **Global index space.** Branches are numbered `0..total` — each
//!   consistent `S` contributes a contiguous block of `2^|T(S)|` indices,
//!   one per membership-subset bitmask, in the same order the old inline
//!   double loop produced them. A single `u64` therefore names a branch,
//!   which is what makes work-stealing and deterministic merging trivial.
//! * **Shared per-`S` state.** For each consistent `S` the plan stores the
//!   augmented query `Q₁&S`, its [`QueryAnalysis`] (computed incrementally
//!   from the base analysis via [`QueryAnalysis::extended`] rather than from
//!   scratch), and the derivability indexes ([`TargetIndexes`]) the mapping
//!   search consults. A `W` subset adds membership atoms only: those merge
//!   no equivalence classes and touch no typing check, so *all* `2^|T(S)|`
//!   branches of the block share one analysis and one index, and a branch is
//!   materialized by inserting at most `|T(S)|` membership keys into a
//!   cloned hash set ([`TargetCtx::add_member_key`]) — no query rebuild, no
//!   re-analysis, no per-branch satisfiability pass (a `debug_assert`
//!   rechecks that claim in test builds).
//! * **Monotone sub-lattice pruning.** Within a block, the only atoms of
//!   `Q₂` a `W` extension can invalidate are non-memberships: `W` atoms
//!   merge no equivalence classes, and membership derivability only grows.
//!   Every evaluated witness therefore carries a *danger set* — the
//!   candidate bits whose membership key coincides with one of the
//!   witness's non-membership images. A witness whose danger bits all lie
//!   inside its own mask is valid at **every** superset mask, so the walk
//!   records it as *stable* and decides the whole superset sub-lattice
//!   without another search; a stable empty subset decides its entire
//!   block. The same danger bits give an O(1) warm-start test: the
//!   previous branch's witness is reused whenever its mask is a subset of
//!   the current one and no added bit is dangerous. Pruned branches are
//!   *decided*, not skipped — certificates still carry one witness per
//!   branch — so verdicts, witness order, and replay transcripts are
//!   identical with pruning on or off ([`EngineConfig::without_pruning`]
//!   exists so tests and benchmarks can prove that).
//! * **Block-granular worker pool with deterministic early exit.** In
//!   parallel mode, workers claim whole `S`-blocks from an atomic counter
//!   and walk each block with the *same* deterministic procedure as the
//!   serial engine, publishing refuted blocks into an atomic minimum. A
//!   worker only stops claiming once its claim reaches a known refuted
//!   block, so every block below the true first refutation is fully
//!   walked; the reported failure is therefore exactly the serial scan's,
//!   and on success the per-block witness lists — concatenated in block
//!   order — are exactly the serial witness list. Parallel and serial
//!   modes are observationally identical, which `tests/branch_engine.rs`
//!   checks by differential testing.
//!
//! [`EngineConfig`] selects the mode: `OOCQ_THREADS=1` (or
//! [`EngineConfig::serial`]) forces the reference serial path, and small
//! branch counts fall back to it automatically since spawning threads for a
//! handful of mapping searches costs more than it saves.

use crate::budget::Budget;
use crate::cache::DecisionCache;
use crate::derive::{
    find_mapping_with, MappingCounters, MappingGoal, SearchOrder, TargetCtx, TargetIndexes,
};
use crate::error::CoreError;
use crate::explain::{Containment, MappingWitness};
use crate::satisfiability;
use oocq_query::{Atom, Query, QueryAnalysis, Term, VarId};
use oocq_schema::{AttrId, AttrType, ClassId, Schema};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Upper bound on the number of branches (equality augmentations times
/// membership subsets) the Theorem 3.1 enumeration will explore, as a guard
/// against accidentally exponential inputs. Exceeding it is a recoverable
/// [`CoreError::BranchLimit`], not a panic.
pub const MAX_BRANCHES: u64 = 1 << 22;

/// How the containment engine schedules branch evaluation, plus the
/// optional collaborators every decision entry point consults.
///
/// The default ([`EngineConfig::from_env`]) honours the `OOCQ_THREADS`
/// environment variable and otherwise uses the machine's available
/// parallelism. `OOCQ_THREADS=1` — or [`EngineConfig::serial`] — selects the
/// serial reference path, which evaluates branches in index order on the
/// calling thread.
///
/// Neither collaborator affects *what* is decided — a cache may only replay
/// values the engine would compute, and the isomorphism fast path only
/// short-circuits checks whose outcome renaming already determines — so
/// every configuration is observationally identical on decision values.
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads for branch evaluation (`<= 1` means serial).
    pub threads: usize,
    /// Branch counts below this run serially even when `threads > 1` —
    /// thread startup dwarfs a few mapping searches.
    pub min_parallel_branches: u64,
    /// Memo table consulted (and fed) by the boolean containment and
    /// minimization entry points. `None` (the default) decides everything
    /// from scratch.
    pub cache: Option<Arc<dyn DecisionCache>>,
    /// Short-circuit equivalence-shaped checks through
    /// [`oocq_query::isomorphic`] before running Theorem 3.1 (isomorphic
    /// queries are equivalent). On by default; exists as a switch so tests
    /// can show the fast path changes nothing.
    pub iso_fast_path: bool,
    /// The cooperative request budget the hot loops charge. The default
    /// ([`Budget::unlimited`]) never trips and costs nothing; a tripped
    /// budget surfaces as the recoverable [`CoreError::Timeout`]. A budget
    /// that never trips changes no decision value, so the observational-
    /// identity guarantee above extends to generous budgets too.
    pub budget: Budget,
    /// Monotone sub-lattice pruning plus warm-start witness reuse across
    /// the `W` subsets of a block (see the module docs). Pruned branches
    /// are decided, not skipped, so this changes no decision value and no
    /// certificate shape. On by default; `OOCQ_PRUNE=0` or
    /// [`EngineConfig::without_pruning`] selects the exhaustive reference
    /// walk (differential tests, pruning benchmarks).
    pub prune: bool,
    /// Variable order for the homomorphism search. The default
    /// ([`SearchOrder::MostConstrained`]) is the production order; the
    /// others are differential references.
    pub search_order: SearchOrder,
    /// Background theory for constraint-aware decisions. `None` (the
    /// default) lets a schema with declared constraints activate the
    /// automatic [`ConstraintTheory`](crate::ConstraintTheory); an explicit
    /// theory overrides that — including the identity
    /// [`EmptyTheory`](crate::EmptyTheory), which disables theory
    /// processing outright. Explicit theories bypass the decision cache
    /// (see [`EngineConfig::decision_cache`]); the automatic theory does
    /// not, because schema fingerprints include the constraint text.
    pub theory: Option<Arc<dyn crate::theory::Theory>>,
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("threads", &self.threads)
            .field("min_parallel_branches", &self.min_parallel_branches)
            .field(
                "cache",
                &self.cache.as_ref().map(|_| "Some(<dyn DecisionCache>)"),
            )
            .field("iso_fast_path", &self.iso_fast_path)
            .field("budget", &self.budget)
            .field("prune", &self.prune)
            .field("search_order", &self.search_order)
            .field("theory", &self.theory)
            .finish()
    }
}

/// Parse an `OOCQ_THREADS`-style value: a positive integer selects that
/// many worker threads; anything else (unset, empty, `0`, negative,
/// non-numeric, trailing junk) means "no explicit request" and the caller
/// falls back to auto-detection. Surrounding whitespace is tolerated.
pub(crate) fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
}

impl EngineConfig {
    /// Threads from `OOCQ_THREADS` (a positive integer; `0`, malformed, or
    /// unset means auto-detect), defaulting to the machine's available
    /// parallelism. This is the single reading of `OOCQ_THREADS` shared by
    /// the branch engine and the `oocq-serve` worker pool.
    pub fn from_env() -> EngineConfig {
        let requested = parse_threads(std::env::var("OOCQ_THREADS").ok().as_deref());
        let threads = requested.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        // `OOCQ_PRUNE=0` drops to the exhaustive reference walk; anything
        // else (including unset) keeps pruning on.
        let prune = std::env::var("OOCQ_PRUNE")
            .map(|v| v.trim() != "0")
            .unwrap_or(true);
        EngineConfig {
            threads,
            prune,
            ..EngineConfig::serial_defaults(8)
        }
    }

    /// The serial reference engine: one thread, no fan-out anywhere.
    pub fn serial() -> EngineConfig {
        EngineConfig::serial_defaults(u64::MAX)
    }

    /// A parallel engine with an explicit thread count.
    pub fn with_threads(threads: usize) -> EngineConfig {
        EngineConfig {
            threads: threads.max(1),
            ..EngineConfig::serial_defaults(8)
        }
    }

    fn serial_defaults(min_parallel_branches: u64) -> EngineConfig {
        EngineConfig {
            threads: 1,
            min_parallel_branches,
            cache: None,
            iso_fast_path: true,
            budget: Budget::unlimited(),
            prune: true,
            search_order: SearchOrder::MostConstrained,
            theory: None,
        }
    }

    /// This configuration with its fan-out disabled but its collaborators
    /// (cache, fast path) kept — what an already-parallel outer loop hands
    /// to the per-item inner checks.
    pub fn serial_inner(&self) -> EngineConfig {
        EngineConfig {
            threads: 1,
            min_parallel_branches: u64::MAX,
            ..self.clone()
        }
    }

    /// This configuration with a decision cache installed.
    pub fn with_cache(mut self, cache: Arc<dyn DecisionCache>) -> EngineConfig {
        self.cache = Some(cache);
        self
    }

    /// This configuration with the isomorphism fast path disabled (used by
    /// regression tests to show the fast path is invisible).
    pub fn without_iso_fast_path(mut self) -> EngineConfig {
        self.iso_fast_path = false;
        self
    }

    /// This configuration with a request budget installed. Clones of the
    /// configuration (including [`EngineConfig::serial_inner`]) share the
    /// budget's counter, so one request's nested checks draw on one pool.
    pub fn with_budget(mut self, budget: Budget) -> EngineConfig {
        self.budget = budget;
        self
    }

    /// This configuration with sub-lattice pruning and warm starts disabled
    /// — the exhaustive walk that evaluates every branch. Used by
    /// differential tests and by `bench_prune` as the baseline.
    pub fn without_pruning(mut self) -> EngineConfig {
        self.prune = false;
        self
    }

    /// This configuration with an explicit homomorphism [`SearchOrder`].
    pub fn with_search_order(mut self, order: SearchOrder) -> EngineConfig {
        self.search_order = order;
        self
    }

    /// This configuration with an explicit background [`Theory`](crate::Theory)
    /// installed. See the [`theory`](EngineConfig::theory) field for how an
    /// explicit theory interacts with schema constraints and the cache.
    pub fn with_theory(mut self, theory: Arc<dyn crate::theory::Theory>) -> EngineConfig {
        self.theory = Some(theory);
        self
    }

    /// The decision cache the engine may consult for this configuration.
    ///
    /// An explicitly installed theory — even the identity — suppresses the
    /// cache: the cache's keys identify (schema, queries) but not the
    /// rewriting in force, so a verdict computed under an explicit theory
    /// must never be replayed for a plain decision or vice versa. The
    /// automatic constraint theory needs no such guard because it is a pure
    /// function of the schema, whose fingerprint keys already include the
    /// constraint text.
    pub(crate) fn decision_cache(&self) -> Option<&Arc<dyn DecisionCache>> {
        if self.theory.is_some() {
            None
        } else {
            self.cache.as_ref()
        }
    }
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig::from_env()
    }
}

/// Cumulative branch-engine instrumentation for one containment target,
/// surfaced through [`PreparedQueryStats`](crate::PreparedQueryStats).
/// Counters accumulate across every run sharing the target's
/// [`BranchBase`], in the same spirit as the artifact build counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Branches in every plan built over the target: Σ `2^|T(S)|` over the
    /// consistent equality augmentations.
    pub branches_planned: u64,
    /// Branches settled by a warm-start check or a homomorphism search.
    pub branches_evaluated: u64,
    /// Branches decided by the monotone sub-lattice argument, with no
    /// per-branch evaluation at all.
    pub branches_skipped: u64,
    /// Evaluated branches settled by reusing the previous branch's witness
    /// (an O(1) danger-bit check instead of a search).
    pub warm_start_hits: u64,
    /// Homomorphism searches run.
    pub mapping_searches: u64,
    /// Candidate assignments retracted across those searches.
    pub mapping_backtracks: u64,
}

/// The atomic collector behind [`BranchStats`], shared by the serial walk
/// and every parallel worker.
#[derive(Debug, Default)]
pub(crate) struct BranchCounters {
    planned: AtomicU64,
    evaluated: AtomicU64,
    skipped: AtomicU64,
    warm_hits: AtomicU64,
    pub(crate) mapping: MappingCounters,
}

impl BranchCounters {
    pub(crate) fn snapshot(&self) -> BranchStats {
        BranchStats {
            branches_planned: self.planned.load(Ordering::Relaxed),
            branches_evaluated: self.evaluated.load(Ordering::Relaxed),
            branches_skipped: self.skipped.load(Ordering::Relaxed),
            warm_start_hits: self.warm_hits.load(Ordering::Relaxed),
            mapping_searches: self.mapping.searches.load(Ordering::Relaxed),
            mapping_backtracks: self.mapping.backtracks.load(Ordering::Relaxed),
        }
    }
}

/// The derived state of a stripped containment target `Q₁` that every
/// Theorem 3.1 run over it shares: the base [`QueryAnalysis`] (each
/// `S`-augmentation's analysis extends it incrementally), the
/// [`TargetIndexes`] of the unaugmented query (reused verbatim by the empty
/// augmentation's branch block), and the instrumentation counters. A
/// [`PreparedQuery`](crate::PreparedQuery) memoizes one of these so repeated
/// decisions rebuild neither.
pub(crate) struct BranchBase {
    /// Analysis of the stripped `Q₁`.
    pub(crate) analysis: QueryAnalysis,
    /// Derivability indexes of the stripped, unaugmented `Q₁`.
    pub(crate) indexes: TargetIndexes,
    /// Shared instrumentation, accumulated by every plan over this target.
    pub(crate) counters: Arc<BranchCounters>,
}

impl BranchBase {
    /// Derive the shared base state for a stripped terminal `q1`.
    pub(crate) fn build(q1: &Query, classes1: &[ClassId]) -> BranchBase {
        let analysis = QueryAnalysis::of(q1);
        let indexes = TargetIndexes::build(q1, classes1, &analysis);
        BranchBase {
            analysis,
            indexes,
            counters: Arc::new(BranchCounters::default()),
        }
    }
}

/// One consistent equality augmentation `S` with everything its `2^|T(S)|`
/// membership-subset branches share.
struct SBranch {
    /// The augmentation atoms `S` (equalities between representative
    /// variables).
    s_atoms: Vec<Atom>,
    /// `Q₁&S`.
    q1s: Query,
    /// Analysis of `Q₁&S`, extended incrementally from the base analysis.
    analysis: QueryAnalysis,
    /// Derivability indexes over `Q₁&S`.
    indexes: TargetIndexes,
    /// The satisfiable membership augmentations `T(S)`, bit `i` of a branch
    /// mask selecting `w_candidates[i]`.
    w_candidates: Vec<Atom>,
    /// The membership key of each candidate under `analysis`, precomputed so
    /// a branch context is ready after `|W|` hash-set inserts.
    w_keys: Vec<(usize, usize, AttrId)>,
}

/// The explicit branch space of one Theorem 3.1 containment check
/// `Q₁ ⊆ Q₂`: every consistent `(S, W)` pair, numbered `0..total`, with the
/// per-`S` state shared across each block.
pub(crate) struct BranchPlan<'a> {
    schema: &'a Schema,
    /// Terminal class of each `Q₁` variable (augmentations add no
    /// variables, so one vector serves every branch).
    classes1: &'a [ClassId],
    sbranches: Vec<SBranch>,
    total: u64,
    /// Instrumentation shared with the [`BranchBase`] the plan was built
    /// from.
    counters: Arc<BranchCounters>,
}

impl<'a> BranchPlan<'a> {
    /// Enumerate the branch space for a satisfiable, non-range-stripped
    /// terminal `q1` whose shared base state (`base`) the caller has already
    /// derived — or memoized on a prepared query. `enum_s` / `enum_w` select
    /// which dimensions the chosen strategy actually quantifies over
    /// (Corollaries 3.2–3.4 fix one or both to the trivial choice). Charges
    /// `budget` one unit per candidate `S` block, so partition-count
    /// blowups trip the budget during planning rather than after it.
    pub(crate) fn build(
        schema: &'a Schema,
        q1: &'a Query,
        classes1: &'a [ClassId],
        base: &BranchBase,
        enum_s: bool,
        enum_w: bool,
        budget: &Budget,
    ) -> Result<BranchPlan<'a>, CoreError> {
        let s_choices = if enum_s {
            equality_augmentations(q1, classes1, &base.analysis)?
        } else {
            vec![Vec::new()]
        };

        let mut sbranches: Vec<SBranch> = Vec::new();
        let mut total: u64 = 0;
        for s_atoms in s_choices {
            budget.charge(1)?;
            let q1s = q1.with_extra_atoms(s_atoms.clone());
            let analysis = if s_atoms.is_empty() {
                base.analysis.clone()
            } else {
                base.analysis.extended(&s_atoms)
            };
            if !satisfiability::check(schema, &q1s, classes1, &analysis).is_satisfiable() {
                continue; // inconsistent augmentation: vacuous branch block
            }
            let w_candidates = if enum_w {
                membership_candidates(schema, &q1s, classes1, &analysis)
            } else {
                Vec::new()
            };
            // A branch mask is a u64, so 64 or more candidates cannot even
            // be indexed — report the real candidate count instead of the
            // saturated subset count a checked shift would produce.
            if w_candidates.len() > 63 {
                return Err(CoreError::BranchSpaceOverflow {
                    candidates: w_candidates.len(),
                    limit: MAX_BRANCHES,
                });
            }
            let subsets = 1u64 << w_candidates.len();
            let new_total = total.saturating_add(subsets);
            if new_total > MAX_BRANCHES {
                return Err(CoreError::BranchLimit {
                    branches: new_total,
                    limit: MAX_BRANCHES,
                });
            }
            let graph = analysis.graph();
            let w_keys = w_candidates
                .iter()
                .map(|a| match a {
                    Atom::Member(x, t, attr) => (
                        graph.class_id(Term::Var(*x)).expect("var node"),
                        graph.class_id(Term::Var(*t)).expect("var node"),
                        *attr,
                    ),
                    _ => unreachable!("membership candidates are Member atoms"),
                })
                .collect();
            let indexes = if s_atoms.is_empty() {
                base.indexes.clone()
            } else {
                TargetIndexes::build(&q1s, classes1, &analysis)
            };
            sbranches.push(SBranch {
                s_atoms,
                q1s,
                analysis,
                indexes,
                w_candidates,
                w_keys,
            });
            base.counters.planned.fetch_add(subsets, Ordering::Relaxed);
            total = new_total;
        }
        Ok(BranchPlan {
            schema,
            classes1,
            sbranches,
            total,
            counters: base.counters.clone(),
        })
    }

    /// The augmentation atoms `S ∪ W` of one branch of a block, in the
    /// order the witness certificates report them.
    fn augmentation_in(sb: &SBranch, mask: u64) -> Vec<Atom> {
        let mut atoms = sb.s_atoms.clone();
        atoms.extend(
            sb.w_candidates
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, a)| a.clone()),
        );
        atoms
    }

    /// Evaluate one branch of a block: does a non-contradictory mapping
    /// `μ : q2 → Q₁&S&W` exist?
    fn eval_mask(
        &self,
        sb: &SBranch,
        mask: u64,
        q2: &Query,
        classes2: &[ClassId],
        cfg: &EngineConfig,
    ) -> Option<Vec<VarId>> {
        // Membership atoms merge no classes and add no typing obligations
        // beyond what the candidate filter already checked, so Q₁&S&W shares
        // Q₁&S's analysis and satisfiability. Recheck that from scratch in
        // test builds.
        #[cfg(debug_assertions)]
        {
            let q1sw = sb.q1s.with_extra_atoms(
                sb.w_candidates
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, a)| a.clone()),
            );
            debug_assert!(
                satisfiability::check(self.schema, &q1sw, self.classes1, &QueryAnalysis::of(&q1sw))
                    .is_satisfiable(),
                "candidate-filtered membership augmentation must stay satisfiable"
            );
        }
        let mut ctx = TargetCtx::new(self.schema, self.classes1, &sb.analysis, &sb.indexes);
        for (i, &key) in sb.w_keys.iter().enumerate() {
            if mask >> i & 1 == 1 {
                ctx.add_member_key(key);
            }
        }
        let goal = MappingGoal {
            source: q2,
            source_classes: classes2,
            free_anchor: sb.q1s.free_var(),
            avoid_in_image: None,
        };
        find_mapping_with(&ctx, &goal, cfg.search_order, Some(&self.counters.mapping))
    }

    /// The candidate bits of the block whose membership key coincides with
    /// a non-membership image of the witness — the only bits whose addition
    /// can invalidate it. Every other atom check is monotone in `W`:
    /// equalities, ranges, and inequalities never consult the membership
    /// set, and derivable memberships only grow along supersets.
    fn danger_bits(sb: &SBranch, q2: &Query, assignment: &[VarId]) -> u64 {
        let graph = sb.analysis.graph();
        let root = |v: VarId| graph.class_id(Term::Var(v)).expect("var node");
        let mut bits = 0u64;
        for atom in q2.atoms() {
            if let Atom::NonMember(x, y, a) = atom {
                let key = (root(assignment[x.index()]), root(assignment[y.index()]), *a);
                for (i, &k) in sb.w_keys.iter().enumerate() {
                    if k == key {
                        bits |= 1 << i;
                    }
                }
            }
        }
        bits
    }

    /// Walk one `S`-block in mask order. This is the single deterministic
    /// procedure both runners use, so parallel certificates are serial
    /// certificates by construction.
    ///
    /// With pruning on, a witness whose danger bits all lie inside its own
    /// mask is *stable*: it stays valid at every superset mask (see
    /// [`Self::danger_bits`]), so those branches are decided by an O(1)
    /// subset test against the stable list — which is automatically an
    /// antichain in walk order, since any superset of an earlier stable
    /// mask would itself have been skipped. The witness reported for a
    /// skipped branch is the first stable witness covering it, making the
    /// choice deterministic. Budget: one unit per evaluated branch always;
    /// in certificate mode skipped branches also charge one unit each
    /// (their witness is still materialized), while in verdict mode they
    /// charge one unit per [`SKIP_CHARGE_STRIDE`] so pruned-away work costs
    /// what it saves.
    fn walk_block(
        &self,
        sb: &SBranch,
        q2: &Query,
        classes2: &[ClassId],
        cfg: &EngineConfig,
        collect: bool,
    ) -> Result<BlockResult, CoreError> {
        let t = sb.w_candidates.len();
        let nmasks = 1u64 << t; // t <= 63, enforced at plan build
        let universe = nmasks - 1;
        let counters = &*self.counters;
        let mut witnesses: Vec<MappingWitness> = Vec::new();
        // Evaluated witnesses with their danger bits.
        let mut bank: Vec<(Vec<VarId>, u64)> = Vec::new();
        // Stable `(mask, bank index)` entries, in walk order.
        let mut stable: Vec<(u64, usize)> = Vec::new();
        // The last evaluated branch, for the warm-start check.
        let mut prev: Option<(u64, usize)> = None;
        let mut unpaid_skips = 0u64;

        let mut mask = 0u64;
        while mask < nmasks {
            if cfg.prune {
                if let Some(&(smask, widx)) = stable.iter().find(|&&(s, _)| mask & s == s) {
                    if !collect {
                        if smask == 0 {
                            // A stable empty subset covers every mask: the
                            // rest of the block is decided wholesale.
                            counters.skipped.fetch_add(nmasks - mask, Ordering::Relaxed);
                            cfg.budget.charge(1)?;
                            return Ok(BlockResult::Holds(witnesses));
                        }
                        counters.skipped.fetch_add(1, Ordering::Relaxed);
                        unpaid_skips += 1;
                        if unpaid_skips >= SKIP_CHARGE_STRIDE {
                            cfg.budget.charge(1)?;
                            unpaid_skips = 0;
                        }
                    } else {
                        counters.skipped.fetch_add(1, Ordering::Relaxed);
                        cfg.budget.charge(1)?;
                        witnesses.push(MappingWitness {
                            augmentation: Self::augmentation_in(sb, mask),
                            assignment: bank[widx].0.clone(),
                        });
                    }
                    mask += 1;
                    continue;
                }
            }
            cfg.budget.charge(1)?;
            counters.evaluated.fetch_add(1, Ordering::Relaxed);
            // Warm start: the previous witness transfers whenever its mask
            // is a subset of this one and no added bit is dangerous.
            let mut reused = None;
            if cfg.prune {
                if let Some((pmask, pidx)) = prev {
                    if pmask & !mask == 0 && bank[pidx].1 & (mask & !pmask) == 0 {
                        counters.warm_hits.fetch_add(1, Ordering::Relaxed);
                        reused = Some(pidx);
                    }
                }
            }
            let widx = match reused {
                Some(i) => i,
                None => match self.eval_mask(sb, mask, q2, classes2, cfg) {
                    Some(assignment) => {
                        let danger = Self::danger_bits(sb, q2, &assignment);
                        bank.push((assignment, danger));
                        bank.len() - 1
                    }
                    None => return Ok(BlockResult::Fails { mask }),
                },
            };
            if cfg.prune && bank[widx].1 & !mask & universe == 0 {
                stable.push((mask, widx));
            }
            prev = Some((mask, widx));
            if collect {
                witnesses.push(MappingWitness {
                    augmentation: Self::augmentation_in(sb, mask),
                    assignment: bank[widx].0.clone(),
                });
            }
            mask += 1;
        }
        Ok(BlockResult::Holds(witnesses))
    }

    /// Decide containment over the whole branch space. Serial and parallel
    /// modes return identical values, including witness order and the
    /// identity of the failing branch. `collect` selects certificate mode
    /// (one witness per branch, as `decide`/`explain` report) over verdict
    /// mode (no witness materialization — the boolean entry points drop
    /// them anyway, and wholesale block skips then cost O(1)).
    ///
    /// A tripped budget surfaces as [`CoreError::Timeout`] — unless a
    /// refuted branch was already found, which is conclusive no matter how
    /// much of the space went unexplored.
    pub(crate) fn run(
        &self,
        q2: &Query,
        classes2: &[ClassId],
        cfg: &EngineConfig,
        collect: bool,
    ) -> Result<Containment, CoreError> {
        if cfg.threads <= 1 || self.total < cfg.min_parallel_branches || self.sbranches.len() < 2 {
            self.run_serial(q2, classes2, cfg, collect)
        } else {
            self.run_parallel(q2, classes2, cfg, collect)
        }
    }

    /// Block-by-block serial walk. Iterating the blocks directly (instead
    /// of binary-searching the block for every global index) makes the
    /// per-branch scheduling cost O(1).
    fn run_serial(
        &self,
        q2: &Query,
        classes2: &[ClassId],
        cfg: &EngineConfig,
        collect: bool,
    ) -> Result<Containment, CoreError> {
        let mut witnesses: Vec<MappingWitness> = Vec::new();
        for sb in &self.sbranches {
            match self.walk_block(sb, q2, classes2, cfg, collect)? {
                BlockResult::Fails { mask } => {
                    return Ok(Containment::Fails {
                        augmentation: Self::augmentation_in(sb, mask),
                    })
                }
                BlockResult::Holds(ws) => witnesses.extend(ws),
            }
        }
        Ok(Containment::Holds(witnesses))
    }

    /// Block-granular worker pool: workers claim whole `S`-blocks and walk
    /// each with the same deterministic procedure as the serial engine.
    /// Claims are handed out in block order and a worker only stops
    /// claiming once its claim reaches a *known* refuted block, so every
    /// block below the true first refutation is fully walked — the final
    /// minimum is the block the serial scan fails in, and the failing mask
    /// within it is deterministic because the block walk is.
    fn run_parallel(
        &self,
        q2: &Query,
        classes2: &[ClassId],
        cfg: &EngineConfig,
        collect: bool,
    ) -> Result<Containment, CoreError> {
        let blocks = self.sbranches.len();
        let workers = cfg.threads.min(blocks).max(1);
        let next = AtomicU64::new(0);
        // Smallest block index with a refuted branch; `u64::MAX` = none.
        let min_fail = AtomicU64::new(u64::MAX);
        let fails: Mutex<Option<(usize, u64)>> = Mutex::new(None);
        let collected: Mutex<Vec<(usize, Vec<MappingWitness>)>> = Mutex::new(Vec::new());
        let budget_err: Mutex<Option<CoreError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Vec<MappingWitness>)> = Vec::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= blocks as u64 || b >= min_fail.load(Ordering::Acquire) {
                            break;
                        }
                        let b = b as usize;
                        // The budget trip is sticky, so once one worker
                        // records the error here every other worker's next
                        // charge fails too and the pool winds down.
                        match self.walk_block(&self.sbranches[b], q2, classes2, cfg, collect) {
                            Err(e) => {
                                *budget_err.lock().unwrap() = Some(e);
                                break;
                            }
                            Ok(BlockResult::Fails { mask }) => {
                                min_fail.fetch_min(b as u64, Ordering::AcqRel);
                                let mut f = fails.lock().unwrap();
                                if f.is_none_or(|(fb, _)| b < fb) {
                                    *f = Some((b, mask));
                                }
                            }
                            Ok(BlockResult::Holds(ws)) => local.push((b, ws)),
                        }
                    }
                    if !local.is_empty() {
                        collected.lock().unwrap().extend(local);
                    }
                });
            }
        });
        // Precedence: a refutation found anywhere is a conclusive `Fails`
        // (Theorem 3.1 needs every branch only for `Holds`), so it outranks
        // budget exhaustion; a `Holds` claim, by contrast, is only valid if
        // no branch was skipped, so the budget error must win over it.
        if let Some((b, mask)) = fails.into_inner().unwrap() {
            return Ok(Containment::Fails {
                augmentation: Self::augmentation_in(&self.sbranches[b], mask),
            });
        }
        if let Some(e) = budget_err.into_inner().unwrap() {
            return Err(e);
        }
        let mut found = collected.into_inner().unwrap();
        found.sort_unstable_by_key(|&(b, _)| b);
        Ok(Containment::Holds(
            found.into_iter().flat_map(|(_, ws)| ws).collect(),
        ))
    }
}

/// In verdict mode, one budget unit buys this many sub-lattice skips: the
/// per-skip cost is a bitwise subset test, so charging skips like
/// evaluations would make budgets trip on exactly the work pruning
/// eliminated — while charging nothing would let a huge pruned walk ignore
/// its deadline entirely.
const SKIP_CHARGE_STRIDE: u64 = 1024;

/// Outcome of walking one `S`-block.
enum BlockResult {
    /// Every branch of the block has a witness (listed only in certificate
    /// mode).
    Holds(Vec<MappingWitness>),
    /// The first refuted mask within the block.
    Fails { mask: u64 },
}

/// Enumerate the equality-augmentation candidates `S` of Theorem 3.1: one
/// per partition of `q1`'s variable equivalence classes, merging only blocks
/// whose variables share a terminal class (merging across classes is always
/// inconsistent, so those partitions are skipped at the source). Errors with
/// [`CoreError::BranchLimit`] once the partition count alone exceeds
/// [`MAX_BRANCHES`].
fn equality_augmentations(
    q1: &Query,
    classes: &[ClassId],
    analysis: &QueryAnalysis,
) -> Result<Vec<Vec<Atom>>, CoreError> {
    let graph = analysis.graph();
    // Current variable blocks: representative variable per equivalence class.
    let mut reps: Vec<VarId> = Vec::new();
    let mut seen_roots: HashSet<usize> = HashSet::new();
    for v in q1.vars() {
        let r = graph.class_id(Term::Var(v)).expect("var node");
        if seen_roots.insert(r) {
            reps.push(v);
        }
    }
    let block_class: Vec<ClassId> = reps.iter().map(|v| classes[v.index()]).collect();
    let k = reps.len();

    // Restricted-growth enumeration of partitions of the k blocks, where a
    // block may only join a group of the same terminal class.
    let mut assignment = vec![0usize; k];
    fn recurse(
        i: usize,
        groups: &mut Vec<ClassId>,
        assignment: &mut [usize],
        block_class: &[ClassId],
        out: &mut Vec<Vec<usize>>,
    ) -> bool {
        if out.len() as u64 > MAX_BRANCHES {
            return false;
        }
        if i == assignment.len() {
            out.push(assignment.to_vec());
            return true;
        }
        for g in 0..groups.len() {
            if groups[g] == block_class[i] {
                assignment[i] = g;
                if !recurse(i + 1, groups, assignment, block_class, out) {
                    return false;
                }
            }
        }
        groups.push(block_class[i]);
        assignment[i] = groups.len() - 1;
        let ok = recurse(i + 1, groups, assignment, block_class, out);
        groups.pop();
        ok
    }
    let mut partitions: Vec<Vec<usize>> = Vec::new();
    if !recurse(
        0,
        &mut Vec::new(),
        &mut assignment,
        &block_class,
        &mut partitions,
    ) {
        return Err(CoreError::BranchLimit {
            branches: partitions.len() as u64,
            limit: MAX_BRANCHES,
        });
    }

    let mut out: Vec<Vec<Atom>> = Vec::with_capacity(partitions.len());
    for p in partitions {
        let mut atoms: Vec<Atom> = Vec::new();
        let mut first_of_group: Vec<Option<VarId>> = vec![None; k];
        for (block, &g) in p.iter().enumerate() {
            match first_of_group[g] {
                None => first_of_group[g] = Some(reps[block]),
                Some(first) => atoms.push(Atom::Eq(Term::Var(first), Term::Var(reps[block]))),
            }
        }
        out.push(atoms);
    }
    Ok(out)
}

/// The candidate membership augmentations `T` of Theorem 3.1 for `Q₁&S`:
/// atoms `x ∈ t.P` with `x` a variable, `t.P` a set term, the addition
/// satisfiable, and the membership not already derivable (adding a derivable
/// membership changes nothing, so it is pruned to halve the subset space).
fn membership_candidates(
    schema: &Schema,
    q1s: &Query,
    classes: &[ClassId],
    analysis: &QueryAnalysis,
) -> Vec<Atom> {
    // `Q₁&S` has the same variables as `Q₁`, so the caller's class vector
    // stays valid.
    debug_assert_eq!(classes.len(), q1s.var_count());
    let graph = analysis.graph();
    let var_root = |v: VarId| graph.class_id(Term::Var(v)).expect("var node");

    // One representative set term per equivalence class of set terms.
    let mut set_reps: Vec<(VarId, AttrId)> = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    for &t in graph.terms() {
        if let Term::Attr(v, a) = t {
            if analysis.is_set_term(t) && seen.insert(graph.class_id(t).expect("node")) {
                set_reps.push((v, a));
            }
        }
    }

    // Index the memberships Q₁&S derives and the non-memberships it asserts,
    // by equivalence-class key, so each candidate is two hash probes instead
    // of two scans of the atom list.
    let mut derived: HashSet<(usize, usize, AttrId)> = HashSet::new();
    let mut excluded: HashSet<(usize, usize, AttrId)> = HashSet::new();
    for atom in q1s.atoms() {
        match atom {
            Atom::Member(s, u, b) => {
                derived.insert((var_root(*s), var_root(*u), *b));
            }
            Atom::NonMember(s, u, b) => {
                excluded.insert((var_root(*s), var_root(*u), *b));
            }
            _ => {}
        }
    }

    let mut out: Vec<Atom> = Vec::new();
    for &(t, a) in &set_reps {
        let Some(AttrType::SetOf(d)) = schema.attr_type(classes[t.index()], a) else {
            continue; // ill-typed set term: Q₁&S was unsatisfiable anyway
        };
        let t_root = var_root(t);
        for x in q1s.vars() {
            if !schema.terminal_descendants(d).contains(&classes[x.index()]) {
                continue; // x can never be a member: not in T
            }
            let key = (var_root(x), t_root, a);
            if derived.contains(&key) || excluded.contains(&key) {
                continue;
            }
            out.push(Atom::Member(x, t, a));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Cost-based dispatch: exact structural facts about the branch space,
// computable from the prepared analysis before any block is materialized.
// `decide_sides` uses them to downgrade a strategy's enumeration dimensions
// when they are provably trivial, and to reject provably-over-limit spaces
// before planning starts.

/// Does the target have any set term? Without one, `T(S)` is empty for
/// every `S`, so quantifying over `W` subsets enumerates exactly one empty
/// subset per block — the `W` dimension is trivial.
pub(crate) fn has_set_terms(analysis: &QueryAnalysis) -> bool {
    analysis
        .graph()
        .terms()
        .iter()
        .any(|&t| analysis.is_set_term(t))
}

/// Can any equality augmentation merge anything? Only if some terminal
/// class holds at least two distinct variable equivalence blocks; otherwise
/// the identity partition is the single consistent `S` and the dimension is
/// trivial.
pub(crate) fn has_mergeable_blocks(
    q1: &Query,
    classes: &[ClassId],
    analysis: &QueryAnalysis,
) -> bool {
    let graph = analysis.graph();
    let mut first_root: HashMap<ClassId, usize> = HashMap::new();
    for v in q1.vars() {
        let r = graph.class_id(Term::Var(v)).expect("var node");
        match first_root.entry(classes[v.index()]) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(r);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != r {
                    return true;
                }
            }
        }
    }
    false
}

/// The membership-candidate count of the *unaugmented* target. The empty
/// partition is always a consistent `S` (the target is satisfiable — the
/// caller checked), so `2^floor` is an exact lower bound on the full branch
/// total and the caller can reject over-limit spaces before planning.
pub(crate) fn w_candidate_floor(
    schema: &Schema,
    q1: &Query,
    classes1: &[ClassId],
    base: &BranchBase,
) -> usize {
    membership_candidates(schema, q1, classes1, &base.analysis).len()
}

/// Evaluate `items[0..n]` in index order, stopping at the first result
/// `is_stop` accepts, and return the evaluated prefix as `(index, result)`
/// pairs sorted by index — the stop item included, later items dropped.
///
/// With `threads > 1` the items are evaluated by a claim-counter worker pool
/// using the same discipline as the branch engine (a worker stops claiming
/// once its claim reaches a known stop index), so the returned prefix — and
/// in particular the *first* stop item — is identical to the serial scan's.
/// Used to fan out the pairwise checks of Theorem 4.1 and the per-subquery
/// satisfiability filter of Proposition 2.1.
pub(crate) fn par_prefix<T, F, S>(n: usize, threads: usize, eval: F, is_stop: S) -> Vec<(usize, T)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    S: Fn(&T) -> bool + Sync,
{
    if threads <= 1 || n < 2 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let r = eval(i);
            let stop = is_stop(&r);
            out.push((i, r));
            if stop {
                break;
            }
        }
        return out;
    }
    let workers = threads.min(n);
    let next = AtomicU64::new(0);
    let stop_at = AtomicU64::new(u64::MAX);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n as u64 || idx > stop_at.load(Ordering::Acquire) {
                        break;
                    }
                    let r = eval(idx as usize);
                    if is_stop(&r) {
                        stop_at.fetch_min(idx, Ordering::AcqRel);
                    }
                    local.push((idx as usize, r));
                }
                if !local.is_empty() {
                    collected.lock().unwrap().extend(local);
                }
            });
        }
    });
    let cut = stop_at.into_inner();
    let mut out = collected.into_inner().unwrap();
    out.retain(|&(idx, _)| idx as u64 <= cut);
    out.sort_unstable_by_key(|&(idx, _)| idx);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_env_defaults_are_sane() {
        let cfg = EngineConfig::from_env();
        assert!(cfg.threads >= 1);
        assert!(cfg.min_parallel_branches >= 1);
        assert!(cfg.cache.is_none());
        assert!(cfg.iso_fast_path);
        assert!(cfg.budget.is_unlimited());
        assert!(cfg.prune, "pruning must be on unless OOCQ_PRUNE=0");
        assert_eq!(cfg.search_order, SearchOrder::MostConstrained);
        assert_eq!(EngineConfig::serial().threads, 1);
        assert!(!EngineConfig::serial().without_pruning().prune);
        assert_eq!(
            EngineConfig::serial()
                .with_search_order(SearchOrder::Static)
                .search_order,
            SearchOrder::Static
        );
        assert_eq!(EngineConfig::with_threads(0).threads, 1);
        assert_eq!(EngineConfig::with_threads(4).threads, 4);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some("  8  ")), Some(8), "whitespace trimmed");
    }

    #[test]
    fn parse_threads_rejects_malformed_values() {
        for bad in ["", "  ", "0", "-3", "abc", "4x", "3.5", "0x10", "+ 2"] {
            assert_eq!(parse_threads(Some(bad)), None, "input {bad:?}");
        }
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn serial_inner_keeps_collaborators() {
        let cfg = EngineConfig::with_threads(4)
            .without_iso_fast_path()
            .with_budget(Budget::with_limit(7));
        let inner = cfg.serial_inner();
        assert_eq!(inner.threads, 1);
        assert_eq!(inner.min_parallel_branches, u64::MAX);
        assert!(!inner.iso_fast_path);
        assert!(inner.cache.is_none());
        // The inner config shares the *same* budget counter, not a copy.
        inner.budget.charge(7).unwrap();
        assert!(cfg.budget.charge(1).is_err());
    }

    #[test]
    fn par_prefix_serial_and_parallel_agree() {
        for threads in [1, 2, 4, 8] {
            let got = par_prefix(100, threads, |i| i * i, |&r| r >= 49);
            assert_eq!(got.len(), 8, "threads = {threads}");
            assert_eq!(got[7], (7, 49));
            for (k, &(idx, v)) in got.iter().enumerate() {
                assert_eq!(idx, k);
                assert_eq!(v, k * k);
            }
        }
    }

    #[test]
    fn par_prefix_without_stop_covers_everything() {
        let got = par_prefix(37, 4, |i| i, |_| false);
        assert_eq!(got.len(), 37);
        assert!(got
            .iter()
            .enumerate()
            .all(|(k, &(idx, v))| idx == k && v == k));
    }

    #[test]
    fn par_prefix_empty_and_single() {
        assert!(par_prefix(0, 4, |i| i, |_| false).is_empty());
        assert_eq!(par_prefix(1, 4, |i| i + 10, |_| true), vec![(0, 10)]);
    }
}

//! The branch engine behind the Theorem 3.1 containment enumeration.
//!
//! Theorem 3.1 quantifies over *branches*: one per pair `(S, W)` of a
//! consistent equality augmentation `S` of `Q₁` and a subset `W` of the
//! satisfiable membership augmentations of `Q₁&S`. The engine makes that
//! branch space explicit and cheap to walk:
//!
//! * **Global index space.** Branches are numbered `0..total` — each
//!   consistent `S` contributes a contiguous block of `2^|T(S)|` indices,
//!   one per membership-subset bitmask, in the same order the old inline
//!   double loop produced them. A single `u64` therefore names a branch,
//!   which is what makes work-stealing and deterministic merging trivial.
//! * **Shared per-`S` state.** For each consistent `S` the plan stores the
//!   augmented query `Q₁&S`, its [`QueryAnalysis`] (computed incrementally
//!   from the base analysis via [`QueryAnalysis::extended`] rather than from
//!   scratch), and the derivability indexes ([`TargetIndexes`]) the mapping
//!   search consults. A `W` subset adds membership atoms only: those merge
//!   no equivalence classes and touch no typing check, so *all* `2^|T(S)|`
//!   branches of the block share one analysis and one index, and a branch is
//!   materialized by inserting at most `|T(S)|` membership keys into a
//!   cloned hash set ([`TargetCtx::add_member_key`]) — no query rebuild, no
//!   re-analysis, no per-branch satisfiability pass (a `debug_assert`
//!   rechecks that claim in test builds).
//! * **Worker pool with deterministic early exit.** In parallel mode,
//!   workers claim branch indexes from an atomic counter and publish
//!   refutations into an atomic minimum. Claims are handed out in order and
//!   a worker only stops claiming once its claimed index reaches a *known*
//!   refuted index, so every branch below the true first refutation is
//!   evaluated; the final minimum is therefore exactly the branch the serial
//!   scan would have reported, and on success the witnesses — sorted by
//!   branch index — are exactly the serial witness list. Parallel and serial
//!   modes are observationally identical, which `tests/branch_engine.rs`
//!   checks by differential testing.
//!
//! [`EngineConfig`] selects the mode: `OOCQ_THREADS=1` (or
//! [`EngineConfig::serial`]) forces the reference serial path, and small
//! branch counts fall back to it automatically since spawning threads for a
//! handful of mapping searches costs more than it saves.

use crate::budget::Budget;
use crate::cache::DecisionCache;
use crate::derive::{find_mapping, MappingGoal, TargetCtx, TargetIndexes};
use crate::error::CoreError;
use crate::explain::{Containment, MappingWitness};
use crate::satisfiability;
use oocq_query::{Atom, Query, QueryAnalysis, Term, VarId};
use oocq_schema::{AttrId, AttrType, ClassId, Schema};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Upper bound on the number of branches (equality augmentations times
/// membership subsets) the Theorem 3.1 enumeration will explore, as a guard
/// against accidentally exponential inputs. Exceeding it is a recoverable
/// [`CoreError::BranchLimit`], not a panic.
pub const MAX_BRANCHES: u64 = 1 << 22;

/// How the containment engine schedules branch evaluation, plus the
/// optional collaborators every decision entry point consults.
///
/// The default ([`EngineConfig::from_env`]) honours the `OOCQ_THREADS`
/// environment variable and otherwise uses the machine's available
/// parallelism. `OOCQ_THREADS=1` — or [`EngineConfig::serial`] — selects the
/// serial reference path, which evaluates branches in index order on the
/// calling thread.
///
/// Neither collaborator affects *what* is decided — a cache may only replay
/// values the engine would compute, and the isomorphism fast path only
/// short-circuits checks whose outcome renaming already determines — so
/// every configuration is observationally identical on decision values.
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads for branch evaluation (`<= 1` means serial).
    pub threads: usize,
    /// Branch counts below this run serially even when `threads > 1` —
    /// thread startup dwarfs a few mapping searches.
    pub min_parallel_branches: u64,
    /// Memo table consulted (and fed) by the boolean containment and
    /// minimization entry points. `None` (the default) decides everything
    /// from scratch.
    pub cache: Option<Arc<dyn DecisionCache>>,
    /// Short-circuit equivalence-shaped checks through
    /// [`oocq_query::isomorphic`] before running Theorem 3.1 (isomorphic
    /// queries are equivalent). On by default; exists as a switch so tests
    /// can show the fast path changes nothing.
    pub iso_fast_path: bool,
    /// The cooperative request budget the hot loops charge. The default
    /// ([`Budget::unlimited`]) never trips and costs nothing; a tripped
    /// budget surfaces as the recoverable [`CoreError::Timeout`]. A budget
    /// that never trips changes no decision value, so the observational-
    /// identity guarantee above extends to generous budgets too.
    pub budget: Budget,
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("threads", &self.threads)
            .field("min_parallel_branches", &self.min_parallel_branches)
            .field(
                "cache",
                &self.cache.as_ref().map(|_| "Some(<dyn DecisionCache>)"),
            )
            .field("iso_fast_path", &self.iso_fast_path)
            .field("budget", &self.budget)
            .finish()
    }
}

/// Parse an `OOCQ_THREADS`-style value: a positive integer selects that
/// many worker threads; anything else (unset, empty, `0`, negative,
/// non-numeric, trailing junk) means "no explicit request" and the caller
/// falls back to auto-detection. Surrounding whitespace is tolerated.
pub(crate) fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
}

impl EngineConfig {
    /// Threads from `OOCQ_THREADS` (a positive integer; `0`, malformed, or
    /// unset means auto-detect), defaulting to the machine's available
    /// parallelism. This is the single reading of `OOCQ_THREADS` shared by
    /// the branch engine and the `oocq-serve` worker pool.
    pub fn from_env() -> EngineConfig {
        let requested = parse_threads(std::env::var("OOCQ_THREADS").ok().as_deref());
        let threads = requested.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        EngineConfig {
            threads,
            ..EngineConfig::serial_defaults(8)
        }
    }

    /// The serial reference engine: one thread, no fan-out anywhere.
    pub fn serial() -> EngineConfig {
        EngineConfig::serial_defaults(u64::MAX)
    }

    /// A parallel engine with an explicit thread count.
    pub fn with_threads(threads: usize) -> EngineConfig {
        EngineConfig {
            threads: threads.max(1),
            ..EngineConfig::serial_defaults(8)
        }
    }

    fn serial_defaults(min_parallel_branches: u64) -> EngineConfig {
        EngineConfig {
            threads: 1,
            min_parallel_branches,
            cache: None,
            iso_fast_path: true,
            budget: Budget::unlimited(),
        }
    }

    /// This configuration with its fan-out disabled but its collaborators
    /// (cache, fast path) kept — what an already-parallel outer loop hands
    /// to the per-item inner checks.
    pub fn serial_inner(&self) -> EngineConfig {
        EngineConfig {
            threads: 1,
            min_parallel_branches: u64::MAX,
            ..self.clone()
        }
    }

    /// This configuration with a decision cache installed.
    pub fn with_cache(mut self, cache: Arc<dyn DecisionCache>) -> EngineConfig {
        self.cache = Some(cache);
        self
    }

    /// This configuration with the isomorphism fast path disabled (used by
    /// regression tests to show the fast path is invisible).
    pub fn without_iso_fast_path(mut self) -> EngineConfig {
        self.iso_fast_path = false;
        self
    }

    /// This configuration with a request budget installed. Clones of the
    /// configuration (including [`EngineConfig::serial_inner`]) share the
    /// budget's counter, so one request's nested checks draw on one pool.
    pub fn with_budget(mut self, budget: Budget) -> EngineConfig {
        self.budget = budget;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig::from_env()
    }
}

/// The derived state of a stripped containment target `Q₁` that every
/// Theorem 3.1 run over it shares: the base [`QueryAnalysis`] (each
/// `S`-augmentation's analysis extends it incrementally) and the
/// [`TargetIndexes`] of the unaugmented query (reused verbatim by the empty
/// augmentation's branch block). A [`PreparedQuery`](crate::PreparedQuery)
/// memoizes one of these so repeated decisions rebuild neither.
pub(crate) struct BranchBase {
    /// Analysis of the stripped `Q₁`.
    pub(crate) analysis: QueryAnalysis,
    /// Derivability indexes of the stripped, unaugmented `Q₁`.
    pub(crate) indexes: TargetIndexes,
}

impl BranchBase {
    /// Derive the shared base state for a stripped terminal `q1`.
    pub(crate) fn build(q1: &Query, classes1: &[ClassId]) -> BranchBase {
        let analysis = QueryAnalysis::of(q1);
        let indexes = TargetIndexes::build(q1, classes1, &analysis);
        BranchBase { analysis, indexes }
    }
}

/// One consistent equality augmentation `S` with everything its `2^|T(S)|`
/// membership-subset branches share.
struct SBranch {
    /// The augmentation atoms `S` (equalities between representative
    /// variables).
    s_atoms: Vec<Atom>,
    /// `Q₁&S`.
    q1s: Query,
    /// Analysis of `Q₁&S`, extended incrementally from the base analysis.
    analysis: QueryAnalysis,
    /// Derivability indexes over `Q₁&S`.
    indexes: TargetIndexes,
    /// The satisfiable membership augmentations `T(S)`, bit `i` of a branch
    /// mask selecting `w_candidates[i]`.
    w_candidates: Vec<Atom>,
    /// The membership key of each candidate under `analysis`, precomputed so
    /// a branch context is ready after `|W|` hash-set inserts.
    w_keys: Vec<(usize, usize, AttrId)>,
    /// First global branch index of this block.
    offset: u64,
}

/// The explicit branch space of one Theorem 3.1 containment check
/// `Q₁ ⊆ Q₂`: every consistent `(S, W)` pair, numbered `0..total`, with the
/// per-`S` state shared across each block.
pub(crate) struct BranchPlan<'a> {
    schema: &'a Schema,
    /// Terminal class of each `Q₁` variable (augmentations add no
    /// variables, so one vector serves every branch).
    classes1: &'a [ClassId],
    sbranches: Vec<SBranch>,
    total: u64,
}

impl<'a> BranchPlan<'a> {
    /// Enumerate the branch space for a satisfiable, non-range-stripped
    /// terminal `q1` whose shared base state (`base`) the caller has already
    /// derived — or memoized on a prepared query. `enum_s` / `enum_w` select
    /// which dimensions the chosen strategy actually quantifies over
    /// (Corollaries 3.2–3.4 fix one or both to the trivial choice). Charges
    /// `budget` one unit per candidate `S` block, so partition-count
    /// blowups trip the budget during planning rather than after it.
    pub(crate) fn build(
        schema: &'a Schema,
        q1: &'a Query,
        classes1: &'a [ClassId],
        base: &BranchBase,
        enum_s: bool,
        enum_w: bool,
        budget: &Budget,
    ) -> Result<BranchPlan<'a>, CoreError> {
        let s_choices = if enum_s {
            equality_augmentations(q1, classes1, &base.analysis)?
        } else {
            vec![Vec::new()]
        };

        let mut sbranches: Vec<SBranch> = Vec::new();
        let mut total: u64 = 0;
        for s_atoms in s_choices {
            budget.charge(1)?;
            let q1s = q1.with_extra_atoms(s_atoms.clone());
            let analysis = if s_atoms.is_empty() {
                base.analysis.clone()
            } else {
                base.analysis.extended(&s_atoms)
            };
            if !satisfiability::check(schema, &q1s, classes1, &analysis).is_satisfiable() {
                continue; // inconsistent augmentation: vacuous branch block
            }
            let w_candidates = if enum_w {
                membership_candidates(schema, &q1s, classes1, &analysis)
            } else {
                Vec::new()
            };
            let subsets = 1u64
                .checked_shl(w_candidates.len() as u32)
                .unwrap_or(u64::MAX);
            let new_total = total.saturating_add(subsets);
            if new_total > MAX_BRANCHES {
                return Err(CoreError::BranchLimit {
                    branches: new_total,
                    limit: MAX_BRANCHES,
                });
            }
            let graph = analysis.graph();
            let w_keys = w_candidates
                .iter()
                .map(|a| match a {
                    Atom::Member(x, t, attr) => (
                        graph.class_id(Term::Var(*x)).expect("var node"),
                        graph.class_id(Term::Var(*t)).expect("var node"),
                        *attr,
                    ),
                    _ => unreachable!("membership candidates are Member atoms"),
                })
                .collect();
            let indexes = if s_atoms.is_empty() {
                base.indexes.clone()
            } else {
                TargetIndexes::build(&q1s, classes1, &analysis)
            };
            sbranches.push(SBranch {
                s_atoms,
                q1s,
                analysis,
                indexes,
                w_candidates,
                w_keys,
                offset: total,
            });
            total = new_total;
        }
        Ok(BranchPlan {
            schema,
            classes1,
            sbranches,
            total,
        })
    }

    /// The `S`-block containing a global branch index, and the membership
    /// bitmask within it.
    fn locate(&self, idx: u64) -> (&SBranch, u64) {
        debug_assert!(idx < self.total);
        let i = self.sbranches.partition_point(|sb| sb.offset <= idx) - 1;
        let sb = &self.sbranches[i];
        (sb, idx - sb.offset)
    }

    /// The augmentation atoms `S ∪ W` of a branch, in the order the witness
    /// certificates report them.
    fn augmentation_of(&self, idx: u64) -> Vec<Atom> {
        let (sb, mask) = self.locate(idx);
        let mut atoms = sb.s_atoms.clone();
        atoms.extend(
            sb.w_candidates
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, a)| a.clone()),
        );
        atoms
    }

    /// Evaluate one branch: does a non-contradictory mapping
    /// `μ : q2 → Q₁&S&W` exist?
    fn eval(&self, q2: &Query, classes2: &[ClassId], idx: u64) -> Option<Vec<VarId>> {
        let (sb, mask) = self.locate(idx);
        // Membership atoms merge no classes and add no typing obligations
        // beyond what the candidate filter already checked, so Q₁&S&W shares
        // Q₁&S's analysis and satisfiability. Recheck that from scratch in
        // test builds.
        #[cfg(debug_assertions)]
        {
            let q1sw = sb.q1s.with_extra_atoms(
                sb.w_candidates
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, a)| a.clone()),
            );
            debug_assert!(
                satisfiability::check(self.schema, &q1sw, self.classes1, &QueryAnalysis::of(&q1sw))
                    .is_satisfiable(),
                "candidate-filtered membership augmentation must stay satisfiable"
            );
        }
        let mut ctx = TargetCtx::new(self.schema, self.classes1, &sb.analysis, &sb.indexes);
        for (i, &key) in sb.w_keys.iter().enumerate() {
            if mask >> i & 1 == 1 {
                ctx.add_member_key(key);
            }
        }
        let goal = MappingGoal {
            source: q2,
            source_classes: classes2,
            free_anchor: sb.q1s.free_var(),
            avoid_in_image: None,
        };
        find_mapping(&ctx, &goal)
    }

    /// Decide containment over the whole branch space. Serial and parallel
    /// modes return identical values, including witness order and the
    /// identity of the failing branch. Charges `cfg.budget` one unit per
    /// branch evaluated; a tripped budget surfaces as
    /// [`CoreError::Timeout`] — unless a refuted branch was already found,
    /// which is conclusive no matter how much of the space went unexplored.
    pub(crate) fn run(
        &self,
        q2: &Query,
        classes2: &[ClassId],
        cfg: &EngineConfig,
    ) -> Result<Containment, CoreError> {
        if cfg.threads <= 1 || self.total < cfg.min_parallel_branches {
            self.run_serial(q2, classes2, &cfg.budget)
        } else {
            self.run_parallel(q2, classes2, cfg.threads, &cfg.budget)
        }
    }

    fn run_serial(
        &self,
        q2: &Query,
        classes2: &[ClassId],
        budget: &Budget,
    ) -> Result<Containment, CoreError> {
        let mut witnesses: Vec<MappingWitness> = Vec::new();
        for idx in 0..self.total {
            budget.charge(1)?;
            match self.eval(q2, classes2, idx) {
                Some(assignment) => witnesses.push(MappingWitness {
                    augmentation: self.augmentation_of(idx),
                    assignment,
                }),
                None => {
                    return Ok(Containment::Fails {
                        augmentation: self.augmentation_of(idx),
                    })
                }
            }
        }
        Ok(Containment::Holds(witnesses))
    }

    fn run_parallel(
        &self,
        q2: &Query,
        classes2: &[ClassId],
        threads: usize,
        budget: &Budget,
    ) -> Result<Containment, CoreError> {
        let workers = threads
            .min(self.total.min(usize::MAX as u64) as usize)
            .max(1);
        let next = AtomicU64::new(0);
        // Smallest refuted branch index seen so far; `u64::MAX` = none.
        // Invariant: it only ever holds refuted indexes, so every branch
        // below the *first* refutation keeps getting claimed and evaluated,
        // and the final minimum equals the serial scan's first failure.
        let min_fail = AtomicU64::new(u64::MAX);
        let collected: Mutex<Vec<(u64, Vec<VarId>)>> = Mutex::new(Vec::new());
        let budget_err: Mutex<Option<CoreError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(u64, Vec<VarId>)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= self.total || idx >= min_fail.load(Ordering::Acquire) {
                            break;
                        }
                        // The budget trip is sticky, so once one worker
                        // records the error here every other worker's next
                        // charge fails too and the pool winds down.
                        if let Err(e) = budget.charge(1) {
                            *budget_err.lock().unwrap() = Some(e);
                            break;
                        }
                        match self.eval(q2, classes2, idx) {
                            Some(assignment) => local.push((idx, assignment)),
                            None => {
                                min_fail.fetch_min(idx, Ordering::AcqRel);
                            }
                        }
                    }
                    if !local.is_empty() {
                        collected.lock().unwrap().extend(local);
                    }
                });
            }
        });
        // Precedence: a refutation found anywhere is a conclusive `Fails`
        // (Theorem 3.1 needs every branch only for `Holds`), so it outranks
        // budget exhaustion; a `Holds` claim, by contrast, is only valid if
        // no branch was skipped, so the budget error must win over it.
        let first_fail = min_fail.into_inner();
        if first_fail != u64::MAX {
            return Ok(Containment::Fails {
                augmentation: self.augmentation_of(first_fail),
            });
        }
        if let Some(e) = budget_err.into_inner().unwrap() {
            return Err(e);
        }
        let mut found = collected.into_inner().unwrap();
        found.sort_unstable_by_key(|&(idx, _)| idx);
        Ok(Containment::Holds(
            found
                .into_iter()
                .map(|(idx, assignment)| MappingWitness {
                    augmentation: self.augmentation_of(idx),
                    assignment,
                })
                .collect(),
        ))
    }
}

/// Enumerate the equality-augmentation candidates `S` of Theorem 3.1: one
/// per partition of `q1`'s variable equivalence classes, merging only blocks
/// whose variables share a terminal class (merging across classes is always
/// inconsistent, so those partitions are skipped at the source). Errors with
/// [`CoreError::BranchLimit`] once the partition count alone exceeds
/// [`MAX_BRANCHES`].
fn equality_augmentations(
    q1: &Query,
    classes: &[ClassId],
    analysis: &QueryAnalysis,
) -> Result<Vec<Vec<Atom>>, CoreError> {
    let graph = analysis.graph();
    // Current variable blocks: representative variable per equivalence class.
    let mut reps: Vec<VarId> = Vec::new();
    let mut seen_roots: HashSet<usize> = HashSet::new();
    for v in q1.vars() {
        let r = graph.class_id(Term::Var(v)).expect("var node");
        if seen_roots.insert(r) {
            reps.push(v);
        }
    }
    let block_class: Vec<ClassId> = reps.iter().map(|v| classes[v.index()]).collect();
    let k = reps.len();

    // Restricted-growth enumeration of partitions of the k blocks, where a
    // block may only join a group of the same terminal class.
    let mut assignment = vec![0usize; k];
    fn recurse(
        i: usize,
        groups: &mut Vec<ClassId>,
        assignment: &mut [usize],
        block_class: &[ClassId],
        out: &mut Vec<Vec<usize>>,
    ) -> bool {
        if out.len() as u64 > MAX_BRANCHES {
            return false;
        }
        if i == assignment.len() {
            out.push(assignment.to_vec());
            return true;
        }
        for g in 0..groups.len() {
            if groups[g] == block_class[i] {
                assignment[i] = g;
                if !recurse(i + 1, groups, assignment, block_class, out) {
                    return false;
                }
            }
        }
        groups.push(block_class[i]);
        assignment[i] = groups.len() - 1;
        let ok = recurse(i + 1, groups, assignment, block_class, out);
        groups.pop();
        ok
    }
    let mut partitions: Vec<Vec<usize>> = Vec::new();
    if !recurse(
        0,
        &mut Vec::new(),
        &mut assignment,
        &block_class,
        &mut partitions,
    ) {
        return Err(CoreError::BranchLimit {
            branches: partitions.len() as u64,
            limit: MAX_BRANCHES,
        });
    }

    let mut out: Vec<Vec<Atom>> = Vec::with_capacity(partitions.len());
    for p in partitions {
        let mut atoms: Vec<Atom> = Vec::new();
        let mut first_of_group: Vec<Option<VarId>> = vec![None; k];
        for (block, &g) in p.iter().enumerate() {
            match first_of_group[g] {
                None => first_of_group[g] = Some(reps[block]),
                Some(first) => atoms.push(Atom::Eq(Term::Var(first), Term::Var(reps[block]))),
            }
        }
        out.push(atoms);
    }
    Ok(out)
}

/// The candidate membership augmentations `T` of Theorem 3.1 for `Q₁&S`:
/// atoms `x ∈ t.P` with `x` a variable, `t.P` a set term, the addition
/// satisfiable, and the membership not already derivable (adding a derivable
/// membership changes nothing, so it is pruned to halve the subset space).
fn membership_candidates(
    schema: &Schema,
    q1s: &Query,
    classes: &[ClassId],
    analysis: &QueryAnalysis,
) -> Vec<Atom> {
    // `Q₁&S` has the same variables as `Q₁`, so the caller's class vector
    // stays valid.
    debug_assert_eq!(classes.len(), q1s.var_count());
    let graph = analysis.graph();
    let var_root = |v: VarId| graph.class_id(Term::Var(v)).expect("var node");

    // One representative set term per equivalence class of set terms.
    let mut set_reps: Vec<(VarId, AttrId)> = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    for &t in graph.terms() {
        if let Term::Attr(v, a) = t {
            if analysis.is_set_term(t) && seen.insert(graph.class_id(t).expect("node")) {
                set_reps.push((v, a));
            }
        }
    }

    // Index the memberships Q₁&S derives and the non-memberships it asserts,
    // by equivalence-class key, so each candidate is two hash probes instead
    // of two scans of the atom list.
    let mut derived: HashSet<(usize, usize, AttrId)> = HashSet::new();
    let mut excluded: HashSet<(usize, usize, AttrId)> = HashSet::new();
    for atom in q1s.atoms() {
        match atom {
            Atom::Member(s, u, b) => {
                derived.insert((var_root(*s), var_root(*u), *b));
            }
            Atom::NonMember(s, u, b) => {
                excluded.insert((var_root(*s), var_root(*u), *b));
            }
            _ => {}
        }
    }

    let mut out: Vec<Atom> = Vec::new();
    for &(t, a) in &set_reps {
        let Some(AttrType::SetOf(d)) = schema.attr_type(classes[t.index()], a) else {
            continue; // ill-typed set term: Q₁&S was unsatisfiable anyway
        };
        let t_root = var_root(t);
        for x in q1s.vars() {
            if !schema.terminal_descendants(d).contains(&classes[x.index()]) {
                continue; // x can never be a member: not in T
            }
            let key = (var_root(x), t_root, a);
            if derived.contains(&key) || excluded.contains(&key) {
                continue;
            }
            out.push(Atom::Member(x, t, a));
        }
    }
    out
}

/// Evaluate `items[0..n]` in index order, stopping at the first result
/// `is_stop` accepts, and return the evaluated prefix as `(index, result)`
/// pairs sorted by index — the stop item included, later items dropped.
///
/// With `threads > 1` the items are evaluated by a claim-counter worker pool
/// using the same discipline as the branch engine (a worker stops claiming
/// once its claim reaches a known stop index), so the returned prefix — and
/// in particular the *first* stop item — is identical to the serial scan's.
/// Used to fan out the pairwise checks of Theorem 4.1 and the per-subquery
/// satisfiability filter of Proposition 2.1.
pub(crate) fn par_prefix<T, F, S>(n: usize, threads: usize, eval: F, is_stop: S) -> Vec<(usize, T)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    S: Fn(&T) -> bool + Sync,
{
    if threads <= 1 || n < 2 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let r = eval(i);
            let stop = is_stop(&r);
            out.push((i, r));
            if stop {
                break;
            }
        }
        return out;
    }
    let workers = threads.min(n);
    let next = AtomicU64::new(0);
    let stop_at = AtomicU64::new(u64::MAX);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n as u64 || idx > stop_at.load(Ordering::Acquire) {
                        break;
                    }
                    let r = eval(idx as usize);
                    if is_stop(&r) {
                        stop_at.fetch_min(idx, Ordering::AcqRel);
                    }
                    local.push((idx as usize, r));
                }
                if !local.is_empty() {
                    collected.lock().unwrap().extend(local);
                }
            });
        }
    });
    let cut = stop_at.into_inner();
    let mut out = collected.into_inner().unwrap();
    out.retain(|&(idx, _)| idx as u64 <= cut);
    out.sort_unstable_by_key(|&(idx, _)| idx);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_env_defaults_are_sane() {
        let cfg = EngineConfig::from_env();
        assert!(cfg.threads >= 1);
        assert!(cfg.min_parallel_branches >= 1);
        assert!(cfg.cache.is_none());
        assert!(cfg.iso_fast_path);
        assert!(cfg.budget.is_unlimited());
        assert_eq!(EngineConfig::serial().threads, 1);
        assert_eq!(EngineConfig::with_threads(0).threads, 1);
        assert_eq!(EngineConfig::with_threads(4).threads, 4);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some("  8  ")), Some(8), "whitespace trimmed");
    }

    #[test]
    fn parse_threads_rejects_malformed_values() {
        for bad in ["", "  ", "0", "-3", "abc", "4x", "3.5", "0x10", "+ 2"] {
            assert_eq!(parse_threads(Some(bad)), None, "input {bad:?}");
        }
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn serial_inner_keeps_collaborators() {
        let cfg = EngineConfig::with_threads(4)
            .without_iso_fast_path()
            .with_budget(Budget::with_limit(7));
        let inner = cfg.serial_inner();
        assert_eq!(inner.threads, 1);
        assert_eq!(inner.min_parallel_branches, u64::MAX);
        assert!(!inner.iso_fast_path);
        assert!(inner.cache.is_none());
        // The inner config shares the *same* budget counter, not a copy.
        inner.budget.charge(7).unwrap();
        assert!(cfg.budget.charge(1).is_err());
    }

    #[test]
    fn par_prefix_serial_and_parallel_agree() {
        for threads in [1, 2, 4, 8] {
            let got = par_prefix(100, threads, |i| i * i, |&r| r >= 49);
            assert_eq!(got.len(), 8, "threads = {threads}");
            assert_eq!(got[7], (7, 49));
            for (k, &(idx, v)) in got.iter().enumerate() {
                assert_eq!(idx, k);
                assert_eq!(v, k * k);
            }
        }
    }

    #[test]
    fn par_prefix_without_stop_covers_everything() {
        let got = par_prefix(37, 4, |i| i, |_| false);
        assert_eq!(got.len(), 37);
        assert!(got
            .iter()
            .enumerate()
            .all(|(k, &(idx, v))| idx == k && v == k));
    }

    #[test]
    fn par_prefix_empty_and_single() {
        assert!(par_prefix(0, 4, |i| i, |_| false).is_empty());
        assert_eq!(par_prefix(1, 4, |i| i + 10, |_| true), vec![(0, 10)]);
    }
}

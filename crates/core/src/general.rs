//! **Extension** — minimization of *general* conjunctive queries.
//!
//! The paper proves exact minimization only for positive conjunctive
//! queries and names the general case as future work (§5). This module
//! implements a **sound** minimizer for general (negative-atom) terminal
//! conjunctive queries using only machinery the paper establishes:
//!
//! * expansion and satisfiability filtering work unchanged (§2.4, §2.5);
//! * redundant subqueries are dropped using the full Theorem 3.1
//!   containment test — exact for terminal queries of any shape;
//! * variable folding is *candidate-generated* by the non-contradictory
//!   self-mapping search (as in Theorem 4.3) but, because Theorem 4.3 is
//!   only proven for positive queries, every fold is **verified** by a
//!   two-way Theorem 3.1 equivalence check before being accepted.
//!
//! The result is always equivalent to the input and never larger; unlike
//! the positive case it carries no optimality guarantee (the §5 problem
//! stays open — an unverified fold can be incorrect for general queries,
//! and a correct one can be missed).

use crate::branch::EngineConfig;
use crate::containment::{contains_terminal_with, equivalent_terminal_with};
use crate::derive::{find_mapping, MappingGoal, TargetData};
use crate::error::CoreError;
use crate::satisfiability::{is_satisfiable, strip_non_range, var_classes};
use oocq_query::{normalize, Query, UnionQuery};
use oocq_schema::Schema;

/// Minimize the variables of a satisfiable *general* terminal conjunctive
/// query: repeatedly fold through a non-contradictory free-preserving
/// self-mapping whose result is verified equivalent (Theorem 3.1 both
/// ways). Sound for any terminal conjunctive query; exact (per Cor. 4.4)
/// when the query happens to be positive.
pub fn minimize_terminal_general(schema: &Schema, q: &Query) -> Result<Query, CoreError> {
    minimize_terminal_general_with(schema, q, &EngineConfig::from_env())
}

/// [`minimize_terminal_general`] under an explicit [`EngineConfig`]
/// (governing the verification equivalence checks).
pub fn minimize_terminal_general_with(
    schema: &Schema,
    q: &Query,
    cfg: &EngineConfig,
) -> Result<Query, CoreError> {
    let mut cur = strip_non_range(q);
    if !is_satisfiable(schema, &cur)? {
        return Ok(cur);
    }
    'outer: loop {
        let classes = var_classes(schema, &cur)?;
        let free = cur.free_var();
        let data = TargetData::new(schema, cur.clone())?;
        let ctx = data.ctx(schema);
        for drop in cur.vars() {
            let goal = MappingGoal {
                source: data.query(),
                source_classes: &classes,
                free_anchor: free,
                avoid_in_image: Some(drop),
            };
            if let Some(map) = find_mapping(&ctx, &goal) {
                let folded = cur.apply_mapping(&map);
                // Theorem 4.3 covers only positive queries; verify the fold.
                if cur.is_positive() || equivalent_terminal_with(schema, &cur, &folded, cfg)? {
                    cur = folded;
                    continue 'outer;
                }
            }
        }
        break;
    }
    Ok(cur)
}

/// Sound minimization of a general conjunctive query into a union of
/// terminal conjunctive queries: expand (Prop. 2.1), drop unsatisfiable
/// branches (Thm. 2.2), drop pairwise-redundant branches (Thm. 3.1), fold
/// variables with verification.
///
/// Always equivalent to the input; optimality is **not** guaranteed for
/// inputs with negative atoms (see the module docs).
pub fn minimize_general(schema: &Schema, q: &Query) -> Result<UnionQuery, CoreError> {
    minimize_general_with(schema, q, &EngineConfig::from_env())
}

/// [`minimize_general`] under an explicit [`EngineConfig`] (governing every
/// containment and equivalence check in the pipeline).
pub fn minimize_general_with(
    schema: &Schema,
    q: &Query,
    cfg: &EngineConfig,
) -> Result<UnionQuery, CoreError> {
    let normalized = normalize(q, schema)?;
    let expanded = crate::expand::expand(schema, &normalized)?;
    let mut survivors: Vec<Query> = Vec::new();
    for sub in &expanded {
        if is_satisfiable(schema, sub)? {
            survivors.push(strip_non_range(sub));
        }
    }
    // Pairwise redundancy removal: dropping Qᵢ with Qᵢ ⊆ Qⱼ (j retained) is
    // sound for unions of any shape (the union's answer is unchanged).
    let n = survivors.len();
    let mut dropped = vec![false; n];
    for i in 0..n {
        if dropped[i] {
            continue;
        }
        for j in 0..n {
            if i == j || dropped[j] {
                continue;
            }
            if contains_terminal_with(schema, &survivors[i], &survivors[j], cfg)? {
                if contains_terminal_with(schema, &survivors[j], &survivors[i], cfg)? {
                    if j < i {
                        dropped[i] = true;
                        break;
                    }
                } else {
                    dropped[i] = true;
                    break;
                }
            }
        }
    }
    let mut out = UnionQuery::empty();
    for (i, sub) in survivors.into_iter().enumerate() {
        if !dropped[i] {
            out.push(minimize_terminal_general_with(schema, &sub, cfg)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent_terminal;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;

    #[test]
    fn example_32_chain_folds_to_two_variables() {
        // x≠y & y≠z ≡ x≠y (Example 3.2): the general minimizer finds and
        // verifies the fold z ↦ x.
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [c]).range(y, [c]).range(z, [c]);
        b.neq_vars(x, y).neq_vars(y, z);
        let q = b.build();
        let m = minimize_terminal_general(&s, &q).unwrap();
        assert_eq!(m.var_count(), 2);
        assert!(equivalent_terminal(&s, &q, &m).unwrap());
    }

    #[test]
    fn triangle_does_not_fold() {
        // x≠y & y≠z & x≠z needs all three variables.
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [c]).range(y, [c]).range(z, [c]);
        b.neq_vars(x, y).neq_vars(y, z).neq_vars(x, z);
        let q = b.build();
        let m = minimize_terminal_general(&s, &q).unwrap();
        assert_eq!(m.var_count(), 3);
    }

    #[test]
    fn agrees_with_positive_minimizer_on_positive_inputs() {
        let s = oocq_gen_free::workload();
        let q = oocq_gen_free::star(&s, 4);
        let general = minimize_terminal_general(&s, &q).unwrap();
        let positive = crate::minimize::minimize_terminal_positive(&s, &q).unwrap();
        assert_eq!(general.var_count(), positive.var_count());
        assert!(equivalent_terminal(&s, &general, &positive).unwrap());
    }

    /// A tiny local stand-in for oocq-gen (core cannot depend on it without
    /// a cycle): one Node class with an `items` set, plus a star query.
    mod oocq_gen_free {
        use oocq_query::{Query, QueryBuilder};
        use oocq_schema::{AttrType, Schema, SchemaBuilder};

        pub fn workload() -> Schema {
            let mut b = SchemaBuilder::new();
            let node = b.class("Node").unwrap();
            b.attribute(node, "items", AttrType::SetOf(node)).unwrap();
            let leaf = b.class("Leaf").unwrap();
            b.subclass(leaf, node).unwrap();
            b.finish().unwrap()
        }

        pub fn star(s: &Schema, n: usize) -> Query {
            let leaf = s.class_id("Leaf").unwrap();
            let items = s.attr_id("items").unwrap();
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            b.range(x, [leaf]);
            for i in 0..n {
                let y = b.var(&format!("y{i}"));
                b.range(y, [leaf]);
                b.member(y, x, items);
            }
            b.build()
        }
    }

    #[test]
    fn general_union_pipeline_drops_unsat_and_redundant() {
        let s = samples::vehicle_rental();
        // Non-terminal query with a negative atom: all vehicles NOT rented
        // by a given discount client.
        let veh = s.attr_id("VehRented").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        b.range(y, [s.class_id("Discount").unwrap()]);
        b.non_member(x, y, veh);
        let q = b.build();
        let m = minimize_general(&s, &q).unwrap();
        // All three vehicle branches stay (non-membership over {Auto} sets
        // is satisfiable for every vehicle kind) and none is redundant:
        // distinct terminal classes.
        assert_eq!(m.len(), 3);
        for sub in &m {
            assert_eq!(sub.var_count(), 2);
        }
    }

    #[test]
    fn unsat_general_query_minimizes_to_empty() {
        let s = samples::unrelated_subtypes();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("T1").unwrap()]);
        b.range(y, [s.class_id("T2").unwrap()]);
        b.eq_vars(x, y);
        b.neq_vars(x, y);
        let m = minimize_general(&s, &b.build()).unwrap();
        assert!(m.is_empty());
    }
}

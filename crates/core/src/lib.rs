//! # oocq-core
//!
//! The primary contribution of Chan, *Containment and Minimization of
//! Positive Conjunctive Queries in OODB's* (PODS 1992):
//!
//! * satisfiability of terminal conjunctive queries (Theorem 2.2,
//!   reconstructed — see [`satisfiability`]);
//! * terminal expansion (Proposition 2.1, [`expand`]);
//! * containment of terminal conjunctive queries via non-contradictory
//!   variable mappings (Theorem 3.1 and Corollaries 3.2–3.4,
//!   [`contains_terminal`]);
//! * containment and equivalence of unions of terminal positive conjunctive
//!   queries (Theorem 4.1, [`union_contains`]);
//! * exact, search-space-optimal minimization of positive conjunctive
//!   queries (Theorems 4.2–4.5, [`minimize_positive`]).
//!
//! Repeated-decision workloads should go through the prepared layer —
//! [`Engine`], [`PreparedSchema`], [`PreparedQuery`] — which derives each
//! decision artifact (analysis, terminal classes, satisfiability, canonical
//! form, branch indexes, expansion) at most once per query and shares it
//! across every subsequent decision. The free functions remain as
//! convenience wrappers that prepare internally per call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod budget;
mod cache;
mod containment;
mod derive;
mod engine;
mod error;
mod expand;
mod explain;
mod general;
mod minimize;
mod optimizer;
mod satisfiability;
mod theory;

pub use branch::{BranchStats, EngineConfig, MAX_BRANCHES};
pub use budget::Budget;
pub use cache::DecisionCache;
pub use containment::{
    contains_positive, contains_positive_with, contains_terminal, contains_terminal_full,
    contains_terminal_full_with, contains_terminal_with, decide_containment,
    decide_containment_with, dispatch_containment, dispatch_containment_with, equivalent_positive,
    equivalent_terminal, equivalent_terminal_with, strategy_for, union_contains,
    union_contains_with, union_equivalent, Strategy,
};
pub use derive::SearchOrder;
pub use engine::{Engine, PreparedQuery, PreparedQueryStats, PreparedSchema};
pub use error::CoreError;
pub use expand::{expand, expand_satisfiable, expand_satisfiable_with, expansion_size};
pub use explain::{Containment, MappingWitness};
pub use general::{
    minimize_general, minimize_general_with, minimize_terminal_general,
    minimize_terminal_general_with,
};
pub use minimize::{
    cost_leq, is_minimal_terminal_positive, minimize_positive, minimize_positive_report,
    minimize_positive_report_with, minimize_positive_with, minimize_terminal_positive,
    nonredundant_union, nonredundant_union_with, search_space_cost, term_class, union_cost,
    MinimizationReport,
};
pub use optimizer::{Optimizer, OptimizerStats};
pub use satisfiability::{
    is_satisfiable, satisfiability, strip_non_range, var_classes, Satisfiability, UnsatReason,
};
pub use theory::{
    compiled_left, theory_stats, Compiled, ConstraintTheory, EmptyTheory, Side, Theory,
    TheoryStats, MAX_CHASE_ROUNDS, MAX_CHASE_VARS,
};

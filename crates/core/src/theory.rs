//! Theories: schema-constraint compilation for the containment pipeline.
//!
//! Chan's calculus decides containment over *all* legal states of a schema.
//! A [`Theory`] narrows that quantifier: it rewrites the two sides of a
//! containment question so that the plain Theorem 3.1 machinery answers the
//! question **relative to the states the theory admits**. The engine keeps
//! exactly one hook — every terminal decision funnels through
//! [`decide_pair_with_theory`] when a theory is active, and through the
//! untouched plain path otherwise — so the plain calculus remains the
//! byte-identical baseline ([`EmptyTheory`] pins this differentially).
//!
//! The shipped [`ConstraintTheory`] compiles the three declared-constraint
//! families of [`oocq_schema::Constraint`]:
//!
//! * **Disjointness** `constraint disjoint A B;` kills every terminal class
//!   below both `A` and `B` ([`Schema::is_dead_terminal`]). A variable whose
//!   range admits only dead terminals makes its query unsatisfiable in every
//!   constraint-legal state — on the left that yields
//!   [`Containment::HoldsVacuously`], on the right
//!   [`Containment::FailsRightUnsatisfiable`].
//! * **Totality** `constraint total C.A;` chases the *left* query: a
//!   variable known to lie in `C` that does not mention `A` gains a fresh
//!   witness variable bound to `A`'s value (object attributes) or to a
//!   member of it (set attributes). The chase is bounded at
//!   [`MAX_CHASE_ROUNDS`] rounds, so cyclic totalities terminate.
//! * **Functionality** `constraint functional C.A;` equates, on the *left*
//!   query, every pair of members of the same `y.A` when `y` is known to
//!   lie in `C` — a set attribute with at most one member behaves like a
//!   partial function.
//!
//! # Soundness posture (chase-left-only)
//!
//! Only the left query is rewritten; the right side gets the disjointness
//! dead-check and nothing more. Strengthening the left with implied atoms
//! is sound (the compiled query is equivalent to the original on every
//! constraint-legal state), so a **holds** verdict under the theory is
//! sound. A **fails** verdict may be incomplete: a deeper chase than
//! [`MAX_CHASE_ROUNDS`] rounds, or a rewriting of the right side, could
//! rescue containment in principle. The soundness oracle therefore treats
//! an unconfirmed constrained *fails* as weak evidence, not a violation —
//! mirroring how the paper's own calculus is complete only for the exact
//! fragment it formalizes.
//!
//! # Certificates
//!
//! When the theory rewrites the left query, witnesses and failing
//! augmentations refer to the **compiled** left query (chase witnesses are
//! genuinely new variables). [`compiled_left`] recomputes that query so
//! callers — the service's `explain`, the oracle's steering — can render
//! and steer against the same variable space the certificate uses.

use crate::branch::EngineConfig;
use crate::budget::Budget;
use crate::containment::{decide_plain, Strategy};
use crate::error::CoreError;
use crate::expand::expand_satisfiable_with;
use crate::explain::Containment;
use crate::satisfiability::{self, Satisfiability, UnsatReason};
use oocq_query::{Atom, Query, Term, VarId};
use oocq_schema::{Constraint, Schema};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on totality-chase rounds. Each round may introduce witness
/// variables that themselves fall under a totality constraint, so a cyclic
/// schema (`total C.A` with `A : C`) would chase forever; three rounds keep
/// the compiled query small while covering the chains realistic schemas
/// declare. Deeper implications are deliberately dropped — see the module
/// docs on the fails-incompleteness this buys.
pub const MAX_CHASE_ROUNDS: usize = 3;

/// Upper bound on totality-chase witness variables per compiled query.
/// Every witness ranges over a (usually non-terminal) class, so terminal
/// expansion multiplies the branch walk by that class's terminal fan-out
/// per witness; a cyclic totality touching `k` variables would add `3k`
/// witnesses under the round bound alone. A round that would push past
/// this cap is skipped wholesale, which narrows the rewriting but never
/// unsounds it (see [`MAX_CHASE_ROUNDS`] on the completeness posture).
pub const MAX_CHASE_VARS: usize = 4;

/// Which side of `Q₁ ⊆ Q₂` a query is being compiled for.
///
/// The distinction matters because rewriting is only sound on the left:
/// adding theory-implied atoms to `Q₁` preserves its answers on legal
/// states, while adding them to `Q₂` could manufacture containments the
/// theory does not justify. Right-side compilation is therefore restricted
/// to pure unsatisfiability checks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// The contained side `Q₁` — full rewriting allowed.
    Left,
    /// The containing side `Q₂` — dead-range checking only.
    Right,
}

/// The outcome of compiling one query under a [`Theory`].
#[derive(Clone, Debug)]
pub enum Compiled {
    /// The theory has nothing to add; use the query as-is.
    Unchanged,
    /// The query strengthened with theory-implied atoms (left side only).
    Rewritten(Query),
    /// No constraint-legal state satisfies the query.
    Unsatisfiable(UnsatReason),
}

/// A rewriting of containment questions relative to a background theory of
/// the schema.
///
/// Implementations must be pure: `compile` may depend only on the schema,
/// the query, and the theory's own construction-time state, so that equal
/// fingerprints imply equal compilations — the cache and singleflight
/// layers key on [`Theory::fingerprint`] and rely on exactly this.
pub trait Theory: Send + Sync + std::fmt::Debug {
    /// A stable identity string for cache and flight keying. Two theories
    /// with the same fingerprint must compile every query identically.
    fn fingerprint(&self) -> Arc<str>;

    /// `true` when the theory is the identity rewriting. An identity
    /// theory installed on [`EngineConfig::theory`] disables theory
    /// processing entirely — including the automatic constraint theory a
    /// constrained schema would otherwise get.
    fn is_identity(&self) -> bool {
        false
    }

    /// Compile `q` for the given side, charging `budget` for the work.
    fn compile(
        &self,
        schema: &Schema,
        side: Side,
        q: &Query,
        budget: &Budget,
    ) -> Result<Compiled, CoreError>;
}

/// The identity theory: compiles every query to [`Compiled::Unchanged`].
///
/// Installing it on [`EngineConfig::theory`] is an explicit opt-out: the
/// engine decides with the plain calculus even when the schema declares
/// constraints. Differential tests use it to pin that the theory hook is
/// observationally invisible on constraint-free schemas.
#[derive(Clone, Copy, Default, Debug)]
pub struct EmptyTheory;

impl Theory for EmptyTheory {
    fn fingerprint(&self) -> Arc<str> {
        Arc::from("")
    }

    fn is_identity(&self) -> bool {
        true
    }

    fn compile(
        &self,
        _schema: &Schema,
        _side: Side,
        _q: &Query,
        _budget: &Budget,
    ) -> Result<Compiled, CoreError> {
        Ok(Compiled::Unchanged)
    }
}

/// The declared-constraint theory of a schema: disjointness dead-checks on
/// both sides, totality chase and functionality equalities on the left.
/// See the module docs for the semantics and the soundness posture.
#[derive(Clone, Debug)]
pub struct ConstraintTheory {
    fingerprint: Arc<str>,
}

impl ConstraintTheory {
    /// The theory of `schema`'s declared constraints. The fingerprint is
    /// the schema's canonical constraint text, so two schemas with the same
    /// rendered constraints share a theory identity.
    pub fn for_schema(schema: &Schema) -> ConstraintTheory {
        ConstraintTheory {
            fingerprint: Arc::clone(schema.constraints_text()),
        }
    }
}

/// Does `q` already bind attribute `a` on variable `v` — via an equality
/// mentioning the term `v.a` (object attributes) or a membership in `v.a`
/// (set attributes)? Bound attributes are skipped by the totality chase.
fn binds_attr(q: &Query, v: VarId, a: oocq_schema::AttrId) -> bool {
    q.atoms().iter().any(|atom| match atom {
        Atom::Eq(s, t) => {
            matches!(s, Term::Attr(w, b) if *w == v && *b == a)
                || matches!(t, Term::Attr(w, b) if *w == v && *b == a)
        }
        Atom::Member(_, w, b) => *w == v && *b == a,
        _ => false,
    })
}

/// Is the variable's range provably inside `c`? Range atoms are
/// disjunctions, so this requires *every* disjunct to be a subclass of `c`.
/// Variables without a range atom are never provably anywhere.
fn range_within(schema: &Schema, q: &Query, v: VarId, c: oocq_schema::ClassId) -> bool {
    match q.range_of(v) {
        Some(classes) if !classes.is_empty() => classes.iter().all(|&d| schema.is_subclass(d, c)),
        _ => false,
    }
}

impl Theory for ConstraintTheory {
    fn fingerprint(&self) -> Arc<str> {
        Arc::clone(&self.fingerprint)
    }

    fn compile(
        &self,
        schema: &Schema,
        side: Side,
        q: &Query,
        budget: &Budget,
    ) -> Result<Compiled, CoreError> {
        // Disjointness: a range whose every admissible terminal class is
        // dead has no constraint-legal instance. Applies to both sides.
        for v in q.vars() {
            if let Some(classes) = q.range_of(v) {
                budget.charge(1)?;
                let alive = classes.iter().any(|&c| {
                    schema
                        .terminal_descendants(c)
                        .iter()
                        .any(|&t| !schema.is_dead_terminal(t))
                });
                if !alive {
                    return Ok(Compiled::Unsatisfiable(UnsatReason::DeadRange {
                        var: q.var_name(v).to_owned(),
                    }));
                }
            }
        }
        if side == Side::Right {
            return Ok(Compiled::Unchanged);
        }

        let mut cur = q.clone();
        let mut changed = false;

        // Functionality: members of the same functional `y.A` are equal.
        // One pass suffices — the chase below never adds a member to an
        // attribute that already has one, so no new pairs arise later.
        let mut eqs: Vec<Atom> = Vec::new();
        for &c in schema.constraints() {
            let Constraint::Functional(class, attr) = c else {
                continue;
            };
            let mut owners: Vec<(VarId, VarId)> = Vec::new(); // (owner, member)
            for atom in cur.atoms() {
                if let Atom::Member(m, y, a) = atom {
                    if *a == attr && range_within(schema, &cur, *y, class) {
                        owners.push((*y, *m));
                    }
                }
            }
            owners.sort();
            for w in owners.windows(2) {
                let ((y1, m1), (y2, m2)) = (w[0], w[1]);
                if y1 == y2 && m1 != m2 {
                    let eq = Atom::Eq(Term::Var(m1), Term::Var(m2));
                    if !cur.atoms().contains(&eq) && !eqs.contains(&eq) {
                        budget.charge(1)?;
                        eqs.push(eq);
                    }
                }
            }
        }
        if !eqs.is_empty() {
            STATS
                .functional_eqs
                .fetch_add(eqs.len() as u64, Ordering::Relaxed);
            cur = cur.with_extra_atoms(eqs);
            changed = true;
        }

        // Totality chase: a variable provably in `C` must have a value for
        // (a member in) every total `C.A`. Bounded rounds — witnesses may
        // themselves fall under a totality constraint.
        //
        // Each chase witness ranges over a (typically non-terminal) class,
        // so terminal expansion later multiplies the branch count by its
        // terminal fan-out *per witness* — a cyclic totality over several
        // variables would otherwise inflate the walk by |T(C)|^(3·vars).
        // [`MAX_CHASE_VARS`] caps the total witnesses per compile: a round
        // that would exceed it is skipped wholesale (deterministic), which
        // only narrows the rewriting — holds verdicts stay sound, and the
        // fails direction was already documented as incomplete.
        let mut chase_vars = 0usize;
        for _round in 0..MAX_CHASE_ROUNDS {
            // Collect this round's obligations against a stable snapshot,
            // then apply them; a witness added here is chased next round.
            let mut todo: Vec<(VarId, oocq_schema::AttrId, oocq_schema::AttrType)> = Vec::new();
            for &c in schema.constraints() {
                let Constraint::Total(class, attr) = c else {
                    continue;
                };
                let Some(ty) = schema.attr_type(class, attr) else {
                    continue; // validated at Schema::finish; defensive
                };
                for v in cur.vars() {
                    if range_within(schema, &cur, v, class) && !binds_attr(&cur, v, attr) {
                        todo.push((v, attr, ty));
                    }
                }
            }
            if todo.is_empty() {
                break;
            }
            if chase_vars + todo.len() > MAX_CHASE_VARS {
                break;
            }
            chase_vars += todo.len();
            for (v, attr, ty) in todo {
                budget.charge(4)?;
                let name = format!("{}_{}", cur.var_name(v), schema.attr_name(attr));
                let (next, w) = cur.with_fresh_var(&name);
                let value = if ty.is_set() {
                    Atom::Member(w, v, attr)
                } else {
                    Atom::Eq(Term::Attr(v, attr), Term::Var(w))
                };
                cur = next.with_extra_atoms([Atom::Range(w, vec![ty.class()]), value]);
                STATS.chase_atoms.fetch_add(2, Ordering::Relaxed);
                changed = true;
            }
        }

        Ok(if changed {
            Compiled::Rewritten(cur)
        } else {
            Compiled::Unchanged
        })
    }
}

struct TheoryCounters {
    decisions: AtomicU64,
    left_rewrites: AtomicU64,
    left_unsat: AtomicU64,
    right_unsat: AtomicU64,
    chase_atoms: AtomicU64,
    functional_eqs: AtomicU64,
    dead_branches: AtomicU64,
}

static STATS: TheoryCounters = TheoryCounters {
    decisions: AtomicU64::new(0),
    left_rewrites: AtomicU64::new(0),
    left_unsat: AtomicU64::new(0),
    right_unsat: AtomicU64::new(0),
    chase_atoms: AtomicU64::new(0),
    functional_eqs: AtomicU64::new(0),
    dead_branches: AtomicU64::new(0),
};

/// A snapshot of the process-wide theory instrumentation. Counters only
/// grow; the service's `stats show` reports them alongside the cache and
/// flight counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TheoryStats {
    /// Terminal decisions routed through a theory.
    pub decisions: u64,
    /// Decisions whose left query the theory rewrote.
    pub left_rewrites: u64,
    /// Decisions closed vacuously because the compiled left query is
    /// unsatisfiable under the constraints.
    pub left_unsat: u64,
    /// Decisions failed because the right query is unsatisfiable under the
    /// constraints (while the left is not).
    pub right_unsat: u64,
    /// Atoms added by the totality chase.
    pub chase_atoms: u64,
    /// Equality atoms added by functionality compilation.
    pub functional_eqs: u64,
    /// Expansion branches of a compiled left query skipped as
    /// constraint-dead or unsatisfiable.
    pub dead_branches: u64,
}

/// Read the process-wide theory counters.
pub fn theory_stats() -> TheoryStats {
    TheoryStats {
        decisions: STATS.decisions.load(Ordering::Relaxed),
        left_rewrites: STATS.left_rewrites.load(Ordering::Relaxed),
        left_unsat: STATS.left_unsat.load(Ordering::Relaxed),
        right_unsat: STATS.right_unsat.load(Ordering::Relaxed),
        chase_atoms: STATS.chase_atoms.load(Ordering::Relaxed),
        functional_eqs: STATS.functional_eqs.load(Ordering::Relaxed),
        dead_branches: STATS.dead_branches.load(Ordering::Relaxed),
    }
}

/// The theory governing a decision, if any: an explicit
/// [`EngineConfig::theory`] wins (its identity variant disables theories
/// outright), otherwise a schema with declared constraints gets the
/// automatic [`ConstraintTheory`].
///
/// The automatic case is safe to cache under schema-fingerprint keys — the
/// fingerprint is the schema's `Display` text, which includes the
/// constraint block — while explicit theories bypass decision caches (see
/// [`EngineConfig::decision_cache`](crate::EngineConfig)).
pub(crate) fn active_theory(cfg: &EngineConfig, schema: &Schema) -> Option<Arc<dyn Theory>> {
    if let Some(t) = &cfg.theory {
        if t.is_identity() {
            None
        } else {
            Some(Arc::clone(t))
        }
    } else if schema.has_constraints() {
        Some(Arc::new(ConstraintTheory::for_schema(schema)))
    } else {
        None
    }
}

/// The left query as the active theory would compile it — the variable
/// space certificates refer to when a theory rewrites the left side.
///
/// Returns a clone of `q` when no theory is active, when the theory leaves
/// the query unchanged, or when the compiled query is unsatisfiable (the
/// certificate is then a bare [`Containment::HoldsVacuously`] with no
/// variable references to resolve).
pub fn compiled_left(schema: &Schema, q: &Query, cfg: &EngineConfig) -> Result<Query, CoreError> {
    match active_theory(cfg, schema) {
        Some(theory) => match theory.compile(schema, Side::Left, q, &cfg.budget)? {
            Compiled::Rewritten(qc) => Ok(qc),
            Compiled::Unchanged | Compiled::Unsatisfiable(_) => Ok(q.clone()),
        },
        None => Ok(q.clone()),
    }
}

/// Decide `q1 ⊆ q2` relative to `theory`: compile both sides, expand a
/// non-terminal compiled left query into its live terminal branches, and
/// run each branch through the plain Theorem 3.1 engine.
///
/// Check order mirrors the plain path so verdict kinds line up: left
/// unsatisfiability (vacuous holds) is established before the right side's
/// unsatisfiability (fails) is reported.
pub(crate) fn decide_pair_with_theory(
    theory: &dyn Theory,
    schema: &Schema,
    q1: &Query,
    q2: &Query,
    strategy: Strategy,
    cfg: &EngineConfig,
    collect: bool,
) -> Result<Containment, CoreError> {
    STATS.decisions.fetch_add(1, Ordering::Relaxed);
    // The plain path requires terminal inputs (satisfiability errors with
    // `NotTerminal` otherwise); preserve that contract before compiling.
    satisfiability::var_classes(schema, q1)?;
    satisfiability::var_classes(schema, q2)?;

    let q1c = match theory.compile(schema, Side::Left, q1, &cfg.budget)? {
        Compiled::Unsatisfiable(reason) => {
            STATS.left_unsat.fetch_add(1, Ordering::Relaxed);
            return Ok(Containment::HoldsVacuously(reason));
        }
        Compiled::Unchanged => q1.clone(),
        Compiled::Rewritten(q) => {
            STATS.left_rewrites.fetch_add(1, Ordering::Relaxed);
            q
        }
    };

    // Left branches: the compiled query itself when terminal, otherwise its
    // satisfiable terminal expansion with constraint-dead branches dropped.
    let branches: Vec<Query> = if q1c.is_terminal(schema) {
        if let Satisfiability::Unsatisfiable(reason) = satisfiability::satisfiability(schema, &q1c)?
        {
            return Ok(Containment::HoldsVacuously(reason));
        }
        vec![q1c]
    } else {
        let expanded = expand_satisfiable_with(schema, &q1c, cfg)?;
        let mut alive = Vec::new();
        for b in expanded.queries() {
            // Branch filtering is a dead-range check only (Side::Right
            // semantics): re-chasing instantiated witnesses could recurse
            // indefinitely, and a missed chase round only weakens *fails*
            // verdicts, which are already incomplete under a theory.
            match theory.compile(schema, Side::Right, b, &cfg.budget)? {
                Compiled::Unsatisfiable(_) => {
                    STATS.dead_branches.fetch_add(1, Ordering::Relaxed);
                }
                _ => alive.push(b.clone()),
            }
        }
        if alive.is_empty() {
            return Ok(Containment::HoldsVacuously(UnsatReason::NoLegalBranch {
                var: q1.var_name(q1.free_var()).to_owned(),
            }));
        }
        alive
    };

    if let Compiled::Unsatisfiable(reason) = theory.compile(schema, Side::Right, q2, &cfg.budget)? {
        STATS.right_unsat.fetch_add(1, Ordering::Relaxed);
        return Ok(Containment::FailsRightUnsatisfiable(reason));
    }

    let mut witnesses = Vec::new();
    for b in &branches {
        match decide_plain(schema, b, q2, strategy, cfg, collect)? {
            Containment::HoldsVacuously(_) => {} // branch contributes nothing
            Containment::Holds(ws) => witnesses.extend(ws),
            fails @ (Containment::Fails { .. } | Containment::FailsRightUnsatisfiable(_)) => {
                return Ok(fails);
            }
        }
    }
    Ok(Containment::Holds(witnesses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::{
        contains_positive_with, decide_containment_with, dispatch_containment_with,
    };
    use crate::DecisionCache;
    use oocq_query::{QueryBuilder, UnionQuery};
    use oocq_schema::SchemaBuilder;
    use std::sync::atomic::AtomicUsize;

    /// `class P {} class Q {} class B {} class T1 : B {} class T2 : B, P, Q {}`
    /// with `constraint disjoint P Q;` — the common descendant `T2` is dead.
    fn disjoint_schema(with_constraint: bool) -> Schema {
        let mut b = SchemaBuilder::new();
        let p = b.class("P").unwrap();
        let q = b.class("Q").unwrap();
        let base = b.class("B").unwrap();
        let t1 = b.class("T1").unwrap();
        let t2 = b.class("T2").unwrap();
        b.subclass(t1, base).unwrap();
        b.subclass(t2, base).unwrap();
        b.subclass(t2, p).unwrap();
        b.subclass(t2, q).unwrap();
        if with_constraint {
            b.constraint(Constraint::Disjoint(p, q));
        }
        b.finish().unwrap()
    }

    fn range_query(s: &Schema, class: &str) -> Query {
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id(class).unwrap()]);
        b.build()
    }

    /// `class U {} class T { F : U }` with `constraint total T.F;`.
    fn total_schema(with_constraint: bool) -> Schema {
        let mut b = SchemaBuilder::new();
        let u = b.class("U").unwrap();
        let t = b.class("T").unwrap();
        let f = b
            .attribute(t, "F", oocq_schema::AttrType::Object(u))
            .unwrap();
        if with_constraint {
            b.constraint(Constraint::Total(t, f));
        }
        b.finish().unwrap()
    }

    /// `class D {} class M { A : D  B : D } class C { Items : {M} }` with
    /// `constraint functional C.Items;`.
    fn functional_schema(with_constraint: bool) -> Schema {
        let mut b = SchemaBuilder::new();
        let d = b.class("D").unwrap();
        let m = b.class("M").unwrap();
        let c = b.class("C").unwrap();
        b.attribute(m, "A", oocq_schema::AttrType::Object(d))
            .unwrap();
        b.attribute(m, "B", oocq_schema::AttrType::Object(d))
            .unwrap();
        let items = b
            .attribute(c, "Items", oocq_schema::AttrType::SetOf(m))
            .unwrap();
        if with_constraint {
            b.constraint(Constraint::Functional(c, items));
        }
        b.finish().unwrap()
    }

    #[test]
    fn disjointness_flips_fails_to_holds_on_positive_containment() {
        // {x | x in B} ⊆ {x | x in T1}: plainly false (the T2 branch
        // escapes), true once disjointness kills T2.
        let plain = disjoint_schema(false);
        let constrained = disjoint_schema(true);
        let cfg = EngineConfig::serial();
        let q1 = range_query(&plain, "B");
        let q2 = range_query(&plain, "T1");
        assert!(!contains_positive_with(&plain, &q1, &q2, &cfg).unwrap());
        assert!(!dispatch_containment_with(&plain, &q1, &q2, &cfg).unwrap());
        assert!(contains_positive_with(&constrained, &q1, &q2, &cfg).unwrap());
        assert!(dispatch_containment_with(&constrained, &q1, &q2, &cfg).unwrap());
    }

    #[test]
    fn disjointness_changes_verdict_kinds_on_dead_terminals() {
        let plain = disjoint_schema(false);
        let constrained = disjoint_schema(true);
        let cfg = EngineConfig::serial();
        let t2 = range_query(&plain, "T2");
        let t1 = range_query(&plain, "T1");
        // Dead left: Holds -> HoldsVacuously.
        assert!(matches!(
            decide_containment_with(&plain, &t2, &t2, &cfg).unwrap(),
            Containment::Holds(_)
        ));
        assert!(matches!(
            decide_containment_with(&constrained, &t2, &t2, &cfg).unwrap(),
            Containment::HoldsVacuously(UnsatReason::DeadRange { .. })
        ));
        // Dead right: Fails -> FailsRightUnsatisfiable.
        assert!(matches!(
            decide_containment_with(&plain, &t1, &t2, &cfg).unwrap(),
            Containment::Fails { .. }
        ));
        assert!(matches!(
            decide_containment_with(&constrained, &t1, &t2, &cfg).unwrap(),
            Containment::FailsRightUnsatisfiable(UnsatReason::DeadRange { .. })
        ));
    }

    #[test]
    fn totality_flips_fails_to_holds_via_the_chase() {
        // {x | x in T} ⊆ {x | x in T, u in U, x.F = u}: plainly false (no
        // value for u), true when `total T.F` chases a witness in.
        let plain = total_schema(false);
        let constrained = total_schema(true);
        let cfg = EngineConfig::serial();
        let q1 = range_query(&plain, "T");
        let u_id = plain.class_id("U").unwrap();
        let f = plain.attr_id("F").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let u = b.var("u");
        b.range(x, [plain.class_id("T").unwrap()]);
        b.range(u, [u_id]);
        b.eq(Term::Attr(x, f), Term::Var(u));
        let q2 = b.build();
        assert!(matches!(
            decide_containment_with(&plain, &q1, &q2, &cfg).unwrap(),
            Containment::Fails { .. }
        ));
        let verdict = decide_containment_with(&constrained, &q1, &q2, &cfg).unwrap();
        assert!(matches!(&verdict, Containment::Holds(ws) if !ws.is_empty()));
        // The witness maps u to the chase variable, which lives beyond
        // q1's variable space; rendering against the compiled left query
        // resolves it, and rendering against q1 degrades gracefully.
        let q1c = compiled_left(&constrained, &q1, &cfg).unwrap();
        assert!(q1c.var_count() > q1.var_count());
        let rendered = verdict.render(&constrained, &q1c, &q2);
        assert!(rendered.contains("x_F"), "{rendered}");
        let degraded = verdict.render(&constrained, &q1, &q2);
        assert!(degraded.contains("_v1"), "{degraded}");
    }

    #[test]
    fn functionality_flips_fails_to_holds_by_merging_members() {
        // Q1 knows x.A (via one member) and y.B (via the other); Q2 wants
        // one member with both attributes bound. Functionality of Items
        // equates x and y, pooling their facts.
        let plain = functional_schema(false);
        let constrained = functional_schema(true);
        let cfg = EngineConfig::serial();
        let (c, m, d) = (
            plain.class_id("C").unwrap(),
            plain.class_id("M").unwrap(),
            plain.class_id("D").unwrap(),
        );
        let (a, bb, items) = (
            plain.attr_id("A").unwrap(),
            plain.attr_id("B").unwrap(),
            plain.attr_id("Items").unwrap(),
        );
        let mut b = QueryBuilder::new("w");
        let w = b.free();
        let x = b.var("x");
        let y = b.var("y");
        let u = b.var("u");
        let v = b.var("v");
        b.range(w, [c])
            .range(x, [m])
            .range(y, [m])
            .range(u, [d])
            .range(v, [d]);
        b.member(x, w, items).member(y, w, items);
        b.eq(Term::Attr(x, a), Term::Var(u));
        b.eq(Term::Attr(y, bb), Term::Var(v));
        let q1 = b.build();

        let mut b = QueryBuilder::new("w");
        let w2 = b.free();
        let mm = b.var("m");
        let u2 = b.var("u");
        let v2 = b.var("v");
        b.range(w2, [c])
            .range(mm, [m])
            .range(u2, [d])
            .range(v2, [d]);
        b.member(mm, w2, items);
        b.eq(Term::Attr(mm, a), Term::Var(u2));
        b.eq(Term::Attr(mm, bb), Term::Var(v2));
        let q2 = b.build();

        assert!(matches!(
            decide_containment_with(&plain, &q1, &q2, &cfg).unwrap(),
            Containment::Fails { .. }
        ));
        assert!(decide_containment_with(&constrained, &q1, &q2, &cfg)
            .unwrap()
            .holds());
    }

    #[test]
    fn empty_theory_opts_out_of_schema_constraints() {
        let constrained = disjoint_schema(true);
        let cfg = EngineConfig::serial().with_theory(Arc::new(EmptyTheory));
        let t2 = range_query(&constrained, "T2");
        // With the identity theory installed, the constrained schema
        // decides exactly like the plain calculus.
        assert!(matches!(
            decide_containment_with(&constrained, &t2, &t2, &cfg).unwrap(),
            Containment::Holds(_)
        ));
    }

    #[test]
    fn explicit_constraint_theory_on_unconstrained_schema_is_invisible() {
        // The theory-mediated path over an empty constraint set must agree
        // byte-for-byte with the plain path, serial and parallel alike.
        let s = oocq_schema::samples::vehicle_rental();
        let auto = s.class_id("Auto").unwrap();
        let discount = s.class_id("Discount").unwrap();
        let rented = s.attr_id("VehRented").unwrap();
        let mk = |extra: bool| {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            b.range(x, [auto]);
            if extra {
                let y = b.var("y");
                b.range(y, [discount]);
                b.member(x, y, rented);
            }
            b.build()
        };
        let (q_small, q_big) = (mk(false), mk(true));
        let theory: Arc<dyn Theory> = Arc::new(ConstraintTheory::for_schema(&s));
        for (l, r) in [(&q_small, &q_big), (&q_big, &q_small), (&q_big, &q_big)] {
            for cfg in [EngineConfig::serial(), EngineConfig::with_threads(8)] {
                let plain = decide_containment_with(&s, l, r, &cfg).unwrap();
                let themed =
                    decide_containment_with(&s, l, r, &cfg.clone().with_theory(theory.clone()))
                        .unwrap();
                assert_eq!(format!("{plain:?}"), format!("{themed:?}"));
            }
        }
    }

    /// A decision cache that counts lookups, for the bypass test.
    #[derive(Default, Debug)]
    struct CountingCache {
        gets: AtomicUsize,
        puts: AtomicUsize,
    }

    impl DecisionCache for CountingCache {
        fn get_contains(&self, _s: &Schema, _q1: &Query, _q2: &Query) -> Option<bool> {
            self.gets.fetch_add(1, Ordering::Relaxed);
            None
        }
        fn put_contains(&self, _s: &Schema, _q1: &Query, _q2: &Query, _holds: bool) {
            self.puts.fetch_add(1, Ordering::Relaxed);
        }
        fn get_minimized(&self, _s: &Schema, _q: &Query) -> Option<UnionQuery> {
            None
        }
        fn put_minimized(&self, _s: &Schema, _q: &Query, _r: &UnionQuery) {}
    }

    #[test]
    fn explicit_theory_bypasses_the_decision_cache() {
        let s = disjoint_schema(true);
        let t1 = range_query(&s, "T1");
        let cache = Arc::new(CountingCache::default());

        // No explicit theory: the cache is consulted and fed even though
        // the schema's constraints auto-activate a theory — the schema
        // fingerprint carries the constraint text, so keys cannot collide.
        let cfg = EngineConfig::serial().with_cache(cache.clone());
        assert!(crate::contains_terminal_with(&s, &t1, &t1, &cfg).unwrap());
        assert_eq!(cache.gets.load(Ordering::Relaxed), 1);
        assert_eq!(cache.puts.load(Ordering::Relaxed), 1);

        // An explicit theory (even the identity) suppresses the cache.
        for theory in [
            Arc::new(EmptyTheory) as Arc<dyn Theory>,
            Arc::new(ConstraintTheory::for_schema(&s)) as Arc<dyn Theory>,
        ] {
            let cfg = EngineConfig::serial()
                .with_cache(cache.clone())
                .with_theory(theory);
            assert!(crate::contains_terminal_with(&s, &t1, &t1, &cfg).unwrap());
        }
        assert_eq!(cache.gets.load(Ordering::Relaxed), 1);
        assert_eq!(cache.puts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn theory_counters_accumulate() {
        let before = theory_stats();
        let constrained = total_schema(true);
        let cfg = EngineConfig::serial();
        let q1 = range_query(&constrained, "T");
        decide_containment_with(&constrained, &q1, &q1, &cfg).unwrap();
        let after = theory_stats();
        assert!(after.decisions > before.decisions);
        assert!(after.left_rewrites > before.left_rewrites);
        assert!(after.chase_atoms > before.chase_atoms);
    }

    #[test]
    fn chase_is_bounded_on_cyclic_totality() {
        // `total T.F` with `F : T` chases forever in principle; the bound
        // keeps the compiled query finite and the verdict sound.
        let mut b = SchemaBuilder::new();
        let t = b.class("T").unwrap();
        let f = b
            .attribute(t, "F", oocq_schema::AttrType::Object(t))
            .unwrap();
        b.constraint(Constraint::Total(t, f));
        let s = b.finish().unwrap();
        let q = range_query(&s, "T");
        let q1c = compiled_left(&s, &q, &EngineConfig::serial()).unwrap();
        assert_eq!(q1c.var_count(), 1 + MAX_CHASE_ROUNDS);
        assert!(decide_containment_with(&s, &q, &q, &EngineConfig::serial())
            .unwrap()
            .holds());
    }
}

//! The prepared-artifact decision layer: [`PreparedSchema`],
//! [`PreparedQuery`], and the [`Engine`] entry point.
//!
//! Every Theorem 3.1 / §4 decision consumes the same derived artifacts —
//! `QueryAnalysis` (Algorithm *EqualityGraph* closure), per-variable
//! terminal classes (`var_classes`), the satisfiability verdict of
//! Theorem 2.2, the derivability indexes of the mapping search, and the
//! canonical form used for cache keying. The free functions re-derive them
//! on every call; a repeated-decision workload (the service's norm) pays
//! that cost once per *request* instead of once per *query*.
//!
//! This module is the prepared-statement analogue: a [`PreparedSchema`]
//! derives the schema-level closure eagerly and shares it via `Arc`, a
//! [`PreparedQuery`] memoizes each query-level artifact lazily behind a
//! [`OnceLock`] (an artifact a workload never touches is never built), and
//! an [`Engine`] owns the [`EngineConfig`] (threads, decision cache,
//! isomorphism fast path) and exposes the decision procedures as inherent
//! methods over prepared values. The free `*_with` functions remain as
//! convenience wrappers that prepare internally per call; both layers share
//! one implementation, so verdicts are identical by construction (the
//! differential seed-sweep in `tests/properties.rs` checks this).
//!
//! What is derived when:
//!
//! | artifact | holder | when |
//! |---|---|---|
//! | terminal-descendant closure, per class | [`PreparedSchema`] | eagerly at construction |
//! | schema fingerprint (`Display` text) | [`PreparedSchema`] | lazily, first cache keying |
//! | `QueryAnalysis` | [`PreparedQuery`] | lazily, first decision |
//! | per-variable terminal classes | [`PreparedQuery`] | lazily, first decision |
//! | satisfiability verdict (Thm 2.2) | [`PreparedQuery`] | lazily, first decision |
//! | canonical form (cache key) | [`PreparedQuery`] | lazily, first canonical cache keying |
//! | stripped branch base (analysis + [`TargetIndexes`](crate::derive)) | [`PreparedQuery`] | lazily, first Theorem 3.1 run |
//! | satisfiable terminal expansion (Prop 2.1) | [`PreparedQuery`] | lazily, first §4 / union decision |
//!
//! Each cell is built **at most once** per `PreparedQuery` — `OnceLock`
//! enforces it structurally, and [`PreparedQuery::stats`] exposes build
//! counters so tests can assert it observationally.

use crate::branch::{BranchBase, BranchStats, EngineConfig};
use crate::budget::Budget;
use crate::containment::{decide_sides, strategy_for, union_contains_inner, Strategy};
use crate::error::CoreError;
use crate::explain::Containment;
use crate::minimize::minimize_pipeline;
use crate::satisfiability::{self, strip_non_range, var_classes, Satisfiability};
use oocq_query::{canonical_form_budgeted, CanonicalQuery, Query, QueryAnalysis, UnionQuery};
use oocq_schema::{ClassId, Schema};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A schema plus the derived structure every decision consults, shared via
/// `Arc` — cloning a `PreparedSchema` is a pointer copy.
///
/// Eagerly derived: the sorted, deduplicated terminal-descendant closure of
/// every class (what Proposition 2.1 expansion and `term-class` queries
/// walk). Lazily derived: the schema fingerprint (its `Display` text,
/// interned as an `Arc<str>`) used by canonical decision caches.
#[derive(Clone)]
pub struct PreparedSchema {
    inner: Arc<SchemaArtifacts>,
}

struct SchemaArtifacts {
    schema: Arc<Schema>,
    /// Sorted, deduplicated terminal descendants per class.
    closure: HashMap<ClassId, Vec<ClassId>>,
    /// The schema's `Display` text, rendered once on first use.
    fingerprint: OnceLock<Arc<str>>,
}

impl PreparedSchema {
    /// Prepare a schema (clones it once into shared ownership).
    pub fn new(schema: &Schema) -> PreparedSchema {
        PreparedSchema::from_arc(Arc::new(schema.clone()))
    }

    /// Prepare an already-shared schema without cloning it.
    pub fn from_arc(schema: Arc<Schema>) -> PreparedSchema {
        let mut closure = HashMap::with_capacity(schema.class_count());
        for c in schema.classes() {
            let mut ds: Vec<ClassId> = schema.terminal_descendants(c).to_vec();
            ds.sort();
            ds.dedup();
            closure.insert(c, ds);
        }
        PreparedSchema {
            inner: Arc::new(SchemaArtifacts {
                schema,
                closure,
                fingerprint: OnceLock::new(),
            }),
        }
    }

    /// The underlying schema.
    pub fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    /// The underlying schema's shared handle.
    pub fn schema_arc(&self) -> &Arc<Schema> {
        &self.inner.schema
    }

    /// The schema fingerprint: its `Display` text, rendered once and shared.
    /// Canonical decision caches key entries by this string.
    pub fn fingerprint(&self) -> &Arc<str> {
        self.inner
            .fingerprint
            .get_or_init(|| Arc::from(self.inner.schema.to_string().as_str()))
    }

    /// The sorted, deduplicated terminal descendants of one class, from the
    /// eager closure.
    pub fn terminal_closure(&self, c: ClassId) -> &[ClassId] {
        self.inner.closure.get(&c).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The terminal choices for a range disjunction `C₁ ∨ … ∨ Cₙ`: the
    /// sorted, deduplicated union of the per-class closures.
    pub fn terminal_choices(&self, classes: &[ClassId]) -> Vec<ClassId> {
        match classes {
            [c] => self.terminal_closure(*c).to_vec(),
            _ => {
                let mut out: Vec<ClassId> = classes
                    .iter()
                    .flat_map(|&c| self.terminal_closure(c))
                    .copied()
                    .collect();
                out.sort();
                out.dedup();
                out
            }
        }
    }
}

impl std::fmt::Debug for PreparedSchema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedSchema")
            .field("classes", &self.inner.schema.class_count())
            .finish()
    }
}

/// Build counters for the memoized artifacts of one [`PreparedQuery`]. Each
/// counter is `0` or `1` for the lifetime of the prepared query — `OnceLock`
/// admits no second build — which is exactly what the reuse regression tests
/// assert after driving many repeated decisions through one handle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreparedQueryStats {
    /// `QueryAnalysis` constructions for the query as written.
    pub analysis_builds: usize,
    /// `var_classes` resolutions.
    pub classes_builds: usize,
    /// Theorem 2.2 satisfiability evaluations.
    pub satisfiability_builds: usize,
    /// Canonical-form computations.
    pub canonical_builds: usize,
    /// Stripped branch-base constructions (analysis + derivability indexes
    /// of the non-range-stripped query, what Theorem 3.1 consumes).
    pub branch_builds: usize,
    /// Satisfiable terminal expansions (Proposition 2.1 pipelines).
    pub expansion_builds: usize,
    /// Cumulative branch-engine instrumentation for every decision that
    /// used this query as the containment *target* (left side): branches
    /// planned / evaluated / pruned, warm-start hits, homomorphism search
    /// effort. All zero until the branch side is first built.
    pub branch_stats: BranchStats,
}

impl PreparedQueryStats {
    /// The sum of all build counters.
    pub fn total_builds(&self) -> usize {
        self.analysis_builds
            + self.classes_builds
            + self.satisfiability_builds
            + self.canonical_builds
            + self.branch_builds
            + self.expansion_builds
    }
}

/// The prepared left/right material of one Theorem 3.1 run: the
/// non-range-stripped query, its terminal classes, and the branch base
/// (analysis + derivability indexes) the plan builder consumes.
pub(crate) struct BranchSide {
    pub(crate) stripped: Query,
    pub(crate) classes: Vec<ClassId>,
    pub(crate) base: BranchBase,
}

struct QueryArtifacts {
    schema: PreparedSchema,
    query: Query,
    analysis: OnceLock<QueryAnalysis>,
    classes: OnceLock<Result<Vec<ClassId>, CoreError>>,
    sat: OnceLock<Result<Satisfiability, CoreError>>,
    canonical: OnceLock<CanonicalQuery>,
    branch: OnceLock<Result<BranchSide, CoreError>>,
    /// Satisfiable terminal expansion of the query as written (what
    /// [`crate::expand_satisfiable`] computes).
    raw_expansion: OnceLock<Result<UnionQuery, CoreError>>,
    /// Satisfiable terminal expansion of the §2.3-normalized query (the
    /// first stage of the §4 pipeline and of positive containment).
    normalized_expansion: OnceLock<Result<UnionQuery, CoreError>>,
    builds: Builds,
}

#[derive(Default)]
struct Builds {
    analysis: AtomicUsize,
    classes: AtomicUsize,
    sat: AtomicUsize,
    canonical: AtomicUsize,
    branch: AtomicUsize,
    expansion: AtomicUsize,
}

/// A query bound to a [`PreparedSchema`], with every decision artifact
/// memoized lazily behind a [`OnceLock`]. Cloning is a pointer copy; clones
/// share the memo table, so a query prepared once is analyzed once no
/// matter how many sessions or threads hold it.
#[derive(Clone)]
pub struct PreparedQuery {
    inner: Arc<QueryArtifacts>,
}

impl PreparedQuery {
    /// Bind a query to a prepared schema. Nothing is derived yet.
    pub fn new(schema: &PreparedSchema, query: Query) -> PreparedQuery {
        PreparedQuery {
            inner: Arc::new(QueryArtifacts {
                schema: schema.clone(),
                query,
                analysis: OnceLock::new(),
                classes: OnceLock::new(),
                sat: OnceLock::new(),
                canonical: OnceLock::new(),
                branch: OnceLock::new(),
                raw_expansion: OnceLock::new(),
                normalized_expansion: OnceLock::new(),
                builds: Builds::default(),
            }),
        }
    }

    /// The query as written.
    pub fn query(&self) -> &Query {
        &self.inner.query
    }

    /// The schema this query was prepared against.
    pub fn schema(&self) -> &PreparedSchema {
        &self.inner.schema
    }

    /// `E(Q)` plus term classification (Algorithm *EqualityGraph*), built on
    /// first use.
    pub fn analysis(&self) -> &QueryAnalysis {
        self.inner.analysis.get_or_init(|| {
            self.inner.builds.analysis.fetch_add(1, Ordering::Relaxed);
            QueryAnalysis::of(&self.inner.query)
        })
    }

    /// The terminal class of each variable, resolved on first use. Errors
    /// (a non-terminal range) are memoized too.
    pub fn var_classes(&self) -> Result<&[ClassId], CoreError> {
        self.inner
            .classes
            .get_or_init(|| {
                self.inner.builds.classes.fetch_add(1, Ordering::Relaxed);
                var_classes(self.inner.schema.schema(), &self.inner.query)
            })
            .as_ref()
            .map(Vec::as_slice)
            .map_err(Clone::clone)
    }

    /// The Theorem 2.2 satisfiability verdict, computed on first use from
    /// the memoized classes and analysis.
    pub fn satisfiability(&self) -> Result<Satisfiability, CoreError> {
        self.inner
            .sat
            .get_or_init(|| {
                self.inner.builds.sat.fetch_add(1, Ordering::Relaxed);
                let classes = self.var_classes()?;
                let analysis = self.analysis();
                Ok(satisfiability::check(
                    self.inner.schema.schema(),
                    &self.inner.query,
                    classes,
                    analysis,
                ))
            })
            .clone()
    }

    /// Is the query satisfiable (Theorem 2.2)?
    pub fn is_satisfiable(&self) -> Result<bool, CoreError> {
        Ok(self.satisfiability()?.is_satisfiable())
    }

    /// The isomorphism-invariant canonical form (cache key), computed on
    /// first use.
    pub fn canonical_form(&self) -> &CanonicalQuery {
        match self.try_canonical_form(&Budget::unlimited()) {
            Ok(c) => c,
            Err(_) => unreachable!("unlimited budget never trips"),
        }
    }

    /// [`canonical_form`](Self::canonical_form) under a request budget: the
    /// labeling's in-class backtracking charges one unit per search node, so
    /// a highly automorphic query — whose canonical search is the product of
    /// the factorials of its color-class sizes — trips the recoverable
    /// [`CoreError::Timeout`] instead of hanging the worker. A failed
    /// attempt memoizes nothing; a later call under a larger budget retries
    /// from scratch.
    pub fn try_canonical_form(&self, budget: &Budget) -> Result<&CanonicalQuery, CoreError> {
        if let Some(c) = self.inner.canonical.get() {
            return Ok(c);
        }
        let computed = canonical_form_budgeted(&self.inner.query, &mut |u| budget.charge(u))?;
        Ok(self.inner.canonical.get_or_init(|| {
            self.inner.builds.canonical.fetch_add(1, Ordering::Relaxed);
            computed
        }))
    }

    /// Build counters for the memoized artifacts (each `0` or `1`), plus
    /// the cumulative [`BranchStats`] of every run that used this query as
    /// its containment target.
    pub fn stats(&self) -> PreparedQueryStats {
        let b = &self.inner.builds;
        PreparedQueryStats {
            analysis_builds: b.analysis.load(Ordering::Relaxed),
            classes_builds: b.classes.load(Ordering::Relaxed),
            satisfiability_builds: b.sat.load(Ordering::Relaxed),
            canonical_builds: b.canonical.load(Ordering::Relaxed),
            branch_builds: b.branch.load(Ordering::Relaxed),
            expansion_builds: b.expansion.load(Ordering::Relaxed),
            branch_stats: self
                .inner
                .branch
                .get()
                .and_then(|r| r.as_ref().ok())
                .map(|side| side.base.counters.snapshot())
                .unwrap_or_default(),
        }
    }

    /// The stripped branch material Theorem 3.1 consumes, built on first
    /// use: strip non-range atoms (§2.5), resolve terminal classes, analyse,
    /// and index derivability.
    pub(crate) fn branch_side(&self) -> Result<&BranchSide, CoreError> {
        self.inner
            .branch
            .get_or_init(|| {
                self.inner.builds.branch.fetch_add(1, Ordering::Relaxed);
                let stripped = strip_non_range(&self.inner.query);
                let classes = var_classes(self.inner.schema.schema(), &stripped)?;
                let base = BranchBase::build(&stripped, &classes);
                Ok(BranchSide {
                    stripped,
                    classes,
                    base,
                })
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The satisfiable terminal expansion (Proposition 2.1 + Theorem 2.2
    /// filter) of the query as written, built on first use. `cfg` governs
    /// scheduling of the first build only — the result is
    /// configuration-independent.
    pub(crate) fn raw_expansion(&self, cfg: &EngineConfig) -> Result<&UnionQuery, CoreError> {
        self.inner
            .raw_expansion
            .get_or_init(|| {
                self.inner.builds.expansion.fetch_add(1, Ordering::Relaxed);
                let analysis = self.analysis();
                crate::expand::expand_satisfiable_inner(
                    self.inner.schema.schema(),
                    &self.inner.query,
                    cfg,
                    Some(&self.inner.schema),
                    analysis,
                )
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The satisfiable terminal expansion of the §2.3-normalized query —
    /// stage one of positive containment and of the §4 minimization
    /// pipeline — built on first use.
    pub(crate) fn normalized_expansion(
        &self,
        cfg: &EngineConfig,
    ) -> Result<&UnionQuery, CoreError> {
        self.inner
            .normalized_expansion
            .get_or_init(|| {
                self.inner.builds.expansion.fetch_add(1, Ordering::Relaxed);
                let schema = self.inner.schema.schema();
                let normalized = oocq_query::normalize(&self.inner.query, schema)?;
                let analysis = QueryAnalysis::of(&normalized);
                crate::expand::expand_satisfiable_inner(
                    schema,
                    &normalized,
                    cfg,
                    Some(&self.inner.schema),
                    &analysis,
                )
            })
            .as_ref()
            .map_err(Clone::clone)
    }
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("query", &self.inner.query)
            .field("stats", &self.stats())
            .finish()
    }
}

/// The decision engine: an owned [`EngineConfig`] (thread pool shape,
/// optional [`DecisionCache`](crate::DecisionCache), isomorphism fast path)
/// plus the §3/§4 procedures as inherent methods over prepared values.
///
/// Contract: every method decides exactly what the corresponding free
/// function decides — the prepared layer changes *when artifacts are built*,
/// never *what is decided* — and both prepared queries must have been
/// prepared against the schema the decision should run under (the left
/// operand's schema is used).
#[derive(Debug, Default)]
pub struct Engine {
    cfg: EngineConfig,
}

impl Engine {
    /// An engine with an explicit configuration.
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine { cfg }
    }

    /// An engine configured from the environment (`OOCQ_THREADS`).
    pub fn from_env() -> Engine {
        Engine::new(EngineConfig::from_env())
    }

    /// The serial reference engine.
    pub fn serial() -> Engine {
        Engine::new(EngineConfig::serial())
    }

    /// The configuration this engine runs under.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// This engine with a decision cache installed.
    pub fn with_cache(mut self, cache: Arc<dyn crate::DecisionCache>) -> Engine {
        self.cfg = self.cfg.with_cache(cache);
        self
    }

    /// Prepare a schema (convenience for [`PreparedSchema::new`]).
    pub fn prepare_schema(&self, schema: &Schema) -> PreparedSchema {
        PreparedSchema::new(schema)
    }

    /// Bind a query to a prepared schema (convenience for
    /// [`PreparedQuery::new`]).
    pub fn prepare(&self, schema: &PreparedSchema, query: &Query) -> PreparedQuery {
        PreparedQuery::new(schema, query.clone())
    }

    /// Theorem 2.2 satisfiability of a prepared query (memoized on the
    /// query handle).
    pub fn satisfiability(&self, p: &PreparedQuery) -> Result<Satisfiability, CoreError> {
        p.satisfiability()
    }

    /// Is the prepared query satisfiable?
    pub fn is_satisfiable(&self, p: &PreparedQuery) -> Result<bool, CoreError> {
        p.is_satisfiable()
    }

    /// Decide `p1 ⊆ p2` for terminal conjunctive queries with the full
    /// certificate (never cached — witness text is cheap to recompute
    /// relative to its size).
    pub fn decide(&self, p1: &PreparedQuery, p2: &PreparedQuery) -> Result<Containment, CoreError> {
        self.decide_strategy(p1, p2, strategy_for(p2.query()), true)
    }

    fn decide_strategy(
        &self,
        p1: &PreparedQuery,
        p2: &PreparedQuery,
        strategy: Strategy,
        collect: bool,
    ) -> Result<Containment, CoreError> {
        if let Some(theory) = crate::theory::active_theory(&self.cfg, p1.schema().schema()) {
            return crate::theory::decide_pair_with_theory(
                theory.as_ref(),
                p1.schema().schema(),
                p1.query(),
                p2.query(),
                strategy,
                &self.cfg,
                collect,
            );
        }
        if let Satisfiability::Unsatisfiable(reason) = p1.satisfiability()? {
            return Ok(Containment::HoldsVacuously(reason));
        }
        if let Satisfiability::Unsatisfiable(reason) = p2.satisfiability()? {
            return Ok(Containment::FailsRightUnsatisfiable(reason));
        }
        let left = p1.branch_side()?;
        let right = p2.branch_side()?;
        decide_sides(
            p1.schema().schema(),
            &left.stripped,
            &left.classes,
            &left.base,
            &right.stripped,
            &right.classes,
            strategy,
            &self.cfg,
            collect,
        )
    }

    /// `p1 ⊆ p2` for terminal conjunctive queries (Theorem 3.1 /
    /// Corollaries 3.2–3.4), consulting and feeding the engine's decision
    /// cache through the prepared canonical forms.
    pub fn contains(&self, p1: &PreparedQuery, p2: &PreparedQuery) -> Result<bool, CoreError> {
        if let Some(cache) = self.cfg.decision_cache() {
            // Canonical cache keys are derived here, under the request
            // budget, so a factorial-regime labeling times out recoverably
            // instead of hanging inside the cache lookup.
            p1.try_canonical_form(&self.cfg.budget)?;
            p2.try_canonical_form(&self.cfg.budget)?;
            if let Some(hit) = cache.get_contains_prepared(p1, p2) {
                return Ok(hit);
            }
        }
        let holds = self
            .decide_strategy(p1, p2, strategy_for(p2.query()), false)?
            .holds();
        if let Some(cache) = self.cfg.decision_cache() {
            cache.put_contains_prepared(p1, p2, holds);
        }
        Ok(holds)
    }

    /// `p1 ⊆ p2` using the full Theorem 3.1 enumeration regardless of
    /// `p2`'s shape.
    pub fn contains_full(&self, p1: &PreparedQuery, p2: &PreparedQuery) -> Result<bool, CoreError> {
        Ok(self.decide_strategy(p1, p2, Strategy::Full, false)?.holds())
    }

    /// `p1 ≡ p2` for terminal conjunctive queries. With the isomorphism
    /// fast path enabled (the default), equality of the memoized canonical
    /// forms short-circuits the check — canonical forms are equal exactly
    /// for isomorphic queries, and isomorphic queries are equivalent.
    pub fn equivalent(&self, p1: &PreparedQuery, p2: &PreparedQuery) -> Result<bool, CoreError> {
        if self.cfg.iso_fast_path
            && p1.try_canonical_form(&self.cfg.budget)?
                == p2.try_canonical_form(&self.cfg.budget)?
        {
            return Ok(true);
        }
        Ok(self.contains(p1, p2)? && self.contains(p2, p1)?)
    }

    /// `p1 ⊆ p2` for positive (not necessarily terminal) conjunctive
    /// queries: normalize, expand to satisfiable terminal unions
    /// (memoized on each handle), then Theorem 4.1 pairwise.
    pub fn contains_positive(
        &self,
        p1: &PreparedQuery,
        p2: &PreparedQuery,
    ) -> Result<bool, CoreError> {
        if !p1.query().is_positive() || !p2.query().is_positive() {
            return Err(CoreError::NotPositive);
        }
        if let Some(cache) = self.cfg.decision_cache() {
            p1.try_canonical_form(&self.cfg.budget)?;
            p2.try_canonical_form(&self.cfg.budget)?;
            if let Some(hit) = cache.get_contains_prepared(p1, p2) {
                return Ok(hit);
            }
        }
        let u1 = p1.normalized_expansion(&self.cfg)?;
        let u2 = p2.normalized_expansion(&self.cfg)?;
        // The expansions are already satisfiability-filtered, so the
        // Theorem 4.1 sweep can skip its per-subquery vacuity check.
        let holds = union_contains_inner(p1.schema().schema(), u1, u2, &self.cfg, true)?;
        if let Some(cache) = self.cfg.decision_cache() {
            cache.put_contains_prepared(p1, p2, holds);
        }
        Ok(holds)
    }

    /// `p1 ≡ p2` for positive conjunctive queries.
    pub fn equivalent_positive(
        &self,
        p1: &PreparedQuery,
        p2: &PreparedQuery,
    ) -> Result<bool, CoreError> {
        Ok(self.contains_positive(p1, p2)? && self.contains_positive(p2, p1)?)
    }

    /// Containment dispatch across query shapes: §3 for terminal pairs, §4
    /// for positive pairs, left-expansion against a terminal right side.
    /// Shapes outside the decidable fragment are rejected with
    /// [`CoreError::NotPositive`].
    pub fn dispatch(&self, p1: &PreparedQuery, p2: &PreparedQuery) -> Result<bool, CoreError> {
        let schema = p1.schema().schema();
        if p1.query().is_terminal(schema) && p2.query().is_terminal(schema) {
            return self.contains(p1, p2);
        }
        if p1.query().is_positive() && p2.query().is_positive() {
            return self.contains_positive(p1, p2);
        }
        if p2.query().is_terminal(schema) {
            let ua = p1.normalized_expansion(&self.cfg)?;
            for sub in ua {
                if !self.contains_fresh_left(sub, p2)? {
                    return Ok(false);
                }
            }
            return Ok(true);
        }
        Err(CoreError::NotPositive)
    }

    /// `q1 ⊆ p2` where the left side is a transient query (an expansion
    /// branch) and only the right side is prepared. The right side's
    /// artifacts come from the memo; the left side's are derived here, once
    /// per call.
    fn contains_fresh_left(&self, q1: &Query, p2: &PreparedQuery) -> Result<bool, CoreError> {
        let schema = p2.schema().schema();
        if let Some(cache) = self.cfg.decision_cache() {
            if let Some(hit) = cache.get_contains(schema, q1, p2.query()) {
                return Ok(hit);
            }
        }
        let holds = 'decide: {
            if let Some(theory) = crate::theory::active_theory(&self.cfg, schema) {
                break 'decide crate::theory::decide_pair_with_theory(
                    theory.as_ref(),
                    schema,
                    q1,
                    p2.query(),
                    strategy_for(p2.query()),
                    &self.cfg,
                    false,
                )?
                .holds();
            }
            if !satisfiability::satisfiability(schema, q1)?.is_satisfiable() {
                break 'decide true; // unsatisfiable left: vacuous
            }
            if let Satisfiability::Unsatisfiable(_) = p2.satisfiability()? {
                break 'decide false;
            }
            let stripped = strip_non_range(q1);
            let classes = var_classes(schema, &stripped)?;
            let base = BranchBase::build(&stripped, &classes);
            let right = p2.branch_side()?;
            decide_sides(
                schema,
                &stripped,
                &classes,
                &base,
                &right.stripped,
                &right.classes,
                strategy_for(p2.query()),
                &self.cfg,
                false,
            )?
            .holds()
        };
        if let Some(cache) = self.cfg.decision_cache() {
            cache.put_contains(schema, q1, p2.query(), holds);
        }
        Ok(holds)
    }

    /// Proposition 2.1 + Theorem 2.2: the satisfiable terminal expansion of
    /// a prepared query, memoized on the handle.
    pub fn expand_satisfiable(&self, p: &PreparedQuery) -> Result<UnionQuery, CoreError> {
        Ok(p.raw_expansion(&self.cfg)?.clone())
    }

    /// The full §4 pipeline: exact, search-space-optimal minimization of a
    /// positive conjunctive query. The expansion stage is memoized on the
    /// handle; the whole result is memoized in the engine's decision cache
    /// (keyed by the exact query — minimization output carries variable
    /// names).
    pub fn minimize(&self, p: &PreparedQuery) -> Result<UnionQuery, CoreError> {
        if !p.query().is_positive() {
            return Err(CoreError::NotPositive);
        }
        let schema = p.schema().schema();
        if let Some(cache) = self.cfg.decision_cache() {
            if let Some(hit) = cache.get_minimized_prepared(p) {
                return Ok(hit);
            }
        }
        let expanded = p.normalized_expansion(&self.cfg)?;
        let result = minimize_pipeline(schema, expanded, &self.cfg)?;
        if let Some(cache) = self.cfg.decision_cache() {
            cache.put_minimized_prepared(p, &result);
        }
        Ok(result)
    }

    /// Variable minimization for general (not necessarily positive)
    /// terminal conjunctive queries (§4 closing remarks), under this
    /// engine's configuration.
    pub fn minimize_general(&self, p: &PreparedQuery) -> Result<UnionQuery, CoreError> {
        crate::general::minimize_general_with(p.schema().schema(), p.query(), &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;

    fn vehicle_query(s: &Schema) -> Query {
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        b.range(y, [s.class_id("Discount").unwrap()]);
        b.member(x, y, s.attr_id("VehRented").unwrap());
        b.build()
    }

    #[test]
    fn prepared_schema_closure_matches_schema() {
        let s = samples::vehicle_rental();
        let ps = PreparedSchema::new(&s);
        for c in s.classes() {
            let mut expect: Vec<ClassId> = s.terminal_descendants(c).to_vec();
            expect.sort();
            expect.dedup();
            assert_eq!(ps.terminal_closure(c), expect.as_slice());
        }
        let vehicle = s.class_id("Vehicle").unwrap();
        let client = s.class_id("Client").unwrap();
        let merged = ps.terminal_choices(&[vehicle, client]);
        assert_eq!(merged.len(), 5); // Auto, Trailer, Truck, Discount, Regular
    }

    #[test]
    fn fingerprint_is_interned_display_text() {
        let s = samples::single_class();
        let ps = PreparedSchema::new(&s);
        assert_eq!(ps.fingerprint().as_ref(), s.to_string());
        assert!(Arc::ptr_eq(ps.fingerprint(), ps.fingerprint()));
    }

    #[test]
    fn artifacts_build_at_most_once() {
        let s = samples::vehicle_rental();
        let ps = PreparedSchema::new(&s);
        let engine = Engine::serial();
        let q = vehicle_query(&s);
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        let loose = b.build();
        let p1 = PreparedQuery::new(&ps, q);
        let p2 = PreparedQuery::new(&ps, loose);
        assert_eq!(p1.stats().total_builds(), 0, "preparation derives nothing");
        for _ in 0..50 {
            assert!(engine.dispatch(&p1, &p2).unwrap());
            assert!(engine.contains_positive(&p1, &p2).unwrap());
            // Satisfiability is a terminal-query notion; the memo records
            // (and replays) the NotTerminal error for this non-terminal q.
            assert!(matches!(
                engine.satisfiability(&p1),
                Err(CoreError::NotTerminal { .. })
            ));
        }
        let st = p1.stats();
        assert!(st.analysis_builds <= 1, "{st:?}");
        assert!(st.classes_builds <= 1, "{st:?}");
        assert!(st.satisfiability_builds <= 1, "{st:?}");
        assert!(st.canonical_builds <= 1, "{st:?}");
        assert!(st.branch_builds <= 1, "{st:?}");
        assert!(st.expansion_builds <= 2, "raw + normalized at most: {st:?}");
        assert!(p2.stats().total_builds() <= 7);
    }

    #[test]
    fn engine_matches_free_functions_on_paper_examples() {
        let s = samples::vehicle_rental();
        let ps = PreparedSchema::new(&s);
        let engine = Engine::serial();
        let q = vehicle_query(&s);
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("Auto").unwrap()]);
        let autos = b.build();
        let pq = PreparedQuery::new(&ps, q.clone());
        let pa = PreparedQuery::new(&ps, autos.clone());
        assert_eq!(
            engine.contains_positive(&pq, &pa).unwrap(),
            crate::contains_positive(&s, &q, &autos).unwrap()
        );
        assert_eq!(
            engine.minimize(&pq).unwrap(),
            crate::minimize_positive(&s, &q).unwrap()
        );
        assert_eq!(
            engine.expand_satisfiable(&pq).unwrap(),
            crate::expand_satisfiable(&s, &q).unwrap()
        );
        assert_eq!(
            engine.satisfiability(&pa).unwrap(),
            crate::satisfiability(&s, &autos).unwrap()
        );
    }

    #[test]
    fn equivalent_uses_canonical_fast_path() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mk = |names: [&str; 2]| {
            let mut b = QueryBuilder::new(names[0]);
            let x = b.free();
            let y = b.var(names[1]);
            b.range(x, [c]).range(y, [c]).neq_vars(x, y);
            b.build()
        };
        let ps = PreparedSchema::new(&s);
        let p1 = PreparedQuery::new(&ps, mk(["x", "y"]));
        let p2 = PreparedQuery::new(&ps, mk(["a", "b"]));
        let engine = Engine::serial();
        assert!(engine.equivalent(&p1, &p2).unwrap());
        // The fast path decided it: no branch machinery was built.
        assert_eq!(p1.stats().branch_builds, 0);
        assert_eq!(p1.stats().canonical_builds, 1);
        // Without the fast path the answer is the same.
        let slow = Engine::new(EngineConfig::serial().without_iso_fast_path());
        assert!(slow.equivalent(&p1, &p2).unwrap());
        assert_eq!(p1.stats().branch_builds, 1);
    }

    #[test]
    fn mismatched_shapes_rejected_like_free_dispatch() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).neq_vars(x, y);
        let neq = b.build();
        let ps = PreparedSchema::new(&s);
        let p = PreparedQuery::new(&ps, neq);
        let engine = Engine::serial();
        assert!(matches!(
            engine.contains_positive(&p, &p),
            Err(CoreError::NotPositive)
        ));
        assert!(matches!(engine.minimize(&p), Err(CoreError::NotPositive)));
    }
}

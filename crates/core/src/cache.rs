//! The decision-cache hook consulted by the containment and minimization
//! entry points.
//!
//! The engine itself stays stateless: a [`DecisionCache`] is an optional
//! collaborator installed on [`EngineConfig`](crate::EngineConfig) that may
//! answer a decision before the Theorem 3.1 / §4 machinery runs, and is
//! offered every decision the machinery does compute. The canonical
//! implementation (`oocq-service`'s `CanonicalDecisionCache`) keys entries
//! by schema fingerprint plus isomorphism-invariant canonical forms, so a
//! renamed copy of a cached query hits; but the trait deliberately receives
//! the raw [`Schema`] and [`Query`] values and leaves the keying policy to
//! the implementor.
//!
//! # Soundness contract
//!
//! `get_contains(s, q1, q2)` may return `Some(v)` only if `v` is the value
//! `q1 ⊆ q2` under schema `s` — for containment that value is invariant
//! under variable renaming of either side, which is what licenses canonical
//! keying. `get_minimized(s, q)` must return a union **structurally
//! identical** (variable names included) to what
//! [`minimize_positive`](crate::minimize_positive) would produce for `q`,
//! because minimization results are rendered back to users; implementations
//! therefore key minimization entries by the exact query, not its canonical
//! class. Certificates ([`decide_containment`](crate::decide_containment))
//! are never cached: their witness text mentions concrete variable names on
//! both sides and is cheap to recompute relative to its size.

use crate::engine::PreparedQuery;
use oocq_query::{Query, UnionQuery};
use oocq_schema::Schema;

/// A memo table for containment and minimization decisions, shared across
/// threads (`Send + Sync`: the service consults one cache from a whole
/// worker pool).
///
/// All methods take `&self`; implementations handle their own locking.
pub trait DecisionCache: Send + Sync {
    /// A previously recorded value of `q1 ⊆ q2` under `schema`, if any.
    fn get_contains(&self, schema: &Schema, q1: &Query, q2: &Query) -> Option<bool>;

    /// Record `q1 ⊆ q2 = holds` under `schema`.
    fn put_contains(&self, schema: &Schema, q1: &Query, q2: &Query, holds: bool);

    /// A previously recorded minimization of `q` under `schema`, if any.
    /// Must be structurally identical to the engine's output for `q`.
    fn get_minimized(&self, schema: &Schema, q: &Query) -> Option<UnionQuery>;

    /// Record the minimization of `q` under `schema`.
    fn put_minimized(&self, schema: &Schema, q: &Query, result: &UnionQuery);

    /// [`get_contains`](Self::get_contains) over prepared operands. The
    /// default delegates to the plain method; canonical-keying
    /// implementations override it to read the memoized
    /// [`canonical_form`](PreparedQuery::canonical_form) and schema
    /// fingerprint instead of recomputing both per lookup.
    fn get_contains_prepared(&self, p1: &PreparedQuery, p2: &PreparedQuery) -> Option<bool> {
        self.get_contains(p1.schema().schema(), p1.query(), p2.query())
    }

    /// [`put_contains`](Self::put_contains) over prepared operands.
    fn put_contains_prepared(&self, p1: &PreparedQuery, p2: &PreparedQuery, holds: bool) {
        self.put_contains(p1.schema().schema(), p1.query(), p2.query(), holds);
    }

    /// [`get_minimized`](Self::get_minimized) over a prepared operand.
    fn get_minimized_prepared(&self, p: &PreparedQuery) -> Option<UnionQuery> {
        self.get_minimized(p.schema().schema(), p.query())
    }

    /// [`put_minimized`](Self::put_minimized) over a prepared operand.
    fn put_minimized_prepared(&self, p: &PreparedQuery, result: &UnionQuery) {
        self.put_minimized(p.schema().schema(), p.query(), result);
    }
}

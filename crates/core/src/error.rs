//! Errors for the containment/minimization algorithms.

use oocq_query::WellFormedError;
use std::error::Error;
use std::fmt;

/// Preconditions of the §3/§4 algorithms that the input failed to meet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CoreError {
    /// The query is not well-formed (§2.3) and could not be normalized.
    WellFormed(WellFormedError),
    /// A terminal conjunctive query was required (every range atom a single
    /// terminal class) but the query is not terminal.
    NotTerminal {
        /// The offending variable's name.
        var: String,
    },
    /// A positive conjunctive query was required (§4) but the query contains
    /// a negative atom.
    NotPositive,
    /// The Theorem 3.1 enumeration would have to explore more augmentation
    /// branches than the engine's guard allows. Callers at this size should
    /// restructure their queries.
    BranchLimit {
        /// How many branches the enumeration needs (a lower bound when the
        /// count saturates).
        branches: u64,
        /// The engine's guard ([`crate::MAX_BRANCHES`]).
        limit: u64,
    },
    /// One equality augmentation has so many membership candidates that its
    /// subset count does not even fit the engine's 64-bit branch masks —
    /// `2^candidates` cannot be reported as a meaningful branch count, so
    /// the candidate count itself is.
    BranchSpaceOverflow {
        /// Membership candidates `|T(S)|` of the offending augmentation.
        candidates: usize,
        /// The engine's branch guard ([`crate::MAX_BRANCHES`]), which
        /// `2^candidates` exceeds astronomically.
        limit: u64,
    },
    /// The cooperative request budget ([`crate::Budget`]) ran out before the
    /// decision completed. Recoverable: the engine stops between whole work
    /// items, no shared state is left partial, and the same inputs can be
    /// retried under a larger budget.
    Timeout {
        /// Work units charged when the budget tripped.
        work: u64,
        /// `true` when the wall-clock deadline expired, `false` when the
        /// work limit was exhausted.
        deadline: bool,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::WellFormed(e) => write!(f, "query is not well-formed: {e}"),
            CoreError::NotTerminal { var } => write!(
                f,
                "variable `{var}` does not range over a single terminal class"
            ),
            CoreError::NotPositive => {
                write!(f, "query contains a negative atom but must be positive")
            }
            CoreError::BranchLimit { branches, limit } => write!(
                f,
                "containment check needs {branches} augmentation branches, \
                 over the limit of {limit}"
            ),
            CoreError::BranchSpaceOverflow { candidates, limit } => write!(
                f,
                "containment check needs 2^{candidates} membership-subset \
                 branches in one augmentation, over the limit of {limit}"
            ),
            // The text must start with "timeout" — the service renders
            // errors verbatim and clients match on the `err timeout` prefix.
            CoreError::Timeout { work, deadline } => write!(
                f,
                "timeout: {} after {work} work units",
                if *deadline {
                    "request deadline expired"
                } else {
                    "request work limit exhausted"
                }
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::WellFormed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WellFormedError> for CoreError {
    fn from(e: WellFormedError) -> CoreError {
        CoreError::WellFormed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_well_formed_errors_with_source() {
        let e = CoreError::from(WellFormedError::MixedTerm("y.A".into()));
        assert!(e.to_string().contains("not well-formed"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn not_terminal_names_variable() {
        let e = CoreError::NotTerminal { var: "x".into() };
        assert!(e.to_string().contains("`x`"));
    }

    #[test]
    fn branch_space_overflow_reports_the_candidate_count() {
        let e = CoreError::BranchSpaceOverflow {
            candidates: 65,
            limit: 1 << 22,
        };
        let text = e.to_string();
        assert!(text.contains("2^65"), "{text}");
    }

    #[test]
    fn timeout_display_starts_with_the_protocol_keyword() {
        for deadline in [false, true] {
            let e = CoreError::Timeout { work: 42, deadline };
            let text = e.to_string();
            assert!(text.starts_with("timeout"), "{text}");
            assert!(text.contains("42"), "{text}");
        }
    }
}

//! A caching optimizer session: the production entry point.
//!
//! An OODB query processor asks the same questions repeatedly — minimize
//! this query, is this rewrite sound, is this plan's source query contained
//! in the materialized view's query. [`Optimizer`] wraps one schema and
//! memoizes minimization and containment decisions by query structure, so a
//! workload of recurring queries pays each decision once.

use crate::containment::{contains_positive, contains_terminal};
use crate::error::CoreError;
use crate::minimize::minimize_positive;
use oocq_query::{Query, UnionQuery};
use oocq_schema::Schema;
use std::collections::HashMap;

/// Cache hit/miss counters (see [`Optimizer::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptimizerStats {
    /// Minimization cache hits.
    pub minimize_hits: usize,
    /// Minimization cache misses (pipeline actually ran).
    pub minimize_misses: usize,
    /// Containment cache hits.
    pub contains_hits: usize,
    /// Containment cache misses.
    pub contains_misses: usize,
}

/// A memoizing façade over the §3/§4 decision procedures for one schema.
pub struct Optimizer<'s> {
    schema: &'s Schema,
    minimized: HashMap<Query, UnionQuery>,
    containment: HashMap<(Query, Query), bool>,
    stats: OptimizerStats,
}

impl<'s> Optimizer<'s> {
    /// Start a session for a schema.
    pub fn new(schema: &'s Schema) -> Optimizer<'s> {
        Optimizer {
            schema,
            minimized: HashMap::new(),
            containment: HashMap::new(),
            stats: OptimizerStats::default(),
        }
    }

    /// The schema this session optimizes against.
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    /// Search-space-optimal form of a positive conjunctive query
    /// ([`minimize_positive`]), memoized by query structure.
    pub fn minimize(&mut self, q: &Query) -> Result<UnionQuery, CoreError> {
        if let Some(hit) = self.minimized.get(q) {
            self.stats.minimize_hits += 1;
            return Ok(hit.clone());
        }
        self.stats.minimize_misses += 1;
        let m = minimize_positive(self.schema, q)?;
        self.minimized.insert(q.clone(), m.clone());
        Ok(m)
    }

    /// Containment of terminal conjunctive queries
    /// ([`contains_terminal`]), memoized per ordered pair.
    pub fn contains(&mut self, q1: &Query, q2: &Query) -> Result<bool, CoreError> {
        let key = (q1.clone(), q2.clone());
        if let Some(&hit) = self.containment.get(&key) {
            self.stats.contains_hits += 1;
            return Ok(hit);
        }
        self.stats.contains_misses += 1;
        let r = if q1.is_terminal(self.schema) && q2.is_terminal(self.schema) {
            contains_terminal(self.schema, q1, q2)?
        } else {
            contains_positive(self.schema, q1, q2)?
        };
        self.containment.insert(key, r);
        Ok(r)
    }

    /// Equivalence via two memoized containment checks.
    pub fn equivalent(&mut self, q1: &Query, q2: &Query) -> Result<bool, CoreError> {
        Ok(self.contains(q1, q2)? && self.contains(q2, q1)?)
    }

    /// Cache counters so far.
    pub fn stats(&self) -> OptimizerStats {
        self.stats
    }

    /// Drop all cached decisions (e.g. after swapping workloads).
    pub fn clear(&mut self) {
        self.minimized.clear();
        self.containment.clear();
        self.stats = OptimizerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;

    fn vehicle_query(s: &Schema) -> Query {
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        b.range(y, [s.class_id("Discount").unwrap()]);
        b.member(x, y, s.attr_id("VehRented").unwrap());
        b.build()
    }

    #[test]
    fn minimization_is_memoized() {
        let s = samples::vehicle_rental();
        let mut opt = Optimizer::new(&s);
        let q = vehicle_query(&s);
        let a = opt.minimize(&q).unwrap();
        let b = opt.minimize(&q).unwrap();
        assert_eq!(a, b);
        let stats = opt.stats();
        assert_eq!((stats.minimize_misses, stats.minimize_hits), (1, 1));
    }

    #[test]
    fn containment_is_memoized_per_direction() {
        let s = samples::vehicle_rental();
        let mut opt = Optimizer::new(&s);
        let q = vehicle_query(&s);
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        let loose = b.build();
        assert!(opt.contains(&q, &loose).unwrap());
        assert!(opt.contains(&q, &loose).unwrap());
        assert!(!opt.contains(&loose, &q).unwrap());
        let stats = opt.stats();
        assert_eq!((stats.contains_misses, stats.contains_hits), (2, 1));
        // Equivalence reuses both cached directions (forward is true, so
        // the backward lookup also runs — both hits).
        assert!(!opt.equivalent(&q, &loose).unwrap());
        assert_eq!(opt.stats().contains_hits, 3);
    }

    #[test]
    fn non_terminal_queries_route_through_positive_containment() {
        let s = samples::vehicle_rental();
        let mut opt = Optimizer::new(&s);
        let q = vehicle_query(&s); // x ranges over non-terminal Vehicle
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("Auto").unwrap()]);
        let autos = b.build();
        assert!(opt.contains(&q, &autos).unwrap() || opt.contains(&autos, &q).unwrap());
    }

    #[test]
    fn clear_resets_everything() {
        let s = samples::vehicle_rental();
        let mut opt = Optimizer::new(&s);
        let q = vehicle_query(&s);
        opt.minimize(&q).unwrap();
        opt.clear();
        assert_eq!(opt.stats(), OptimizerStats::default());
        opt.minimize(&q).unwrap();
        assert_eq!(opt.stats().minimize_misses, 1);
    }
}

//! A caching optimizer session: the production entry point.
//!
//! An OODB query processor asks the same questions repeatedly — minimize
//! this query, is this rewrite sound, is this plan's source query contained
//! in the materialized view's query. [`Optimizer`] wraps one schema and
//! memoizes minimization and containment decisions by query structure, so a
//! workload of recurring queries pays each decision once.
//!
//! The session is a thin façade over [`Engine`]: every miss prepares the
//! operand queries once (memoized per session) and decides through the
//! engine, so the session-local memo sits in front of the engine's real
//! [`DecisionCache`](crate::DecisionCache) — a decision made here populates
//! the shared cache, and a decision another session already made is a cache
//! hit here — and every decision honours the engine's thread configuration
//! (`OOCQ_THREADS` by default).

use crate::branch::EngineConfig;
use crate::engine::{Engine, PreparedQuery, PreparedSchema};
use crate::error::CoreError;
use oocq_query::{Query, UnionQuery};
use oocq_schema::Schema;
use std::collections::HashMap;

/// Cache hit/miss counters (see [`Optimizer::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptimizerStats {
    /// Minimization cache hits.
    pub minimize_hits: usize,
    /// Minimization cache misses (pipeline actually ran).
    pub minimize_misses: usize,
    /// Containment cache hits.
    pub contains_hits: usize,
    /// Containment cache misses.
    pub contains_misses: usize,
}

/// A memoizing façade over the §3/§4 decision procedures for one schema.
pub struct Optimizer<'s> {
    schema: &'s Schema,
    engine: Engine,
    prepared_schema: PreparedSchema,
    prepared: HashMap<Query, PreparedQuery>,
    minimized: HashMap<Query, UnionQuery>,
    containment: HashMap<(Query, Query), bool>,
    stats: OptimizerStats,
}

impl<'s> Optimizer<'s> {
    /// Start a session for a schema, configured from the environment
    /// (`OOCQ_THREADS`, no shared cache).
    pub fn new(schema: &'s Schema) -> Optimizer<'s> {
        Optimizer::with_engine(schema, Engine::from_env())
    }

    /// Start a session deciding through an explicit engine — the way to
    /// hand a session a shared [`DecisionCache`](crate::DecisionCache) or a
    /// fixed thread count.
    pub fn with_engine(schema: &'s Schema, engine: Engine) -> Optimizer<'s> {
        Optimizer {
            schema,
            prepared_schema: PreparedSchema::new(schema),
            engine,
            prepared: HashMap::new(),
            minimized: HashMap::new(),
            containment: HashMap::new(),
            stats: OptimizerStats::default(),
        }
    }

    /// The schema this session optimizes against.
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    /// The engine this session decides through.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The engine configuration this session decides under.
    pub fn config(&self) -> &EngineConfig {
        self.engine.config()
    }

    /// The prepared handle for a query, derived once per session.
    fn prepared(&mut self, q: &Query) -> PreparedQuery {
        if let Some(p) = self.prepared.get(q) {
            return p.clone();
        }
        let p = PreparedQuery::new(&self.prepared_schema, q.clone());
        self.prepared.insert(q.clone(), p.clone());
        p
    }

    /// Search-space-optimal form of a positive conjunctive query
    /// ([`minimize_positive`](crate::minimize_positive)), memoized by query
    /// structure.
    pub fn minimize(&mut self, q: &Query) -> Result<UnionQuery, CoreError> {
        if let Some(hit) = self.minimized.get(q) {
            self.stats.minimize_hits += 1;
            return Ok(hit.clone());
        }
        self.stats.minimize_misses += 1;
        let p = self.prepared(q);
        let m = self.engine.minimize(&p)?;
        self.minimized.insert(q.clone(), m.clone());
        Ok(m)
    }

    /// Containment of terminal conjunctive queries
    /// ([`contains_terminal`](crate::contains_terminal)), memoized per
    /// ordered pair.
    pub fn contains(&mut self, q1: &Query, q2: &Query) -> Result<bool, CoreError> {
        let key = (q1.clone(), q2.clone());
        if let Some(&hit) = self.containment.get(&key) {
            self.stats.contains_hits += 1;
            return Ok(hit);
        }
        self.stats.contains_misses += 1;
        let p1 = self.prepared(q1);
        let p2 = self.prepared(q2);
        let r = if q1.is_terminal(self.schema) && q2.is_terminal(self.schema) {
            self.engine.contains(&p1, &p2)?
        } else {
            self.engine.contains_positive(&p1, &p2)?
        };
        self.containment.insert(key, r);
        Ok(r)
    }

    /// Equivalence via two memoized containment checks.
    pub fn equivalent(&mut self, q1: &Query, q2: &Query) -> Result<bool, CoreError> {
        Ok(self.contains(q1, q2)? && self.contains(q2, q1)?)
    }

    /// Cache counters so far.
    pub fn stats(&self) -> OptimizerStats {
        self.stats
    }

    /// Drop all cached decisions and prepared artifacts (e.g. after
    /// swapping workloads). The engine's shared cache, if any, is not
    /// touched — it belongs to every session wired to it.
    pub fn clear(&mut self) {
        self.prepared.clear();
        self.minimized.clear();
        self.containment.clear();
        self.stats = OptimizerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;

    fn vehicle_query(s: &Schema) -> Query {
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        b.range(y, [s.class_id("Discount").unwrap()]);
        b.member(x, y, s.attr_id("VehRented").unwrap());
        b.build()
    }

    #[test]
    fn minimization_is_memoized() {
        let s = samples::vehicle_rental();
        let mut opt = Optimizer::new(&s);
        let q = vehicle_query(&s);
        let a = opt.minimize(&q).unwrap();
        let b = opt.minimize(&q).unwrap();
        assert_eq!(a, b);
        let stats = opt.stats();
        assert_eq!((stats.minimize_misses, stats.minimize_hits), (1, 1));
    }

    #[test]
    fn containment_is_memoized_per_direction() {
        let s = samples::vehicle_rental();
        let mut opt = Optimizer::new(&s);
        let q = vehicle_query(&s);
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        let loose = b.build();
        assert!(opt.contains(&q, &loose).unwrap());
        assert!(opt.contains(&q, &loose).unwrap());
        assert!(!opt.contains(&loose, &q).unwrap());
        let stats = opt.stats();
        assert_eq!((stats.contains_misses, stats.contains_hits), (2, 1));
        // Equivalence reuses both cached directions (forward is true, so
        // the backward lookup also runs — both hits).
        assert!(!opt.equivalent(&q, &loose).unwrap());
        assert_eq!(opt.stats().contains_hits, 3);
    }

    #[test]
    fn non_terminal_queries_route_through_positive_containment() {
        let s = samples::vehicle_rental();
        let mut opt = Optimizer::new(&s);
        let q = vehicle_query(&s); // x ranges over non-terminal Vehicle
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("Auto").unwrap()]);
        let autos = b.build();
        assert!(opt.contains(&q, &autos).unwrap() || opt.contains(&autos, &q).unwrap());
    }

    #[test]
    fn clear_resets_everything() {
        let s = samples::vehicle_rental();
        let mut opt = Optimizer::new(&s);
        let q = vehicle_query(&s);
        opt.minimize(&q).unwrap();
        opt.clear();
        assert_eq!(opt.stats(), OptimizerStats::default());
        opt.minimize(&q).unwrap();
        assert_eq!(opt.stats().minimize_misses, 1);
    }

    /// A decision cache that counts traffic: enough to observe an
    /// `Optimizer` session feeding and hitting the shared cache.
    struct SharedCache {
        contains: std::sync::Mutex<HashMap<(String, String), bool>>,
        minimized: std::sync::Mutex<HashMap<String, UnionQuery>>,
        contains_puts: std::sync::atomic::AtomicUsize,
        contains_hits: std::sync::atomic::AtomicUsize,
        minimize_puts: std::sync::atomic::AtomicUsize,
        minimize_hits: std::sync::atomic::AtomicUsize,
    }

    impl SharedCache {
        fn new() -> Self {
            SharedCache {
                contains: std::sync::Mutex::new(HashMap::new()),
                minimized: std::sync::Mutex::new(HashMap::new()),
                contains_puts: 0.into(),
                contains_hits: 0.into(),
                minimize_puts: 0.into(),
                minimize_hits: 0.into(),
            }
        }
    }

    impl crate::DecisionCache for SharedCache {
        fn get_contains(&self, schema: &Schema, q1: &Query, q2: &Query) -> Option<bool> {
            let key = (
                q1.display(schema).to_string(),
                q2.display(schema).to_string(),
            );
            let hit = self.contains.lock().unwrap().get(&key).copied();
            if hit.is_some() {
                self.contains_hits
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            hit
        }
        fn put_contains(&self, schema: &Schema, q1: &Query, q2: &Query, holds: bool) {
            self.contains_puts
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let key = (
                q1.display(schema).to_string(),
                q2.display(schema).to_string(),
            );
            self.contains.lock().unwrap().insert(key, holds);
        }
        fn get_minimized(&self, schema: &Schema, q: &Query) -> Option<UnionQuery> {
            let hit = self
                .minimized
                .lock()
                .unwrap()
                .get(&q.display(schema).to_string())
                .cloned();
            if hit.is_some() {
                self.minimize_hits
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            hit
        }
        fn put_minimized(&self, schema: &Schema, q: &Query, result: &UnionQuery) {
            self.minimize_puts
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.minimized
                .lock()
                .unwrap()
                .insert(q.display(schema).to_string(), result.clone());
        }
    }

    #[test]
    fn sessions_share_the_engine_decision_cache() {
        use std::sync::atomic::Ordering::Relaxed;
        let s = samples::vehicle_rental();
        let cache = std::sync::Arc::new(SharedCache::new());
        let q = vehicle_query(&s);
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        let loose = b.build();

        // Session 1 decides cold and populates the shared cache.
        let engine1 = Engine::serial().with_cache(cache.clone());
        let mut opt1 = Optimizer::with_engine(&s, engine1);
        let held = opt1.contains(&q, &loose).unwrap();
        let minimized = opt1.minimize(&q).unwrap();
        assert_eq!(cache.contains_hits.load(Relaxed), 0);
        assert!(cache.contains_puts.load(Relaxed) >= 1);
        assert_eq!(cache.minimize_puts.load(Relaxed), 1);

        // Session 2, same cache: its misses are answered by the cache, not
        // recomputed — and the answers match session 1's.
        let engine2 = Engine::serial().with_cache(cache.clone());
        let mut opt2 = Optimizer::with_engine(&s, engine2);
        assert_eq!(opt2.contains(&q, &loose).unwrap(), held);
        assert_eq!(opt2.minimize(&q).unwrap(), minimized);
        assert!(cache.contains_hits.load(Relaxed) >= 1);
        assert_eq!(cache.minimize_hits.load(Relaxed), 1);
        // Session 2's own memo recorded misses (the shared cache is below
        // the session memo, not inside it).
        assert_eq!(opt2.stats().contains_misses, 1);
        assert_eq!(opt2.stats().minimize_misses, 1);
    }

    #[test]
    fn sessions_honor_the_engine_thread_config() {
        // A parallel engine decides identically to the serial reference.
        let s = samples::vehicle_rental();
        let q = vehicle_query(&s);
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        let loose = b.build();

        let mut serial = Optimizer::with_engine(&s, Engine::serial());
        let mut parallel = Optimizer::with_engine(
            &s,
            Engine::new(EngineConfig {
                threads: 8,
                min_parallel_branches: 1,
                ..EngineConfig::serial()
            }),
        );
        assert_eq!(parallel.config().threads, 8);
        for (a, b) in [(&q, &loose), (&loose, &q), (&q, &q)] {
            assert_eq!(
                serial.contains(a, b).unwrap(),
                parallel.contains(a, b).unwrap()
            );
        }
        assert_eq!(serial.minimize(&q).unwrap(), parallel.minimize(&q).unwrap());
    }
}

//! Satisfiability of terminal conjunctive queries (§2.5, Theorem 2.2).
//!
//! The decision procedure of Theorem 2.2 appears in Chan's unavailable
//! technical report [10]; this module reconstructs it from the paper's
//! definitions and examples (the reconstruction is validated against every
//! satisfiability verdict the paper states — see DESIGN.md §4).
//!
//! Given a well-formed terminal conjunctive query `Q` with equality graph
//! `E(Q)`, `Q` is satisfiable iff all of the following hold:
//!
//! 1. **Class coherence**: within one equivalence class of object terms, all
//!    variables range over the same terminal class (terminal classes
//!    partition the objects, so objects of distinct terminal classes are
//!    never identical).
//! 2. **Object typing**: every object term `x.A` is declared on `x`'s
//!    terminal class with an object type `D`, and the terminal class of the
//!    variables in `[x.A]` is a terminal descendant of `D`.
//! 3. **Set typing**: every set term `x.A` is declared on `x`'s terminal
//!    class with a set type.
//! 4. **Membership typing**: for every atom `x ∈ t.A` with `σ(Eₜ).A = {D}`,
//!    the terminal class of `x` is a terminal descendant of `D`
//!    (this is what kills `Q₃`/`Q₆` of Example 4.1).
//! 5. **Inequality coherence**: no inequality atom joins two terms of one
//!    equivalence class.
//! 6. **Non-membership coherence**: no atom `x ∉ y.A` coexists with a
//!    derivable membership `Q ⊢ x ∈ y.A`.
//! 7. **Non-range coherence**: no atom `x ∉ C₁ ∨ … ∨ Cₙ` where `x`'s
//!    terminal class descends from (or is) some `Cᵢ`.
//!
//! Each failed check pinpoints a reason ([`UnsatReason`]), which the
//! experiment harness prints when replaying Example 4.1.

use crate::error::CoreError;
use oocq_query::{Atom, Query, QueryAnalysis, Term, VarId};
use oocq_schema::{AttrId, AttrType, ClassId, Schema};
use std::collections::HashSet;

/// Why a terminal conjunctive query is unsatisfiable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UnsatReason {
    /// Two equated variables range over distinct terminal classes.
    ClassConflict {
        /// One variable (name).
        a: String,
        /// The other variable (name).
        b: String,
    },
    /// A term `x.A` is used but `x`'s class has no attribute `A`.
    MissingAttribute {
        /// Variable name.
        var: String,
        /// Attribute name.
        attr: String,
    },
    /// A term `x.A` is used as an object but `A` is set-typed, or used as a
    /// set but `A` is object-typed.
    KindConflict {
        /// Variable name.
        var: String,
        /// Attribute name.
        attr: String,
    },
    /// An equated variable's class is not a terminal descendant of an
    /// attribute term's declared class.
    ObjectTypeConflict {
        /// Variable name whose class conflicts.
        var: String,
        /// The attribute term, rendered.
        term: String,
    },
    /// A membership atom's member class is not a terminal descendant of the
    /// set attribute's member class.
    MemberTypeConflict {
        /// Member variable name.
        var: String,
        /// The set term, rendered.
        term: String,
    },
    /// An inequality atom joins two terms that `E(Q)` proves equal.
    InequalityConflict {
        /// The atom, rendered.
        atom: String,
    },
    /// A non-membership atom contradicts a derivable membership.
    NonMembershipConflict {
        /// The atom, rendered.
        atom: String,
    },
    /// A non-range atom excludes the variable's own terminal class.
    NonRangeConflict {
        /// Variable name.
        var: String,
    },
    /// Every terminal class the variable's range admits is dead under a
    /// declared disjointness constraint (raised only by constraint
    /// theories, never by the plain Theorem 2.2 checks).
    DeadRange {
        /// Variable name.
        var: String,
    },
    /// Every terminal expansion branch of the theory-compiled query is
    /// unsatisfiable under the schema and its constraints (raised only by
    /// constraint theories).
    NoLegalBranch {
        /// The query's free variable, to identify it in reports.
        var: String,
    },
}

impl std::fmt::Display for UnsatReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnsatReason::ClassConflict { a, b } => {
                write!(
                    f,
                    "`{a}` and `{b}` are equated but range over distinct terminal classes"
                )
            }
            UnsatReason::MissingAttribute { var, attr } => {
                write!(f, "`{var}`'s class has no attribute `{attr}`")
            }
            UnsatReason::KindConflict { var, attr } => {
                write!(
                    f,
                    "`{var}.{attr}` is used with the wrong kind (object vs set)"
                )
            }
            UnsatReason::ObjectTypeConflict { var, term } => {
                write!(f, "`{var}`'s class cannot be the value of `{term}`")
            }
            UnsatReason::MemberTypeConflict { var, term } => {
                write!(f, "`{var}`'s class cannot be a member of `{term}`")
            }
            UnsatReason::InequalityConflict { atom } => {
                write!(f, "inequality `{atom}` joins provably equal terms")
            }
            UnsatReason::NonMembershipConflict { atom } => {
                write!(
                    f,
                    "non-membership `{atom}` contradicts a derived membership"
                )
            }
            UnsatReason::NonRangeConflict { var } => {
                write!(f, "non-range atom excludes `{var}`'s own terminal class")
            }
            UnsatReason::DeadRange { var } => {
                write!(
                    f,
                    "every terminal class `{var}` could belong to is dead under a \
                     declared disjointness constraint"
                )
            }
            UnsatReason::NoLegalBranch { var } => {
                write!(
                    f,
                    "no terminal expansion branch of `{var}`'s query is satisfiable \
                     under the declared constraints"
                )
            }
        }
    }
}

/// Verdict of the satisfiability check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Satisfiability {
    /// Some legal state gives the query a non-empty answer.
    Satisfiable,
    /// No legal state does, for the stated reason.
    Unsatisfiable(UnsatReason),
}

impl Satisfiability {
    /// `true` for [`Satisfiability::Satisfiable`].
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, Satisfiability::Satisfiable)
    }
}

/// The terminal class of every variable of a terminal query.
///
/// Errors with [`CoreError::NotTerminal`] when some variable lacks a
/// single-terminal-class range atom.
pub fn var_classes(schema: &Schema, q: &Query) -> Result<Vec<ClassId>, CoreError> {
    q.vars()
        .map(|v| match q.range_of(v) {
            Some([c]) if schema.is_terminal(*c) => Ok(*c),
            _ => Err(CoreError::NotTerminal {
                var: q.var_name(v).to_owned(),
            }),
        })
        .collect()
}

fn render_attr_term(schema: &Schema, q: &Query, v: VarId, a: oocq_schema::AttrId) -> String {
    format!("{}.{}", q.var_name(v), schema.attr_name(a))
}

/// Decide satisfiability of a well-formed terminal conjunctive query.
///
/// The caller is responsible for well-formedness (use
/// [`oocq_query::check_well_formed`] / [`oocq_query::normalize`] first);
/// terminality is checked here because the procedure depends on it.
pub fn satisfiability(schema: &Schema, q: &Query) -> Result<Satisfiability, CoreError> {
    let classes = var_classes(schema, q)?;
    let analysis = QueryAnalysis::of(q);
    Ok(check(schema, q, &classes, &analysis))
}

/// Convenience wrapper: is the query satisfiable?
///
/// # Examples
///
/// Equating objects from distinct terminal classes is unsatisfiable —
/// terminal classes partition the objects:
///
/// ```
/// use oocq_core::is_satisfiable;
/// use oocq_query::QueryBuilder;
/// use oocq_schema::samples;
///
/// let s = samples::unrelated_subtypes();
/// let mut b = QueryBuilder::new("x");
/// let x = b.free();
/// let y = b.var("y");
/// b.range(x, [s.class_id("T1").unwrap()]);
/// b.range(y, [s.class_id("T2").unwrap()]);
/// b.eq_vars(x, y);
/// assert!(!is_satisfiable(&s, &b.build()).unwrap());
/// ```
pub fn is_satisfiable(schema: &Schema, q: &Query) -> Result<bool, CoreError> {
    Ok(satisfiability(schema, q)?.is_satisfiable())
}

/// The core checks, callable with a precomputed analysis (used by the
/// containment search, which re-checks many augmentations of one query).
pub(crate) fn check(
    schema: &Schema,
    q: &Query,
    classes: &[ClassId],
    analysis: &QueryAnalysis,
) -> Satisfiability {
    use Satisfiability::Unsatisfiable as U;
    let graph = analysis.graph();

    // Checks 1–3: walk each equivalence class once.
    for members in graph.classes() {
        let is_object = analysis.is_object_term(members[0]);
        // 1. Class coherence among variables.
        let mut first_var: Option<VarId> = None;
        for &m in members {
            if let Term::Var(v) = m {
                match first_var {
                    None => first_var = Some(v),
                    Some(w) => {
                        if classes[v.index()] != classes[w.index()] {
                            return U(UnsatReason::ClassConflict {
                                a: q.var_name(w).to_owned(),
                                b: q.var_name(v).to_owned(),
                            });
                        }
                    }
                }
            }
        }
        // 2–3. Typing of attribute terms.
        for &m in members {
            let Term::Attr(v, a) = m else { continue };
            let Some(decl) = schema.attr_type(classes[v.index()], a) else {
                return U(UnsatReason::MissingAttribute {
                    var: q.var_name(v).to_owned(),
                    attr: schema.attr_name(a).to_owned(),
                });
            };
            match (is_object, decl) {
                (true, AttrType::Object(d)) => {
                    // The class of the equated variables must be able to be
                    // the attribute's value.
                    if let Some(w) = first_var {
                        if !schema.terminal_descendants(d).contains(&classes[w.index()]) {
                            return U(UnsatReason::ObjectTypeConflict {
                                var: q.var_name(w).to_owned(),
                                term: render_attr_term(schema, q, v, a),
                            });
                        }
                    }
                }
                (false, AttrType::SetOf(_)) => {}
                _ => {
                    return U(UnsatReason::KindConflict {
                        var: q.var_name(v).to_owned(),
                        attr: schema.attr_name(a).to_owned(),
                    })
                }
            }
        }
    }

    // Check 6 compares each non-membership against the derived memberships;
    // index those once, on first use, instead of rescanning the atom list
    // per non-membership (the containment search calls this on thousands of
    // augmented queries).
    let mut member_keys: Option<HashSet<(usize, usize, AttrId)>> = None;
    let var_root = |v: VarId| {
        graph
            .class_id(Term::Var(v))
            .expect("variable is always a node")
    };

    // Checks 4–7: walk the atoms.
    for atom in q.atoms() {
        match atom {
            Atom::Member(x, y, a) => {
                // Set typing of y.A was handled above (it is a set term);
                // here: member class compatibility.
                if let Some(AttrType::SetOf(d)) = schema.attr_type(classes[y.index()], *a) {
                    if !schema.terminal_descendants(d).contains(&classes[x.index()]) {
                        return U(UnsatReason::MemberTypeConflict {
                            var: q.var_name(*x).to_owned(),
                            term: render_attr_term(schema, q, *y, *a),
                        });
                    }
                }
            }
            Atom::Neq(s, t) => {
                if graph.same(*s, *t) {
                    return U(UnsatReason::InequalityConflict {
                        atom: format!("{} != …", q.var_name(s.var())),
                    });
                }
            }
            Atom::NonMember(x, y, a) => {
                // Contradiction with a derived membership: some atom
                // `s ∈ t.A` with s ∈ [x] and t ∈ [y].
                let keys = member_keys.get_or_insert_with(|| {
                    q.atoms()
                        .iter()
                        .filter_map(|other| match other {
                            Atom::Member(s, t, b) => Some((var_root(*s), var_root(*t), *b)),
                            _ => None,
                        })
                        .collect()
                });
                if keys.contains(&(var_root(*x), var_root(*y), *a)) {
                    return U(UnsatReason::NonMembershipConflict {
                        atom: format!(
                            "{} not in {}",
                            q.var_name(*x),
                            render_attr_term(schema, q, *y, *a)
                        ),
                    });
                }
            }
            Atom::NonRange(v, cs) => {
                if cs
                    .iter()
                    .any(|&c| schema.is_subclass(classes[v.index()], c))
                {
                    return U(UnsatReason::NonRangeConflict {
                        var: q.var_name(*v).to_owned(),
                    });
                }
            }
            Atom::Range(..) | Atom::Eq(..) => {}
        }
    }
    Satisfiability::Satisfiable
}

/// Remove non-range atoms from a satisfiable terminal query (§2.5: they can
/// be removed without changing the answer, and the rest of §3 assumes they
/// are gone).
pub fn strip_non_range(q: &Query) -> Query {
    let retained: Vec<Atom> = q
        .atoms()
        .iter()
        .filter(|a| !matches!(a, Atom::NonRange(..)))
        .cloned()
        .collect();
    rebuild_with_atoms(q, retained)
}

fn rebuild_with_atoms(q: &Query, atoms: Vec<Atom>) -> Query {
    let mut b = oocq_query::QueryBuilder::new(q.var_name(q.free_var()));
    let mut ids = Vec::with_capacity(q.var_count());
    for v in q.vars() {
        if v == q.free_var() {
            ids.push(b.free());
        } else {
            ids.push(b.var(q.var_name(v)));
        }
    }
    for a in atoms {
        b.atom(a.map_vars(|v| ids[v.index()]));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;

    /// Example 4.1's six expanded subqueries, parameterized by the terminal
    /// classes of x and y.
    fn example_41_subquery(s: &Schema, xc: &str, yc: &str) -> Query {
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("s");
        b.range(x, [s.class_id(xc).unwrap()]);
        b.range(y, [s.class_id(yc).unwrap()]);
        b.range(z, [s.class_id("H").unwrap()]);
        b.eq_attr(y, x, s.attr_id("B").unwrap());
        b.member(y, x, s.attr_id("A").unwrap());
        b.member(z, x, s.attr_id("A").unwrap());
        b.build()
    }

    #[test]
    fn example_41_satisfiability_verdicts() {
        // Q₁/Q₄ (x ∈ T₁): unsat — T₁ lacks B. Q₃/Q₆ (x ∈ T₃): unsat —
        // T₃.A : {I} cannot contain the H-object s. Q₂/Q₅ (x ∈ T₂): sat.
        let s = samples::n1_partition();
        for (xc, yc, want) in [
            ("T1", "H", false),
            ("T2", "H", true),
            ("T3", "H", false),
            ("T1", "I", false),
            ("T2", "I", true),
            ("T3", "I", false),
        ] {
            let q = example_41_subquery(&s, xc, yc);
            assert_eq!(
                is_satisfiable(&s, &q).unwrap(),
                want,
                "x in {xc}, y in {yc}"
            );
        }
    }

    #[test]
    fn example_41_reasons() {
        let s = samples::n1_partition();
        let q1 = example_41_subquery(&s, "T1", "H");
        assert!(matches!(
            satisfiability(&s, &q1).unwrap(),
            Satisfiability::Unsatisfiable(UnsatReason::MissingAttribute { .. })
        ));
        let q3 = example_41_subquery(&s, "T3", "H");
        assert!(matches!(
            satisfiability(&s, &q3).unwrap(),
            Satisfiability::Unsatisfiable(UnsatReason::MemberTypeConflict { .. })
        ));
    }

    #[test]
    fn class_conflict_between_equated_variables() {
        let s = samples::unrelated_subtypes();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("T1").unwrap()]);
        b.range(y, [s.class_id("T2").unwrap()]);
        b.eq_vars(x, y);
        assert!(matches!(
            satisfiability(&s, &b.build()).unwrap(),
            Satisfiability::Unsatisfiable(UnsatReason::ClassConflict { .. })
        ));
    }

    #[test]
    fn example_13_implied_inequality_via_congruence() {
        // x = y forces x.A = y.A, hence s = t across T1/T2: unsat.
        let s = samples::unrelated_subtypes();
        let c = s.class_id("C").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let sv = b.var("s");
        let tv = b.var("t");
        b.range(x, [c]).range(y, [c]);
        b.range(sv, [s.class_id("T1").unwrap()]);
        b.range(tv, [s.class_id("T2").unwrap()]);
        b.eq_attr(sv, x, a);
        b.eq_attr(tv, y, a);
        let base = b.build();
        assert!(is_satisfiable(&s, &base).unwrap());
        let merged = base.with_extra_atoms([Atom::Eq(Term::Var(x), Term::Var(y))]);
        assert!(!is_satisfiable(&s, &merged).unwrap());
    }

    #[test]
    fn object_type_conflict_detected() {
        // z = y.A with z ∈ C but type(C.A) = D: z's class must descend D.
        let s = samples::example_31();
        let c = s.class_id("C").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("z");
        let z = b.free();
        let y = b.var("y");
        b.range(z, [c]).range(y, [c]);
        b.eq_attr(z, y, a);
        assert!(matches!(
            satisfiability(&s, &b.build()).unwrap(),
            Satisfiability::Unsatisfiable(UnsatReason::ObjectTypeConflict { .. })
        ));
    }

    #[test]
    fn kind_conflict_object_use_of_set_attribute() {
        // z = y.B where B is set-valued.
        let s = samples::example_31();
        let c = s.class_id("C").unwrap();
        let d = s.class_id("D").unwrap();
        let bb = s.attr_id("B").unwrap();
        let mut b = QueryBuilder::new("z");
        let z = b.free();
        let y = b.var("y");
        b.range(z, [d]).range(y, [c]);
        b.eq_attr(z, y, bb);
        assert!(matches!(
            satisfiability(&s, &b.build()).unwrap(),
            Satisfiability::Unsatisfiable(UnsatReason::KindConflict { .. })
        ));
    }

    #[test]
    fn kind_conflict_set_use_of_object_attribute() {
        // z ∈ y.A where A is object-valued.
        let s = samples::example_31();
        let c = s.class_id("C").unwrap();
        let d = s.class_id("D").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("z");
        let z = b.free();
        let y = b.var("y");
        b.range(z, [d]).range(y, [c]);
        b.member(z, y, a);
        assert!(matches!(
            satisfiability(&s, &b.build()).unwrap(),
            Satisfiability::Unsatisfiable(UnsatReason::KindConflict { .. })
        ));
    }

    #[test]
    fn inequality_against_equated_terms_unsat() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [c]).range(y, [c]).range(z, [c]);
        b.eq_vars(x, y).eq_vars(y, z);
        b.neq_vars(x, z);
        assert!(matches!(
            satisfiability(&s, &b.build()).unwrap(),
            Satisfiability::Unsatisfiable(UnsatReason::InequalityConflict { .. })
        ));
    }

    #[test]
    fn plain_inequalities_are_satisfiable() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).neq_vars(x, y);
        assert!(is_satisfiable(&s, &b.build()).unwrap());
    }

    #[test]
    fn non_membership_contradiction_via_equalities() {
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let x2 = b.var("x2");
        let y = b.var("y");
        let y2 = b.var("y2");
        b.range(x, [t1])
            .range(x2, [t1])
            .range(y, [t2])
            .range(y2, [t2]);
        b.eq_vars(x, x2).eq_vars(y, y2);
        b.member(x, y, a);
        b.non_member(x2, y2, a);
        assert!(matches!(
            satisfiability(&s, &b.build()).unwrap(),
            Satisfiability::Unsatisfiable(UnsatReason::NonMembershipConflict { .. })
        ));
    }

    #[test]
    fn benign_non_membership_is_satisfiable() {
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [t1]).range(y, [t2]);
        b.non_member(x, y, a);
        assert!(is_satisfiable(&s, &b.build()).unwrap());
    }

    #[test]
    fn non_range_conflict_detected_and_stripped() {
        let s = samples::vehicle_rental();
        let auto = s.class_id("Auto").unwrap();
        let vehicle = s.class_id("Vehicle").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [auto]);
        b.non_range(x, [vehicle]); // Auto ≺ Vehicle: conflict.
        assert!(matches!(
            satisfiability(&s, &b.build()).unwrap(),
            Satisfiability::Unsatisfiable(UnsatReason::NonRangeConflict { .. })
        ));

        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [auto]);
        b.non_range(x, [s.class_id("Client").unwrap()]); // harmless
        let q = b.build();
        assert!(is_satisfiable(&s, &q).unwrap());
        let stripped = strip_non_range(&q);
        assert_eq!(stripped.atoms().len(), 1);
        assert_eq!(stripped.var_count(), 1);
    }

    #[test]
    fn non_terminal_query_is_rejected() {
        let s = samples::vehicle_rental();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        assert!(matches!(
            satisfiability(&s, &b.build()),
            Err(CoreError::NotTerminal { .. })
        ));
    }
}

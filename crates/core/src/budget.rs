//! The cooperative request budget threaded through the §3/§4 hot loops.
//!
//! Theorem 3.1 enumerates branches `(S, W)` whose count is worst-case
//! exponential in the left query, and the §4 pipeline runs O(n²) pairwise
//! containment checks over expansions that are themselves exponential in
//! the variable count. A [`Budget`] lets a caller — typically a serving
//! layer with a latency target — bound that work cooperatively: the hot
//! loops charge one unit per branch / subquery / pair, and the first charge
//! past the limit (or past the wall-clock deadline) surfaces as the
//! recoverable [`CoreError::Timeout`]. Nothing is left in a partial state:
//! every charge point sits between whole work items, so the same inputs can
//! be retried under a larger budget.
//!
//! An unlimited budget (the default on every [`EngineConfig`]) holds no
//! allocation and every charge is a no-op, so unbudgeted callers pay
//! nothing and — crucially for the service's determinism contract — a
//! budget that never trips changes no decision value.
//!
//! [`EngineConfig`]: crate::EngineConfig

use crate::error::CoreError;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Budget state: live, tripped by the work limit, tripped by the deadline.
const LIVE: u8 = 0;
const WORK_EXHAUSTED: u8 = 1;
const DEADLINE_EXPIRED: u8 = 2;

#[derive(Debug)]
struct BudgetInner {
    /// Wall-clock cutoff, if any.
    deadline: Option<Instant>,
    /// Work-unit cutoff (`u64::MAX` = unbounded).
    limit: u64,
    /// Work units charged so far, shared across every clone and thread.
    work: AtomicU64,
    /// Sticky trip state: once a charge fails, every later charge fails the
    /// same way, so parallel workers all stop on the first exhaustion.
    state: AtomicU8,
}

/// A shared, thread-safe work/deadline budget for one decision request.
///
/// Cloning shares the counter (`Arc` inside), so a configuration cloned
/// into helper configs — e.g. [`EngineConfig::serial_inner`] — keeps
/// charging the same budget. [`Budget::unlimited`] (the [`Default`]) is a
/// free no-op.
///
/// [`EngineConfig::serial_inner`]: crate::EngineConfig::serial_inner
#[derive(Clone, Debug, Default)]
pub struct Budget {
    inner: Option<Arc<BudgetInner>>,
}

impl Budget {
    /// The no-op budget: never trips, allocates nothing.
    pub fn unlimited() -> Budget {
        Budget { inner: None }
    }

    /// A budget with an optional wall-clock deadline (measured from now)
    /// and an optional work-unit limit. Both `None` yields
    /// [`Budget::unlimited`].
    pub fn new(deadline: Option<Duration>, limit: Option<u64>) -> Budget {
        if deadline.is_none() && limit.is_none() {
            return Budget::unlimited();
        }
        Budget {
            inner: Some(Arc::new(BudgetInner {
                deadline: deadline.map(|d| Instant::now() + d),
                limit: limit.unwrap_or(u64::MAX),
                work: AtomicU64::new(0),
                state: AtomicU8::new(LIVE),
            })),
        }
    }

    /// A work-unit-only budget (deterministic: no clock involved).
    pub fn with_limit(limit: u64) -> Budget {
        Budget::new(None, Some(limit))
    }

    /// A deadline-only budget, measured from now.
    pub fn with_deadline(deadline: Duration) -> Budget {
        Budget::new(Some(deadline), None)
    }

    /// Is this the no-op budget?
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// Work units charged so far (0 for the unlimited budget).
    pub fn work(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.work.load(Ordering::Relaxed))
    }

    /// Charge `units` of work. Fails with [`CoreError::Timeout`] once the
    /// accumulated work exceeds the limit or the deadline has passed; after
    /// the first failure every later charge fails too (the trip is sticky),
    /// so concurrent workers sharing the budget all wind down.
    pub fn charge(&self, units: u64) -> Result<(), CoreError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let work = inner
            .work
            .fetch_add(units, Ordering::Relaxed)
            .saturating_add(units);
        match inner.state.load(Ordering::Relaxed) {
            WORK_EXHAUSTED => {
                return Err(CoreError::Timeout {
                    work,
                    deadline: false,
                })
            }
            DEADLINE_EXPIRED => {
                return Err(CoreError::Timeout {
                    work,
                    deadline: true,
                })
            }
            _ => {}
        }
        if work > inner.limit {
            inner.state.store(WORK_EXHAUSTED, Ordering::Relaxed);
            return Err(CoreError::Timeout {
                work,
                deadline: false,
            });
        }
        if inner.deadline.is_some_and(|d| Instant::now() >= d) {
            inner.state.store(DEADLINE_EXPIRED, Ordering::Relaxed);
            return Err(CoreError::Timeout {
                work,
                deadline: true,
            });
        }
        Ok(())
    }

    /// Check the budget without consuming any work (a zero-unit charge).
    pub fn check(&self) -> Result<(), CoreError> {
        self.charge(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips_and_counts_nothing() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..10_000 {
            b.charge(u64::MAX).unwrap();
        }
        assert_eq!(b.work(), 0);
        assert!(Budget::new(None, None).is_unlimited());
        assert!(Budget::default().is_unlimited());
    }

    #[test]
    fn work_limit_trips_at_the_boundary_and_stays_tripped() {
        let b = Budget::with_limit(3);
        b.charge(1).unwrap();
        b.charge(2).unwrap(); // exactly at the limit: still fine
        let e = b.charge(1).unwrap_err();
        assert!(
            matches!(
                e,
                CoreError::Timeout {
                    work: 4,
                    deadline: false
                }
            ),
            "{e:?}"
        );
        // Sticky: even a zero-unit check fails now.
        assert!(matches!(
            b.check(),
            Err(CoreError::Timeout {
                deadline: false,
                ..
            })
        ));
    }

    #[test]
    fn clones_share_one_counter() {
        let b = Budget::with_limit(2);
        let c = b.clone();
        b.charge(1).unwrap();
        c.charge(1).unwrap();
        assert!(b.charge(1).is_err());
        assert!(c.check().is_err());
        assert_eq!(b.work(), c.work());
    }

    #[test]
    fn expired_deadline_trips_as_deadline() {
        let b = Budget::with_deadline(Duration::ZERO);
        let e = b.charge(1).unwrap_err();
        assert!(
            matches!(e, CoreError::Timeout { deadline: true, .. }),
            "{e:?}"
        );
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = Budget::new(Some(Duration::from_secs(3600)), Some(1000));
        for _ in 0..100 {
            b.charge(1).unwrap();
        }
        assert_eq!(b.work(), 100);
    }
}

//! Terminal expansion (Proposition 2.1, §2.4).
//!
//! Under the Terminal Class Partitioning Assumption, a variable ranging over
//! `C₁ ∨ … ∨ Cₙ` ranges over the disjoint union of the terminal descendants
//! of the `Cᵢ`. A conjunctive query is therefore equivalent to the union of
//! terminal conjunctive queries obtained by choosing, for every variable,
//! one terminal descendant of its range disjunction.

use crate::branch::{par_prefix, EngineConfig};
use crate::engine::PreparedSchema;
use crate::error::CoreError;
use crate::satisfiability::{self, Satisfiability};
use oocq_query::{Atom, Query, QueryAnalysis, QueryBuilder, UnionQuery};
use oocq_schema::{ClassId, Schema};

/// Expansions below this size are filtered serially even under a parallel
/// [`EngineConfig`] — a handful of satisfiability checks is cheaper than a
/// thread spawn.
const MIN_PARALLEL_SUBQUERIES: usize = 32;

/// The terminal choices for each variable: the deduplicated union of the
/// terminal descendants of its range classes, in schema order. A prepared
/// schema serves the per-class closures from its eager tables instead of
/// re-sorting them per call; the lists are identical either way.
fn choices(
    schema: &Schema,
    q: &Query,
    prepared: Option<&PreparedSchema>,
) -> Result<Vec<Vec<ClassId>>, CoreError> {
    q.vars()
        .map(|v| {
            let Some(cs) = q.range_of(v) else {
                return Err(CoreError::WellFormed(
                    oocq_query::WellFormedError::RangeCount {
                        var: q.var_name(v).to_owned(),
                        count: 0,
                    },
                ));
            };
            if let Some(ps) = prepared {
                return Ok(ps.terminal_choices(cs));
            }
            let mut out: Vec<ClassId> = cs
                .iter()
                .flat_map(|&c| schema.terminal_descendants(c))
                .copied()
                .collect();
            out.sort();
            out.dedup();
            Ok(out)
        })
        .collect()
}

/// Walk the choice odometer in lexicographic order, handing each complete
/// per-variable choice vector to `f` until `f` returns `false` (the walk is
/// worst-case exponential, so budgeted callers need a way out). Assumes no
/// choice list is empty.
fn for_each_choice(choice_lists: &[Vec<ClassId>], mut f: impl FnMut(&[ClassId]) -> bool) {
    let n = choice_lists.len();
    let mut cursor = vec![0usize; n];
    let mut chosen: Vec<ClassId> = cursor
        .iter()
        .enumerate()
        .map(|(v, &i)| choice_lists[v][i])
        .collect();
    loop {
        if !f(&chosen) {
            return;
        }
        // Odometer increment.
        let mut k = n;
        loop {
            if k == 0 {
                return;
            }
            k -= 1;
            cursor[k] += 1;
            if cursor[k] < choice_lists[k].len() {
                chosen[k] = choice_lists[k][cursor[k]];
                break;
            }
            cursor[k] = 0;
            chosen[k] = choice_lists[k][0];
        }
    }
}

/// How many terminal subqueries [`expand`] will produce (the product of the
/// per-variable choice counts). Saturates at `usize::MAX`.
pub fn expansion_size(schema: &Schema, q: &Query) -> Result<usize, CoreError> {
    Ok(choices(schema, q, None)?
        .iter()
        .fold(1usize, |acc, c| acc.saturating_mul(c.len())))
}

/// Build one terminal subquery: the original with every range atom replaced
/// by the chosen single terminal class.
fn instantiate(q: &Query, chosen: &[ClassId]) -> Query {
    let mut b = QueryBuilder::new(q.var_name(q.free_var()));
    let mut ids = Vec::with_capacity(q.var_count());
    for v in q.vars() {
        if v == q.free_var() {
            ids.push(b.free());
        } else {
            ids.push(b.var(q.var_name(v)));
        }
    }
    let mut seen_range = vec![false; q.var_count()];
    for atom in q.atoms() {
        match atom {
            Atom::Range(v, _) => {
                // Well-formed queries have one range atom per variable; be
                // robust to duplicates by emitting the choice only once.
                if !seen_range[v.index()] {
                    seen_range[v.index()] = true;
                    b.range(ids[v.index()], [chosen[v.index()]]);
                }
            }
            other => {
                b.atom(other.map_vars(|v| ids[v.index()]));
            }
        }
    }
    b.build()
}

/// Proposition 2.1: convert a conjunctive query into an equivalent union of
/// terminal conjunctive queries.
///
/// Subqueries are produced in lexicographic order of the per-variable
/// terminal choices. No satisfiability filtering is applied — see
/// [`expand_satisfiable`].
pub fn expand(schema: &Schema, q: &Query) -> Result<UnionQuery, CoreError> {
    let choice_lists = choices(schema, q, None)?;
    let mut out = UnionQuery::empty();
    if choice_lists.iter().any(Vec::is_empty) {
        // Some variable ranges over a class with no terminal descendant
        // (impossible in a consistent schema, but be defensive): the query
        // is unsatisfiable and expands to the empty union.
        return Ok(out);
    }
    for_each_choice(&choice_lists, |chosen| {
        out.push(instantiate(q, chosen));
        true
    });
    Ok(out)
}

/// Expand and keep only the satisfiable subqueries, with their non-range
/// atoms stripped (§2.5). This is the first stage of the §4 minimization
/// pipeline.
pub fn expand_satisfiable(schema: &Schema, q: &Query) -> Result<UnionQuery, CoreError> {
    expand_satisfiable_with(schema, q, &EngineConfig::from_env())
}

/// [`expand_satisfiable`] under an explicit [`EngineConfig`]: with
/// `cfg.threads > 1` the per-subquery satisfiability checks fan out across
/// the worker pool (the surviving subqueries keep their expansion order
/// either way).
pub fn expand_satisfiable_with(
    schema: &Schema,
    q: &Query,
    cfg: &EngineConfig,
) -> Result<UnionQuery, CoreError> {
    let analysis = QueryAnalysis::of(q);
    expand_satisfiable_inner(schema, q, cfg, None, &analysis)
}

/// The shared implementation behind [`expand_satisfiable_with`] and the
/// prepared-query expansion memo.
///
/// Two per-subquery rebuilds of the naive pipeline are hoisted out:
///
/// * **Classes.** An instantiated subquery's range atoms are exactly the
///   chosen terminal classes, so the odometer's choice vector *is*
///   `var_classes(schema, sub)` — no re-resolution (a `debug_assert`
///   rechecks this in test builds).
/// * **Analysis.** Algorithm *EqualityGraph* classifies terms without ever
///   consulting a range atom's class list — `x ∈ C` only marks `x` an
///   object term, whatever `C` is — and instantiation changes nothing but
///   those class lists. The parent query's analysis therefore applies to
///   every subquery verbatim, and `parent_analysis` is computed once by the
///   caller (or served from the prepared query's memo).
pub(crate) fn expand_satisfiable_inner(
    schema: &Schema,
    q: &Query,
    cfg: &EngineConfig,
    prepared: Option<&PreparedSchema>,
    parent_analysis: &QueryAnalysis,
) -> Result<UnionQuery, CoreError> {
    let choice_lists = choices(schema, q, prepared)?;
    if choice_lists.iter().any(Vec::is_empty) {
        return Ok(UnionQuery::empty());
    }
    let mut subs: Vec<(Vec<ClassId>, Query)> = Vec::new();
    let mut charge_err: Option<CoreError> = None;
    for_each_choice(&choice_lists, |chosen| {
        // Charge before materializing: the odometer is the exponential part
        // of Proposition 2.1, so the budget must be able to stop it here.
        if let Err(e) = cfg.budget.charge(1) {
            charge_err = Some(e);
            return false;
        }
        subs.push((chosen.to_vec(), instantiate(q, chosen)));
        true
    });
    if let Some(e) = charge_err {
        return Err(e);
    }
    let keep = |i: usize| -> Result<Option<Query>, CoreError> {
        cfg.budget.charge(1)?;
        let (chosen, sub) = &subs[i];
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            satisfiability::var_classes(schema, sub).ok().as_deref(),
            Some(chosen.as_slice()),
            "odometer choices must equal the subquery's resolved classes"
        );
        Ok(
            match satisfiability::check(schema, sub, chosen, parent_analysis) {
                Satisfiability::Satisfiable => Some(satisfiability::strip_non_range(sub)),
                Satisfiability::Unsatisfiable(_) => None,
            },
        )
    };
    let threads = if cfg.threads > 1 && subs.len() >= MIN_PARALLEL_SUBQUERIES {
        cfg.threads
    } else {
        1
    };
    let results = par_prefix(subs.len(), threads, keep, |r| r.is_err());
    let mut out = UnionQuery::empty();
    for (_, r) in results {
        if let Some(survivor) = r? {
            out.push(survivor);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;

    fn vehicle_query(s: &Schema) -> Query {
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        b.range(y, [s.class_id("Discount").unwrap()]);
        b.member(x, y, s.attr_id("VehRented").unwrap());
        b.build()
    }

    #[test]
    fn example_21_expansion() {
        // Vehicle has 3 terminal descendants, Discount 1: three subqueries.
        let s = samples::vehicle_rental();
        let q = vehicle_query(&s);
        assert_eq!(expansion_size(&s, &q).unwrap(), 3);
        let u = expand(&s, &q).unwrap();
        assert_eq!(u.len(), 3);
        assert!(u.is_terminal(&s));
        let texts: Vec<String> = u.iter().map(|q| q.display(&s).to_string()).collect();
        assert_eq!(
            texts[0],
            "{ x | exists y: x in Auto & y in Discount & x in y.VehRented }"
        );
        assert!(texts[1].contains("x in Trailer"));
        assert!(texts[2].contains("x in Truck"));
    }

    #[test]
    fn example_21_satisfiable_survivors() {
        // Discount.VehRented : {Auto}: only the Auto subquery survives.
        let s = samples::vehicle_rental();
        let u = expand_satisfiable(&s, &vehicle_query(&s)).unwrap();
        assert_eq!(u.len(), 1);
        assert!(u.queries()[0].display(&s).to_string().contains("x in Auto"));
    }

    #[test]
    fn example_41_expansion_counts() {
        // x over N₁ (3 terminals), y over G (2), s over H (1): 6 subqueries,
        // 2 satisfiable (x ∈ T₂).
        let s = samples::n1_partition();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("s");
        b.range(x, [s.class_id("N1").unwrap()]);
        b.range(y, [s.class_id("G").unwrap()]);
        b.range(z, [s.class_id("H").unwrap()]);
        b.eq_attr(y, x, s.attr_id("B").unwrap());
        b.member(y, x, s.attr_id("A").unwrap());
        b.member(z, x, s.attr_id("A").unwrap());
        let q = b.build();
        assert_eq!(expansion_size(&s, &q).unwrap(), 6);
        let sat = expand_satisfiable(&s, &q).unwrap();
        assert_eq!(sat.len(), 2);
        for sub in &sat {
            assert_eq!(
                sub.terminal_class_of(sub.free_var()),
                Some(s.class_id("T2").unwrap())
            );
        }
    }

    #[test]
    fn terminal_query_expands_to_itself() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [c]);
        let q = b.build();
        let u = expand(&s, &q).unwrap();
        assert_eq!(u.len(), 1);
        assert!(u.queries()[0].same_modulo_atom_order(&q));
    }

    #[test]
    fn range_disjunction_unions_choices() {
        let s = samples::vehicle_rental();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        // Auto | Client: 1 + 2 terminal descendants.
        b.range(
            x,
            [s.class_id("Auto").unwrap(), s.class_id("Client").unwrap()],
        );
        let q = b.build();
        assert_eq!(expansion_size(&s, &q).unwrap(), 3);
    }

    #[test]
    fn missing_range_is_an_error() {
        let s = samples::single_class();
        let b = QueryBuilder::new("x");
        assert!(matches!(
            expand(&s, &b.build()),
            Err(CoreError::WellFormed(_))
        ));
    }

    #[test]
    fn expansion_is_exponential_in_vars() {
        let s = samples::vehicle_rental();
        let vehicle = s.class_id("Vehicle").unwrap();
        let mut b = QueryBuilder::new("x0");
        let x0 = b.free();
        b.range(x0, [vehicle]);
        for i in 1..5 {
            let v = b.var(&format!("x{i}"));
            b.range(v, [vehicle]);
        }
        // 3^5 combinations.
        assert_eq!(expansion_size(&s, &b.build()).unwrap(), 243);
    }
}

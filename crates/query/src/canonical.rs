//! Canonical labeling of conjunctive queries.
//!
//! [`canonical_form`] maps a [`Query`] to a [`CanonicalQuery`] such that two
//! queries have **equal** canonical forms exactly when they are
//! [`isomorphic`](crate::isomorphism::isomorphic) (same up to renaming of
//! variables, atom order, atom duplication, and the orientation of symmetric
//! atoms, with free variables corresponding). This upgrades the pairwise
//! isomorphism test into a hashable key: a decision cache can memoize
//! per-equivalence-class instead of per-syntactic-spelling, which is what
//! lets a containment service answer renamed copies of a query from cache.
//!
//! The algorithm refines the per-variable signatures of
//! [`crate::isomorphism`] by Weisfeiler–Leman-style color refinement (each
//! round folds the colors of a variable's co-occurring variables into its
//! own color) until the partition stabilizes, then backtracks over the
//! orderings *within* each color class, keeping the lexicographically least
//! normalized atom vector. Both the refinement and the class ordering are
//! functions of the atom structure alone, so the search space — and hence
//! its minimum — is identical for isomorphic queries; conversely, equal
//! canonical forms exhibit an explicit variable bijection, so the map is
//! exact, not heuristic. The free variable is seeded with a distinct color,
//! pinning it to canonical position 0.
//!
//! Worst-case cost is the product of the factorials of the color-class
//! sizes, reached only by highly automorphic queries (e.g. `k`
//! interchangeable spokes); the queries this workspace manipulates keep the
//! classes near-singleton after refinement.

use crate::atom::Atom;
use crate::isomorphism::{normalized_atoms, signatures};
use crate::query::Query;
use crate::term::{Term, VarId};
use oocq_schema::{AttrId, ClassId};
use std::collections::BTreeMap;

/// An isomorphism-invariant canonical form of a [`Query`].
///
/// Variable names are erased; variables are renumbered so that the free
/// variable is `0` and the atom vector (sorted, deduplicated, symmetric
/// atoms orientation-normalized) is lexicographically least among all
/// labelings the canonical search admits. Two queries compare equal —
/// and hash equal — iff they are isomorphic.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CanonicalQuery {
    /// Number of variables (free + bound).
    var_count: usize,
    /// The canonical atom vector, sorted and deduplicated.
    atoms: Vec<Atom>,
}

impl CanonicalQuery {
    /// Number of variables of the underlying query.
    pub fn var_count(&self) -> usize {
        self.var_count
    }

    /// The canonical atom vector (free variable is `0`).
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Render this canonical form as a stable, self-contained wire string.
    ///
    /// The encoding is a pinned persistence format, not a display: ids are
    /// written as decimal indices, atoms in canonical vector order, so the
    /// output is byte-identical across processes for equal canonical forms.
    /// Persisted verdict logs key on it; changing the encoding requires an
    /// `ENGINE_CACHE_VERSION` bump in `oocq-service` so stale records are
    /// discarded rather than misread. [`CanonicalQuery::from_wire`] inverts
    /// it exactly.
    pub fn to_wire(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("v{}", self.var_count);
        let term = |t: &Term, out: &mut String| match t {
            Term::Var(v) => {
                let _ = write!(out, "{}", v.index());
            }
            Term::Attr(v, a) => {
                let _ = write!(out, "{}.{}", v.index(), a.index());
            }
        };
        let classes = |cs: &[ClassId], out: &mut String| {
            for (i, c) in cs.iter().enumerate() {
                let _ = write!(out, "{}{}", if i == 0 { "" } else { "," }, c.index());
            }
        };
        for a in &self.atoms {
            out.push(';');
            match a {
                Atom::Range(v, cs) => {
                    let _ = write!(out, "r{}:", v.index());
                    classes(cs, &mut out);
                }
                Atom::NonRange(v, cs) => {
                    let _ = write!(out, "R{}:", v.index());
                    classes(cs, &mut out);
                }
                Atom::Eq(s, t) => {
                    out.push('e');
                    term(s, &mut out);
                    out.push('~');
                    term(t, &mut out);
                }
                Atom::Neq(s, t) => {
                    out.push('n');
                    term(s, &mut out);
                    out.push('~');
                    term(t, &mut out);
                }
                Atom::Member(x, y, at) => {
                    let _ = write!(out, "m{},{}.{}", x.index(), y.index(), at.index());
                }
                Atom::NonMember(x, y, at) => {
                    let _ = write!(out, "M{},{}.{}", x.index(), y.index(), at.index());
                }
            }
        }
        out
    }

    /// Parse a [`CanonicalQuery::to_wire`] string. Returns `None` on any
    /// malformation (wrong tags, non-numeric ids, variable indices out of
    /// range) — persisted-log readers treat that as a corrupt record, never
    /// an error worth surfacing.
    pub fn from_wire(wire: &str) -> Option<CanonicalQuery> {
        let mut parts = wire.split(';');
        let head = parts.next()?;
        let var_count: usize = head.strip_prefix('v')?.parse().ok()?;
        let var = |s: &str| -> Option<VarId> {
            let ix: usize = s.parse().ok()?;
            (ix < var_count).then(|| VarId::from_index(ix))
        };
        let term = |s: &str| -> Option<Term> {
            match s.split_once('.') {
                Some((v, a)) => Some(Term::Attr(var(v)?, AttrId::from_index(a.parse().ok()?))),
                None => Some(Term::Var(var(s)?)),
            }
        };
        let classes = |s: &str| -> Option<Vec<ClassId>> {
            s.split(',')
                .map(|c| Some(ClassId::from_index(c.parse::<usize>().ok()?)))
                .collect()
        };
        // `x,y.A` of a (non-)membership atom: member var, owner var, attr.
        let membership = |s: &str| -> Option<(VarId, VarId, AttrId)> {
            let (x, rest) = s.split_once(',')?;
            let (y, a) = rest.split_once('.')?;
            Some((var(x)?, var(y)?, AttrId::from_index(a.parse().ok()?)))
        };
        let mut atoms = Vec::new();
        for part in parts {
            let (tag, rest) = part.split_at(part.len().min(1));
            atoms.push(match tag {
                "r" | "R" => {
                    let (v, cs) = rest.split_once(':')?;
                    if tag == "r" {
                        Atom::Range(var(v)?, classes(cs)?)
                    } else {
                        Atom::NonRange(var(v)?, classes(cs)?)
                    }
                }
                "e" | "n" => {
                    let (s, t) = rest.split_once('~')?;
                    if tag == "e" {
                        Atom::Eq(term(s)?, term(t)?)
                    } else {
                        Atom::Neq(term(s)?, term(t)?)
                    }
                }
                "m" | "M" => {
                    let (x, y, a) = membership(rest)?;
                    if tag == "m" {
                        Atom::Member(x, y, a)
                    } else {
                        Atom::NonMember(x, y, a)
                    }
                }
                _ => return None,
            });
        }
        Some(CanonicalQuery { var_count, atoms })
    }
}

/// One refinement round: fold each variable's co-occurrence structure
/// (atom kind + current colors of the other variables in the atom) into a
/// new color. Returns the new color vector; colors are ranks into the
/// sorted key set, so they are invariant under variable renaming.
fn refine_round(q: &Query, color: &[usize]) -> Vec<usize> {
    let n = q.var_count();
    // Per-variable multiset of incidence keys.
    let mut keys: Vec<Vec<String>> = vec![Vec::new(); n];
    for a in q.atoms() {
        match a {
            Atom::Range(v, cs) => keys[v.index()].push(format!("r:{cs:?}")),
            Atom::NonRange(v, cs) => keys[v.index()].push(format!("nr:{cs:?}")),
            Atom::Eq(s, t) | Atom::Neq(s, t) => {
                let kind = if matches!(a, Atom::Eq(..)) {
                    "eq"
                } else {
                    "ne"
                };
                for (side, other) in [(s, t), (t, s)] {
                    keys[side.var().index()].push(format!(
                        "{kind}:{:?}/{:?}:{}",
                        side.attr(),
                        other.attr(),
                        color[other.var().index()]
                    ));
                }
            }
            Atom::Member(x, y, at) => {
                keys[x.index()].push(format!("m:{at:?}:{}", color[y.index()]));
                keys[y.index()].push(format!("mo:{at:?}:{}", color[x.index()]));
            }
            Atom::NonMember(x, y, at) => {
                keys[x.index()].push(format!("n:{at:?}:{}", color[y.index()]));
                keys[y.index()].push(format!("no:{at:?}:{}", color[x.index()]));
            }
        }
    }
    // New color = rank of (old color, sorted incidence keys).
    let mut sig: Vec<(usize, Vec<String>)> = Vec::with_capacity(n);
    for v in 0..n {
        keys[v].sort();
        sig.push((color[v], std::mem::take(&mut keys[v])));
    }
    let mut ranks: BTreeMap<&(usize, Vec<String>), usize> = BTreeMap::new();
    for s in &sig {
        let next = ranks.len();
        ranks.entry(s).or_insert(next);
    }
    // BTreeMap assigned insertion-order ids; re-rank by key order so the
    // result is independent of variable iteration order.
    let sorted: BTreeMap<&(usize, Vec<String>), usize> = ranks
        .keys()
        .enumerate()
        .map(|(rank, &k)| (k, rank))
        .collect();
    sig.iter().map(|s| sorted[s]).collect()
}

/// The stable coloring: initial signatures (free variable seeded with a
/// distinct marker), refined until the number of color classes stops
/// growing.
fn stable_coloring(q: &Query) -> Vec<usize> {
    let base = signatures(q);
    let mut init: Vec<(bool, &BTreeMap<String, usize>)> = Vec::with_capacity(q.var_count());
    for v in q.vars() {
        init.push((v != q.free_var(), &base[v.index()]));
    }
    let mut ranks: BTreeMap<&(bool, &BTreeMap<String, usize>), usize> = BTreeMap::new();
    for s in &init {
        let next = ranks.len();
        ranks.entry(s).or_insert(next);
    }
    let sorted: BTreeMap<&(bool, &BTreeMap<String, usize>), usize> = ranks
        .keys()
        .enumerate()
        .map(|(rank, &k)| (k, rank))
        .collect();
    let mut color: Vec<usize> = init.iter().map(|s| sorted[s]).collect();
    let mut classes = color.iter().collect::<std::collections::HashSet<_>>().len();
    loop {
        let next = refine_round(q, &color);
        let next_classes = next.iter().collect::<std::collections::HashSet<_>>().len();
        if next_classes == classes {
            return color;
        }
        color = next;
        classes = next_classes;
    }
}

/// Search all orderings within color classes for the lexicographically
/// least normalized atom vector. `order[pos]` = old variable at canonical
/// position `pos`; classes are visited in color order, so position blocks
/// are fixed and only intra-class orderings branch. One unit of work is
/// charged per search node, so a caller-supplied budget bounds the
/// factorial regime.
#[allow(clippy::too_many_arguments)] // recursive search node: all state is hot path
fn search<E>(
    q: &Query,
    classes: &[Vec<VarId>],
    class_ix: usize,
    picked_in_class: usize,
    order: &mut Vec<VarId>,
    used: &mut Vec<bool>,
    best: &mut Option<Vec<Atom>>,
    charge: &mut impl FnMut(u64) -> Result<(), E>,
) -> Result<(), E> {
    charge(1)?;
    if class_ix == classes.len() {
        // order is complete: build old→new map and the candidate vector.
        let mut map = vec![VarId::from_index(0); q.var_count()];
        for (new, old) in order.iter().enumerate() {
            map[old.index()] = VarId::from_index(new);
        }
        let cand = normalized_atoms(q, &map);
        if best.as_ref().is_none_or(|b| cand < *b) {
            *best = Some(cand);
        }
        return Ok(());
    }
    let class = &classes[class_ix];
    if picked_in_class == class.len() {
        return search(q, classes, class_ix + 1, 0, order, used, best, charge);
    }
    for &v in class {
        if used[v.index()] {
            continue;
        }
        used[v.index()] = true;
        order.push(v);
        let r = search(
            q,
            classes,
            class_ix,
            picked_in_class + 1,
            order,
            used,
            best,
            charge,
        );
        order.pop();
        used[v.index()] = false;
        r?;
    }
    Ok(())
}

/// The canonical form of a query. See the module docs for the guarantee:
/// `canonical_form(a) == canonical_form(b)` iff `isomorphic(a, b)`.
pub fn canonical_form(q: &Query) -> CanonicalQuery {
    match canonical_form_budgeted(q, &mut |_| Ok::<(), std::convert::Infallible>(())) {
        Ok(c) => c,
        Err(e) => match e {},
    }
}

/// [`canonical_form`] with a cooperative work charge: the in-class
/// backtracking calls `charge(1)` once per search node, and the first error
/// aborts the labeling. The worst case is the product of the factorials of
/// the color-class sizes (highly automorphic queries), so callers with a
/// latency target — decision caches keying by canonical form, prepared
/// engines — should route through this entry and map their budget's
/// timeout error into `E`. A charge that never fails makes this identical
/// to [`canonical_form`].
pub fn canonical_form_budgeted<E>(
    q: &Query,
    charge: &mut impl FnMut(u64) -> Result<(), E>,
) -> Result<CanonicalQuery, E> {
    let mut q = q.clone();
    q.dedup_atoms();
    let color = stable_coloring(&q);
    // Group variables by color, classes sorted by color (ascending). The
    // free variable's seed marker gives it the unique least color, so it
    // always lands at canonical position 0.
    let max_color = color.iter().copied().max().unwrap_or(0);
    let mut classes: Vec<Vec<VarId>> = vec![Vec::new(); max_color + 1];
    for v in q.vars() {
        classes[color[v.index()]].push(v);
    }
    classes.retain(|c| !c.is_empty());
    debug_assert_eq!(classes[0], vec![q.free_var()], "free var has least color");

    let mut best: Option<Vec<Atom>> = None;
    let mut order: Vec<VarId> = Vec::with_capacity(q.var_count());
    let mut used = vec![false; q.var_count()];
    search(&q, &classes, 0, 0, &mut order, &mut used, &mut best, charge)?;
    Ok(CanonicalQuery {
        var_count: q.var_count(),
        atoms: best.expect("canonical search visits at least one labeling"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isomorphism::isomorphic;
    use crate::query::QueryBuilder;
    use oocq_schema::samples;

    #[test]
    fn renaming_and_atom_order_are_invisible() {
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let build = |names: [&str; 3], flip: bool| {
            let mut b = QueryBuilder::new(names[0]);
            let x = b.free();
            let y = b.var(names[1]);
            let z = b.var(names[2]);
            if flip {
                b.member(z, y, a).member(x, y, a);
                b.range(z, [t1]).range(y, [t2]).range(x, [t1]);
            } else {
                b.range(x, [t1]).range(y, [t2]).range(z, [t1]);
                b.member(x, y, a).member(z, y, a);
            }
            b.build()
        };
        let c1 = canonical_form(&build(["x", "y", "z"], false));
        let c2 = canonical_form(&build(["anna", "bert", "carl"], true));
        assert_eq!(c1, c2);
    }

    #[test]
    fn free_variable_role_distinguishes() {
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [t1]).range(y, [t2]).member(x, y, a);
        let member_free = b.build();
        let mut b = QueryBuilder::new("y");
        let yf = b.free();
        let x2 = b.var("x");
        b.range(x2, [t1]).range(yf, [t2]).member(x2, yf, a);
        let owner_free = b.build();
        assert_ne!(canonical_form(&member_free), canonical_form(&owner_free));
    }

    #[test]
    fn duplicate_atoms_are_invisible() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [c]).range(x, [c]);
        let dup = b.build();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [c]);
        assert_eq!(canonical_form(&dup), canonical_form(&b.build()));
    }

    #[test]
    fn eq_orientation_is_invisible() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let build = |swap: bool| {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            let y = b.var("y");
            b.range(x, [c]).range(y, [c]);
            if swap {
                b.eq_vars(y, x);
            } else {
                b.eq_vars(x, y);
            }
            b.build()
        };
        assert_eq!(canonical_form(&build(false)), canonical_form(&build(true)));
    }

    #[test]
    fn automorphic_spokes_canonicalize_identically() {
        // Interchangeable spokes leave a non-singleton color class; the
        // backtracking min must agree across declaration orders.
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let build = |perm: [usize; 3]| {
            let mut b = QueryBuilder::new("o");
            let o = b.free();
            let names = ["m1", "m2", "m3"];
            let ms: Vec<_> = perm.iter().map(|&i| b.var(names[i])).collect();
            b.range(o, [t2]);
            for &m in &ms {
                b.range(m, [t1]);
                b.member(m, o, a);
            }
            b.build()
        };
        let c = canonical_form(&build([0, 1, 2]));
        assert_eq!(c, canonical_form(&build([2, 0, 1])));
        assert_eq!(c, canonical_form(&build([1, 2, 0])));
    }

    #[test]
    fn agrees_with_pairwise_isomorphism() {
        // Canonical equality must coincide with isomorphic() across a mixed
        // family: some isomorphic pairs, some near-misses.
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut family: Vec<crate::query::Query> = Vec::new();
        for (member, extra_range) in [(true, false), (true, true), (false, false), (false, true)] {
            for name in ["x", "renamed"] {
                let mut b = QueryBuilder::new(name);
                let x = b.free();
                let y = b.var("y");
                b.range(x, [t1]).range(y, [t2]);
                if member {
                    b.member(x, y, a);
                } else {
                    b.non_member(x, y, a);
                }
                if extra_range {
                    let z = b.var("z");
                    b.range(z, [t1]);
                }
                family.push(b.build());
            }
        }
        for qa in &family {
            for qb in &family {
                assert_eq!(
                    canonical_form(qa) == canonical_form(qb),
                    isomorphic(qa, qb),
                    "canonical/isomorphism disagreement:\n  {qa:?}\n  {qb:?}"
                );
            }
        }
    }

    #[test]
    fn budgeted_search_stops_in_the_factorial_regime() {
        // 9 interchangeable spokes stay one color class after refinement:
        // the search space is 9! ≈ 3.6e5 labelings. A small work limit must
        // abort long before that, and a generous one must agree with the
        // unbudgeted form.
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("o");
        let o = b.free();
        b.range(o, [t2]);
        for i in 0..9 {
            let m = b.var(&format!("m{i}"));
            b.range(m, [t1]);
            b.member(m, o, a);
        }
        let q = b.build();

        let mut spent = 0u64;
        let err = canonical_form_budgeted(&q, &mut |u| {
            spent += u;
            if spent > 1000 {
                Err("out of budget")
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err, "out of budget");

        let full = canonical_form_budgeted(&q, &mut |_| Ok::<(), ()>(())).unwrap();
        assert_eq!(full, canonical_form(&q));
    }

    #[test]
    fn wire_codec_round_trips_every_atom_kind() {
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [t1]).non_range(y, [t1, t2]).range(z, [t2]);
        b.eq_attr(x, y, a).neq_vars(x, z);
        b.member(x, y, a).non_member(z, y, a);
        let cf = canonical_form(&b.build());
        let wire = cf.to_wire();
        assert!(wire.starts_with("v3;"), "{wire}");
        let back = CanonicalQuery::from_wire(&wire).expect("own encoding parses");
        assert_eq!(back, cf);
        // The encoding is injective enough to key a log: a different form
        // renders differently.
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [t1]);
        assert_ne!(canonical_form(&b.build()).to_wire(), wire);
    }

    #[test]
    fn wire_codec_rejects_malformed_input() {
        for bad in [
            "",
            "x3",
            "v",
            "vX;r0:0",
            "v2;z0:1",      // unknown tag
            "v2;r5:0",      // var index out of range
            "v2;m0,1",      // membership missing attr
            "v2;e0",        // eq missing second term
            "v2;r0:a,b",    // non-numeric class ids
            "v1;M0,9.0",    // owner out of range
            "v1;r0:0;junk", // trailing garbage atom
        ] {
            assert!(
                CanonicalQuery::from_wire(bad).is_none(),
                "accepted malformed wire {bad:?}"
            );
        }
        // A valid minimal form still parses.
        assert!(CanonicalQuery::from_wire("v1;r0:0").is_some());
        assert!(CanonicalQuery::from_wire("v1").is_some());
    }

    #[test]
    fn canonical_form_exposes_shape() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]);
        let cf = canonical_form(&b.build());
        assert_eq!(cf.var_count(), 2);
        assert_eq!(cf.atoms().len(), 2);
    }
}

//! Structural isomorphism of conjunctive queries.
//!
//! Two queries are isomorphic when a bijection between their variables maps
//! the free variable to the free variable and the atom multiset of one onto
//! the atom multiset of the other. Theorem 4.5 of the paper implies that
//! equivalent *minimal* terminal positive conjunctive queries are related by
//! exactly such a bijection (every non-contradictory mapping between them is
//! bijective), so isomorphism is the right notion of syntactic uniqueness
//! for minimization results.

use crate::atom::Atom;
use crate::query::Query;
use crate::term::VarId;
use std::collections::BTreeMap;

/// A cheap per-variable invariant: how the variable participates in each
/// kind of atom. Distinct signatures can never map to one another. Shared
/// with [`crate::canonical`], which refines these into a canonical labeling.
pub(crate) fn signatures(q: &Query) -> Vec<BTreeMap<String, usize>> {
    let mut sig: Vec<BTreeMap<String, usize>> = vec![BTreeMap::new(); q.var_count()];
    let mut bump = |v: VarId, key: String| {
        *sig[v.index()].entry(key).or_insert(0) += 1;
    };
    for a in q.atoms() {
        match a {
            Atom::Range(v, cs) => bump(*v, format!("range:{cs:?}")),
            Atom::NonRange(v, cs) => bump(*v, format!("nonrange:{cs:?}")),
            Atom::Eq(s, t) | Atom::Neq(s, t) => {
                let kind = if matches!(a, Atom::Eq(..)) {
                    "eq"
                } else {
                    "neq"
                };
                for (side, other) in [(s, t), (t, s)] {
                    let shape = match (side, other) {
                        (crate::term::Term::Var(v), o) => {
                            (*v, format!("{kind}:var-vs-{:?}", o.attr()))
                        }
                        (crate::term::Term::Attr(v, at), o) => {
                            (*v, format!("{kind}:attr{:?}-vs-{:?}", at, o.attr()))
                        }
                    };
                    bump(shape.0, shape.1);
                }
            }
            Atom::Member(x, y, at) => {
                bump(*x, format!("member-of:{at:?}"));
                bump(*y, format!("member-owner:{at:?}"));
            }
            Atom::NonMember(x, y, at) => {
                bump(*x, format!("nonmember-of:{at:?}"));
                bump(*y, format!("nonmember-owner:{at:?}"));
            }
        }
    }
    sig
}

pub(crate) fn normalized_atoms(q: &Query, map: &[VarId]) -> Vec<Atom> {
    let mut atoms: Vec<Atom> = q
        .atoms()
        .iter()
        .map(|a| {
            // Normalize symmetric atoms so Eq(a,b) and Eq(b,a) compare equal.
            let m = a.map_vars(|v| map[v.index()]);
            match m {
                Atom::Eq(s, t) if t < s => Atom::Eq(t, s),
                Atom::Neq(s, t) if t < s => Atom::Neq(t, s),
                other => other,
            }
        })
        .collect();
    atoms.sort();
    atoms.dedup();
    atoms
}

/// Find a variable bijection witnessing `a ≅ b`, mapping free to free.
/// Returns the image of each variable of `a`.
pub fn find_isomorphism(a: &Query, b: &Query) -> Option<Vec<VarId>> {
    if a.var_count() != b.var_count() {
        return None;
    }
    // Duplicate atoms must not break the comparison: normalize both sides.
    let (mut a, mut b) = (a.clone(), b.clone());
    a.dedup_atoms();
    b.dedup_atoms();
    let (a, b) = (&a, &b);
    if a.atoms().len() != b.atoms().len() {
        return None;
    }
    let sig_a = signatures(a);
    let sig_b = signatures(b);
    let identity: Vec<VarId> = b.vars().collect();
    let b_atoms = normalized_atoms(b, &identity);

    let n = a.var_count();
    let mut map: Vec<Option<VarId>> = vec![None; n];
    let mut used = vec![false; n];
    map[a.free_var().index()] = Some(b.free_var());
    used[b.free_var().index()] = true;
    if sig_a[a.free_var().index()] != sig_b[b.free_var().index()] {
        return None;
    }

    // Assign remaining variables in order, pruning by signature; verify the
    // atom multisets at the end (atoms-by-atom checking during search is
    // possible but queries are small).
    fn recurse(
        a: &Query,
        b_atoms: &[Atom],
        sig_a: &[BTreeMap<String, usize>],
        sig_b: &[BTreeMap<String, usize>],
        map: &mut Vec<Option<VarId>>,
        used: &mut Vec<bool>,
        next: usize,
    ) -> bool {
        let n = map.len();
        let mut ix = next;
        while ix < n && map[ix].is_some() {
            ix += 1;
        }
        if ix == n {
            let full: Vec<VarId> = map.iter().map(|m| m.unwrap()).collect();
            return normalized_atoms(a, &full) == b_atoms;
        }
        for cand in 0..n {
            if used[cand] || sig_a[ix] != sig_b[cand] {
                continue;
            }
            map[ix] = Some(VarId::from_index(cand));
            used[cand] = true;
            if recurse(a, b_atoms, sig_a, sig_b, map, used, ix + 1) {
                return true;
            }
            map[ix] = None;
            used[cand] = false;
        }
        false
    }
    recurse(a, &b_atoms, &sig_a, &sig_b, &mut map, &mut used, 0)
        .then(|| map.into_iter().map(Option::unwrap).collect())
}

/// Are the two queries structurally isomorphic (same up to renaming of
/// variables, with free variables corresponding)?
pub fn isomorphic(a: &Query, b: &Query) -> bool {
    find_isomorphism(a, b).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use oocq_schema::samples;

    #[test]
    fn renamed_queries_are_isomorphic() {
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let build = |names: [&str; 3]| {
            let mut b = QueryBuilder::new(names[0]);
            let x = b.free();
            let y = b.var(names[1]);
            let z = b.var(names[2]);
            b.range(x, [t1]).range(y, [t2]).range(z, [t1]);
            b.member(x, y, a).member(z, y, a);
            b.build()
        };
        let q1 = build(["x", "y", "z"]);
        let q2 = build(["anna", "bert", "carl"]);
        assert!(isomorphic(&q1, &q2));
        let iso = find_isomorphism(&q1, &q2).unwrap();
        assert_eq!(iso[0].index(), 0); // free maps to free
    }

    #[test]
    fn atom_order_and_eq_orientation_do_not_matter() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).eq_vars(x, y);
        let q1 = b.build();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.eq_vars(y, x).range(y, [c]).range(x, [c]);
        let q2 = b.build();
        assert!(isomorphic(&q1, &q2));
    }

    #[test]
    fn different_shapes_are_not_isomorphic() {
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [t1]).range(y, [t2]).member(x, y, a);
        let q1 = b.build();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [t1]).range(y, [t2]).non_member(x, y, a);
        let q2 = b.build();
        assert!(!isomorphic(&q1, &q2));
    }

    #[test]
    fn free_variable_must_correspond() {
        // Same atom structure, but the free variable plays a different role.
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [t1]).range(y, [t2]).member(x, y, a);
        let q1 = b.build();
        // Here the free variable is the set OWNER, not the member.
        let mut b = QueryBuilder::new("y");
        let yf = b.free();
        let x2 = b.var("x");
        b.range(x2, [t1]).range(yf, [t2]).member(x2, yf, a);
        let q2 = b.build();
        assert!(!isomorphic(&q1, &q2));
    }

    #[test]
    fn var_count_mismatch_short_circuits() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [c]);
        let q1 = b.build();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]);
        let q2 = b.build();
        assert!(!isomorphic(&q1, &q2));
    }

    #[test]
    fn automorphic_spokes_found() {
        // Two interchangeable spokes: isomorphism must explore both orders.
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let build = |swap: bool| {
            let mut b = QueryBuilder::new("o");
            let o = b.free();
            let m1 = b.var(if swap { "m2" } else { "m1" });
            let m2 = b.var(if swap { "m1" } else { "m2" });
            b.range(o, [t2]).range(m1, [t1]).range(m2, [t1]);
            b.member(m1, o, a).member(m2, o, a);
            // Distinguish spokes with an extra equality on one only.
            b.eq_vars(m1, m1);
            b.build()
        };
        assert!(isomorphic(&build(false), &build(true)));
    }
}

//! Variables and terms (§2.2 of the paper).
//!
//! A *term* `f(x)` is either a variable `x` or an attribute selection `x.A`.
//! Terms let a query refer to a component of an object. Path expressions
//! `x.A₁.A₂…` are not primitive — the paper notes they are expressible by
//! introducing intermediate variables, which
//! [`QueryBuilder::path`](crate::QueryBuilder::path) automates.

use oocq_schema::AttrId;
use std::fmt;

/// Identifier of a variable within one [`Query`](crate::Query).
///
/// Dense index into the query's variable table; the distinguished (free)
/// variable is always present but not necessarily index 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct from an index previously obtained via [`VarId::index`].
    #[inline]
    pub fn from_index(ix: usize) -> VarId {
        VarId(u32::try_from(ix).expect("variable index exceeds u32"))
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VarId({})", self.0)
    }
}

/// A term: `x` or `x.A` (§2.2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A variable `x`.
    Var(VarId),
    /// An attribute selection `x.A`.
    Attr(VarId, AttrId),
}

impl Term {
    /// The variable the term is built from (`x` in both `x` and `x.A`).
    #[inline]
    pub fn var(self) -> VarId {
        match self {
            Term::Var(v) | Term::Attr(v, _) => v,
        }
    }

    /// The attribute, when the term is an attribute selection.
    #[inline]
    pub fn attr(self) -> Option<AttrId> {
        match self {
            Term::Var(_) => None,
            Term::Attr(_, a) => Some(a),
        }
    }

    /// Is this a bare variable?
    #[inline]
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Replace the underlying variable, keeping the attribute (if any).
    #[inline]
    pub fn with_var(self, v: VarId) -> Term {
        match self {
            Term::Var(_) => Term::Var(v),
            Term::Attr(_, a) => Term::Attr(v, a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_schema::AttrId;

    #[test]
    fn term_accessors() {
        let v = VarId::from_index(2);
        let a = AttrId::from_index(1);
        assert_eq!(Term::Var(v).var(), v);
        assert_eq!(Term::Attr(v, a).var(), v);
        assert_eq!(Term::Var(v).attr(), None);
        assert_eq!(Term::Attr(v, a).attr(), Some(a));
        assert!(Term::Var(v).is_var());
        assert!(!Term::Attr(v, a).is_var());
    }

    #[test]
    fn with_var_preserves_shape() {
        let v = VarId::from_index(0);
        let w = VarId::from_index(1);
        let a = AttrId::from_index(0);
        assert_eq!(Term::Var(v).with_var(w), Term::Var(w));
        assert_eq!(Term::Attr(v, a).with_var(w), Term::Attr(w, a));
    }

    #[test]
    fn terms_order_vars_before_attrs_of_same_var() {
        let v = VarId::from_index(0);
        let a = AttrId::from_index(0);
        assert!(Term::Var(v) < Term::Attr(v, a));
    }
}

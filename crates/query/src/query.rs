//! Conjunctive queries and unions of conjunctive queries (§2.2, §2.4).

use crate::atom::Atom;
use crate::term::{Term, VarId};
use oocq_schema::{AttrId, ClassId, Schema};

/// A conjunctive query `{ s₀ | ∃s₁…∃sₘ (A₁ & … & Aₖ) }` (§2.2).
///
/// The single free variable `s₀` is [`Query::free_var`]; every other
/// variable is existentially quantified. The matrix is the conjunction of
/// [`Query::atoms`].
///
/// `Query` values are plain syntax: class and attribute identifiers refer to
/// some [`Schema`], which is passed explicitly to every operation that needs
/// typing information.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Query {
    var_names: Vec<String>,
    free: VarId,
    atoms: Vec<Atom>,
}

impl Query {
    /// Number of variables (free + bound).
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// Iterate over all variable ids.
    pub fn vars(&self) -> impl Iterator<Item = VarId> {
        (0..self.var_count()).map(VarId::from_index)
    }

    /// The distinguished free variable `s₀`.
    pub fn free_var(&self) -> VarId {
        self.free
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.index()]
    }

    /// The matrix atoms, in construction order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The class disjunction of the *first* range atom on `v`, if any.
    /// Well-formed queries have exactly one.
    pub fn range_of(&self, v: VarId) -> Option<&[ClassId]> {
        self.atoms.iter().find_map(|a| match a {
            Atom::Range(w, cs) if *w == v => Some(cs.as_slice()),
            _ => None,
        })
    }

    /// Number of range atoms mentioning `v`.
    pub fn range_count(&self, v: VarId) -> usize {
        self.atoms
            .iter()
            .filter(|a| matches!(a, Atom::Range(w, _) if *w == v))
            .count()
    }

    /// A query is *positive* if it involves only positive atoms (§2.2).
    pub fn is_positive(&self) -> bool {
        self.atoms.iter().all(Atom::is_positive)
    }

    /// Does `other_than_inequality` hold: no atom is an inequality?
    /// (Corollary 3.2's precondition.)
    pub fn is_inequality_free(&self) -> bool {
        !self.atoms.iter().any(Atom::is_inequality)
    }

    /// Does the query involve only positive and inequality atoms?
    /// (Corollary 3.3's precondition.)
    pub fn is_positive_with_inequalities(&self) -> bool {
        self.atoms
            .iter()
            .all(|a| a.is_positive() || a.is_inequality())
    }

    /// A conjunctive query is *terminal* if every range atom is `x ∈ C` for
    /// a single terminal class `C` (§2.4).
    pub fn is_terminal(&self, schema: &Schema) -> bool {
        self.atoms.iter().all(|a| match a {
            Atom::Range(_, cs) => cs.len() == 1 && schema.is_terminal(cs[0]),
            _ => true,
        })
    }

    /// For a terminal query: the unique terminal class `v` ranges over.
    ///
    /// Returns `None` when `v` has no single-class range atom.
    pub fn terminal_class_of(&self, v: VarId) -> Option<ClassId> {
        match self.range_of(v) {
            Some([c]) => Some(*c),
            _ => None,
        }
    }

    /// `Q & S`: the query extended with additional atoms (§3.1 notation).
    /// Duplicate atoms are dropped.
    pub fn with_extra_atoms(&self, extra: impl IntoIterator<Item = Atom>) -> Query {
        let mut q = self.clone();
        for a in extra {
            if !q.atoms.contains(&a) {
                q.atoms.push(a);
            }
        }
        q
    }

    /// This query with one additional existential variable appended (no
    /// atoms mention it yet). Existing variable ids are unchanged; the
    /// returned id is the new variable. If `name` collides with an existing
    /// variable name, a numeric suffix is appended until it is unique
    /// (names are cosmetic, but distinct names keep rendered output
    /// readable). Used by theory compilation to chase totality constraints.
    pub fn with_fresh_var(&self, name: &str) -> (Query, VarId) {
        let mut q = self.clone();
        let mut chosen = name.to_owned();
        let mut i = 0usize;
        while q.var_names.iter().any(|n| n == &chosen) {
            i += 1;
            chosen = format!("{name}{i}");
        }
        let v = VarId::from_index(q.var_names.len());
        q.var_names.push(chosen);
        (q, v)
    }

    /// Apply a variable mapping `μ` to the whole query, producing `μ(Q)`
    /// (§4): every atom is rewritten, duplicates are removed, and variables
    /// that no longer occur are dropped (the prefix shrinks accordingly).
    ///
    /// The free variable of the result is `μ(free)`. `map[v]` must be a
    /// valid variable of `self` for every `v`.
    pub fn apply_mapping(&self, map: &[VarId]) -> Query {
        debug_assert_eq!(map.len(), self.var_count());
        let mapped: Vec<Atom> = self
            .atoms
            .iter()
            .map(|a| a.map_vars(|v| map[v.index()]))
            .collect();
        let new_free = map[self.free.index()];

        // Which old variables survive?
        let mut used = vec![false; self.var_count()];
        used[new_free.index()] = true;
        for a in &mapped {
            for v in a.vars() {
                used[v.index()] = true;
            }
        }
        // Compact variable ids.
        let mut remap = vec![VarId::from_index(0); self.var_count()];
        let mut names = Vec::new();
        for (ix, &u) in used.iter().enumerate() {
            if u {
                remap[ix] = VarId::from_index(names.len());
                names.push(self.var_names[ix].clone());
            }
        }
        let mut atoms: Vec<Atom> = mapped
            .into_iter()
            .map(|a| a.map_vars(|v| remap[v.index()]))
            .collect();
        atoms.sort();
        atoms.dedup();
        Query {
            var_names: names,
            free: remap[new_free.index()],
            atoms,
        }
    }

    /// Sort and deduplicate the matrix atoms in place (normal form for
    /// structural comparison).
    pub fn dedup_atoms(&mut self) {
        self.atoms.sort();
        self.atoms.dedup();
    }

    /// Structural equality up to atom order.
    pub fn same_modulo_atom_order(&self, other: &Query) -> bool {
        let mut a = self.clone();
        let mut b = other.clone();
        a.dedup_atoms();
        b.dedup_atoms();
        a == b
    }

    /// Rename a variable (cosmetic only; ids are unchanged).
    pub fn rename_var(&mut self, v: VarId, name: &str) {
        self.var_names[v.index()] = name.to_owned();
    }
}

/// Incremental builder for [`Query`].
///
/// ```
/// use oocq_query::QueryBuilder;
/// use oocq_schema::samples;
///
/// let s = samples::vehicle_rental();
/// let mut b = QueryBuilder::new("x");
/// let x = b.free();
/// let y = b.var("y");
/// b.range(x, [s.class_id("Vehicle").unwrap()]);
/// b.range(y, [s.class_id("Discount").unwrap()]);
/// b.member(x, y, s.attr_id("VehRented").unwrap());
/// let q = b.build();
/// assert_eq!(q.var_count(), 2);
/// assert!(q.is_positive());
/// ```
#[derive(Clone, Debug)]
pub struct QueryBuilder {
    var_names: Vec<String>,
    free: VarId,
    atoms: Vec<Atom>,
}

impl QueryBuilder {
    /// Start a query whose free variable has the given name.
    pub fn new(free_name: &str) -> QueryBuilder {
        QueryBuilder {
            var_names: vec![free_name.to_owned()],
            free: VarId::from_index(0),
            atoms: Vec::new(),
        }
    }

    /// The free variable.
    pub fn free(&self) -> VarId {
        self.free
    }

    /// Introduce a bound (existentially quantified) variable.
    pub fn var(&mut self, name: &str) -> VarId {
        let v = VarId::from_index(self.var_names.len());
        self.var_names.push(name.to_owned());
        v
    }

    /// Add a range atom `v ∈ C₁ ∨ … ∨ Cₙ`.
    pub fn range(&mut self, v: VarId, classes: impl IntoIterator<Item = ClassId>) -> &mut Self {
        self.atoms
            .push(Atom::Range(v, classes.into_iter().collect()));
        self
    }

    /// Add a non-range atom `v ∉ C₁ ∨ … ∨ Cₙ`.
    pub fn non_range(&mut self, v: VarId, classes: impl IntoIterator<Item = ClassId>) -> &mut Self {
        self.atoms
            .push(Atom::NonRange(v, classes.into_iter().collect()));
        self
    }

    /// Add an equality atom between two terms.
    pub fn eq(&mut self, a: Term, b: Term) -> &mut Self {
        self.atoms.push(Atom::Eq(a, b));
        self
    }

    /// Add `v = w` between two variables.
    pub fn eq_vars(&mut self, v: VarId, w: VarId) -> &mut Self {
        self.eq(Term::Var(v), Term::Var(w))
    }

    /// Add `v = w.A`.
    pub fn eq_attr(&mut self, v: VarId, w: VarId, a: AttrId) -> &mut Self {
        self.eq(Term::Var(v), Term::Attr(w, a))
    }

    /// Add an inequality atom between two terms.
    pub fn neq(&mut self, a: Term, b: Term) -> &mut Self {
        self.atoms.push(Atom::Neq(a, b));
        self
    }

    /// Add `v ≠ w` between two variables.
    pub fn neq_vars(&mut self, v: VarId, w: VarId) -> &mut Self {
        self.neq(Term::Var(v), Term::Var(w))
    }

    /// Add a membership atom `x ∈ y.A`.
    pub fn member(&mut self, x: VarId, y: VarId, a: AttrId) -> &mut Self {
        self.atoms.push(Atom::Member(x, y, a));
        self
    }

    /// Add a non-membership atom `x ∉ y.A`.
    pub fn non_member(&mut self, x: VarId, y: VarId, a: AttrId) -> &mut Self {
        self.atoms.push(Atom::NonMember(x, y, a));
        self
    }

    /// Add an arbitrary prebuilt atom.
    pub fn atom(&mut self, a: Atom) -> &mut Self {
        self.atoms.push(a);
        self
    }

    /// Follow a path `start.A₁.A₂…Aₙ`, introducing one fresh variable and
    /// one equality per step (the paper's encoding of path expressions).
    /// Returns the variable bound to the end of the path.
    pub fn path(&mut self, start: VarId, attrs: &[AttrId]) -> VarId {
        let mut cur = start;
        for (i, &a) in attrs.iter().enumerate() {
            let name = format!("{}_p{}", self.var_names[start.index()], i);
            let next = self.var(&name);
            self.eq(Term::Var(next), Term::Attr(cur, a));
            cur = next;
        }
        cur
    }

    /// Finish building.
    pub fn build(self) -> Query {
        Query {
            var_names: self.var_names,
            free: self.free,
            atoms: self.atoms,
        }
    }
}

/// A finite union `Q₁ ∪ … ∪ Qₙ` of conjunctive queries (§2.4, §4).
///
/// The empty union denotes the unsatisfiable query (empty answer on every
/// state).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct UnionQuery {
    queries: Vec<Query>,
}

impl UnionQuery {
    /// The empty union (unsatisfiable).
    pub fn empty() -> UnionQuery {
        UnionQuery::default()
    }

    /// A union with the given subqueries.
    pub fn new(queries: Vec<Query>) -> UnionQuery {
        UnionQuery { queries }
    }

    /// A singleton union.
    pub fn single(q: Query) -> UnionQuery {
        UnionQuery { queries: vec![q] }
    }

    /// The subqueries.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Number of subqueries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Is this the empty union?
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Append a subquery.
    pub fn push(&mut self, q: Query) {
        self.queries.push(q);
    }

    /// Iterate over subqueries.
    pub fn iter(&self) -> std::slice::Iter<'_, Query> {
        self.queries.iter()
    }

    /// Are all subqueries positive?
    pub fn is_positive(&self) -> bool {
        self.queries.iter().all(Query::is_positive)
    }

    /// Are all subqueries terminal?
    pub fn is_terminal(&self, schema: &Schema) -> bool {
        self.queries.iter().all(|q| q.is_terminal(schema))
    }
}

impl IntoIterator for UnionQuery {
    type Item = Query;
    type IntoIter = std::vec::IntoIter<Query>;
    fn into_iter(self) -> Self::IntoIter {
        self.queries.into_iter()
    }
}

impl<'a> IntoIterator for &'a UnionQuery {
    type Item = &'a Query;
    type IntoIter = std::slice::Iter<'a, Query>;
    fn into_iter(self) -> Self::IntoIter {
        self.queries.iter()
    }
}

impl FromIterator<Query> for UnionQuery {
    fn from_iter<T: IntoIterator<Item = Query>>(iter: T) -> UnionQuery {
        UnionQuery {
            queries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_schema::samples;

    fn vehicle_query() -> (oocq_schema::Schema, Query) {
        let s = samples::vehicle_rental();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        b.range(y, [s.class_id("Discount").unwrap()]);
        b.member(x, y, s.attr_id("VehRented").unwrap());
        (s.clone(), b.build())
    }

    #[test]
    fn builder_produces_expected_shape() {
        let (_, q) = vehicle_query();
        assert_eq!(q.var_count(), 2);
        assert_eq!(q.atoms().len(), 3);
        assert_eq!(q.var_name(q.free_var()), "x");
        assert!(q.is_positive());
        assert!(q.is_inequality_free());
    }

    #[test]
    fn terminality_depends_on_range_classes() {
        let (s, q) = vehicle_query();
        // Vehicle is non-terminal, so the query is not terminal.
        assert!(!q.is_terminal(&s));

        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("Auto").unwrap()]);
        let q2 = b.build();
        assert!(q2.is_terminal(&s));
        assert_eq!(q2.terminal_class_of(x), Some(s.class_id("Auto").unwrap()));
    }

    #[test]
    fn range_lookup_and_count() {
        let (s, q) = vehicle_query();
        let x = q.free_var();
        assert_eq!(q.range_of(x), Some(&[s.class_id("Vehicle").unwrap()][..]));
        assert_eq!(q.range_count(x), 1);
    }

    #[test]
    fn with_extra_atoms_deduplicates() {
        let (_, q) = vehicle_query();
        let existing = q.atoms()[0].clone();
        let aug = q.with_extra_atoms([existing]);
        assert_eq!(aug.atoms().len(), q.atoms().len());
    }

    #[test]
    fn positivity_flags() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).neq_vars(x, y);
        let q = b.build();
        assert!(!q.is_positive());
        assert!(!q.is_inequality_free());
        assert!(q.is_positive_with_inequalities());
    }

    #[test]
    fn apply_mapping_collapses_and_compacts() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [c]).range(y, [c]).range(z, [c]);
        b.eq_vars(x, y);
        let q = b.build();
        // Map z ↦ y, identity elsewhere: z disappears.
        let map = vec![x, y, y];
        let folded = q.apply_mapping(&map);
        assert_eq!(folded.var_count(), 2);
        assert_eq!(folded.var_name(folded.free_var()), "x");
        // Exactly two range atoms and one equality survive.
        assert_eq!(folded.atoms().len(), 3);
    }

    #[test]
    fn path_introduces_fresh_equated_vars() {
        let s = samples::vehicle_rental();
        let assigned = s.attr_id("AssignedTo").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let end = b.path(x, &[assigned]);
        let q = b.build();
        assert_ne!(end, x);
        assert_eq!(q.var_count(), 2);
        assert!(matches!(q.atoms()[0], Atom::Eq(..)));
    }

    #[test]
    fn union_basics() {
        let (_, q) = vehicle_query();
        let mut u = UnionQuery::empty();
        assert!(u.is_empty());
        u.push(q.clone());
        u.push(q);
        assert_eq!(u.len(), 2);
        assert!(u.is_positive());
        let collected: UnionQuery = u.iter().cloned().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    fn same_modulo_atom_order() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let build = |flip: bool| {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            let y = b.var("y");
            if flip {
                b.range(y, [c]).range(x, [c]);
            } else {
                b.range(x, [c]).range(y, [c]);
            }
            b.build()
        };
        assert!(build(false).same_modulo_atom_order(&build(true)));
    }
}

//! Term classification, well-formedness (§2.3), and normalization.
//!
//! An occurrence of a term in the matrix is a *set occurrence* when it is
//! the right-hand side of a membership or non-membership atom, and an
//! *object occurrence* otherwise. A term is an object (resp. set) term when
//! its equivalence class in `E(Q)` contains a term with an object (resp.
//! set) occurrence.
//!
//! A conjunctive query is **well-formed** when
//!
//! 1. every term is an object term or a set term but not both,
//! 2. every object term of the form `x.A` is equated to some variable, and
//! 3. every variable has exactly one range atom.
//!
//! Conditions (2) and (3) are conveniences, not restrictions; [`normalize`]
//! repairs violations of them exactly as the paper prescribes (fresh
//! variables plus equalities, and ranges over all classes).

use crate::atom::Atom;
use crate::equality::EqualityGraph;
use crate::error::WellFormedError;
use crate::query::Query;
use crate::term::{Term, VarId};
use oocq_schema::{ClassId, Schema};
use std::collections::HashSet;

/// The result of analysing a query: its equality graph plus the object/set
/// classification of every equivalence class.
#[derive(Clone, Debug)]
pub struct QueryAnalysis {
    graph: EqualityGraph,
    object_roots: HashSet<usize>,
    set_roots: HashSet<usize>,
}

impl QueryAnalysis {
    /// Build `E(Q)` and classify every term.
    pub fn of(q: &Query) -> QueryAnalysis {
        let graph = EqualityGraph::build(q);
        let mut object_roots = HashSet::new();
        let mut set_roots = HashSet::new();
        for atom in q.atoms() {
            match atom {
                Atom::Range(v, _) | Atom::NonRange(v, _) => {
                    object_roots.extend(graph.class_id(Term::Var(*v)));
                }
                Atom::Eq(a, b) | Atom::Neq(a, b) => {
                    object_roots.extend(graph.class_id(*a));
                    object_roots.extend(graph.class_id(*b));
                }
                Atom::Member(x, y, a) | Atom::NonMember(x, y, a) => {
                    object_roots.extend(graph.class_id(Term::Var(*x)));
                    set_roots.extend(graph.class_id(Term::Attr(*y, *a)));
                }
            }
        }
        QueryAnalysis {
            graph,
            object_roots,
            set_roots,
        }
    }

    /// Analyse `q.with_extra_atoms(extra)` incrementally: the equality graph
    /// is extended via [`EqualityGraph::extended`] (no rebuild from the
    /// query), and the object/set classification is carried over by remapping
    /// the old class roots through the extended graph, then classifying the
    /// extra atoms. Produces exactly what `QueryAnalysis::of` would on the
    /// augmented query, at a fraction of the cost; this is the containment
    /// branch engine's per-augmentation fast path.
    pub fn extended(&self, extra: &[Atom]) -> QueryAnalysis {
        let graph = self.graph.extended(extra);
        // Roots computed on the base graph are node indices, which are stable
        // under extension; classes can only merge, so remapping through the
        // new canonical map preserves every classification.
        let mut object_roots: HashSet<usize> = self
            .object_roots
            .iter()
            .map(|&r| graph.canonical(r))
            .collect();
        let mut set_roots: HashSet<usize> =
            self.set_roots.iter().map(|&r| graph.canonical(r)).collect();
        for atom in extra {
            match atom {
                Atom::Range(v, _) | Atom::NonRange(v, _) => {
                    object_roots.extend(graph.class_id(Term::Var(*v)));
                }
                Atom::Eq(a, b) | Atom::Neq(a, b) => {
                    object_roots.extend(graph.class_id(*a));
                    object_roots.extend(graph.class_id(*b));
                }
                Atom::Member(x, y, a) | Atom::NonMember(x, y, a) => {
                    object_roots.extend(graph.class_id(Term::Var(*x)));
                    set_roots.extend(graph.class_id(Term::Attr(*y, *a)));
                }
            }
        }
        QueryAnalysis {
            graph,
            object_roots,
            set_roots,
        }
    }

    /// The underlying equality graph `E(Q)`.
    pub fn graph(&self) -> &EqualityGraph {
        &self.graph
    }

    /// Is `t` an object term?
    pub fn is_object_term(&self, t: Term) -> bool {
        self.graph
            .class_id(t)
            .is_some_and(|r| self.object_roots.contains(&r))
    }

    /// Is `t` a set term?
    pub fn is_set_term(&self, t: Term) -> bool {
        self.graph
            .class_id(t)
            .is_some_and(|r| self.set_roots.contains(&r))
    }
}

/// Check the three well-formedness conditions of §2.3.
pub fn check_well_formed(q: &Query) -> Result<QueryAnalysis, WellFormedError> {
    let analysis = QueryAnalysis::of(q);
    // (iii) every variable has exactly one range atom.
    for v in q.vars() {
        let n = q.range_count(v);
        if n != 1 {
            return Err(WellFormedError::RangeCount {
                var: q.var_name(v).to_owned(),
                count: n,
            });
        }
    }
    // (i) object/set exclusivity, (ii) object attribute terms are equated to
    // a variable.
    for &t in analysis.graph.terms() {
        let obj = analysis.is_object_term(t);
        let set = analysis.is_set_term(t);
        if obj && set {
            return Err(WellFormedError::MixedTerm(describe_term(q, t)));
        }
        if !obj && !set {
            return Err(WellFormedError::UnclassifiedTerm(describe_term(q, t)));
        }
        if obj && !t.is_var() && analysis.graph.representative_var(t).is_none() {
            return Err(WellFormedError::UnequatedAttrTerm(describe_term(q, t)));
        }
    }
    Ok(analysis)
}

fn describe_term(q: &Query, t: Term) -> String {
    match t {
        Term::Var(v) => q.var_name(v).to_owned(),
        Term::Attr(v, a) => format!("{}.#{}", q.var_name(v), a.index()),
    }
}

/// The maximal classes of a schema (no proper superclass). A variable with
/// no range constraint ranges over the disjunction of these — equivalent,
/// under the partitioning assumption, to ranging over every class.
pub fn maximal_classes(schema: &Schema) -> Vec<ClassId> {
    schema
        .classes()
        .filter(|&c| schema.parents(c).is_empty())
        .collect()
}

/// Repair well-formedness conditions (ii) and (iii) as described in §2.3:
///
/// * a variable with no range atom receives one over all (maximal) classes;
/// * a variable with several range atoms is split: fresh variables carry the
///   extra range atoms and are equated to the original;
/// * an object term `x.A` with no variable in its equivalence class is
///   equated to a fresh variable ranging over all classes.
///
/// Condition (i) cannot be repaired; a violation is reported as an error.
pub fn normalize(q: &Query, schema: &Schema) -> Result<Query, WellFormedError> {
    let all = maximal_classes(schema);
    let mut work = q.clone();

    // (iii): ensure exactly one range atom per variable.
    let mut extra: Vec<Atom> = Vec::new();
    let mut rebuilt = crate::query::QueryBuilder::new(q.var_name(q.free_var()));
    // Recreate the variable table in order so ids are stable.
    let mut ids: Vec<VarId> = Vec::with_capacity(q.var_count());
    for v in q.vars() {
        if v == q.free_var() {
            ids.push(rebuilt.free());
        } else {
            ids.push(rebuilt.var(q.var_name(v)));
        }
    }
    let mut seen_range: Vec<bool> = vec![false; q.var_count()];
    for atom in work.atoms() {
        match atom {
            Atom::Range(v, cs) => {
                if seen_range[v.index()] {
                    // Extra range: move it to a fresh equated variable.
                    let fresh = rebuilt.var(&format!("{}_r", q.var_name(*v)));
                    rebuilt.range(fresh, cs.iter().copied());
                    rebuilt.eq_vars(ids[v.index()], fresh);
                } else {
                    seen_range[v.index()] = true;
                    rebuilt.range(ids[v.index()], cs.iter().copied());
                }
            }
            other => {
                rebuilt.atom(other.map_vars(|v| ids[v.index()]));
            }
        }
    }
    for v in q.vars() {
        if !seen_range[v.index()] {
            rebuilt.range(ids[v.index()], all.iter().copied());
        }
    }
    work = rebuilt.build();

    // (ii): equate unequated object attribute terms to fresh variables.
    // Adding `z = x.A` never creates new attribute terms, so one extra
    // analysis round suffices; we loop defensively with a small bound.
    for _ in 0..4 {
        let analysis = QueryAnalysis::of(&work);
        let mut fixes: Vec<Term> = Vec::new();
        for &t in analysis.graph().terms() {
            if !t.is_var()
                && analysis.is_object_term(t)
                && analysis.graph().representative_var(t).is_none()
                && !fixes.iter().any(|f| analysis.graph().same(*f, t))
            {
                fixes.push(t);
            }
        }
        if fixes.is_empty() {
            break;
        }
        let mut b = builder_from(&work);
        for (i, t) in fixes.into_iter().enumerate() {
            let fresh = b.var(&format!("_w{i}"));
            b.range(fresh, all.iter().copied());
            b.eq(Term::Var(fresh), t);
        }
        work = b.build();
        extra.clear();
    }
    debug_assert!(extra.is_empty());

    check_well_formed(&work)?;
    Ok(work)
}

/// Rebuild a [`QueryBuilder`](crate::QueryBuilder) seeded with an existing
/// query (same variables, same atoms), for appending.
fn builder_from(q: &Query) -> crate::query::QueryBuilder {
    let mut b = crate::query::QueryBuilder::new(q.var_name(q.free_var()));
    let mut ids = Vec::with_capacity(q.var_count());
    for v in q.vars() {
        if v == q.free_var() {
            ids.push(b.free());
        } else {
            ids.push(b.var(q.var_name(v)));
        }
    }
    for atom in q.atoms() {
        b.atom(atom.map_vars(|v| ids[v.index()]));
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use oocq_schema::samples;

    #[test]
    fn vehicle_query_is_well_formed() {
        let s = samples::vehicle_rental();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        b.range(y, [s.class_id("Discount").unwrap()]);
        b.member(x, y, s.attr_id("VehRented").unwrap());
        assert!(check_well_formed(&b.build()).is_ok());
    }

    #[test]
    fn missing_range_is_detected_and_repaired() {
        let s = samples::vehicle_rental();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(y, [s.class_id("Discount").unwrap()]);
        b.member(x, y, s.attr_id("VehRented").unwrap());
        let q = b.build();
        assert!(matches!(
            check_well_formed(&q),
            Err(WellFormedError::RangeCount { count: 0, .. })
        ));
        let fixed = normalize(&q, &s).unwrap();
        assert_eq!(fixed.range_count(x), 1);
        // x now ranges over the maximal classes Vehicle and Client.
        let range = fixed.range_of(x).unwrap();
        assert_eq!(range.len(), 2);
    }

    #[test]
    fn double_range_is_split() {
        let s = samples::vehicle_rental();
        let auto = s.class_id("Auto").unwrap();
        let truck = s.class_id("Truck").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [auto]).range(x, [truck]);
        let q = b.build();
        assert!(check_well_formed(&q).is_err());
        let fixed = normalize(&q, &s).unwrap();
        assert_eq!(fixed.range_count(fixed.free_var()), 1);
        assert_eq!(fixed.var_count(), 2);
        // The fresh variable carries the second range and is equated to x.
        assert!(fixed
            .atoms()
            .iter()
            .any(|a| matches!(a, Atom::Eq(Term::Var(_), Term::Var(_)))));
    }

    #[test]
    fn unequated_object_attr_term_is_repaired() {
        // x.A = y.A (both object terms, no variable in either class).
        let s = samples::example_31();
        let c = s.class_id("C").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]);
        b.eq(Term::Attr(x, a), Term::Attr(y, a));
        let q = b.build();
        assert!(matches!(
            check_well_formed(&q),
            Err(WellFormedError::UnequatedAttrTerm(_))
        ));
        let fixed = normalize(&q, &s).unwrap();
        let analysis = check_well_formed(&fixed).unwrap();
        assert!(analysis
            .graph()
            .representative_var(Term::Attr(x, a))
            .is_some());
    }

    #[test]
    fn mixed_term_is_rejected_even_by_normalize() {
        // z = y.A makes y.A an object term; x ∈ y.A makes it a set term.
        let s = samples::example_31();
        let c = s.class_id("C").unwrap();
        let d = s.class_id("D").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [d]).range(y, [c]).range(z, [d]);
        b.eq_attr(z, y, a);
        b.member(x, y, a);
        let q = b.build();
        assert!(matches!(
            check_well_formed(&q),
            Err(WellFormedError::MixedTerm(_))
        ));
        assert!(normalize(&q, &s).is_err());
    }

    #[test]
    fn set_term_classification() {
        let s = samples::vehicle_rental();
        let veh = s.attr_id("VehRented").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        b.range(y, [s.class_id("Discount").unwrap()]);
        b.member(x, y, veh);
        let q = b.build();
        let analysis = QueryAnalysis::of(&q);
        assert!(analysis.is_set_term(Term::Attr(y, veh)));
        assert!(!analysis.is_object_term(Term::Attr(y, veh)));
        assert!(analysis.is_object_term(Term::Var(x)));
        assert!(analysis.is_object_term(Term::Var(y)));
    }

    #[test]
    fn equated_set_terms_share_classification() {
        // x ∈ y.A and x ∈ z.A with y = z: both attr terms are one set class.
        let s = samples::example_33();
        let t1 = s.class_id("T1").unwrap();
        let t2 = s.class_id("T2").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [t1]).range(y, [t2]).range(z, [t2]);
        b.eq_vars(y, z);
        b.member(x, y, a);
        let q = b.build();
        let analysis = QueryAnalysis::of(&q);
        // z.A is not even a node (never occurs) — but y.A is a set term.
        assert!(analysis.is_set_term(Term::Attr(y, a)));
        assert!(!analysis.graph().has_term(Term::Attr(z, a)));
        check_well_formed(&q).unwrap();
    }

    #[test]
    fn extended_analysis_matches_full_reanalysis() {
        let s = samples::vehicle_rental();
        let veh = s.class_id("Vehicle").unwrap();
        let cli = s.class_id("Client").unwrap();
        let a = s.attr_id("VehRented").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [veh]).range(y, [cli]).range(z, [cli]);
        b.member(x, y, a);
        let q = b.build();
        let base = QueryAnalysis::of(&q);

        // An equality plus a membership over a previously-absent attr term:
        // both the graph and the classification must match a fresh analysis.
        let extra = vec![Atom::Eq(Term::Var(y), Term::Var(z)), Atom::Member(x, z, a)];
        let ext = base.extended(&extra);
        let full = QueryAnalysis::of(&q.with_extra_atoms(extra));
        assert_eq!(ext.graph().terms(), full.graph().terms());
        for &t in full.graph().terms() {
            assert_eq!(ext.is_object_term(t), full.is_object_term(t), "{t:?}");
            assert_eq!(ext.is_set_term(t), full.is_set_term(t), "{t:?}");
        }
    }

    #[test]
    fn maximal_classes_of_samples() {
        let s = samples::vehicle_rental();
        let names: Vec<&str> = maximal_classes(&s)
            .iter()
            .map(|&c| s.class_name(c))
            .collect();
        assert_eq!(names, ["Vehicle", "Client"]);
    }

    #[test]
    fn normalize_is_identity_on_well_formed_queries() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).neq_vars(x, y);
        let q = b.build();
        let n = normalize(&q, &s).unwrap();
        assert!(n.same_modulo_atom_order(&q));
    }
}

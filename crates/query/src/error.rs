//! Errors for query analysis.

use std::error::Error;
use std::fmt;

/// Violations of the well-formedness conditions of §2.3.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WellFormedError {
    /// A term is both an object term and a set term (condition (i)); this is
    /// a genuine error that normalization cannot repair.
    MixedTerm(String),
    /// A term has no occurrence classifying it (should not happen once every
    /// variable has a range atom).
    UnclassifiedTerm(String),
    /// An object term of the form `x.A` is not equated to any variable
    /// (condition (ii)); repaired by normalization.
    UnequatedAttrTerm(String),
    /// A variable has `count ≠ 1` range atoms (condition (iii)); repaired by
    /// normalization.
    RangeCount {
        /// The offending variable's name.
        var: String,
        /// How many range atoms it has.
        count: usize,
    },
}

impl fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormedError::MixedTerm(t) => {
                write!(f, "term `{t}` is used both as an object and as a set")
            }
            WellFormedError::UnclassifiedTerm(t) => {
                write!(f, "term `{t}` has no classifying occurrence")
            }
            WellFormedError::UnequatedAttrTerm(t) => {
                write!(f, "object term `{t}` is not equated to any variable")
            }
            WellFormedError::RangeCount { var, count } => {
                write!(
                    f,
                    "variable `{var}` has {count} range atoms, expected exactly 1"
                )
            }
        }
    }
}

impl Error for WellFormedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_culprit() {
        assert!(WellFormedError::MixedTerm("y.A".into())
            .to_string()
            .contains("y.A"));
        assert!(WellFormedError::RangeCount {
            var: "x".into(),
            count: 2
        }
        .to_string()
        .contains("2 range atoms"));
    }
}

//! Algorithm *EqualityGraph* (§2.3 of the paper).
//!
//! Given a conjunctive query, the complete equality relationship graph
//! `E(Q)` closes the explicit equality atoms under
//!
//! 1. reflexivity (every term equals itself),
//! 2. transitivity, and
//! 3. attribute congruence: if `x = y` for variables `x, y` and both `x.A`
//!    and `y.A` are **nodes of the graph**, then `x.A = y.A`.
//!
//! The nodes are exactly the terms occurring in the query (all variables,
//! plus every attribute term mentioned by some atom) — congruence never
//! invents new terms. The equivalence classes of `E(Q)`, written `[f(x)]`,
//! drive derivability (§3.1), satisfiability, and minimization.
//!
//! Implementation: union-find with path halving plus a fixpoint loop for the
//! congruence rule (attribute terms grouped by attribute, then merged when
//! their base variables share a class).

use crate::atom::Atom;
use crate::query::Query;
use crate::term::{Term, VarId};
use oocq_schema::AttrId;
use std::collections::HashMap;

/// The complete equality relationship graph `E(Q)` of a query, exposed as a
/// partition of the query's terms into equivalence classes.
#[derive(Clone, Debug)]
pub struct EqualityGraph {
    terms: Vec<Term>,
    index: HashMap<Term, usize>,
    /// Union-find parent (fully compressed after construction).
    parent: Vec<usize>,
    /// Members of each class, keyed by root node; sorted for determinism.
    members: HashMap<usize, Vec<Term>>,
}

impl EqualityGraph {
    /// Run Algorithm *EqualityGraph* on `q`.
    pub fn build(q: &Query) -> EqualityGraph {
        let mut terms: Vec<Term> = Vec::new();
        let mut index: HashMap<Term, usize> = HashMap::new();
        let intern = |t: Term, terms: &mut Vec<Term>, index: &mut HashMap<Term, usize>| {
            *index.entry(t).or_insert_with(|| {
                terms.push(t);
                terms.len() - 1
            })
        };
        // Step 1(i): every variable and every term occurring in an atom is a
        // node (the reflexive edge f(x)=f(x) is implicit in union-find).
        for v in q.vars() {
            intern(Term::Var(v), &mut terms, &mut index);
        }
        for a in q.atoms() {
            for t in a.terms() {
                intern(t, &mut terms, &mut index);
            }
        }

        let mut parent: Vec<usize> = (0..terms.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]]; // path halving
                x = parent[x];
            }
            x
        }
        fn union(parent: &mut [usize], a: usize, b: usize) -> bool {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra == rb {
                return false;
            }
            // Deterministic: smaller index wins as root.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi] = lo;
            true
        }

        // Step 1(i)/(ii): explicit equality atoms, closed transitively by
        // union-find.
        for a in q.atoms() {
            if let Atom::Eq(s, t) = a {
                union(&mut parent, index[s], index[t]);
            }
        }

        // Step 1(iii): congruence on attributes, to fixpoint. Group the
        // attribute-term nodes by attribute; within a group, merge nodes
        // whose base variables are currently equal.
        let mut by_attr: HashMap<AttrId, Vec<(usize, usize)>> = HashMap::new();
        for (node, t) in terms.iter().enumerate() {
            if let Term::Attr(v, a) = *t {
                let var_node = index[&Term::Var(v)];
                by_attr.entry(a).or_default().push((var_node, node));
            }
        }
        loop {
            let mut changed = false;
            for group in by_attr.values() {
                let mut rep: HashMap<usize, usize> = HashMap::new();
                for &(var_node, attr_node) in group {
                    let vr = find(&mut parent, var_node);
                    match rep.get(&vr) {
                        Some(&first) => changed |= union(&mut parent, first, attr_node),
                        None => {
                            rep.insert(vr, attr_node);
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Freeze: full path compression + member lists.
        for i in 0..parent.len() {
            let r = find(&mut parent, i);
            parent[i] = r;
        }
        let mut members: HashMap<usize, Vec<Term>> = HashMap::new();
        for (node, t) in terms.iter().enumerate() {
            members.entry(parent[node]).or_default().push(*t);
        }
        for v in members.values_mut() {
            v.sort();
        }
        EqualityGraph {
            terms,
            index,
            parent,
            members,
        }
    }

    /// Extend the graph with additional atoms **incrementally**, without
    /// rebuilding from the query. Produces exactly the same graph as
    /// [`EqualityGraph::build`] on `q.with_extra_atoms(extra)`:
    ///
    /// * terms are interned in the same order (existing nodes keep their
    ///   indices; genuinely new terms — rare, e.g. a representative-variable
    ///   attribute term introduced by a membership augmentation — are
    ///   appended, exactly as a full rebuild would append them);
    /// * the union-find links the larger root under the smaller, so the root
    ///   of every class is its minimum node index regardless of union order;
    /// * the congruence closure is a least fixpoint, hence confluent.
    ///
    /// Together these make the result independent of whether the extra atoms
    /// were present from the start or added here. The containment branch
    /// engine relies on this to share one base graph across thousands of
    /// augmentation branches instead of re-running the fixpoint from scratch.
    pub fn extended(&self, extra: &[Atom]) -> EqualityGraph {
        let mut terms = self.terms.clone();
        let mut index = self.index.clone();
        for a in extra {
            for t in a.terms() {
                index.entry(t).or_insert_with(|| {
                    terms.push(t);
                    terms.len() - 1
                });
            }
        }

        // The frozen parent array is a valid (fully compressed) union-find
        // state; resume from it.
        let mut parent = self.parent.clone();
        parent.extend(self.parent.len()..terms.len());

        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        fn union(parent: &mut [usize], a: usize, b: usize) -> bool {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra == rb {
                return false;
            }
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi] = lo;
            true
        }

        for a in extra {
            if let Atom::Eq(s, t) = a {
                union(&mut parent, index[s], index[t]);
            }
        }

        let mut by_attr: HashMap<AttrId, Vec<(usize, usize)>> = HashMap::new();
        for (node, t) in terms.iter().enumerate() {
            if let Term::Attr(v, a) = *t {
                let var_node = index[&Term::Var(v)];
                by_attr.entry(a).or_default().push((var_node, node));
            }
        }
        loop {
            let mut changed = false;
            for group in by_attr.values() {
                let mut rep: HashMap<usize, usize> = HashMap::new();
                for &(var_node, attr_node) in group {
                    let vr = find(&mut parent, var_node);
                    match rep.get(&vr) {
                        Some(&first) => changed |= union(&mut parent, first, attr_node),
                        None => {
                            rep.insert(vr, attr_node);
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        for i in 0..parent.len() {
            let r = find(&mut parent, i);
            parent[i] = r;
        }
        let mut members: HashMap<usize, Vec<Term>> = HashMap::new();
        for (node, t) in terms.iter().enumerate() {
            members.entry(parent[node]).or_default().push(*t);
        }
        for v in members.values_mut() {
            v.sort();
        }
        EqualityGraph {
            terms,
            index,
            parent,
            members,
        }
    }

    /// The canonical (root) node of graph node `n`. Used to remap class roots
    /// computed against a base graph onto an [`extended`](Self::extended)
    /// graph, where classes may have merged but node indices are stable.
    pub fn canonical(&self, n: usize) -> usize {
        self.parent[n]
    }

    /// Is `t` a node of the graph (i.e. a term occurring in the query)?
    pub fn has_term(&self, t: Term) -> bool {
        self.index.contains_key(&t)
    }

    /// The canonical class id of a term, or `None` if the term does not
    /// occur in the query.
    pub fn class_id(&self, t: Term) -> Option<usize> {
        self.index.get(&t).map(|&n| self.parent[n])
    }

    /// Are two terms provably equal in `E(Q)`? Terms absent from the query
    /// are equal only to themselves.
    pub fn same(&self, a: Term, b: Term) -> bool {
        if a == b {
            return true;
        }
        match (self.class_id(a), self.class_id(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// The equivalence class `[t]`, sorted. Empty slice if `t` is not a node.
    pub fn class_members(&self, t: Term) -> &[Term] {
        self.class_id(t)
            .and_then(|r| self.members.get(&r))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The variables in `[t]`.
    pub fn vars_in_class(&self, t: Term) -> impl Iterator<Item = VarId> + '_ {
        self.class_members(t).iter().filter_map(|m| match m {
            Term::Var(v) => Some(*v),
            Term::Attr(..) => None,
        })
    }

    /// A canonical representative variable for `[t]` (the least variable in
    /// the class), if the class contains any variable.
    pub fn representative_var(&self, t: Term) -> Option<VarId> {
        self.vars_in_class(t).next()
    }

    /// Iterate over all equivalence classes (sorted member lists), in a
    /// deterministic order.
    pub fn classes(&self) -> impl Iterator<Item = &[Term]> {
        let mut roots: Vec<&Vec<Term>> = self.members.values().collect();
        roots.sort_by_key(|ms| ms[0]);
        roots.into_iter().map(Vec::as_slice)
    }

    /// All terms (nodes) of the graph.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use oocq_schema::{samples, AttrId};

    #[test]
    fn explicit_equalities_are_transitive() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [c]).range(y, [c]).range(z, [c]);
        b.eq_vars(x, y).eq_vars(y, z);
        let g = EqualityGraph::build(&b.build());
        assert!(g.same(Term::Var(x), Term::Var(z)));
        assert_eq!(g.class_members(Term::Var(x)).len(), 3);
    }

    #[test]
    fn reflexivity_without_explicit_atoms() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]);
        let g = EqualityGraph::build(&b.build());
        assert!(g.same(Term::Var(x), Term::Var(x)));
        assert!(!g.same(Term::Var(x), Term::Var(y)));
        assert_eq!(g.class_members(Term::Var(x)), &[Term::Var(x)]);
    }

    #[test]
    fn congruence_merges_attribute_terms() {
        // x = y, with x.A and y.A both present ⇒ x.A = y.A (step 1(iii)).
        let s = samples::example_31();
        let c = s.class_id("C").unwrap();
        let d = s.class_id("D").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let u = b.var("u");
        let v = b.var("v");
        b.range(x, [c]).range(y, [c]).range(u, [d]).range(v, [d]);
        b.eq_vars(x, y);
        b.eq_attr(u, x, a); // u = x.A
        b.eq_attr(v, y, a); // v = y.A
        let g = EqualityGraph::build(&b.build());
        assert!(g.same(Term::Attr(x, a), Term::Attr(y, a)));
        // ... and transitively u = v.
        assert!(g.same(Term::Var(u), Term::Var(v)));
    }

    #[test]
    fn congruence_does_not_fire_without_both_nodes() {
        // x = y but only x.A occurs: no new node y.A is invented.
        let s = samples::example_31();
        let c = s.class_id("C").unwrap();
        let d = s.class_id("D").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let u = b.var("u");
        b.range(x, [c]).range(y, [c]).range(u, [d]);
        b.eq_vars(x, y);
        b.eq_attr(u, x, a);
        let g = EqualityGraph::build(&b.build());
        assert!(!g.has_term(Term::Attr(y, a)));
        // same() on an absent term is only reflexive.
        assert!(g.same(Term::Attr(y, a), Term::Attr(y, a)));
        assert!(!g.same(Term::Attr(y, a), Term::Attr(x, a)));
    }

    #[test]
    fn congruence_cascades_to_fixpoint() {
        // Chain: u1 = x.A, u2 = y.A, x = y makes u1 = u2; then u1.B / u2.B
        // must also merge in a second congruence round.
        let mut sb = oocq_schema::SchemaBuilder::new();
        let c = sb.class("C").unwrap();
        sb.attribute(c, "A", oocq_schema::AttrType::Object(c))
            .unwrap();
        sb.attribute(c, "B", oocq_schema::AttrType::Object(c))
            .unwrap();
        let s = sb.finish().unwrap();
        let a = s.attr_id("A").unwrap();
        let bb = s.attr_id("B").unwrap();

        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let u1 = b.var("u1");
        let u2 = b.var("u2");
        let w1 = b.var("w1");
        let w2 = b.var("w2");
        for v in [x, y, u1, u2, w1, w2] {
            b.range(v, [c]);
        }
        b.eq_vars(x, y);
        b.eq_attr(u1, x, a);
        b.eq_attr(u2, y, a);
        b.eq_attr(w1, u1, bb);
        b.eq_attr(w2, u2, bb);
        let g = EqualityGraph::build(&b.build());
        assert!(g.same(Term::Var(u1), Term::Var(u2)));
        assert!(g.same(Term::Attr(u1, bb), Term::Attr(u2, bb)));
        assert!(g.same(Term::Var(w1), Term::Var(w2)));
    }

    #[test]
    fn representative_var_is_least() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).eq_vars(y, x);
        let g = EqualityGraph::build(&b.build());
        assert_eq!(g.representative_var(Term::Var(y)), Some(x));
    }

    fn assert_same_graph(a: &EqualityGraph, b: &EqualityGraph) {
        assert_eq!(a.terms(), b.terms());
        let ca: Vec<&[Term]> = a.classes().collect();
        let cb: Vec<&[Term]> = b.classes().collect();
        assert_eq!(ca, cb);
        for (n, _) in a.terms().iter().enumerate() {
            assert_eq!(a.canonical(n), b.canonical(n));
        }
    }

    #[test]
    fn extended_matches_full_rebuild() {
        let s = samples::example_31();
        let c = s.class_id("C").unwrap();
        let d = s.class_id("D").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let u = b.var("u");
        let v = b.var("v");
        b.range(x, [c]).range(y, [c]).range(u, [d]).range(v, [d]);
        b.eq_attr(u, x, a); // u = x.A
        b.eq_attr(v, y, a); // v = y.A
        let q = b.build();
        let base = EqualityGraph::build(&q);

        // Equating x = y must trigger the congruence x.A = y.A in the
        // extension, exactly as in a rebuild.
        let extra = vec![Atom::Eq(Term::Var(x), Term::Var(y))];
        let ext = base.extended(&extra);
        let rebuilt = EqualityGraph::build(&q.with_extra_atoms(extra));
        assert_same_graph(&ext, &rebuilt);
        assert!(ext.same(Term::Var(u), Term::Var(v)));
    }

    #[test]
    fn extended_interns_new_terms_in_rebuild_order() {
        // A membership augmentation can mention an attribute term that is not
        // yet a node; the extension must append it exactly where a rebuild
        // would.
        let s = samples::vehicle_rental();
        let veh = s.class_id("Vehicle").unwrap();
        let cli = s.class_id("Client").unwrap();
        let a = s.attr_id("VehRented").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [veh]).range(y, [cli]);
        let q = b.build();
        let base = EqualityGraph::build(&q);
        assert!(!base.has_term(Term::Attr(y, a)));

        let extra = vec![Atom::Member(x, y, a)];
        let ext = base.extended(&extra);
        let rebuilt = EqualityGraph::build(&q.with_extra_atoms(extra));
        assert_same_graph(&ext, &rebuilt);
        assert!(ext.has_term(Term::Attr(y, a)));
    }

    #[test]
    fn extended_with_no_atoms_is_identity() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).eq_vars(x, y);
        let g = EqualityGraph::build(&b.build());
        assert_same_graph(&g.extended(&[]), &g);
    }

    #[test]
    fn classes_partition_all_terms() {
        let s = samples::example_31();
        let c = s.class_id("C").unwrap();
        let d = s.class_id("D").unwrap();
        let a: AttrId = s.attr_id("A").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let z = b.var("z");
        b.range(x, [c]).range(z, [d]);
        b.eq_attr(z, x, a);
        let g = EqualityGraph::build(&b.build());
        let total: usize = g.classes().map(<[Term]>::len).sum();
        assert_eq!(total, g.terms().len());
        // {x}, {z, x.A}
        assert_eq!(g.classes().count(), 2);
    }
}

//! Atomic formulas (§2.2 of the paper).

use crate::term::{Term, VarId};
use oocq_schema::{AttrId, ClassId};

/// An atomic formula.
///
/// The paper's three families, each with a positive and a negative form:
///
/// 1. range / non-range atoms `x θ C₁ ∨ … ∨ Cₙ` with `θ ∈ {∈, ∉}`;
/// 2. equality / inequality atoms `g(x) θ h(y)` with `θ ∈ {=, ≠}`;
/// 3. membership / non-membership atoms `x θ y.A` with `θ ∈ {∈, ∉}`.
///
/// An atom is *positive* if it is a range, equality, or membership atom.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Atom {
    /// `x ∈ C₁ ∨ … ∨ Cₙ`: the object denoted by `x` belongs to some `Cᵢ`.
    Range(VarId, Vec<ClassId>),
    /// `x ∉ C₁ ∨ … ∨ Cₙ`: the object denoted by `x` belongs to no `Cᵢ`.
    NonRange(VarId, Vec<ClassId>),
    /// `g(x) = h(y)`: both terms denote the identical object.
    Eq(Term, Term),
    /// `g(x) ≠ h(y)`: the terms denote different objects.
    Neq(Term, Term),
    /// `x ∈ y.A`: the object denoted by `x` is a member of the set object
    /// denoted by `y.A`.
    Member(VarId, VarId, AttrId),
    /// `x ∉ y.A`: `x` is not a member of `y.A`.
    NonMember(VarId, VarId, AttrId),
}

impl Atom {
    /// Is this a positive atom (range, equality, or membership)?
    pub fn is_positive(&self) -> bool {
        matches!(self, Atom::Range(..) | Atom::Eq(..) | Atom::Member(..))
    }

    /// Is this an inequality atom? (Used by Corollary 3.2's
    /// "non-inequality atoms only" precondition.)
    pub fn is_inequality(&self) -> bool {
        matches!(self, Atom::Neq(..))
    }

    /// Every term occurring in the atom, in syntactic order.
    ///
    /// Range/non-range atoms contribute the bare variable; membership atoms
    /// contribute the member variable and the set-valued attribute term.
    pub fn terms(&self) -> Vec<Term> {
        match self {
            Atom::Range(v, _) | Atom::NonRange(v, _) => vec![Term::Var(*v)],
            Atom::Eq(a, b) | Atom::Neq(a, b) => vec![*a, *b],
            Atom::Member(x, y, a) | Atom::NonMember(x, y, a) => {
                vec![Term::Var(*x), Term::Attr(*y, *a)]
            }
        }
    }

    /// Every variable occurring in the atom.
    pub fn vars(&self) -> Vec<VarId> {
        match self {
            Atom::Range(v, _) | Atom::NonRange(v, _) => vec![*v],
            Atom::Eq(a, b) | Atom::Neq(a, b) => vec![a.var(), b.var()],
            Atom::Member(x, y, _) | Atom::NonMember(x, y, _) => vec![*x, *y],
        }
    }

    /// Apply a variable substitution to the atom.
    ///
    /// `map` sends each old variable index to a new [`VarId`]; class lists
    /// and attributes are untouched. This is `μ(A)` for a variable mapping
    /// `μ` (§3.1).
    pub fn map_vars(&self, map: impl Fn(VarId) -> VarId) -> Atom {
        match self {
            Atom::Range(v, cs) => Atom::Range(map(*v), cs.clone()),
            Atom::NonRange(v, cs) => Atom::NonRange(map(*v), cs.clone()),
            Atom::Eq(a, b) => Atom::Eq(a.with_var(map(a.var())), b.with_var(map(b.var()))),
            Atom::Neq(a, b) => Atom::Neq(a.with_var(map(a.var())), b.with_var(map(b.var()))),
            Atom::Member(x, y, a) => Atom::Member(map(*x), map(*y), *a),
            Atom::NonMember(x, y, a) => Atom::NonMember(map(*x), map(*y), *a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_schema::{AttrId, ClassId};

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn positivity_classification() {
        let c = ClassId::from_index(0);
        let a = AttrId::from_index(0);
        assert!(Atom::Range(v(0), vec![c]).is_positive());
        assert!(Atom::Eq(Term::Var(v(0)), Term::Var(v(1))).is_positive());
        assert!(Atom::Member(v(0), v(1), a).is_positive());
        assert!(!Atom::NonRange(v(0), vec![c]).is_positive());
        assert!(!Atom::Neq(Term::Var(v(0)), Term::Var(v(1))).is_positive());
        assert!(!Atom::NonMember(v(0), v(1), a).is_positive());
    }

    #[test]
    fn inequality_classification() {
        let a = AttrId::from_index(0);
        assert!(Atom::Neq(Term::Var(v(0)), Term::Var(v(1))).is_inequality());
        assert!(!Atom::NonMember(v(0), v(1), a).is_inequality());
        assert!(!Atom::Eq(Term::Var(v(0)), Term::Var(v(1))).is_inequality());
    }

    #[test]
    fn membership_atom_terms_include_attr_term() {
        let a = AttrId::from_index(3);
        let atom = Atom::Member(v(0), v(1), a);
        assert_eq!(atom.terms(), vec![Term::Var(v(0)), Term::Attr(v(1), a)]);
        assert_eq!(atom.vars(), vec![v(0), v(1)]);
    }

    #[test]
    fn map_vars_rewrites_all_positions() {
        let a = AttrId::from_index(0);
        let atom = Atom::Eq(Term::Attr(v(0), a), Term::Var(v(1)));
        let mapped = atom.map_vars(|x| VarId::from_index(x.index() + 10));
        assert_eq!(mapped, Atom::Eq(Term::Attr(v(10), a), Term::Var(v(11))));
    }
}

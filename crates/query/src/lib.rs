//! # oocq-query
//!
//! The conjunctive query language of Chan (PODS 1992), §2.2–§2.3: terms,
//! atoms, conjunctive queries and unions thereof, Algorithm *EqualityGraph*,
//! object/set term classification, well-formedness checking, and the
//! normalization that repairs conditions (ii)/(iii) of §2.3.
//!
//! Queries are pure syntax over a [`Schema`](oocq_schema::Schema)'s interned
//! class/attribute ids; all semantic operations (satisfiability,
//! containment, evaluation) live in the downstream crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod atom;
mod canonical;
mod display;
mod equality;
mod error;
mod isomorphism;
mod query;
mod term;

pub use analysis::{check_well_formed, maximal_classes, normalize, QueryAnalysis};
pub use atom::Atom;
pub use canonical::{canonical_form, canonical_form_budgeted, CanonicalQuery};
pub use display::{DisplayQuery, DisplayUnion};
pub use equality::EqualityGraph;
pub use error::WellFormedError;
pub use isomorphism::{find_isomorphism, isomorphic};
pub use query::{Query, QueryBuilder, UnionQuery};
pub use term::{Term, VarId};

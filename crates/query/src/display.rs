//! Rendering queries in the calculus-like concrete syntax.
//!
//! The output is accepted by `oocq-parser`, so `parse(display(q)) == q` up
//! to variable ids (a round-trip property test lives in that crate).

use crate::atom::Atom;
use crate::query::{Query, UnionQuery};
use crate::term::Term;
use oocq_schema::{ClassId, Schema};
use std::fmt;

/// A query paired with its schema for name resolution; implements
/// [`fmt::Display`].
pub struct DisplayQuery<'a> {
    query: &'a Query,
    schema: &'a Schema,
}

/// A union query paired with its schema; implements [`fmt::Display`].
pub struct DisplayUnion<'a> {
    union: &'a UnionQuery,
    schema: &'a Schema,
}

impl Query {
    /// Render with class/attribute names resolved against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DisplayQuery<'a> {
        DisplayQuery {
            query: self,
            schema,
        }
    }
}

impl UnionQuery {
    /// Render with class/attribute names resolved against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DisplayUnion<'a> {
        DisplayUnion {
            union: self,
            schema,
        }
    }
}

fn write_classes(f: &mut fmt::Formatter<'_>, schema: &Schema, cs: &[ClassId]) -> fmt::Result {
    for (i, c) in cs.iter().enumerate() {
        if i > 0 {
            write!(f, " | ")?;
        }
        write!(f, "{}", schema.class_name(*c))?;
    }
    Ok(())
}

fn write_term(f: &mut fmt::Formatter<'_>, q: &Query, schema: &Schema, t: Term) -> fmt::Result {
    match t {
        Term::Var(v) => write!(f, "{}", q.var_name(v)),
        Term::Attr(v, a) => write!(f, "{}.{}", q.var_name(v), schema.attr_name(a)),
    }
}

impl fmt::Display for DisplayQuery<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let q = self.query;
        let s = self.schema;
        write!(f, "{{ {} |", q.var_name(q.free_var()))?;
        let bound: Vec<_> = q.vars().filter(|&v| v != q.free_var()).collect();
        if !bound.is_empty() {
            write!(f, " exists ")?;
            for (i, v) in bound.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", q.var_name(*v))?;
            }
            write!(f, ":")?;
        }
        if q.atoms().is_empty() {
            write!(f, " true")?;
        }
        for (i, atom) in q.atoms().iter().enumerate() {
            if i > 0 {
                write!(f, " &")?;
            }
            write!(f, " ")?;
            match atom {
                Atom::Range(v, cs) => {
                    write!(f, "{} in ", q.var_name(*v))?;
                    write_classes(f, s, cs)?;
                }
                Atom::NonRange(v, cs) => {
                    write!(f, "{} not in ", q.var_name(*v))?;
                    write_classes(f, s, cs)?;
                }
                Atom::Eq(a, b) => {
                    write_term(f, q, s, *a)?;
                    write!(f, " = ")?;
                    write_term(f, q, s, *b)?;
                }
                Atom::Neq(a, b) => {
                    write_term(f, q, s, *a)?;
                    write!(f, " != ")?;
                    write_term(f, q, s, *b)?;
                }
                Atom::Member(x, y, a) => {
                    write!(
                        f,
                        "{} in {}.{}",
                        q.var_name(*x),
                        q.var_name(*y),
                        s.attr_name(*a)
                    )?;
                }
                Atom::NonMember(x, y, a) => {
                    write!(
                        f,
                        "{} not in {}.{}",
                        q.var_name(*x),
                        q.var_name(*y),
                        s.attr_name(*a)
                    )?;
                }
            }
        }
        write!(f, " }}")
    }
}

impl fmt::Display for DisplayUnion<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.union.is_empty() {
            return write!(f, "union {{}}");
        }
        for (i, q) in self.union.iter().enumerate() {
            if i > 0 {
                write!(f, " union ")?;
            }
            write!(f, "{}", q.display(self.schema))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::query::{QueryBuilder, UnionQuery};
    use oocq_schema::samples;

    #[test]
    fn vehicle_query_renders_like_the_paper() {
        let s = samples::vehicle_rental();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        b.range(y, [s.class_id("Discount").unwrap()]);
        b.member(x, y, s.attr_id("VehRented").unwrap());
        let q = b.build();
        assert_eq!(
            q.display(&s).to_string(),
            "{ x | exists y: x in Vehicle & y in Discount & x in y.VehRented }"
        );
    }

    #[test]
    fn negative_atoms_and_disjunction_render() {
        let s = samples::vehicle_rental();
        let auto = s.class_id("Auto").unwrap();
        let truck = s.class_id("Truck").unwrap();
        let veh = s.attr_id("VehRented").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [auto, truck]);
        b.range(y, [s.class_id("Client").unwrap()]);
        b.non_member(x, y, veh);
        b.neq_vars(x, y);
        let q = b.build();
        assert_eq!(
            q.display(&s).to_string(),
            "{ x | exists y: x in Auto | Truck & y in Client & x not in y.VehRented & x != y }"
        );
    }

    #[test]
    fn empty_matrix_renders_true() {
        let s = samples::single_class();
        let b = QueryBuilder::new("x");
        let q = b.build();
        assert_eq!(q.display(&s).to_string(), "{ x | true }");
    }

    #[test]
    fn union_renders_with_separator() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let make = || {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            b.range(x, [c]);
            b.build()
        };
        let u = UnionQuery::new(vec![make(), make()]);
        assert_eq!(
            u.display(&s).to_string(),
            "{ x | x in C } union { x | x in C }"
        );
        assert_eq!(UnionQuery::empty().display(&s).to_string(), "union {}");
    }
}

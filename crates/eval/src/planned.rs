//! A planned evaluator: join ordering plus value propagation.
//!
//! The naive evaluator scans each variable's full class extent. This one
//! builds a simple binding plan per query:
//!
//! * variables are ordered greedily, preferring those reachable from bound
//!   variables through an equality `v = y.A` (singleton generator) or a
//!   membership `v ∈ y.A` (set-member generator);
//! * each variable draws its candidates from the tightest available
//!   generator instead of the extent whenever possible;
//! * remaining atoms are checked as soon as their variables are bound.
//!
//! Same answers as [`answer`](crate::answer) on every query (a property
//! test enforces this); typically much faster on queries whose atoms link
//! variables, which is what the B6 benchmark measures.

use crate::eval::eval_atom;
use oocq_query::{Atom, Query, Term, VarId};
use oocq_schema::Schema;
use oocq_state::{Oid, State, Value};
use std::collections::BTreeSet;

/// How a variable obtains its candidate objects.
#[derive(Clone, Debug)]
enum Generator {
    /// The free variable's externally supplied candidate.
    Seed,
    /// Scan the union of the range classes' extents.
    Extent(Vec<oocq_schema::ClassId>),
    /// `v = y.A` with `y` already bound: at most one candidate.
    FromAttr(VarId, oocq_schema::AttrId),
    /// `v ∈ y.A` with `y` already bound: the set's members.
    FromMembers(VarId, oocq_schema::AttrId),
}

/// A compiled evaluation plan for one query.
#[derive(Clone, Debug)]
pub struct Plan {
    order: Vec<VarId>,
    generators: Vec<Generator>,
    /// Atoms to check after binding the i-th variable of `order`.
    checks: Vec<Vec<Atom>>,
}

impl Plan {
    /// Compile a plan for `q`. Deterministic; independent of any state.
    pub fn compile(q: &Query) -> Plan {
        let n = q.var_count();
        let mut bound = vec![false; n];
        let mut order: Vec<VarId> = Vec::with_capacity(n);
        let mut generators: Vec<Generator> = Vec::with_capacity(n);

        order.push(q.free_var());
        generators.push(Generator::Seed);
        bound[q.free_var().index()] = true;

        while order.len() < n {
            // Prefer a variable generated from a bound one via equality,
            // then via membership, then any unbound variable by extent.
            let mut choice: Option<(VarId, Generator, u8)> = None;
            for atom in q.atoms() {
                match atom {
                    Atom::Eq(a, b) => {
                        for (s, t) in [(a, b), (b, a)] {
                            if let (Term::Var(v), Term::Attr(y, at)) = (s, t) {
                                if !bound[v.index()] && bound[y.index()] {
                                    let cand = (*v, Generator::FromAttr(*y, *at), 0u8);
                                    if choice.as_ref().is_none_or(|c| cand.2 < c.2) {
                                        choice = Some(cand);
                                    }
                                }
                            }
                        }
                    }
                    Atom::Member(x, y, at) if !bound[x.index()] && bound[y.index()] => {
                        let cand = (*x, Generator::FromMembers(*y, *at), 1u8);
                        if choice.as_ref().is_none_or(|c| cand.2 < c.2) {
                            choice = Some(cand);
                        }
                    }
                    _ => {}
                }
                if matches!(choice, Some((_, _, 0))) {
                    break; // can't do better than a singleton generator
                }
            }
            let (v, g) = match choice {
                Some((v, g, _)) => (v, g),
                None => {
                    let v = q
                        .vars()
                        .find(|v| !bound[v.index()])
                        .expect("an unbound variable remains");
                    let ext = q.range_of(v).map(<[_]>::to_vec).unwrap_or_default();
                    (v, Generator::Extent(ext))
                }
            };
            bound[v.index()] = true;
            order.push(v);
            generators.push(g);
        }

        // Atom checks at the first position where all their variables are
        // bound.
        let mut position = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            position[v.index()] = i;
        }
        let mut checks: Vec<Vec<Atom>> = vec![Vec::new(); n.max(1)];
        for atom in q.atoms() {
            let depth = atom
                .vars()
                .iter()
                .map(|v| position[v.index()])
                .max()
                .unwrap_or(0);
            checks[depth].push(atom.clone());
        }
        Plan {
            order,
            generators,
            checks,
        }
    }

    /// The chosen variable order (for diagnostics).
    pub fn order(&self) -> &[VarId] {
        &self.order
    }

    /// How many variables draw candidates from a generator rather than a
    /// full extent scan.
    pub fn propagated_vars(&self) -> usize {
        self.generators
            .iter()
            .filter(|g| matches!(g, Generator::FromAttr(..) | Generator::FromMembers(..)))
            .count()
    }
}

/// Evaluate `q` with a compiled plan.
pub fn answer_planned(schema: &Schema, state: &State, q: &Query) -> BTreeSet<Oid> {
    let plan = Plan::compile(q);
    answer_with_plan(schema, state, q, &plan)
}

/// Evaluate `q` with an already compiled plan (amortizes compilation across
/// states).
pub fn answer_with_plan(schema: &Schema, state: &State, q: &Query, plan: &Plan) -> BTreeSet<Oid> {
    let free_candidates: Vec<Oid> = match q.range_of(q.free_var()) {
        Some(cs) => {
            let mut d: Vec<Oid> = cs.iter().flat_map(|&c| state.extent(c)).copied().collect();
            d.sort();
            d.dedup();
            d
        }
        None => state.oids().collect(),
    };
    let mut out = BTreeSet::new();
    let mut assignment = vec![Oid::from_index(0); q.var_count()];
    for seed in free_candidates {
        if search(schema, state, plan, &mut assignment, 0, seed) {
            out.insert(seed);
        }
    }
    out
}

fn search(
    schema: &Schema,
    state: &State,
    plan: &Plan,
    assignment: &mut [Oid],
    depth: usize,
    seed: Oid,
) -> bool {
    if depth == plan.order.len() {
        return true;
    }
    let v = plan.order[depth];
    let try_candidate = |o: Oid, assignment: &mut [Oid]| -> bool {
        assignment[v.index()] = o;
        plan.checks[depth]
            .iter()
            .all(|a| eval_atom(schema, state, assignment, a).is_true())
            && search(schema, state, plan, assignment, depth + 1, seed)
    };
    match &plan.generators[depth] {
        Generator::Seed => try_candidate(seed, assignment),
        Generator::FromAttr(y, a) => {
            match state.attr(assignment[y.index()], *a) {
                Value::Obj(o) => try_candidate(*o, assignment),
                _ => false, // null or a set: the equality can never be true
            }
        }
        Generator::FromMembers(y, a) => match state.attr(assignment[y.index()], *a) {
            Value::Set(members) => {
                let ms = members.clone();
                ms.iter().any(|&m| try_candidate(m, assignment))
            }
            _ => false,
        },
        Generator::Extent(classes) => {
            let mut d: Vec<Oid> = classes
                .iter()
                .flat_map(|&c| state.extent(c))
                .copied()
                .collect();
            d.sort();
            d.dedup();
            d.into_iter().any(|o| try_candidate(o, assignment))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::answer;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;
    use oocq_state::StateBuilder;

    fn rental_bits() -> (oocq_schema::Schema, State, Query) {
        let s = samples::vehicle_rental();
        let veh = s.attr_id("VehRented").unwrap();
        let mut b = StateBuilder::new();
        let a1 = b.object(s.class_id("Auto").unwrap());
        let a2 = b.object(s.class_id("Auto").unwrap());
        let d = b.object(s.class_id("Discount").unwrap());
        let r = b.object(s.class_id("Regular").unwrap());
        b.set_members(d, veh, [a1]);
        b.set_members(r, veh, [a2]);
        let st = b.finish(&s).unwrap();

        let mut qb = QueryBuilder::new("x");
        let x = qb.free();
        let y = qb.var("y");
        qb.range(x, [s.class_id("Vehicle").unwrap()]);
        qb.range(y, [s.class_id("Client").unwrap()]);
        qb.member(x, y, veh);
        (s.clone(), st, qb.build())
    }

    #[test]
    fn planned_matches_naive_on_rental() {
        let (s, st, q) = rental_bits();
        assert_eq!(answer_planned(&s, &st, &q), answer(&s, &st, &q));
        assert_eq!(answer_planned(&s, &st, &q).len(), 2);
    }

    #[test]
    fn plan_uses_generators_for_linked_vars() {
        // x ∈ Leaf, y = x.next, z ∈ x.items: both bound via propagation.
        let s = oocq_schema::SchemaBuilder::new();
        let mut sb = s;
        let node = sb.class("Node").unwrap();
        sb.attribute(node, "next", oocq_schema::AttrType::Object(node))
            .unwrap();
        sb.attribute(node, "items", oocq_schema::AttrType::SetOf(node))
            .unwrap();
        let s = sb.finish().unwrap();
        let next = s.attr_id("next").unwrap();
        let items = s.attr_id("items").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [node]).range(y, [node]).range(z, [node]);
        b.eq_attr(y, x, next);
        b.member(z, x, items);
        let q = b.build();
        let plan = Plan::compile(&q);
        assert_eq!(plan.propagated_vars(), 2);
        assert_eq!(plan.order()[0], x);
    }

    #[test]
    fn null_attr_yields_no_bindings() {
        let s = samples::example_31();
        let c = s.class_id("C").unwrap();
        let d = s.class_id("D").unwrap();
        let a = s.attr_id("A").unwrap();
        let mut b = StateBuilder::new();
        b.object(c); // A left null
        b.object(d);
        let st = b.finish(&s).unwrap();
        let mut qb = QueryBuilder::new("y");
        let y = qb.free();
        let z = qb.var("z");
        qb.range(y, [c]).range(z, [d]);
        qb.eq_attr(z, y, a);
        let q = qb.build();
        assert!(answer_planned(&s, &st, &q).is_empty());
        assert_eq!(answer_planned(&s, &st, &q), answer(&s, &st, &q));
    }

    #[test]
    fn plan_reuse_across_states() {
        let (s, st, q) = rental_bits();
        let plan = Plan::compile(&q);
        let once = answer_with_plan(&s, &st, &q, &plan);
        let twice = answer_with_plan(&s, &st, &q, &plan);
        assert_eq!(once, twice);
    }

    #[test]
    fn negative_atoms_still_checked() {
        let (s, st, _) = rental_bits();
        let veh = s.attr_id("VehRented").unwrap();
        let mut qb = QueryBuilder::new("x");
        let x = qb.free();
        let y = qb.var("y");
        qb.range(x, [s.class_id("Auto").unwrap()]);
        qb.range(y, [s.class_id("Discount").unwrap()]);
        qb.non_member(x, y, veh);
        let q = qb.build();
        assert_eq!(answer_planned(&s, &st, &q), answer(&s, &st, &q));
        assert_eq!(answer_planned(&s, &st, &q).len(), 1); // the other auto
    }
}

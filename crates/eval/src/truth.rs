//! Kleene 3-valued logic (§2.2: with nulls present, queries are evaluated
//! in 3-valued logic following Codd [13]).

/// A 3-valued truth value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// Unknown (some operand was the null value `Λ`).
    Unknown,
}

impl Truth {
    /// Kleene conjunction.
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    /// Kleene negation.
    #[allow(clippy::should_implement_trait)] // deliberate: 3-valued negation
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// Lift a two-valued Boolean.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// Only `True` counts as satisfaction (an answer must make the formula
    /// *true*, not merely non-false).
    pub fn is_true(self) -> bool {
        self == Truth::True
    }
}

#[cfg(test)]
mod tests {
    use super::Truth::{self, False, True, Unknown};

    const ALL: [Truth; 3] = [True, False, Unknown];

    #[test]
    fn conjunction_truth_table() {
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(Unknown.and(Unknown), Unknown);
        for t in ALL {
            assert_eq!(t.and(False), False);
            assert_eq!(False.and(t), False);
        }
    }

    #[test]
    fn disjunction_truth_table() {
        assert_eq!(False.or(False), False);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.or(Unknown), Unknown);
        for t in ALL {
            assert_eq!(t.or(True), True);
            assert_eq!(True.or(t), True);
        }
    }

    #[test]
    fn negation_is_involutive() {
        for t in ALL {
            assert_eq!(t.not().not(), t);
        }
        assert_eq!(Unknown.not(), Unknown);
    }

    #[test]
    fn de_morgan_holds() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn lifting() {
        assert_eq!(Truth::from_bool(true), True);
        assert_eq!(Truth::from_bool(false), False);
        assert!(True.is_true());
        assert!(!Unknown.is_true());
    }
}

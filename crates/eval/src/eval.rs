//! Naive evaluation of conjunctive queries over states (§2.2).
//!
//! The answer of `{ s₀ | f(s₀, s₁, …, sₘ) }` w.r.t. a state `s` is the set
//! of objects `α(s₀)` such that the closed formula obtained by binding the
//! bound variables existentially evaluates to **true** in 3-valued logic.
//!
//! The evaluator is a straightforward backtracking join: bound variables are
//! assigned in order, each variable's candidate domain is the extent of its
//! range atom's class disjunction, and every atom is checked as soon as all
//! of its variables are bound. An atom that is false *or unknown* prunes the
//! branch — the matrix is a conjunction and must come out true.

use crate::truth::Truth;
use oocq_query::{Atom, Query, Term, UnionQuery, VarId};
use oocq_schema::Schema;
use oocq_state::{Oid, State, Value};
use std::collections::BTreeSet;

/// Evaluate one atom under a (total, for this atom's variables) assignment.
pub fn eval_atom(schema: &Schema, state: &State, assignment: &[Oid], atom: &Atom) -> Truth {
    let term_value = |t: Term| -> Option<Value> {
        match t {
            Term::Var(v) => Some(Value::Obj(assignment[v.index()])),
            Term::Attr(v, a) => Some(state.attr(assignment[v.index()], a).clone()),
        }
    };
    match atom {
        Atom::Range(v, cs) => Truth::from_bool(
            cs.iter()
                .any(|&c| state.is_member(schema, assignment[v.index()], c)),
        ),
        Atom::NonRange(v, cs) => Truth::from_bool(
            cs.iter()
                .any(|&c| state.is_member(schema, assignment[v.index()], c)),
        )
        .not(),
        Atom::Eq(a, b) => eq_truth(term_value(*a), term_value(*b)),
        Atom::Neq(a, b) => eq_truth(term_value(*a), term_value(*b)).not(),
        Atom::Member(x, y, attr) => {
            match state
                .attr(assignment[y.index()], *attr)
                .contains(assignment[x.index()])
            {
                Some(b) => Truth::from_bool(b),
                None => Truth::Unknown,
            }
        }
        Atom::NonMember(x, y, attr) => {
            match state
                .attr(assignment[y.index()], *attr)
                .contains(assignment[x.index()])
            {
                Some(b) => Truth::from_bool(b).not(),
                None => Truth::Unknown,
            }
        }
    }
}

/// 3-valued identity comparison of denoted objects. Nulls compare unknown;
/// set values are not objects with identity in this model, so comparisons
/// touching them are unknown (well-formed queries never produce such
/// comparisons).
fn eq_truth(a: Option<Value>, b: Option<Value>) -> Truth {
    match (a, b) {
        (Some(Value::Obj(x)), Some(Value::Obj(y))) => Truth::from_bool(x == y),
        _ => Truth::Unknown,
    }
}

/// Evaluate the whole matrix (conjunction) under a total assignment.
pub fn eval_matrix(schema: &Schema, state: &State, assignment: &[Oid], q: &Query) -> Truth {
    q.atoms().iter().fold(Truth::True, |acc, a| {
        acc.and(eval_atom(schema, state, assignment, a))
    })
}

/// The candidate domain for a variable: the union of the extents of its
/// range classes, or every object when it has no range atom.
fn domain(state: &State, q: &Query, v: VarId) -> Vec<Oid> {
    match q.range_of(v) {
        Some(cs) => {
            let mut d: Vec<Oid> = cs.iter().flat_map(|&c| state.extent(c)).copied().collect();
            d.sort();
            d.dedup();
            d
        }
        None => state.oids().collect(),
    }
}

/// Is there an assignment extending `free ↦ candidate` that makes the matrix
/// true? Charges one unit of work per backtracking node tried, so a
/// caller-supplied budget bounds the worst-case `objects^vars` join.
fn satisfying_assignment_exists<E>(
    schema: &Schema,
    state: &State,
    q: &Query,
    candidate: Oid,
    charge: &mut impl FnMut(u64) -> Result<(), E>,
) -> Result<bool, E> {
    let n = q.var_count();
    // Assignment order: free variable first, then bound variables.
    let mut order: Vec<VarId> = Vec::with_capacity(n);
    order.push(q.free_var());
    order.extend(q.vars().filter(|&v| v != q.free_var()));
    let mut position = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        position[v.index()] = i;
    }
    // Atoms become checkable at the depth where their last variable binds.
    let mut ready: Vec<Vec<&Atom>> = vec![Vec::new(); n];
    for a in q.atoms() {
        let depth = a
            .vars()
            .iter()
            .map(|v| position[v.index()])
            .max()
            .unwrap_or(0);
        ready[depth].push(a);
    }
    let domains: Vec<Vec<Oid>> = order
        .iter()
        .map(|&v| {
            if v == q.free_var() {
                vec![candidate]
            } else {
                domain(state, q, v)
            }
        })
        .collect();

    let mut assignment = vec![Oid::from_index(0); n];
    #[allow(clippy::too_many_arguments)] // recursive join node: all state is hot path
    fn recurse<E>(
        schema: &Schema,
        state: &State,
        order: &[VarId],
        domains: &[Vec<Oid>],
        ready: &[Vec<&Atom>],
        assignment: &mut [Oid],
        depth: usize,
        charge: &mut impl FnMut(u64) -> Result<(), E>,
    ) -> Result<bool, E> {
        if depth == order.len() {
            return Ok(true);
        }
        let v = order[depth];
        for &o in &domains[depth] {
            charge(1)?;
            assignment[v.index()] = o;
            if ready[depth]
                .iter()
                .all(|a| eval_atom(schema, state, assignment, a).is_true())
                && recurse(
                    schema,
                    state,
                    order,
                    domains,
                    ready,
                    assignment,
                    depth + 1,
                    charge,
                )?
            {
                return Ok(true);
            }
        }
        Ok(false)
    }
    recurse(
        schema,
        state,
        &order,
        &domains,
        &ready,
        &mut assignment,
        0,
        charge,
    )
}

/// The answer `Q(s)` of a conjunctive query w.r.t. a state.
pub fn answer(schema: &Schema, state: &State, q: &Query) -> BTreeSet<Oid> {
    match answer_budgeted(schema, state, q, &mut infallible) {
        Ok(ans) => ans,
        Err(e) => match e {},
    }
}

/// The never-failing charge hook behind the unbudgeted wrappers.
fn infallible(_: u64) -> Result<(), std::convert::Infallible> {
    Ok(())
}

/// [`answer`] with a cooperative work charge: one unit per backtracking
/// node of the join, so callers with a latency target (the soundness
/// oracle's counterexample search, batch sweeps) can bound the worst-case
/// `objects^vars` evaluation and recover with an error instead of hanging.
pub fn answer_budgeted<E>(
    schema: &Schema,
    state: &State,
    q: &Query,
    charge: &mut impl FnMut(u64) -> Result<(), E>,
) -> Result<BTreeSet<Oid>, E> {
    let candidates = domain(state, q, q.free_var());
    let mut out = BTreeSet::new();
    for o in candidates {
        if satisfying_assignment_exists(schema, state, q, o, charge)? {
            out.insert(o);
        }
    }
    Ok(out)
}

/// The answer of a union of conjunctive queries (the union of the answers).
pub fn answer_union(schema: &Schema, state: &State, u: &UnionQuery) -> BTreeSet<Oid> {
    match answer_union_budgeted(schema, state, u, &mut infallible) {
        Ok(ans) => ans,
        Err(e) => match e {},
    }
}

/// [`answer_union`] under a cooperative work charge (see
/// [`answer_budgeted`]).
pub fn answer_union_budgeted<E>(
    schema: &Schema,
    state: &State,
    u: &UnionQuery,
    charge: &mut impl FnMut(u64) -> Result<(), E>,
) -> Result<BTreeSet<Oid>, E> {
    let mut out = BTreeSet::new();
    for q in u {
        out.extend(answer_budgeted(schema, state, q, charge)?);
    }
    Ok(out)
}

/// An object answered by the left query but not the right, on some state —
/// a witness refuting `left ⊆ right`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterExample {
    /// Index into the state slice handed to the checker.
    pub state_index: usize,
    /// The witnessing answer object.
    pub oid: Oid,
}

/// Brute-force refutation of `left ⊆ right` over a finite family of states.
///
/// Returns a counterexample if some state yields an answer of `left` that
/// `right` misses; `None` means the family offers no refutation (containment
/// may still fail on states outside the family).
pub fn refute_containment(
    schema: &Schema,
    states: &[State],
    left: &UnionQuery,
    right: &UnionQuery,
) -> Option<CounterExample> {
    match refute_containment_budgeted(schema, states, left, right, &mut infallible) {
        Ok(ce) => ce,
        Err(e) => match e {},
    }
}

/// [`refute_containment`] under a cooperative work charge: the whole batch
/// of evaluations shares one charge hook, so a sweep over many states stays
/// inside a single caller-side budget instead of multiplying a per-state
/// limit by the family size.
pub fn refute_containment_budgeted<E>(
    schema: &Schema,
    states: &[State],
    left: &UnionQuery,
    right: &UnionQuery,
    charge: &mut impl FnMut(u64) -> Result<(), E>,
) -> Result<Option<CounterExample>, E> {
    for (ix, s) in states.iter().enumerate() {
        let la = answer_union_budgeted(schema, s, left, charge)?;
        if la.is_empty() {
            continue;
        }
        let ra = answer_union_budgeted(schema, s, right, charge)?;
        if let Some(&oid) = la.difference(&ra).next() {
            return Ok(Some(CounterExample {
                state_index: ix,
                oid,
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;
    use oocq_state::StateBuilder;

    /// The Example 1.1 query over a small rental state.
    fn rental_fixture() -> (oocq_schema::Schema, State, Query) {
        let s = samples::vehicle_rental();
        let mut b = StateBuilder::new();
        let auto = b.object(s.class_id("Auto").unwrap());
        let truck = b.object(s.class_id("Truck").unwrap());
        let disc = b.object(s.class_id("Discount").unwrap());
        let reg = b.object(s.class_id("Regular").unwrap());
        let veh = s.attr_id("VehRented").unwrap();
        b.set_members(disc, veh, [auto]);
        b.set_members(reg, veh, [truck]);
        let st = b.finish(&s).unwrap();

        let mut qb = QueryBuilder::new("x");
        let x = qb.free();
        let y = qb.var("y");
        qb.range(x, [s.class_id("Vehicle").unwrap()]);
        qb.range(y, [s.class_id("Discount").unwrap()]);
        qb.member(x, y, veh);
        (s.clone(), st, qb.build())
    }

    #[test]
    fn example_11_answer() {
        let (s, st, q) = rental_fixture();
        let ans = answer(&s, &st, &q);
        // Only the auto rented by the discount client qualifies.
        assert_eq!(ans.len(), 1);
        assert_eq!(
            st.class_of(*ans.iter().next().unwrap()),
            s.class_id("Auto").unwrap()
        );
    }

    #[test]
    fn null_set_makes_membership_unknown_not_true() {
        let s = samples::vehicle_rental();
        let veh = s.attr_id("VehRented").unwrap();
        let mut b = StateBuilder::new();
        let auto = b.object(s.class_id("Auto").unwrap());
        let _disc = b.object(s.class_id("Discount").unwrap());
        // VehRented left null: membership is unknown, so no answer.
        let st = b.finish(&s).unwrap();
        let mut qb = QueryBuilder::new("x");
        let x = qb.free();
        let y = qb.var("y");
        qb.range(x, [s.class_id("Auto").unwrap()]);
        qb.range(y, [s.class_id("Discount").unwrap()]);
        qb.member(x, y, veh);
        assert!(answer(&s, &st, &qb.build()).is_empty());
        let _ = auto;
    }

    #[test]
    fn non_membership_on_null_set_is_unknown() {
        let s = samples::vehicle_rental();
        let veh = s.attr_id("VehRented").unwrap();
        let mut b = StateBuilder::new();
        let _auto = b.object(s.class_id("Auto").unwrap());
        let _disc = b.object(s.class_id("Discount").unwrap());
        let st = b.finish(&s).unwrap();
        let mut qb = QueryBuilder::new("x");
        let x = qb.free();
        let y = qb.var("y");
        qb.range(x, [s.class_id("Auto").unwrap()]);
        qb.range(y, [s.class_id("Discount").unwrap()]);
        qb.non_member(x, y, veh);
        // Null set: `x not in y.VehRented` is unknown, hence not an answer.
        assert!(answer(&s, &st, &qb.build()).is_empty());
    }

    #[test]
    fn non_membership_on_empty_set_is_true() {
        let s = samples::vehicle_rental();
        let veh = s.attr_id("VehRented").unwrap();
        let mut b = StateBuilder::new();
        let auto = b.object(s.class_id("Auto").unwrap());
        let disc = b.object(s.class_id("Discount").unwrap());
        b.set_members(disc, veh, []);
        let st = b.finish(&s).unwrap();
        let mut qb = QueryBuilder::new("x");
        let x = qb.free();
        let y = qb.var("y");
        qb.range(x, [s.class_id("Auto").unwrap()]);
        qb.range(y, [s.class_id("Discount").unwrap()]);
        qb.non_member(x, y, veh);
        assert_eq!(answer(&s, &st, &qb.build()), BTreeSet::from([auto]));
    }

    #[test]
    fn equality_with_null_attribute_is_unknown() {
        let s = samples::example_31();
        let a = s.attr_id("A").unwrap();
        let mut b = StateBuilder::new();
        let c_obj = b.object(s.class_id("C").unwrap());
        let _d_obj = b.object(s.class_id("D").unwrap());
        let st = b.finish(&s).unwrap(); // C.A left null
        let mut qb = QueryBuilder::new("y");
        let y = qb.free();
        let z = qb.var("z");
        qb.range(y, [s.class_id("C").unwrap()]);
        qb.range(z, [s.class_id("D").unwrap()]);
        qb.eq_attr(z, y, a);
        assert!(answer(&s, &st, &qb.build()).is_empty());
        let _ = c_obj;
    }

    #[test]
    fn inequality_needs_definite_values() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = StateBuilder::new();
        let o1 = b.object(c);
        let o2 = b.object(c);
        let st = b.finish(&s).unwrap();
        let mut qb = QueryBuilder::new("x");
        let x = qb.free();
        let y = qb.var("y");
        qb.range(x, [c]).range(y, [c]).neq_vars(x, y);
        let q = qb.build();
        let ans = answer(&s, &st, &q);
        assert_eq!(ans, BTreeSet::from([o1, o2]));
        // With a single object there is no pair of distinct objects.
        let mut b = StateBuilder::new();
        b.object(c);
        let st1 = b.finish(&s).unwrap();
        assert!(answer(&s, &st1, &q).is_empty());
        let _ = x;
    }

    #[test]
    fn range_disjunction_unions_extents() {
        let s = samples::vehicle_rental();
        let mut b = StateBuilder::new();
        let auto = b.object(s.class_id("Auto").unwrap());
        let truck = b.object(s.class_id("Truck").unwrap());
        let _tr = b.object(s.class_id("Trailer").unwrap());
        let st = b.finish(&s).unwrap();
        let mut qb = QueryBuilder::new("x");
        let x = qb.free();
        qb.range(
            x,
            [s.class_id("Auto").unwrap(), s.class_id("Truck").unwrap()],
        );
        assert_eq!(answer(&s, &st, &qb.build()), BTreeSet::from([auto, truck]));
    }

    #[test]
    fn non_range_excludes_whole_subtree() {
        let s = samples::vehicle_rental();
        let mut b = StateBuilder::new();
        let _auto = b.object(s.class_id("Auto").unwrap());
        let disc = b.object(s.class_id("Discount").unwrap());
        let st = b.finish(&s).unwrap();
        let mut qb = QueryBuilder::new("x");
        let x = qb.free();
        // x over everything, excluding vehicles: only the client remains.
        qb.non_range(x, [s.class_id("Vehicle").unwrap()]);
        assert_eq!(answer(&s, &st, &qb.build()), BTreeSet::from([disc]));
    }

    #[test]
    fn union_answer_is_union() {
        let (s, st, q) = rental_fixture();
        let mut q2b = QueryBuilder::new("x");
        let x2 = q2b.free();
        q2b.range(x2, [s.class_id("Truck").unwrap()]);
        let u = UnionQuery::new(vec![q.clone(), q2b.build()]);
        let ans = answer_union(&s, &st, &u);
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn refutation_finds_witness() {
        let (s, st, q) = rental_fixture();
        // Left: all vehicles; right: the discount-rental query.
        let mut lb = QueryBuilder::new("x");
        let lx = lb.free();
        lb.range(lx, [s.class_id("Vehicle").unwrap()]);
        let left = UnionQuery::single(lb.build());
        let right = UnionQuery::single(q);
        let ce = refute_containment(&s, std::slice::from_ref(&st), &left, &right);
        assert!(ce.is_some());
        // And containment in the other direction has no witness here.
        assert_eq!(
            refute_containment(&s, std::slice::from_ref(&st), &right, &left),
            None
        );
    }

    #[test]
    fn refutation_none_for_contained_queries() {
        let (s, st, q) = rental_fixture();
        let mut lb = QueryBuilder::new("x");
        let lx = lb.free();
        lb.range(lx, [s.class_id("Vehicle").unwrap()]);
        let bigger = UnionQuery::single(lb.build());
        let smaller = UnionQuery::single(q);
        assert_eq!(
            refute_containment(&s, std::slice::from_ref(&st), &smaller, &bigger),
            None
        );
    }
}

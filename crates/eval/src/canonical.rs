//! Canonical ("frozen") states of terminal positive conjunctive queries.
//!
//! The classical proof device behind homomorphism characterizations: build a
//! state with one object per equivalence class of variables, realize every
//! equality `z = x.A` as an attribute value and every membership `s ∈ t.A`
//! as a set member. For a satisfiable terminal positive query `Q`, the
//! canonical state answers `Q` at the frozen free variable, and for positive
//! `Q₂`: `Q₁ ⊆ Q₂` iff the frozen free object of `Q₁` is an answer of `Q₂`
//! on `Q₁`'s canonical state.
//!
//! The test suite uses this as an *independent* oracle for Corollary 3.4.

use crate::eval::answer;
use oocq_query::{Atom, EqualityGraph, Query, Term};
use oocq_schema::Schema;
use oocq_state::{Oid, State, StateBuilder};
use std::collections::BTreeSet;
use std::collections::HashMap;

/// Build the canonical state of a terminal positive conjunctive query,
/// returning the state and the object frozen from the free variable.
///
/// Returns `None` when the query is not terminal positive or is
/// unsatisfiable (the frozen state would be illegal — e.g. an attribute
/// value of the wrong class).
pub fn canonical_state(schema: &Schema, q: &Query) -> Option<(State, Oid)> {
    canonical_state_mapped(schema, q).map(|(state, free_obj, _)| (state, free_obj))
}

/// [`canonical_state`] plus the full variable→object freeze map: element
/// `i` is the oid the equivalence class of variable `i` froze to (so
/// equated variables share an entry). Callers steering by *specific*
/// variables of the query — e.g. definitizing one obligation's set slot —
/// need this map; the plain entry point keeps it internal.
pub fn canonical_state_mapped(schema: &Schema, q: &Query) -> Option<(State, Oid, Vec<Oid>)> {
    if !q.is_positive() || !q.is_terminal(schema) {
        return None;
    }
    let graph = EqualityGraph::build(q);
    // One object per equivalence class of variables.
    let mut b = StateBuilder::new();
    let mut obj_of_root: HashMap<usize, Oid> = HashMap::new();
    let mut class_of_root: HashMap<usize, oocq_schema::ClassId> = HashMap::new();
    for v in q.vars() {
        let root = graph.class_id(Term::Var(v))?;
        let class = q.terminal_class_of(v)?;
        match class_of_root.get(&root) {
            // Equated variables of distinct terminal classes: the query is
            // unsatisfiable (terminal classes partition the objects) and has
            // no canonical state.
            Some(&prev) if prev != class => return None,
            Some(_) => {}
            None => {
                class_of_root.insert(root, class);
                obj_of_root.insert(root, b.object(class));
            }
        }
    }
    let obj = |t: Term, obj_of_root: &HashMap<usize, Oid>| -> Option<Oid> {
        graph.class_id(t).and_then(|r| obj_of_root.get(&r)).copied()
    };

    // Realize equalities involving attribute terms as object attribute
    // values, and memberships as set members (accumulated first so repeated
    // memberships into one set merge).
    let mut sets: HashMap<(Oid, oocq_schema::AttrId), BTreeSet<Oid>> = HashMap::new();
    for atom in q.atoms() {
        match atom {
            Atom::Eq(s, t) => {
                for (side, other) in [(*s, *t), (*t, *s)] {
                    if let Term::Attr(v, a) = side {
                        let base = obj(Term::Var(v), &obj_of_root)?;
                        let val = obj(other, &obj_of_root)?;
                        b.set_obj(base, a, val);
                    }
                }
            }
            Atom::Member(x, y, a) => {
                let member = obj(Term::Var(*x), &obj_of_root)?;
                let set_owner = obj(Term::Var(*y), &obj_of_root)?;
                sets.entry((set_owner, *a)).or_default().insert(member);
            }
            Atom::Range(..) => {}
            _ => return None,
        }
    }
    for ((owner, a), members) in sets {
        b.set_members(owner, a, members);
    }
    let state = b.finish(schema).ok()?;
    let var_oids: Vec<Oid> = q
        .vars()
        .map(|v| obj(Term::Var(v), &obj_of_root))
        .collect::<Option<_>>()?;
    let free_obj = var_oids[q.free_var().index()];
    Some((state, free_obj, var_oids))
}

/// The canonical-state containment oracle for positive right-hand sides:
/// `q1 ⊆ q2` iff `q2` answers the frozen free object on `q1`'s canonical
/// state. Returns `None` when a canonical state cannot be built (then `q1`
/// is unsatisfiable and contained in everything).
pub fn canonical_contains(schema: &Schema, q1: &Query, q2: &Query) -> Option<bool> {
    let (state, free_obj) = canonical_state(schema, q1)?;
    Some(answer(schema, &state, q2).contains(&free_obj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;

    #[test]
    fn canonical_state_answers_its_own_query() {
        let s = samples::n1_partition();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("s");
        b.range(x, [s.class_id("T2").unwrap()]);
        b.range(y, [s.class_id("H").unwrap()]);
        b.range(z, [s.class_id("H").unwrap()]);
        b.eq_attr(y, x, s.attr_id("B").unwrap());
        b.member(y, x, s.attr_id("A").unwrap());
        b.member(z, x, s.attr_id("A").unwrap());
        let q = b.build();
        let (state, free_obj) = canonical_state(&s, &q).unwrap();
        assert!(answer(&s, &state, &q).contains(&free_obj));
        // Objects: one per equivalence class — x, y, s are all distinct.
        assert_eq!(state.object_count(), 3);
    }

    #[test]
    fn equated_variables_freeze_to_one_object() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).eq_vars(x, y);
        let (state, _) = canonical_state(&s, &b.build()).unwrap();
        assert_eq!(state.object_count(), 1);
    }

    #[test]
    fn unsatisfiable_queries_have_no_canonical_state() {
        // z = y.A with z ∈ C but type(C.A) = D: frozen state is illegal.
        let s = samples::example_31();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("z");
        let z = b.free();
        let y = b.var("y");
        b.range(z, [c]).range(y, [c]);
        b.eq_attr(z, y, s.attr_id("A").unwrap());
        assert!(canonical_state(&s, &b.build()).is_none());
    }

    #[test]
    fn class_conflict_between_equated_vars_has_no_canonical_state() {
        // x = y with x ∈ T1, y ∈ T2: unsatisfiable by class coherence; the
        // builder alone cannot see it, so canonical_state must.
        let s = samples::unrelated_subtypes();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id("T1").unwrap()]);
        b.range(y, [s.class_id("T2").unwrap()]);
        b.eq_vars(x, y);
        assert!(canonical_state(&s, &b.build()).is_none());
    }

    #[test]
    fn non_positive_or_non_terminal_rejected() {
        let s = samples::vehicle_rental();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("Vehicle").unwrap()]);
        assert!(canonical_state(&s, &b.build()).is_none());

        let s1 = samples::single_class();
        let c = s1.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).neq_vars(x, y);
        assert!(canonical_state(&s1, &b.build()).is_none());
    }

    #[test]
    fn oracle_matches_example_31() {
        let s = samples::example_31();
        let c = s.class_id("C").unwrap();
        let d = s.class_id("D").unwrap();
        let a = s.attr_id("A").unwrap();
        let bb = s.attr_id("B").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        let z = b.var("z");
        b.range(x, [c]).range(y, [c]).range(z, [d]);
        b.eq_attr(z, y, a);
        b.member(z, y, bb);
        b.eq_vars(x, y);
        let q1 = b.build();
        let mut b = QueryBuilder::new("y");
        let y2 = b.free();
        let z2 = b.var("z");
        b.range(y2, [c]).range(z2, [d]);
        b.eq_attr(z2, y2, a);
        let q2 = b.build();
        assert_eq!(canonical_contains(&s, &q1, &q2), Some(true));
        assert_eq!(canonical_contains(&s, &q2, &q1), Some(false));
    }
}

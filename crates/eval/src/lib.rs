//! # oocq-eval
//!
//! Naive evaluation of the conjunctive queries of Chan (PODS 1992) over
//! OODB states: Kleene 3-valued logic for null values (`Λ`), the answer
//! semantics of §2.2, and brute-force containment refutation over finite
//! families of states (used by the property-test harness to cross-check the
//! algorithmic containment decisions of `oocq-core`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canonical;
mod eval;
mod planned;
mod truth;

pub use canonical::{canonical_contains, canonical_state, canonical_state_mapped};
pub use eval::{
    answer, answer_budgeted, answer_union, answer_union_budgeted, eval_atom, eval_matrix,
    refute_containment, refute_containment_budgeted, CounterExample,
};
pub use planned::{answer_planned, answer_with_plan, Plan};
pub use truth::Truth;

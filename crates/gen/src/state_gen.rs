//! Random legal-state generators.

use crate::rng::Rng;
use oocq_schema::{AttrType, ClassId, Constraint, Schema};
use oocq_state::{Oid, State, StateBuilder, Value};

/// Parameters for [`random_state`].
#[derive(Clone, Copy, Debug)]
pub struct StateParams {
    /// Number of objects.
    pub objects: usize,
    /// Probability that an attribute is non-null.
    pub fill_prob: f64,
    /// Maximum cardinality of a set-valued attribute.
    pub max_set: usize,
}

impl Default for StateParams {
    fn default() -> StateParams {
        StateParams {
            objects: 32,
            fill_prob: 0.8,
            max_set: 4,
        }
    }
}

/// Generate a random legal state: objects uniformly spread over the terminal
/// classes, attributes filled with type-correct references (or left null).
///
/// Attributes whose declared class has no instance in the state stay null;
/// set attributes may be empty (distinct from null).
pub fn random_state(rng: &mut impl Rng, schema: &Schema, p: &StateParams) -> State {
    let terminals = schema.terminals();
    assert!(!terminals.is_empty(), "schema has no terminal class");
    let mut b = StateBuilder::new();
    let mut classes = Vec::with_capacity(p.objects);
    for _ in 0..p.objects {
        let c = terminals[rng.gen_range(0..terminals.len())];
        classes.push(c);
        b.object(c);
    }
    // Candidate pools per class: objects whose terminal class descends it.
    let pool = |target: oocq_schema::ClassId| -> Vec<Oid> {
        classes
            .iter()
            .enumerate()
            .filter(|(_, &c)| schema.is_subclass(c, target))
            .map(|(i, _)| Oid::from_index(i))
            .collect()
    };
    for (ix, &c) in classes.iter().enumerate() {
        let oid = Oid::from_index(ix);
        let attrs: Vec<_> = schema
            .effective_type(c)
            .iter()
            .map(|(&a, &t)| (a, t))
            .collect();
        for (a, t) in attrs {
            if !rng.gen_bool(p.fill_prob) {
                continue; // stays Λ
            }
            match t {
                AttrType::Object(target) => {
                    let cands = pool(target);
                    if !cands.is_empty() {
                        b.set_obj(oid, a, cands[rng.gen_range(0..cands.len())]);
                    }
                }
                AttrType::SetOf(target) => {
                    let cands = pool(target);
                    let k = rng.gen_range(0..=p.max_set.min(cands.len()));
                    let mut members = Vec::with_capacity(k);
                    for _ in 0..k {
                        members.push(cands[rng.gen_range(0..cands.len())]);
                    }
                    b.set_members(oid, a, members);
                }
            }
        }
    }
    b.finish(schema)
        .expect("generated state is legal by construction")
}

/// Parameters for [`steered_state`].
#[derive(Clone, Copy, Debug)]
pub struct SteerParams {
    /// Number of noise objects appended after the skeleton.
    pub pad_objects: usize,
    /// Probability that a noise object's attribute is non-null.
    pub fill_prob: f64,
    /// Maximum cardinality of a noise object's set-valued attribute.
    pub max_set: usize,
    /// Freeze the skeleton's null set-valued attributes to the empty set,
    /// turning 3-valued *unknown* non-memberships into definite truths.
    /// This helps a query being steered *toward* (its `∉` atoms become
    /// true) and equally helps one being steered *away from* — so callers
    /// searching for a separating state typically try both settings.
    pub definitize: bool,
}

impl Default for SteerParams {
    fn default() -> SteerParams {
        SteerParams {
            pad_objects: 6,
            fill_prob: 0.8,
            max_set: 3,
            definitize: true,
        }
    }
}

/// Grow a certificate-steered state around a skeleton (typically the frozen
/// canonical state of a refutation branch).
///
/// The skeleton's objects are copied first, in oid order, so skeleton oids
/// are stable in the result. Two deliberate asymmetries keep the steering
/// sound:
///
/// - with [`SteerParams::definitize`], every *null set-valued* attribute of
///   a skeleton object becomes the empty set, turning non-membership facts
///   from unknown into definitely true without adding any positive fact;
/// - the appended noise objects reference only each other, never the
///   skeleton, so no new fact about a skeleton object can be introduced.
pub fn steered_state(
    rng: &mut impl Rng,
    schema: &Schema,
    skeleton: &State,
    p: &SteerParams,
) -> State {
    let mut b = StateBuilder::new();
    let skeleton_count = skeleton.object_count();
    let mut skeleton_classes = Vec::with_capacity(skeleton_count);
    for o in skeleton.oids() {
        skeleton_classes.push(skeleton.class_of(o));
        b.object(skeleton.class_of(o));
    }
    for (ix, &c) in skeleton_classes.iter().enumerate() {
        let oid = Oid::from_index(ix);
        let attrs: Vec<_> = schema
            .effective_type(c)
            .iter()
            .map(|(&a, &t)| (a, t))
            .collect();
        for (a, t) in attrs {
            match (skeleton.attr(oid, a), t) {
                (Value::Obj(o), _) => {
                    b.set_obj(oid, a, *o);
                }
                (Value::Set(ms), _) => {
                    b.set_members(oid, a, ms.iter().copied());
                }
                // Definitize: Λ on a set attribute becomes the empty set.
                (Value::Null, AttrType::SetOf(_)) if p.definitize => {
                    b.set_members(oid, a, []);
                }
                (Value::Null, _) => {}
            }
        }
    }
    // Noise: pad objects drawn over the terminals, referencing pad only.
    let terminals = schema.terminals();
    let mut pad_classes = Vec::with_capacity(p.pad_objects);
    for _ in 0..p.pad_objects {
        let c = terminals[rng.gen_range(0..terminals.len())];
        pad_classes.push(c);
        b.object(c);
    }
    let pad_pool = |target: oocq_schema::ClassId| -> Vec<Oid> {
        pad_classes
            .iter()
            .enumerate()
            .filter(|(_, &c)| schema.is_subclass(c, target))
            .map(|(i, _)| Oid::from_index(skeleton_count + i))
            .collect()
    };
    for (i, &c) in pad_classes.iter().enumerate() {
        let oid = Oid::from_index(skeleton_count + i);
        let attrs: Vec<_> = schema
            .effective_type(c)
            .iter()
            .map(|(&a, &t)| (a, t))
            .collect();
        for (a, t) in attrs {
            if !rng.gen_bool(p.fill_prob) {
                continue;
            }
            match t {
                AttrType::Object(target) => {
                    let cands = pad_pool(target);
                    if !cands.is_empty() {
                        b.set_obj(oid, a, cands[rng.gen_range(0..cands.len())]);
                    }
                }
                AttrType::SetOf(target) => {
                    let cands = pad_pool(target);
                    let k = rng.gen_range(0..=p.max_set.min(cands.len()));
                    let mut members = Vec::with_capacity(k);
                    for _ in 0..k {
                        members.push(cands[rng.gen_range(0..cands.len())]);
                    }
                    b.set_members(oid, a, members);
                }
            }
        }
    }
    b.finish(schema)
        .expect("steered state is legal: skeleton was legal and pads are type-correct")
}

/// Does `state` satisfy every declared constraint of `schema`?
///
/// [`StateBuilder::finish`] checks only Chan's base model (terminal
/// partitioning, type-correct references); declared constraints narrow the
/// legal states further, and this is the reference check for that narrower
/// notion — the constrained oracle filters/validates against it.
pub fn state_satisfies_constraints(schema: &Schema, state: &State) -> bool {
    for c in schema.constraints() {
        match *c {
            Constraint::Disjoint(a, b) => {
                for o in state.oids() {
                    let t = state.class_of(o);
                    if schema.is_subclass(t, a) && schema.is_subclass(t, b) {
                        return false;
                    }
                }
            }
            Constraint::Total(cl, at) => {
                for o in state.oids() {
                    if !schema.is_subclass(state.class_of(o), cl) {
                        continue;
                    }
                    match state.attr(o, at) {
                        Value::Null => return false,
                        Value::Set(ms) if ms.is_empty() => return false,
                        _ => {}
                    }
                }
            }
            Constraint::Functional(cl, at) => {
                for o in state.oids() {
                    if !schema.is_subclass(state.class_of(o), cl) {
                        continue;
                    }
                    if let Value::Set(ms) = state.attr(o, at) {
                        // Duplicate members denote one object: count distinct.
                        if ms.iter().any(|m| m != &ms[0]) {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// Generate a random state that is legal under the schema's *declared
/// constraints*, not just Chan's base model. Returns `None` when the
/// constraints leave no instantiable terminal class (every terminal is
/// either dead under disjointness or trapped by a totality constraint
/// whose target class has no instantiable terminal).
///
/// Construction, not rejection sampling:
///
/// * objects are drawn only from *usable* terminals — alive under
///   disjointness, and closed under totality (a terminal whose total
///   attribute targets a class with no usable terminal is itself
///   unusable);
/// * for every totality constraint a candidate target object is seeded
///   into the state before filling, so total attributes always have a
///   type-correct value available;
/// * total attributes are always filled (sets non-empty), and functional
///   set attributes hold at most one distinct member.
pub fn constrained_state(rng: &mut impl Rng, schema: &Schema, p: &StateParams) -> Option<State> {
    let terminals = schema.terminals();
    // Usable terminals: alive, and totality-closed (fixpoint).
    let mut usable: Vec<bool> = terminals
        .iter()
        .map(|&t| !schema.is_dead_terminal(t))
        .collect();
    loop {
        let mut changed = false;
        for (i, &t) in terminals.iter().enumerate() {
            if !usable[i] {
                continue;
            }
            for c in schema.constraints() {
                let Constraint::Total(cl, at) = *c else {
                    continue;
                };
                if !schema.is_subclass(t, cl) {
                    continue;
                }
                let Some(ty) = schema.attr_type(t, at) else {
                    continue;
                };
                let target = ty.class();
                let reachable = terminals
                    .iter()
                    .enumerate()
                    .any(|(j, &u)| usable[j] && schema.is_subclass(u, target));
                if !reachable {
                    usable[i] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let live: Vec<ClassId> = terminals
        .iter()
        .enumerate()
        .filter(|&(i, _)| usable[i])
        .map(|(_, &t)| t)
        .collect();
    if live.is_empty() {
        return None;
    }

    let mut classes = Vec::with_capacity(p.objects.max(1));
    for _ in 0..p.objects.max(1) {
        classes.push(live[rng.gen_range(0..live.len())]);
    }
    // Seed totality targets: every total attribute of every (present or
    // appended) object must find a type-correct candidate. Appended objects
    // are processed too; each append permanently satisfies its target, so
    // the loop terminates.
    let mut i = 0;
    while i < classes.len() {
        let c = classes[i];
        for con in schema.constraints() {
            let Constraint::Total(cl, at) = *con else {
                continue;
            };
            if !schema.is_subclass(c, cl) {
                continue;
            }
            let Some(ty) = schema.attr_type(c, at) else {
                continue;
            };
            let target = ty.class();
            if classes.iter().any(|&d| schema.is_subclass(d, target)) {
                continue;
            }
            let cands: Vec<ClassId> = live
                .iter()
                .copied()
                .filter(|&u| schema.is_subclass(u, target))
                .collect();
            // Non-empty: `c` is usable, so its totality targets are reachable.
            classes.push(cands[rng.gen_range(0..cands.len())]);
        }
        i += 1;
    }

    let mut b = StateBuilder::new();
    for &c in &classes {
        b.object(c);
    }
    let pool = |target: ClassId| -> Vec<Oid> {
        classes
            .iter()
            .enumerate()
            .filter(|(_, &c)| schema.is_subclass(c, target))
            .map(|(i, _)| Oid::from_index(i))
            .collect()
    };
    let constrained_as = |c: ClassId, a: oocq_schema::AttrId| -> (bool, bool) {
        let mut total = false;
        let mut functional = false;
        for con in schema.constraints() {
            match *con {
                Constraint::Total(cl, at) if at == a && schema.is_subclass(c, cl) => total = true,
                Constraint::Functional(cl, at) if at == a && schema.is_subclass(c, cl) => {
                    functional = true
                }
                _ => {}
            }
        }
        (total, functional)
    };
    for (ix, &c) in classes.iter().enumerate() {
        let oid = Oid::from_index(ix);
        let attrs: Vec<_> = schema
            .effective_type(c)
            .iter()
            .map(|(&a, &t)| (a, t))
            .collect();
        for (a, t) in attrs {
            let (total, functional) = constrained_as(c, a);
            if !total && !rng.gen_bool(p.fill_prob) {
                continue;
            }
            match t {
                AttrType::Object(target) => {
                    let cands = pool(target);
                    if !cands.is_empty() {
                        b.set_obj(oid, a, cands[rng.gen_range(0..cands.len())]);
                    }
                }
                AttrType::SetOf(target) => {
                    let cands = pool(target);
                    if cands.is_empty() {
                        continue;
                    }
                    let lo = usize::from(total);
                    let hi = if functional {
                        1
                    } else {
                        p.max_set.min(cands.len()).max(lo)
                    };
                    let k = rng.gen_range(lo..=hi);
                    let mut members = Vec::with_capacity(k);
                    for _ in 0..k {
                        members.push(cands[rng.gen_range(0..cands.len())]);
                    }
                    if functional {
                        members.truncate(1);
                    }
                    b.set_members(oid, a, members);
                }
            }
        }
    }
    let st = b
        .finish(schema)
        .expect("constrained state is legal by construction");
    debug_assert!(state_satisfies_constraints(schema, &st));
    Some(st)
}

/// A family of constraint-legal states of growing size (the constrained
/// analogue of [`state_family`]). Empty when the constraints leave no
/// instantiable terminal class.
pub fn constrained_state_family(
    rng: &mut impl Rng,
    schema: &Schema,
    count: usize,
    base: &StateParams,
) -> Vec<State> {
    (0..count)
        .filter_map(|i| {
            let p = StateParams {
                objects: base.objects.max(1) * (i + 1) / count.max(1) + 2,
                ..*base
            };
            constrained_state(rng, schema, &p)
        })
        .collect()
}

/// A family of random states (for brute-force containment refutation in
/// property tests): `count` states of growing size.
pub fn state_family(
    rng: &mut impl Rng,
    schema: &Schema,
    count: usize,
    base: &StateParams,
) -> Vec<State> {
    (0..count)
        .map(|i| {
            let p = StateParams {
                objects: base.objects.max(1) * (i + 1) / count.max(1) + 2,
                ..*base
            };
            random_state(rng, schema, &p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;
    use oocq_schema::samples;
    use oocq_state::Value;

    #[test]
    fn random_states_are_legal_and_sized() {
        let s = samples::vehicle_rental();
        let mut rng = StdRng::seed_from_u64(1);
        let st = random_state(&mut rng, &s, &StateParams::default());
        assert_eq!(st.object_count(), 32);
        // Every object is terminal-classed (finish() validated).
        for o in st.oids() {
            assert!(s.is_terminal(st.class_of(o)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = samples::n1_partition();
        let p = StateParams::default();
        let a = random_state(&mut StdRng::seed_from_u64(5), &s, &p);
        let b = random_state(&mut StdRng::seed_from_u64(5), &s, &p);
        assert_eq!(a.object_count(), b.object_count());
        for o in a.oids() {
            assert_eq!(a.class_of(o), b.class_of(o));
        }
    }

    #[test]
    fn refined_attributes_respect_narrowed_types() {
        // Discount.VehRented : {Auto} — generated members must be Autos.
        let s = samples::vehicle_rental();
        let mut rng = StdRng::seed_from_u64(9);
        let st = random_state(
            &mut rng,
            &s,
            &StateParams {
                objects: 64,
                fill_prob: 1.0,
                max_set: 6,
            },
        );
        let veh = s.attr_id("VehRented").unwrap();
        let auto = s.class_id("Auto").unwrap();
        for o in st.oids() {
            if st.class_of(o) == s.class_id("Discount").unwrap() {
                if let Value::Set(ms) = st.attr(o, veh) {
                    for &m in ms {
                        assert_eq!(st.class_of(m), auto);
                    }
                }
            }
        }
    }

    #[test]
    fn steered_state_preserves_the_skeleton_and_definitizes_null_sets() {
        let s = samples::vehicle_rental();
        // Skeleton: one Discount object with every attribute left Λ.
        let mut sb = oocq_state::StateBuilder::new();
        let d = sb.object(s.class_id("Discount").unwrap());
        let skeleton = sb.finish(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let st = steered_state(
            &mut rng,
            &s,
            &skeleton,
            &SteerParams {
                pad_objects: 8,
                fill_prob: 1.0,
                max_set: 4,
                definitize: true,
            },
        );
        assert_eq!(st.object_count(), 1 + 8);
        assert_eq!(st.class_of(d), s.class_id("Discount").unwrap());
        // The null set attribute was definitized to the empty set...
        let veh = s.attr_id("VehRented").unwrap();
        assert_eq!(st.attr(d, veh), &Value::Set(Vec::new()));
        // ...and no pad object leaked a reference to/from the skeleton: the
        // skeleton object still has no set members anywhere.
        for o in st.oids().skip(1) {
            for &a in s.effective_type(st.class_of(o)).keys() {
                match st.attr(o, a) {
                    Value::Obj(t) => assert_ne!(*t, d),
                    Value::Set(ms) => assert!(!ms.contains(&d)),
                    Value::Null => {}
                }
            }
        }
    }

    #[test]
    fn steered_state_without_definitize_keeps_nulls() {
        let s = samples::vehicle_rental();
        let mut sb = oocq_state::StateBuilder::new();
        let d = sb.object(s.class_id("Discount").unwrap());
        let skeleton = sb.finish(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let st = steered_state(
            &mut rng,
            &s,
            &skeleton,
            &SteerParams {
                pad_objects: 0,
                fill_prob: 0.0,
                max_set: 0,
                definitize: false,
            },
        );
        let veh = s.attr_id("VehRented").unwrap();
        assert_eq!(st.attr(d, veh), &Value::Null);
    }

    #[test]
    fn steered_state_copies_skeleton_facts_verbatim() {
        let s = samples::vehicle_rental();
        let mut sb = oocq_state::StateBuilder::new();
        let d = sb.object(s.class_id("Discount").unwrap());
        let a1 = sb.object(s.class_id("Auto").unwrap());
        let veh = s.attr_id("VehRented").unwrap();
        sb.set_members(d, veh, [a1]);
        let skeleton = sb.finish(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let st = steered_state(&mut rng, &s, &skeleton, &SteerParams::default());
        assert_eq!(st.attr(d, veh), &Value::Set(vec![a1]));
    }

    #[test]
    fn constrained_states_satisfy_declared_constraints() {
        use crate::schema_gen::{constrained_schema, ConstraintParams};
        use crate::SchemaParams;
        let mut any_constrained = 0;
        for seed in 0..24u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = constrained_schema(
                &mut rng,
                &SchemaParams::default(),
                &ConstraintParams::default(),
            );
            if s.has_constraints() {
                any_constrained += 1;
            }
            let Some(st) = constrained_state(&mut rng, &s, &StateParams::default()) else {
                continue;
            };
            assert!(
                state_satisfies_constraints(&s, &st),
                "seed {seed}: generated state violates its own constraints"
            );
            // Plain random states are *not* reliably legal on these
            // schemas; the reference check is what tells them apart.
            for o in st.oids() {
                assert!(!s.is_dead_terminal(st.class_of(o)));
            }
        }
        assert!(any_constrained > 20, "generator rarely emits constraints");
    }

    #[test]
    fn constrained_state_seeds_totality_targets() {
        // T.F : U total, but U is never the class a caller asks for — the
        // generator must still seed a U object so F can be filled.
        let mut b = oocq_schema::SchemaBuilder::new();
        let u = b.class("U").unwrap();
        let t = b.class("T").unwrap();
        let f = b.attribute(t, "F", AttrType::Object(u)).unwrap();
        b.constraint(oocq_schema::Constraint::Total(t, f));
        let s = b.finish().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let st = constrained_state(
            &mut rng,
            &s,
            &StateParams {
                objects: 4,
                fill_prob: 0.0,
                max_set: 2,
            },
        )
        .unwrap();
        assert!(state_satisfies_constraints(&s, &st));
        // Every T object has a non-null F despite fill_prob 0.
        for o in st.oids() {
            if st.class_of(o) == t {
                assert!(matches!(st.attr(o, f), Value::Obj(_)));
            }
        }
    }

    #[test]
    fn constrained_state_returns_none_when_nothing_is_instantiable() {
        // Single root pair fully dead under disjointness.
        let mut b = oocq_schema::SchemaBuilder::new();
        let p = b.class("P").unwrap();
        let q = b.class("Q").unwrap();
        let t = b.class("T").unwrap();
        b.subclass(t, p).unwrap();
        b.subclass(t, q).unwrap();
        b.constraint(oocq_schema::Constraint::Disjoint(p, q));
        let s = b.finish().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(constrained_state(&mut rng, &s, &StateParams::default()).is_none());
        assert!(constrained_state_family(&mut rng, &s, 3, &StateParams::default()).is_empty());
    }

    #[test]
    fn satisfies_constraints_detects_each_violation_kind() {
        let mut b = oocq_schema::SchemaBuilder::new();
        let d = b.class("D").unwrap();
        let c = b.class("C").unwrap();
        let items = b.attribute(c, "Items", AttrType::SetOf(d)).unwrap();
        b.constraint(oocq_schema::Constraint::Total(c, items));
        b.constraint(oocq_schema::Constraint::Functional(c, items));
        let s = b.finish().unwrap();
        let build = |members: Option<Vec<usize>>| {
            let mut sb = StateBuilder::new();
            let co = sb.object(c);
            let d0 = sb.object(d);
            let d1 = sb.object(d);
            if let Some(ms) = members {
                let oids = [co, d0, d1];
                sb.set_members(co, items, ms.iter().map(|&i| oids[i]));
            }
            sb.finish(&s).unwrap()
        };
        assert!(!state_satisfies_constraints(&s, &build(None))); // null: not total
        assert!(!state_satisfies_constraints(&s, &build(Some(vec![])))); // empty: not total
        assert!(state_satisfies_constraints(&s, &build(Some(vec![1]))));
        assert!(state_satisfies_constraints(&s, &build(Some(vec![1, 1])))); // one distinct
        assert!(!state_satisfies_constraints(&s, &build(Some(vec![1, 2])))); // not functional
    }

    #[test]
    fn state_family_grows() {
        let s = samples::single_class();
        let mut rng = StdRng::seed_from_u64(3);
        let fam = state_family(&mut rng, &s, 4, &StateParams::default());
        assert_eq!(fam.len(), 4);
        assert!(fam[0].object_count() < fam[3].object_count());
    }
}

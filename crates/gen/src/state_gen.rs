//! Random legal-state generators.

use crate::rng::Rng;
use oocq_schema::{AttrType, Schema};
use oocq_state::{Oid, State, StateBuilder, Value};

/// Parameters for [`random_state`].
#[derive(Clone, Copy, Debug)]
pub struct StateParams {
    /// Number of objects.
    pub objects: usize,
    /// Probability that an attribute is non-null.
    pub fill_prob: f64,
    /// Maximum cardinality of a set-valued attribute.
    pub max_set: usize,
}

impl Default for StateParams {
    fn default() -> StateParams {
        StateParams {
            objects: 32,
            fill_prob: 0.8,
            max_set: 4,
        }
    }
}

/// Generate a random legal state: objects uniformly spread over the terminal
/// classes, attributes filled with type-correct references (or left null).
///
/// Attributes whose declared class has no instance in the state stay null;
/// set attributes may be empty (distinct from null).
pub fn random_state(rng: &mut impl Rng, schema: &Schema, p: &StateParams) -> State {
    let terminals = schema.terminals();
    assert!(!terminals.is_empty(), "schema has no terminal class");
    let mut b = StateBuilder::new();
    let mut classes = Vec::with_capacity(p.objects);
    for _ in 0..p.objects {
        let c = terminals[rng.gen_range(0..terminals.len())];
        classes.push(c);
        b.object(c);
    }
    // Candidate pools per class: objects whose terminal class descends it.
    let pool = |target: oocq_schema::ClassId| -> Vec<Oid> {
        classes
            .iter()
            .enumerate()
            .filter(|(_, &c)| schema.is_subclass(c, target))
            .map(|(i, _)| Oid::from_index(i))
            .collect()
    };
    for (ix, &c) in classes.iter().enumerate() {
        let oid = Oid::from_index(ix);
        let attrs: Vec<_> = schema
            .effective_type(c)
            .iter()
            .map(|(&a, &t)| (a, t))
            .collect();
        for (a, t) in attrs {
            if !rng.gen_bool(p.fill_prob) {
                continue; // stays Λ
            }
            match t {
                AttrType::Object(target) => {
                    let cands = pool(target);
                    if !cands.is_empty() {
                        b.set_obj(oid, a, cands[rng.gen_range(0..cands.len())]);
                    }
                }
                AttrType::SetOf(target) => {
                    let cands = pool(target);
                    let k = rng.gen_range(0..=p.max_set.min(cands.len()));
                    let mut members = Vec::with_capacity(k);
                    for _ in 0..k {
                        members.push(cands[rng.gen_range(0..cands.len())]);
                    }
                    b.set_members(oid, a, members);
                }
            }
        }
    }
    b.finish(schema)
        .expect("generated state is legal by construction")
}

/// Parameters for [`steered_state`].
#[derive(Clone, Copy, Debug)]
pub struct SteerParams {
    /// Number of noise objects appended after the skeleton.
    pub pad_objects: usize,
    /// Probability that a noise object's attribute is non-null.
    pub fill_prob: f64,
    /// Maximum cardinality of a noise object's set-valued attribute.
    pub max_set: usize,
    /// Freeze the skeleton's null set-valued attributes to the empty set,
    /// turning 3-valued *unknown* non-memberships into definite truths.
    /// This helps a query being steered *toward* (its `∉` atoms become
    /// true) and equally helps one being steered *away from* — so callers
    /// searching for a separating state typically try both settings.
    pub definitize: bool,
}

impl Default for SteerParams {
    fn default() -> SteerParams {
        SteerParams {
            pad_objects: 6,
            fill_prob: 0.8,
            max_set: 3,
            definitize: true,
        }
    }
}

/// Grow a certificate-steered state around a skeleton (typically the frozen
/// canonical state of a refutation branch).
///
/// The skeleton's objects are copied first, in oid order, so skeleton oids
/// are stable in the result. Two deliberate asymmetries keep the steering
/// sound:
///
/// - with [`SteerParams::definitize`], every *null set-valued* attribute of
///   a skeleton object becomes the empty set, turning non-membership facts
///   from unknown into definitely true without adding any positive fact;
/// - the appended noise objects reference only each other, never the
///   skeleton, so no new fact about a skeleton object can be introduced.
pub fn steered_state(
    rng: &mut impl Rng,
    schema: &Schema,
    skeleton: &State,
    p: &SteerParams,
) -> State {
    let mut b = StateBuilder::new();
    let skeleton_count = skeleton.object_count();
    let mut skeleton_classes = Vec::with_capacity(skeleton_count);
    for o in skeleton.oids() {
        skeleton_classes.push(skeleton.class_of(o));
        b.object(skeleton.class_of(o));
    }
    for (ix, &c) in skeleton_classes.iter().enumerate() {
        let oid = Oid::from_index(ix);
        let attrs: Vec<_> = schema
            .effective_type(c)
            .iter()
            .map(|(&a, &t)| (a, t))
            .collect();
        for (a, t) in attrs {
            match (skeleton.attr(oid, a), t) {
                (Value::Obj(o), _) => {
                    b.set_obj(oid, a, *o);
                }
                (Value::Set(ms), _) => {
                    b.set_members(oid, a, ms.iter().copied());
                }
                // Definitize: Λ on a set attribute becomes the empty set.
                (Value::Null, AttrType::SetOf(_)) if p.definitize => {
                    b.set_members(oid, a, []);
                }
                (Value::Null, _) => {}
            }
        }
    }
    // Noise: pad objects drawn over the terminals, referencing pad only.
    let terminals = schema.terminals();
    let mut pad_classes = Vec::with_capacity(p.pad_objects);
    for _ in 0..p.pad_objects {
        let c = terminals[rng.gen_range(0..terminals.len())];
        pad_classes.push(c);
        b.object(c);
    }
    let pad_pool = |target: oocq_schema::ClassId| -> Vec<Oid> {
        pad_classes
            .iter()
            .enumerate()
            .filter(|(_, &c)| schema.is_subclass(c, target))
            .map(|(i, _)| Oid::from_index(skeleton_count + i))
            .collect()
    };
    for (i, &c) in pad_classes.iter().enumerate() {
        let oid = Oid::from_index(skeleton_count + i);
        let attrs: Vec<_> = schema
            .effective_type(c)
            .iter()
            .map(|(&a, &t)| (a, t))
            .collect();
        for (a, t) in attrs {
            if !rng.gen_bool(p.fill_prob) {
                continue;
            }
            match t {
                AttrType::Object(target) => {
                    let cands = pad_pool(target);
                    if !cands.is_empty() {
                        b.set_obj(oid, a, cands[rng.gen_range(0..cands.len())]);
                    }
                }
                AttrType::SetOf(target) => {
                    let cands = pad_pool(target);
                    let k = rng.gen_range(0..=p.max_set.min(cands.len()));
                    let mut members = Vec::with_capacity(k);
                    for _ in 0..k {
                        members.push(cands[rng.gen_range(0..cands.len())]);
                    }
                    b.set_members(oid, a, members);
                }
            }
        }
    }
    b.finish(schema)
        .expect("steered state is legal: skeleton was legal and pads are type-correct")
}

/// A family of random states (for brute-force containment refutation in
/// property tests): `count` states of growing size.
pub fn state_family(
    rng: &mut impl Rng,
    schema: &Schema,
    count: usize,
    base: &StateParams,
) -> Vec<State> {
    (0..count)
        .map(|i| {
            let p = StateParams {
                objects: base.objects.max(1) * (i + 1) / count.max(1) + 2,
                ..*base
            };
            random_state(rng, schema, &p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;
    use oocq_schema::samples;
    use oocq_state::Value;

    #[test]
    fn random_states_are_legal_and_sized() {
        let s = samples::vehicle_rental();
        let mut rng = StdRng::seed_from_u64(1);
        let st = random_state(&mut rng, &s, &StateParams::default());
        assert_eq!(st.object_count(), 32);
        // Every object is terminal-classed (finish() validated).
        for o in st.oids() {
            assert!(s.is_terminal(st.class_of(o)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = samples::n1_partition();
        let p = StateParams::default();
        let a = random_state(&mut StdRng::seed_from_u64(5), &s, &p);
        let b = random_state(&mut StdRng::seed_from_u64(5), &s, &p);
        assert_eq!(a.object_count(), b.object_count());
        for o in a.oids() {
            assert_eq!(a.class_of(o), b.class_of(o));
        }
    }

    #[test]
    fn refined_attributes_respect_narrowed_types() {
        // Discount.VehRented : {Auto} — generated members must be Autos.
        let s = samples::vehicle_rental();
        let mut rng = StdRng::seed_from_u64(9);
        let st = random_state(
            &mut rng,
            &s,
            &StateParams {
                objects: 64,
                fill_prob: 1.0,
                max_set: 6,
            },
        );
        let veh = s.attr_id("VehRented").unwrap();
        let auto = s.class_id("Auto").unwrap();
        for o in st.oids() {
            if st.class_of(o) == s.class_id("Discount").unwrap() {
                if let Value::Set(ms) = st.attr(o, veh) {
                    for &m in ms {
                        assert_eq!(st.class_of(m), auto);
                    }
                }
            }
        }
    }

    #[test]
    fn steered_state_preserves_the_skeleton_and_definitizes_null_sets() {
        let s = samples::vehicle_rental();
        // Skeleton: one Discount object with every attribute left Λ.
        let mut sb = oocq_state::StateBuilder::new();
        let d = sb.object(s.class_id("Discount").unwrap());
        let skeleton = sb.finish(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let st = steered_state(
            &mut rng,
            &s,
            &skeleton,
            &SteerParams {
                pad_objects: 8,
                fill_prob: 1.0,
                max_set: 4,
                definitize: true,
            },
        );
        assert_eq!(st.object_count(), 1 + 8);
        assert_eq!(st.class_of(d), s.class_id("Discount").unwrap());
        // The null set attribute was definitized to the empty set...
        let veh = s.attr_id("VehRented").unwrap();
        assert_eq!(st.attr(d, veh), &Value::Set(Vec::new()));
        // ...and no pad object leaked a reference to/from the skeleton: the
        // skeleton object still has no set members anywhere.
        for o in st.oids().skip(1) {
            for (&a, _) in s.effective_type(st.class_of(o)) {
                match st.attr(o, a) {
                    Value::Obj(t) => assert_ne!(*t, d),
                    Value::Set(ms) => assert!(!ms.contains(&d)),
                    Value::Null => {}
                }
            }
        }
    }

    #[test]
    fn steered_state_without_definitize_keeps_nulls() {
        let s = samples::vehicle_rental();
        let mut sb = oocq_state::StateBuilder::new();
        let d = sb.object(s.class_id("Discount").unwrap());
        let skeleton = sb.finish(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let st = steered_state(
            &mut rng,
            &s,
            &skeleton,
            &SteerParams {
                pad_objects: 0,
                fill_prob: 0.0,
                max_set: 0,
                definitize: false,
            },
        );
        let veh = s.attr_id("VehRented").unwrap();
        assert_eq!(st.attr(d, veh), &Value::Null);
    }

    #[test]
    fn steered_state_copies_skeleton_facts_verbatim() {
        let s = samples::vehicle_rental();
        let mut sb = oocq_state::StateBuilder::new();
        let d = sb.object(s.class_id("Discount").unwrap());
        let a1 = sb.object(s.class_id("Auto").unwrap());
        let veh = s.attr_id("VehRented").unwrap();
        sb.set_members(d, veh, [a1]);
        let skeleton = sb.finish(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let st = steered_state(&mut rng, &s, &skeleton, &SteerParams::default());
        assert_eq!(st.attr(d, veh), &Value::Set(vec![a1]));
    }

    #[test]
    fn state_family_grows() {
        let s = samples::single_class();
        let mut rng = StdRng::seed_from_u64(3);
        let fam = state_family(&mut rng, &s, 4, &StateParams::default());
        assert_eq!(fam.len(), 4);
        assert!(fam[0].object_count() < fam[3].object_count());
    }
}

//! # oocq-gen
//!
//! Seeded random generators and fixed workload shapes for the `oocq` test
//! suite and benchmark harness: random consistent schemas, random legal
//! states, and query families (chains, stars, inequality chains, random
//! terminal positive queries) whose growth parameters drive the parameter
//! sweeps of EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod query_gen;
pub mod rng;
mod schema_gen;
mod state_gen;

pub use query_gen::{
    chain_query, inequality_chain, random_positive, random_terminal_positive, rigid_star_query,
    star_query, QueryParams,
};
pub use rng::{Rng, StdRng};
pub use schema_gen::{
    constrained_schema, deep_schema, partition_schema, random_schema, workload_schema,
    ConstraintParams, SchemaParams,
};
pub use state_gen::{
    constrained_state, constrained_state_family, random_state, state_family,
    state_satisfies_constraints, steered_state, StateParams, SteerParams,
};

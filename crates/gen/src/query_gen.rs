//! Query workload generators: fixed shapes for benchmarks plus fully random
//! terminal positive queries for property testing.

use crate::rng::Rng;
use oocq_query::{Query, QueryBuilder};
use oocq_schema::{AttrType, ClassId, Schema};

/// A chain query over [`workload_schema`](crate::workload_schema):
///
/// ```text
/// { x0 | ∃x1…xn: xi ∈ Leaf0 & x1 = x0.next & … & xn = x(n-1).next }
/// ```
///
/// Chains are the classic hard-ish homomorphism shape with a unique
/// backbone; length `n` means `n+1` variables.
pub fn chain_query(schema: &Schema, n: usize) -> Query {
    let leaf = schema.class_id("Leaf0").expect("workload schema");
    let next = schema.attr_id("next").expect("workload schema");
    let mut b = QueryBuilder::new("x0");
    let mut prev = b.free();
    b.range(prev, [leaf]);
    for i in 1..=n {
        let v = b.var(&format!("x{i}"));
        b.range(v, [leaf]);
        b.eq_attr(v, prev, next);
        prev = v;
    }
    b.build()
}

/// A star query: a center with `n` members in its `items` set.
///
/// ```text
/// { x | ∃y1…yn: x ∈ Leaf0 & yi ∈ Leaf0 & yi ∈ x.items }
/// ```
///
/// All spokes are interchangeable, so the minimal equivalent query has one
/// spoke — this is the minimization workhorse workload.
pub fn star_query(schema: &Schema, n: usize) -> Query {
    let leaf = schema.class_id("Leaf0").expect("workload schema");
    let items = schema.attr_id("items").expect("workload schema");
    let mut b = QueryBuilder::new("x");
    let x = b.free();
    b.range(x, [leaf]);
    for i in 0..n {
        let y = b.var(&format!("y{i}"));
        b.range(y, [leaf]);
        b.member(y, x, items);
    }
    b.build()
}

/// A star query whose spokes are pairwise *distinguished* by chained `next`
/// equalities of different depth, so none of them can fold onto another:
/// the minimal equivalent query keeps all spokes. Used as the "already
/// minimal" contrast workload for the minimization bench.
pub fn rigid_star_query(schema: &Schema, n: usize) -> Query {
    let leaf = schema.class_id("Leaf0").expect("workload schema");
    let items = schema.attr_id("items").expect("workload schema");
    let next = schema.attr_id("next").expect("workload schema");
    let mut b = QueryBuilder::new("x");
    let x = b.free();
    b.range(x, [leaf]);
    let mut prev = x;
    for i in 0..n {
        let y = b.var(&format!("y{i}"));
        b.range(y, [leaf]);
        b.member(y, x, items);
        // Chain the spokes so each has a distinct depth from x.
        b.eq_attr(y, prev, next);
        prev = y;
    }
    b.build()
}

/// An inequality-chain query over a single terminal class (Example 3.2 at
/// scale): `n` variables, atoms `xᵢ ≠ xᵢ₊₁`. With `close_cycle`, an extra
/// `x₀ ≠ xₙ₋₁` (odd cycles need three distinct objects, even ones two).
pub fn inequality_chain(_schema: &Schema, class: ClassId, n: usize, close_cycle: bool) -> Query {
    assert!(n >= 1);
    let mut b = QueryBuilder::new("x0");
    let mut vars = vec![b.free()];
    b.range(vars[0], [class]);
    for i in 1..n {
        let v = b.var(&format!("x{i}"));
        b.range(v, [class]);
        vars.push(v);
    }
    for w in vars.windows(2) {
        b.neq_vars(w[0], w[1]);
    }
    if close_cycle && n >= 2 {
        b.neq_vars(vars[0], vars[n - 1]);
    }
    b.build()
}

/// Parameters for [`random_terminal_positive`].
#[derive(Clone, Copy, Debug)]
pub struct QueryParams {
    /// Number of variables (≥ 1; the first is the answer variable).
    pub vars: usize,
    /// Extra non-range atoms to attempt.
    pub atoms: usize,
}

impl Default for QueryParams {
    fn default() -> QueryParams {
        QueryParams { vars: 4, atoms: 5 }
    }
}

/// Generate a random *well-formed terminal positive* query over an arbitrary
/// schema: each variable ranges over a random terminal class; equality and
/// membership atoms are added only when type-compatible, so most generated
/// queries are satisfiable (unsatisfiable ones are still legal output — the
/// algorithms must handle them).
pub fn random_terminal_positive(rng: &mut impl Rng, schema: &Schema, p: &QueryParams) -> Query {
    let terminals = schema.terminals();
    assert!(!terminals.is_empty());
    let mut b = QueryBuilder::new("v0");
    let mut vars = vec![b.free()];
    let mut classes = vec![terminals[rng.gen_range(0..terminals.len())]];
    b.range(vars[0], [classes[0]]);
    for i in 1..p.vars.max(1) {
        let v = b.var(&format!("v{i}"));
        let c = terminals[rng.gen_range(0..terminals.len())];
        b.range(v, [c]);
        vars.push(v);
        classes.push(c);
    }
    for _ in 0..p.atoms {
        let i = rng.gen_range(0..vars.len());
        let j = rng.gen_range(0..vars.len());
        // Choose among: var=var (same class), var = var.attr (object attr,
        // compatible), membership (set attr, compatible).
        match rng.gen_range(0..3) {
            0 => {
                if classes[i] == classes[j] && i != j {
                    b.eq_vars(vars[i], vars[j]);
                }
            }
            1 => {
                // vars[i] = vars[j].A for an object attribute A of class j
                // with vars[i]'s class among its terminal descendants.
                let cands: Vec<_> = schema
                    .effective_type(classes[j])
                    .iter()
                    .filter(|(_, t)| {
                        matches!(t, AttrType::Object(d)
                            if schema.terminal_descendants(*d).contains(&classes[i]))
                    })
                    .map(|(&a, _)| a)
                    .collect();
                if !cands.is_empty() {
                    let a = cands[rng.gen_range(0..cands.len())];
                    b.eq_attr(vars[i], vars[j], a);
                }
            }
            _ => {
                let cands: Vec<_> = schema
                    .effective_type(classes[j])
                    .iter()
                    .filter(|(_, t)| {
                        matches!(t, AttrType::SetOf(d)
                            if schema.terminal_descendants(*d).contains(&classes[i]))
                    })
                    .map(|(&a, _)| a)
                    .collect();
                if !cands.is_empty() {
                    let a = cands[rng.gen_range(0..cands.len())];
                    b.member(vars[i], vars[j], a);
                }
            }
        }
    }
    b.build()
}

/// A random *non-terminal* positive query: like
/// [`random_terminal_positive`] but each variable ranges over a random
/// (possibly non-terminal) class. Exercises the expansion pipeline.
pub fn random_positive(rng: &mut impl Rng, schema: &Schema, p: &QueryParams) -> Query {
    // Start from a terminal query, then lift each range atom to a random
    // ancestor with some probability.
    let q = random_terminal_positive(rng, schema, p);
    let mut b = QueryBuilder::new(q.var_name(q.free_var()));
    let mut ids = Vec::new();
    for v in q.vars() {
        if v == q.free_var() {
            ids.push(b.free());
        } else {
            ids.push(b.var(q.var_name(v)));
        }
    }
    for atom in q.atoms() {
        match atom {
            oocq_query::Atom::Range(v, cs) => {
                let c = cs[0];
                let ancestors: Vec<ClassId> = schema
                    .classes()
                    .filter(|&anc| schema.is_subclass(c, anc))
                    .collect();
                let lifted = ancestors[rng.gen_range(0..ancestors.len())];
                b.range(ids[v.index()], [lifted]);
            }
            other => {
                b.atom(other.map_vars(|v| ids[v.index()]));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;
    use crate::schema_gen::workload_schema;
    use oocq_query::check_well_formed;
    use oocq_schema::samples;

    #[test]
    fn chain_query_shape() {
        let s = workload_schema(2);
        let q = chain_query(&s, 3);
        assert_eq!(q.var_count(), 4);
        assert!(q.is_terminal(&s));
        assert!(q.is_positive());
        check_well_formed(&q).unwrap();
        assert!(oocq_core::is_satisfiable(&s, &q).unwrap());
    }

    #[test]
    fn star_query_minimizes_to_single_spoke() {
        let s = workload_schema(2);
        let q = star_query(&s, 5);
        let m = oocq_core::minimize_terminal_positive(&s, &q).unwrap();
        assert_eq!(m.var_count(), 2);
    }

    #[test]
    fn rigid_star_is_minimal() {
        let s = workload_schema(2);
        let q = rigid_star_query(&s, 4);
        check_well_formed(&q).unwrap();
        assert!(oocq_core::is_satisfiable(&s, &q).unwrap());
        assert!(oocq_core::is_minimal_terminal_positive(&s, &q).unwrap());
    }

    #[test]
    fn inequality_chain_example_32_at_scale() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        // Chains of length ≥ 2 are pairwise equivalent (2 objects suffice).
        let q2 = inequality_chain(&s, c, 2, false);
        let q5 = inequality_chain(&s, c, 5, false);
        assert!(oocq_core::equivalent_terminal(&s, &q2, &q5).unwrap());
        // The triangle needs 3 distinct objects.
        let tri = inequality_chain(&s, c, 3, true);
        assert!(oocq_core::contains_terminal(&s, &tri, &q2).unwrap());
        assert!(!oocq_core::contains_terminal(&s, &q2, &tri).unwrap());
    }

    #[test]
    fn random_terminal_positive_is_well_formed() {
        let s = samples::vehicle_rental();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let q = random_terminal_positive(&mut rng, &s, &QueryParams::default());
            check_well_formed(&q).unwrap();
            assert!(q.is_terminal(&s));
            assert!(q.is_positive());
        }
    }

    #[test]
    fn random_positive_expands() {
        let s = samples::vehicle_rental();
        let mut rng = StdRng::seed_from_u64(13);
        let mut saw_nonterminal = false;
        for _ in 0..20 {
            let q = random_positive(&mut rng, &s, &QueryParams::default());
            check_well_formed(&q).unwrap();
            saw_nonterminal |= !q.is_terminal(&s);
            let u = oocq_core::expand_satisfiable(&s, &q).unwrap();
            assert!(u.is_terminal(&s));
        }
        assert!(saw_nonterminal);
    }
}

//! Minimal deterministic pseudo-random number generator.
//!
//! The generators in this crate only need uniform integers, booleans, and a
//! seedable stream that is stable across runs and platforms. Rather than pull
//! in an external crate for that, we keep a small self-contained PRNG here:
//! `StdRng` is a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)-seeded
//! xoshiro256** generator, which passes the usual statistical batteries and is
//! more than adequate for workload generation and randomized testing.
//!
//! The API mirrors the subset of `rand` the crate historically used
//! (`gen_range`, `gen_bool`, `seed_from_u64`), so call sites read the same.

use std::ops::{Range, RangeInclusive};

/// Ranges that can be sampled uniformly. Implemented for `Range<usize>` and
/// `RangeInclusive<usize>` (the only shapes the generators need).
pub trait SampleRange {
    /// The element type produced by sampling.
    type Item;
    /// Draw one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Item;
}

impl SampleRange for Range<usize> {
    type Item = usize;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "gen_range called with empty range");
        let span = (self.end - self.start) as u64;
        self.start + uniform_below(rng, span) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Item = usize;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range called with empty range");
        let span = (hi - lo) as u64 + 1; // hi - lo < 2^63 in practice; no overflow path needed
        lo + uniform_below(rng, span) as usize
    }
}

/// Unbiased uniform draw in `0..n` via Lemire's multiply-then-reject method.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n; // 2^64 mod n
    loop {
        let x = rng.next_u64();
        let wide = x as u128 * n as u128;
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

/// Source of uniform random `u64`s plus the derived sampling helpers.
pub trait Rng {
    /// The next 64 uniformly distributed bits from the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Item
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits, the standard float-in-[0,1) construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The crate's standard generator: xoshiro256** seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Deterministically derive a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion of the seed into the full 256-bit state, as
        // recommended by the xoshiro authors (avoids the all-zero state).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** step.
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(19);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn works_through_mut_references() {
        fn draw(rng: &mut impl Rng) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(23);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _ = draw(r); // reborrow through &mut &mut StdRng
    }
}

//! Random and parameterized schema generators.

use crate::rng::Rng;
use oocq_schema::{AttrType, ClassId, Constraint, Schema, SchemaBuilder};
use std::collections::BTreeSet;

/// Parameters for [`random_schema`].
#[derive(Clone, Copy, Debug)]
pub struct SchemaParams {
    /// Number of root (maximal) classes.
    pub roots: usize,
    /// Terminal subclasses per root.
    pub branching: usize,
    /// Object-valued attributes declared on each root.
    pub object_attrs: usize,
    /// Set-valued attributes declared on each root.
    pub set_attrs: usize,
    /// Probability that a terminal refines an inherited attribute to a
    /// random subclass of its declared class.
    pub refine_prob: f64,
}

impl Default for SchemaParams {
    fn default() -> SchemaParams {
        SchemaParams {
            roots: 3,
            branching: 3,
            object_attrs: 2,
            set_attrs: 2,
            refine_prob: 0.3,
        }
    }
}

/// Generate a random two-level schema: `roots` maximal classes, each with
/// `branching` terminal subclasses, object/set attributes typed at random
/// root classes, and random subtype-correct refinements on terminals.
///
/// Always consistent by construction (refinements pick terminal descendants
/// of the inherited class).
pub fn random_schema(rng: &mut impl Rng, p: &SchemaParams) -> Schema {
    let mut b = SchemaBuilder::new();
    let mut roots: Vec<ClassId> = Vec::new();
    let mut terminals: Vec<Vec<ClassId>> = Vec::new();
    for r in 0..p.roots {
        roots.push(b.class(&format!("R{r}")).unwrap());
    }
    for (r, &root) in roots.iter().enumerate() {
        let mut ts = Vec::new();
        for t in 0..p.branching {
            let c = b.class(&format!("R{r}T{t}")).unwrap();
            b.subclass(c, root).unwrap();
            ts.push(c);
        }
        terminals.push(ts);
    }
    // Attribute declarations on roots.
    let mut declared: Vec<(String, usize, bool)> = Vec::new(); // (name, target root ix, is_set)
    for (r, &root) in roots.iter().enumerate() {
        for a in 0..p.object_attrs {
            let target = rng.gen_range(0..p.roots);
            let name = format!("O{r}_{a}");
            b.attribute(root, &name, AttrType::Object(roots[target]))
                .unwrap();
            declared.push((name, target, false));
        }
        for a in 0..p.set_attrs {
            let target = rng.gen_range(0..p.roots);
            let name = format!("S{r}_{a}");
            b.attribute(root, &name, AttrType::SetOf(roots[target]))
                .unwrap();
            declared.push((name, target, true));
        }
    }
    // Random refinements on terminals (subtype-correct: narrow to a terminal
    // descendant of the declared target).
    for (r, ts) in terminals.iter().enumerate() {
        for &t in ts {
            for a in 0..p.object_attrs {
                if rng.gen_bool(p.refine_prob) {
                    let name = format!("O{r}_{a}");
                    let target_ix = declared
                        .iter()
                        .find(|(n, ..)| n == &name)
                        .map(|(_, ix, _)| *ix)
                        .unwrap();
                    let narrowed = terminals[target_ix][rng.gen_range(0..p.branching)];
                    b.attribute(t, &name, AttrType::Object(narrowed)).unwrap();
                }
            }
            for a in 0..p.set_attrs {
                if rng.gen_bool(p.refine_prob) {
                    let name = format!("S{r}_{a}");
                    let target_ix = declared
                        .iter()
                        .find(|(n, ..)| n == &name)
                        .map(|(_, ix, _)| *ix)
                        .unwrap();
                    let narrowed = terminals[target_ix][rng.gen_range(0..p.branching)];
                    b.attribute(t, &name, AttrType::SetOf(narrowed)).unwrap();
                }
            }
        }
    }
    b.finish()
        .expect("generated schema is consistent by construction")
}

/// Parameters for [`constrained_schema`]: how many declared constraints of
/// each kind to draw (duplicates are deduplicated, so these are upper
/// bounds).
#[derive(Clone, Copy, Debug)]
pub struct ConstraintParams {
    /// Disjointness declarations over root pairs.
    pub disjoint: usize,
    /// Totality declarations over root attributes.
    pub total: usize,
    /// Functionality declarations over set-valued root attributes.
    pub functional: usize,
    /// Probability that a terminal gains a *second* root parent — the
    /// multiple-inheritance diamonds that give disjointness constraints
    /// terminals to kill.
    pub multi_parent_prob: f64,
}

impl Default for ConstraintParams {
    fn default() -> ConstraintParams {
        ConstraintParams {
            disjoint: 2,
            total: 1,
            functional: 1,
            multi_parent_prob: 0.35,
        }
    }
}

/// [`random_schema`] with declared constraints: the same two-level
/// structure, except terminals may subclass a second root (so disjointness
/// has common descendants to kill), plus random `disjoint`/`total`/
/// `functional` declarations over the roots and their attributes.
///
/// Always consistent by construction: roots are pairwise unrelated (so
/// disjointness is never declared between relatives), totality only names
/// declared attributes, functionality only set-valued ones, and the
/// candidate list is deduplicated before [`SchemaBuilder::finish`].
pub fn constrained_schema(rng: &mut impl Rng, p: &SchemaParams, c: &ConstraintParams) -> Schema {
    let mut b = SchemaBuilder::new();
    let mut roots: Vec<ClassId> = Vec::new();
    for r in 0..p.roots {
        roots.push(b.class(&format!("R{r}")).unwrap());
    }
    for (r, &root) in roots.iter().enumerate() {
        for t in 0..p.branching {
            let cls = b.class(&format!("R{r}T{t}")).unwrap();
            b.subclass(cls, root).unwrap();
            if p.roots > 1 && rng.gen_bool(c.multi_parent_prob) {
                let mut other = rng.gen_range(0..p.roots);
                if other == r {
                    other = (other + 1) % p.roots;
                }
                b.subclass(cls, roots[other]).unwrap();
            }
        }
    }
    let mut object_attrs: Vec<(ClassId, oocq_schema::AttrId)> = Vec::new();
    let mut set_attrs: Vec<(ClassId, oocq_schema::AttrId)> = Vec::new();
    for (r, &root) in roots.iter().enumerate() {
        for a in 0..p.object_attrs {
            let target = roots[rng.gen_range(0..p.roots)];
            let id = b
                .attribute(root, &format!("O{r}_{a}"), AttrType::Object(target))
                .unwrap();
            object_attrs.push((root, id));
        }
        for a in 0..p.set_attrs {
            let target = roots[rng.gen_range(0..p.roots)];
            let id = b
                .attribute(root, &format!("S{r}_{a}"), AttrType::SetOf(target))
                .unwrap();
            set_attrs.push((root, id));
        }
    }
    let mut constraints: BTreeSet<Constraint> = BTreeSet::new();
    if p.roots > 1 {
        for _ in 0..c.disjoint {
            let a = rng.gen_range(0..p.roots);
            let mut bb = rng.gen_range(0..p.roots);
            if bb == a {
                bb = (bb + 1) % p.roots;
            }
            constraints.insert(Constraint::Disjoint(roots[a], roots[bb]).normalized());
        }
    }
    let declared: Vec<(ClassId, oocq_schema::AttrId)> = object_attrs
        .iter()
        .chain(set_attrs.iter())
        .copied()
        .collect();
    if !declared.is_empty() {
        for _ in 0..c.total {
            let (cls, at) = declared[rng.gen_range(0..declared.len())];
            constraints.insert(Constraint::Total(cls, at));
        }
    }
    if !set_attrs.is_empty() {
        for _ in 0..c.functional {
            let (cls, at) = set_attrs[rng.gen_range(0..set_attrs.len())];
            constraints.insert(Constraint::Functional(cls, at));
        }
    }
    for con in constraints {
        b.constraint(con);
    }
    b.finish()
        .expect("generated constrained schema is consistent by construction")
}

/// The workload schema used by the benchmark suite: one root `Node` with a
/// `next : Node` object attribute and an `items : {Node}` set attribute,
/// partitioned into `leaves` terminal classes `Leaf0 … Leaf{n-1}`.
pub fn workload_schema(leaves: usize) -> Schema {
    let mut b = SchemaBuilder::new();
    let node = b.class("Node").unwrap();
    b.attribute(node, "next", AttrType::Object(node)).unwrap();
    b.attribute(node, "items", AttrType::SetOf(node)).unwrap();
    for i in 0..leaves {
        let c = b.class(&format!("Leaf{i}")).unwrap();
        b.subclass(c, node).unwrap();
    }
    b.finish().unwrap()
}

/// A parameterized version of the paper's Example 1.2 schema: `N` has
/// `terminals` terminal subclasses; `G` has terminals `H` and `I`;
/// `N.A : {G}`. The first `b_on` terminals declare `B : G`; the last
/// `refine_a` terminals refine `A` to `{I}`. Queries mentioning `x.B` and a
/// member of class `H` in `x.A` are satisfiable only on terminals that have
/// `B` and did not refine `A` — exactly the Example 4.1 pruning pattern, at
/// scale.
pub fn partition_schema(terminals: usize, b_on: usize, refine_a: usize) -> Schema {
    assert!(b_on <= terminals && refine_a <= terminals);
    let mut sb = SchemaBuilder::new();
    let n = sb.class("N").unwrap();
    let g = sb.class("G").unwrap();
    let h = sb.class("H").unwrap();
    let i = sb.class("I").unwrap();
    sb.subclass(h, g).unwrap();
    sb.subclass(i, g).unwrap();
    sb.attribute(n, "A", AttrType::SetOf(g)).unwrap();
    for t in 0..terminals {
        let c = sb.class(&format!("T{t}")).unwrap();
        sb.subclass(c, n).unwrap();
        if t < b_on {
            sb.attribute(c, "B", AttrType::Object(g)).unwrap();
        }
        if t >= terminals - refine_a {
            sb.attribute(c, "A", AttrType::SetOf(i)).unwrap();
        }
    }
    sb.finish().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    #[test]
    fn random_schema_is_consistent_and_sized() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = SchemaParams::default();
        let s = random_schema(&mut rng, &p);
        assert_eq!(s.class_count(), p.roots * (1 + p.branching));
        assert_eq!(s.terminals().len(), p.roots * p.branching);
    }

    #[test]
    fn random_schema_is_deterministic_per_seed() {
        let p = SchemaParams::default();
        let a = random_schema(&mut StdRng::seed_from_u64(42), &p);
        let b = random_schema(&mut StdRng::seed_from_u64(42), &p);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn workload_schema_shape() {
        let s = workload_schema(4);
        let node = s.class_id("Node").unwrap();
        assert_eq!(s.terminal_descendants(node).len(), 4);
        assert!(s.attr_id("next").is_some());
        let leaf = s.class_id("Leaf2").unwrap();
        assert!(s
            .attr_type(leaf, s.attr_id("items").unwrap())
            .is_some_and(|t| t.is_set()));
    }

    #[test]
    fn partition_schema_prunes_as_configured() {
        let s = partition_schema(5, 2, 2);
        let bb = s.attr_id("B").unwrap();
        // B on T0, T1 only.
        assert!(s.attr_type(s.class_id("T0").unwrap(), bb).is_some());
        assert!(s.attr_type(s.class_id("T2").unwrap(), bb).is_none());
        // A refined on T3, T4.
        let a = s.attr_id("A").unwrap();
        let i = s.class_id("I").unwrap();
        assert_eq!(
            s.attr_type(s.class_id("T4").unwrap(), a),
            Some(AttrType::SetOf(i))
        );
        let g = s.class_id("G").unwrap();
        assert_eq!(
            s.attr_type(s.class_id("T0").unwrap(), a),
            Some(AttrType::SetOf(g))
        );
    }
}

/// A complete class tree of the given `depth` and `branching`: the root is
/// `C`, children of `X` are `X0 … X{b-1}`, and only the `depth`-level nodes
/// are terminal (so a node at height `k` has `branching^k` terminal
/// descendants). The root declares `next : C` and `items : {C}`, inherited
/// all the way down — deep inheritance chains for the expansion and
/// containment tests.
pub fn deep_schema(depth: usize, branching: usize) -> Schema {
    assert!(depth >= 1 && branching >= 1);
    let mut b = SchemaBuilder::new();
    let root = b.class("C").unwrap();
    b.attribute(root, "next", AttrType::Object(root)).unwrap();
    b.attribute(root, "items", AttrType::SetOf(root)).unwrap();
    let mut frontier: Vec<(String, ClassId)> = vec![("C".to_owned(), root)];
    for _ in 0..depth {
        let mut next_frontier = Vec::new();
        for (name, parent) in &frontier {
            for i in 0..branching {
                let child_name = format!("{name}{i}");
                let child = b.class(&child_name).unwrap();
                b.subclass(child, *parent).unwrap();
                next_frontier.push((child_name, child));
            }
        }
        frontier = next_frontier;
    }
    b.finish().unwrap()
}

#[cfg(test)]
mod deep_tests {
    use super::*;

    #[test]
    fn deep_schema_counts() {
        let s = deep_schema(3, 2);
        // 1 + 2 + 4 + 8 classes; 8 terminals.
        assert_eq!(s.class_count(), 15);
        assert_eq!(s.terminals().len(), 8);
        let root = s.class_id("C").unwrap();
        assert_eq!(s.terminal_descendants(root).len(), 8);
        // Mid-level class C1 has 4 terminal descendants.
        let mid = s.class_id("C1").unwrap();
        assert_eq!(s.terminal_descendants(mid).len(), 4);
    }

    #[test]
    fn deep_schema_attributes_inherit_to_leaves() {
        let s = deep_schema(4, 2);
        let leaf = s.class_id("C0101").unwrap();
        assert!(s.attr_type(leaf, s.attr_id("next").unwrap()).is_some());
        assert!(s.attr_type(leaf, s.attr_id("items").unwrap()).is_some());
    }
}

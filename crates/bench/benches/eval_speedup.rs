//! B6 — the end-to-end payoff (§1 motivation): evaluating the original
//! query versus its search-space-optimal form on states of growing size.
//!
//! Expected shape: both grow with state size, but the minimized query scans
//! the `Auto` extent instead of the whole `Vehicle` extent, for a constant-
//! factor win that tracks the extent ratio (≈ 3× here, amplified by the
//! join inside the membership check).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oocq_gen::{random_state, StateParams};
use oocq_parser::parse_query;
use oocq_schema::samples;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_eval_speedup(c: &mut Criterion) {
    let schema = samples::vehicle_rental();
    let q = parse_query(
        &schema,
        "{ x | exists y: x in Vehicle & y in Discount & x in y.VehRented }",
    )
    .unwrap();
    let optimal = oocq_core::minimize_positive(&schema, &q).unwrap();
    let mut rng = StdRng::seed_from_u64(77);

    let mut g = c.benchmark_group("b6_eval");
    for objects in [100usize, 400, 1600] {
        let state = random_state(
            &mut rng,
            &schema,
            &StateParams {
                objects,
                fill_prob: 0.9,
                max_set: 6,
            },
        );
        g.throughput(Throughput::Elements(objects as u64));
        g.bench_with_input(BenchmarkId::new("naive", objects), &objects, |b, _| {
            b.iter(|| black_box(oocq_eval::answer(&schema, &state, &q)))
        });
        g.bench_with_input(BenchmarkId::new("minimized", objects), &objects, |b, _| {
            b.iter(|| black_box(oocq_eval::answer_union(&schema, &state, &optimal)))
        });
        // Third series: the planned evaluator on the MINIMIZED query — the
        // optimizer's static pruning composes with runtime propagation.
        let plan = oocq_eval::Plan::compile(&optimal.queries()[0]);
        g.bench_with_input(BenchmarkId::new("minimized_planned", objects), &objects, |b, _| {
            b.iter(|| {
                black_box(oocq_eval::answer_with_plan(
                    &schema,
                    &state,
                    &optimal.queries()[0],
                    &plan,
                ))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_eval_speedup
}
criterion_main!(benches);

//! B6 — the end-to-end payoff (§1 motivation): evaluating the original
//! query versus its search-space-optimal form on states of growing size.
//!
//! Expected shape: both grow with state size, but the minimized query scans
//! the `Auto` extent instead of the whole `Vehicle` extent, for a constant-
//! factor win that tracks the extent ratio (≈ 3× here, amplified by the
//! join inside the membership check).

use oocq_bench::Harness;
use oocq_gen::{random_state, StateParams, StdRng};
use oocq_parser::parse_query;
use oocq_schema::samples;

fn main() {
    let h = Harness::from_env();
    let schema = samples::vehicle_rental();
    let q = parse_query(
        &schema,
        "{ x | exists y: x in Vehicle & y in Discount & x in y.VehRented }",
    )
    .unwrap();
    let optimal = oocq_core::minimize_positive(&schema, &q).unwrap();
    let mut rng = StdRng::seed_from_u64(77);

    for objects in [100usize, 400, 1600] {
        let state = random_state(
            &mut rng,
            &schema,
            &StateParams {
                objects,
                fill_prob: 0.9,
                max_set: 6,
            },
        );
        h.run("b6_eval", &format!("naive/{objects}"), || {
            oocq_eval::answer(&schema, &state, &q)
        });
        h.run("b6_eval", &format!("minimized/{objects}"), || {
            oocq_eval::answer_union(&schema, &state, &optimal)
        });
        // Third series: the planned evaluator on the MINIMIZED query — the
        // optimizer's static pruning composes with runtime propagation.
        let plan = oocq_eval::Plan::compile(&optimal.queries()[0]);
        h.run("b6_eval", &format!("minimized_planned/{objects}"), || {
            oocq_eval::answer_with_plan(&schema, &state, &optimal.queries()[0], &plan)
        });
    }
}

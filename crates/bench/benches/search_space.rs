//! B5 — the full §4 pipeline (`minimize_positive`) on Example-4.1-style
//! inputs of growing hierarchy width: how expensive is it to compute the
//! search-space-optimal form, as the number of terminal classes (and hence
//! expansion branches) grows, at different pruning ratios?
//!
//! Expected shape: cost tracks the number of *satisfiable* branches; heavy
//! typing-based pruning (few classes carrying `B`) keeps the pipeline cheap
//! even at high branching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oocq_gen::partition_schema;
use oocq_parser::parse_query;
use std::hint::black_box;

fn bench_search_space(c: &mut Criterion) {
    let mut g = c.benchmark_group("b5_pipeline");
    for terminals in [3usize, 6, 12, 24] {
        // Heavy pruning: only 2 terminals carry B; 1 refines A away.
        let schema = partition_schema(terminals, 2, 1);
        let q = parse_query(
            &schema,
            "{ x | exists y, s: x in N & y in G & s in H & y = x.B & y in x.A & s in x.A }",
        )
        .unwrap();
        g.bench_with_input(
            BenchmarkId::new("pruned_to_2", terminals),
            &terminals,
            |b, _| b.iter(|| black_box(oocq_core::minimize_positive(&schema, &q).unwrap())),
        );

        // No pruning: every terminal carries B, none refines A.
        let schema = partition_schema(terminals, terminals, 0);
        let q = parse_query(
            &schema,
            "{ x | exists y, s: x in N & y in G & s in H & y = x.B & y in x.A & s in x.A }",
        )
        .unwrap();
        g.bench_with_input(
            BenchmarkId::new("unpruned", terminals),
            &terminals,
            |b, _| b.iter(|| black_box(oocq_core::minimize_positive(&schema, &q).unwrap())),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_search_space
}
criterion_main!(benches);

//! B5 — the full §4 pipeline (`minimize_positive`) on Example-4.1-style
//! inputs of growing hierarchy width: how expensive is it to compute the
//! search-space-optimal form, as the number of terminal classes (and hence
//! expansion branches) grows, at different pruning ratios?
//!
//! Expected shape: cost tracks the number of *satisfiable* branches; heavy
//! typing-based pruning (few classes carrying `B`) keeps the pipeline cheap
//! even at high branching.

use oocq_bench::Harness;
use oocq_gen::partition_schema;
use oocq_parser::parse_query;

fn main() {
    let h = Harness::from_env();
    for terminals in [3usize, 6, 12, 24] {
        // Heavy pruning: only 2 terminals carry B; 1 refines A away.
        let schema = partition_schema(terminals, 2, 1);
        let q = parse_query(
            &schema,
            "{ x | exists y, s: x in N & y in G & s in H & y = x.B & y in x.A & s in x.A }",
        )
        .unwrap();
        h.run("b5_pipeline", &format!("pruned_to_2/{terminals}"), || {
            oocq_core::minimize_positive(&schema, &q).unwrap()
        });

        // No pruning: every terminal carries B, none refines A.
        let schema = partition_schema(terminals, terminals, 0);
        let q = parse_query(
            &schema,
            "{ x | exists y, s: x in N & y in G & s in H & y = x.B & y in x.A & s in x.A }",
        )
        .unwrap();
        h.run("b5_pipeline", &format!("unpruned/{terminals}"), || {
            oocq_core::minimize_positive(&schema, &q).unwrap()
        });
    }
}

//! B3 — terminal expansion (Proposition 2.1): time and output size versus
//! variable count and hierarchy branching factor.
//!
//! Expected shape: the union size is `branching ^ vars` (exponential), and
//! expansion time tracks output size; satisfiability filtering on the
//! Example-4.1-style `partition_schema` removes the configured fraction of
//! branches.

use oocq_bench::Harness;
use oocq_gen::partition_schema;
use oocq_query::QueryBuilder;

/// `vars` variables all ranging over the non-terminal root `N`, each with a
/// `y = x.B`-style constraint that only some terminals satisfy.
fn wide_query(schema: &oocq_schema::Schema, vars: usize) -> oocq_query::Query {
    let n = schema.class_id("N").unwrap();
    let g = schema.class_id("G").unwrap();
    let bb = schema.attr_id("B").unwrap();
    let mut b = QueryBuilder::new("x0");
    let x0 = b.free();
    b.range(x0, [n]);
    let y = b.var("y");
    b.range(y, [g]);
    b.eq_attr(y, x0, bb);
    for i in 1..vars {
        let v = b.var(&format!("x{i}"));
        b.range(v, [n]);
        b.eq_attr(y, v, bb);
    }
    b.build()
}

fn main() {
    let h = Harness::from_env();

    // Branching sweep at fixed variable count.
    for branching in [2usize, 4, 8, 16] {
        let schema = partition_schema(branching, branching / 2, 0);
        let q = wide_query(&schema, 3);
        h.run("b3_branching", &format!("expand/{branching}"), || {
            oocq_core::expand(&schema, &q).unwrap().len()
        });
        h.run(
            "b3_branching",
            &format!("expand_satisfiable/{branching}"),
            || oocq_core::expand_satisfiable(&schema, &q).unwrap().len(),
        );
    }

    // Variable-count sweep at fixed branching: output is 4^n · 2.
    let schema = partition_schema(4, 2, 1);
    for vars in [1usize, 2, 3, 4, 5] {
        let q = wide_query(&schema, vars);
        h.run("b3_vars", &format!("expand/{vars}"), || {
            oocq_core::expand(&schema, &q).unwrap().len()
        });
    }
}

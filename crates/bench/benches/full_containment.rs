//! B2 — the exponential cost of the full Theorem 3.1 enumeration versus the
//! corollaries' fast paths.
//!
//! Workload: inequality chains (Example 3.2 at scale) checked both with the
//! automatically selected Corollary 3.3 condition (enumerate equality
//! augmentations only) and with the forced full Theorem 3.1 enumeration
//! (augmentations × membership subsets). Expected shape: both grow with the
//! Bell number of the variable count; the full check pays an extra factor
//! once membership candidates exist, demonstrated on a star-with-inequality
//! workload.

use oocq_bench::Harness;
use oocq_gen::{inequality_chain, star_query, workload_schema};
use oocq_query::QueryBuilder;
use oocq_schema::samples;

fn main() {
    let h = Harness::from_env();
    let s = samples::single_class();
    let cls = s.class_id("C").unwrap();

    for n in [2usize, 3, 4, 5, 6] {
        let q1 = inequality_chain(&s, cls, n, false);
        let q2 = inequality_chain(&s, cls, 2, false);
        h.run("b2_inequality_chain", &format!("auto_cor33/{n}"), || {
            let r = oocq_core::contains_terminal(&s, &q1, &q2).unwrap();
            assert!(r);
            r
        });
        h.run("b2_inequality_chain", &format!("forced_thm31/{n}"), || {
            let r = oocq_core::contains_terminal_full(&s, &q1, &q2).unwrap();
            assert!(r);
            r
        });
    }

    // Positive right-hand side: Corollary 3.4 needs ONE mapping, while the
    // forced Theorem 3.1 enumeration still walks every consistent partition
    // of q1's variables — the structural gap the corollaries buy.
    for n in [3usize, 4, 5, 6, 7] {
        let q1 = inequality_chain(&s, cls, n, false);
        let q2 = {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            let y = b.var("y");
            b.range(x, [cls]).range(y, [cls]);
            b.build()
        };
        h.run("b2_positive_rhs", &format!("auto_cor34/{n}"), || {
            let r = oocq_core::contains_terminal(&s, &q1, &q2).unwrap();
            assert!(r);
            r
        });
        h.run("b2_positive_rhs", &format!("forced_thm31/{n}"), || {
            let r = oocq_core::contains_terminal_full(&s, &q1, &q2).unwrap();
            assert!(r);
            r
        });
    }

    // A workload with set terms, so Theorem 3.1's W subsets are non-trivial:
    // star query target with a non-membership source.
    let ws = workload_schema(2);
    let items = ws.attr_id("items").unwrap();
    let leaf = ws.class_id("Leaf0").unwrap();
    for n in [1usize, 2, 3, 4] {
        let q1 = star_query(&ws, n);
        // q2: star(1) plus a non-membership between fresh vars — forces the
        // inequality-free (Cor 3.2) path with 2^|T| subsets.
        let q2 = {
            let mut b = QueryBuilder::new("x");
            let x = b.free();
            let y = b.var("y0");
            let z = b.var("z");
            b.range(x, [leaf]).range(y, [leaf]).range(z, [leaf]);
            b.member(y, x, items);
            b.non_member(z, x, items);
            b.build()
        };
        h.run(
            "b2_with_membership_candidates",
            &format!("auto_cor32/{n}"),
            || oocq_core::contains_terminal(&ws, &q1, &q2).unwrap(),
        );
        h.run(
            "b2_with_membership_candidates",
            &format!("forced_thm31/{n}"),
            || oocq_core::contains_terminal_full(&ws, &q1, &q2).unwrap(),
        );
    }
}

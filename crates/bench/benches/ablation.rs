//! A1 — ablation of the design choices DESIGN.md calls out:
//!
//! * `equality_graph`: Algorithm *EqualityGraph*'s congruence fixpoint on
//!   cascade chains (each equality unlocks the next congruence round —
//!   worst case for the fixpoint loop) vs. flat equality chains (one round);
//! * `satisfiability`: the Theorem 2.2 gate that every containment branch
//!   pays;
//! * `decision_procedure`: Corollary 3.4's mapping search vs. the
//!   canonical-state oracle (freeze + evaluate) — two complete procedures
//!   for the same question; the mapping search avoids materializing a state.

use oocq_bench::Harness;
use oocq_eval::canonical_contains;
use oocq_gen::{chain_query, workload_schema};
use oocq_query::{EqualityGraph, QueryBuilder};
use oocq_schema::{AttrType, Schema, SchemaBuilder};

/// A schema with `n` object attributes `A0 … A{n-1}` on one class.
fn multi_attr_schema(n: usize) -> Schema {
    let mut b = SchemaBuilder::new();
    let c = b.class("C").unwrap();
    for i in 0..n {
        b.attribute(c, &format!("A{i}"), AttrType::Object(c))
            .unwrap();
    }
    b.finish().unwrap()
}

/// A congruence cascade of depth `n`: `x = y`, plus per level `uᵢ = xᵢ.Aᵢ`,
/// `vᵢ = yᵢ.Aᵢ` where `xᵢ₊₁ = uᵢ`, `yᵢ₊₁ = vᵢ` — each congruence round
/// merges one more pair and unlocks the next.
fn cascade_query(s: &Schema, n: usize) -> oocq_query::Query {
    let c = s.class_id("C").unwrap();
    let mut b = QueryBuilder::new("x0");
    let mut xs = vec![b.free()];
    let mut ys = vec![b.var("y0")];
    b.range(xs[0], [c]).range(ys[0], [c]);
    b.eq_vars(xs[0], ys[0]);
    for i in 0..n {
        let a = s.attr_id(&format!("A{i}")).unwrap();
        let u = b.var(&format!("u{i}"));
        let v = b.var(&format!("v{i}"));
        b.range(u, [c]).range(v, [c]);
        b.eq(oocq_query::Term::Var(u), oocq_query::Term::Attr(xs[i], a));
        b.eq(oocq_query::Term::Var(v), oocq_query::Term::Attr(ys[i], a));
        xs.push(u);
        ys.push(v);
    }
    b.build()
}

fn main() {
    let h = Harness::from_env();

    for n in [4usize, 8, 16, 32] {
        let s = multi_attr_schema(n);
        let cascade = cascade_query(&s, n);
        h.run(
            "a1_equality_graph",
            &format!("congruence_cascade/{n}"),
            || EqualityGraph::build(&cascade),
        );
        // Flat chain: same variable count, no congruence interaction.
        let cls = s.class_id("C").unwrap();
        let mut qb = QueryBuilder::new("x0");
        let mut prev = qb.free();
        qb.range(prev, [cls]);
        for i in 1..(2 * n + 2) {
            let v = qb.var(&format!("x{i}"));
            qb.range(v, [cls]);
            qb.eq_vars(prev, v);
            prev = v;
        }
        let flat = qb.build();
        h.run("a1_equality_graph", &format!("flat_chain/{n}"), || {
            EqualityGraph::build(&flat)
        });
    }

    let ws = workload_schema(3);
    for n in [4usize, 8, 16, 32] {
        let q = chain_query(&ws, n);
        h.run("a1_satisfiability", &format!("chain/{n}"), || {
            oocq_core::is_satisfiable(&ws, &q).unwrap()
        });
    }

    for n in [2usize, 4, 8] {
        let q1 = chain_query(&ws, n);
        let q2 = chain_query(&ws, n - 1);
        h.run(
            "a1_decision_procedure",
            &format!("cor34_mapping/{n}"),
            || oocq_core::contains_terminal(&ws, &q1, &q2).unwrap(),
        );
        h.run(
            "a1_decision_procedure",
            &format!("canonical_oracle/{n}"),
            || canonical_contains(&ws, &q1, &q2).unwrap(),
        );
    }
}

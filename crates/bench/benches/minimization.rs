//! B4 — variable minimization (Theorems 4.3–4.5) and redundancy removal
//! (Theorem 4.2).
//!
//! Workloads: `star(n)` (collapses to one spoke: n folding rounds),
//! `rigid_star(n)` (already minimal: pays only the bijectivity proof), and
//! nonredundant-union computation over k copies of increasingly-contained
//! subqueries. Also the relational core computation on the encoded star for
//! scale comparison. Expected shape: folding dominates on collapsible
//! queries; minimality certification is the floor cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oocq_gen::{rigid_star_query, star_query, workload_schema};
use oocq_query::UnionQuery;
use oocq_rel::encode_positive;
use std::hint::black_box;

fn bench_minimization(c: &mut Criterion) {
    let schema = workload_schema(3);

    let mut g = c.benchmark_group("b4_star_minimize");
    for n in [2usize, 4, 6, 8] {
        let collapsible = star_query(&schema, n);
        g.bench_with_input(BenchmarkId::new("oodb_collapsible", n), &n, |b, _| {
            b.iter(|| {
                let m = oocq_core::minimize_terminal_positive(&schema, &collapsible).unwrap();
                assert_eq!(m.var_count(), 2);
                black_box(m)
            })
        });
        let rigid = rigid_star_query(&schema, n);
        g.bench_with_input(BenchmarkId::new("oodb_already_minimal", n), &n, |b, _| {
            b.iter(|| {
                let m = oocq_core::minimize_terminal_positive(&schema, &rigid).unwrap();
                assert_eq!(m.var_count(), n + 1);
                black_box(m)
            })
        });
        let rel = encode_positive(&schema, &collapsible);
        g.bench_with_input(BenchmarkId::new("rel_core", n), &n, |b, _| {
            b.iter(|| black_box(oocq_rel::minimize(&rel)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("b4_nonredundant_union");
    for k in [2usize, 4, 8] {
        // Q_i = star(i+1): each strictly contained in the previous, so only
        // star(1) survives. Quadratic containment matrix over k subqueries.
        let u = UnionQuery::new((0..k).map(|i| star_query(&schema, i + 1)).collect());
        g.bench_with_input(BenchmarkId::new("subqueries", k), &k, |b, _| {
            b.iter(|| {
                let nr = oocq_core::nonredundant_union(&schema, &u).unwrap();
                assert_eq!(nr.len(), 1);
                black_box(nr)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_minimization
}
criterion_main!(benches);

//! B4 — variable minimization (Theorems 4.3–4.5) and redundancy removal
//! (Theorem 4.2).
//!
//! Workloads: `star(n)` (collapses to one spoke: n folding rounds),
//! `rigid_star(n)` (already minimal: pays only the bijectivity proof), and
//! nonredundant-union computation over k copies of increasingly-contained
//! subqueries. Also the relational core computation on the encoded star for
//! scale comparison. Expected shape: folding dominates on collapsible
//! queries; minimality certification is the floor cost.

use oocq_bench::Harness;
use oocq_gen::{rigid_star_query, star_query, workload_schema};
use oocq_query::UnionQuery;
use oocq_rel::encode_positive;

fn main() {
    let h = Harness::from_env();
    let schema = workload_schema(3);

    for n in [2usize, 4, 6, 8] {
        let collapsible = star_query(&schema, n);
        h.run("b4_star_minimize", &format!("oodb_collapsible/{n}"), || {
            let m = oocq_core::minimize_terminal_positive(&schema, &collapsible).unwrap();
            assert_eq!(m.var_count(), 2);
            m
        });
        let rigid = rigid_star_query(&schema, n);
        h.run(
            "b4_star_minimize",
            &format!("oodb_already_minimal/{n}"),
            || {
                let m = oocq_core::minimize_terminal_positive(&schema, &rigid).unwrap();
                assert_eq!(m.var_count(), n + 1);
                m
            },
        );
        let rel = encode_positive(&schema, &collapsible);
        h.run("b4_star_minimize", &format!("rel_core/{n}"), || {
            oocq_rel::minimize(&rel)
        });
    }

    for k in [2usize, 4, 8] {
        // Q_i = star(i+1): each strictly contained in the previous, so only
        // star(1) survives. Quadratic containment matrix over k subqueries.
        let u = UnionQuery::new((0..k).map(|i| star_query(&schema, i + 1)).collect());
        h.run("b4_nonredundant_union", &format!("subqueries/{k}"), || {
            let nr = oocq_core::nonredundant_union(&schema, &u).unwrap();
            assert_eq!(nr.len(), 1);
            nr
        });
    }
}

//! B1 — containment of terminal positive conjunctive queries (Cor. 3.4)
//! versus the classical Chandra–Merlin check on the untyped relational
//! encoding of the same queries.
//!
//! Series: chain(n) ⊆ chain(n-1) (positive verdict via folding) and
//! star(n) ⊆ star(n) for n in a sweep. Expected shape: both grow
//! polynomially on these shapes; the OODB check carries a small constant
//! overhead (equality-graph + typing indexes) over the bare relational
//! homomorphism search.

use oocq_bench::Harness;
use oocq_gen::{chain_query, star_query, workload_schema};
use oocq_rel::encode_positive;

fn main() {
    let h = Harness::from_env();
    let schema = workload_schema(3);

    for n in [2usize, 4, 8, 12, 16] {
        let q1 = chain_query(&schema, n);
        let q2 = chain_query(&schema, n - 1);
        h.run("b1_chain_contains", &format!("oodb_cor34/{n}"), || {
            let r = oocq_core::contains_terminal(&schema, &q1, &q2).unwrap();
            assert!(r);
            r
        });
        let r1 = encode_positive(&schema, &q1);
        let r2 = encode_positive(&schema, &q2);
        h.run(
            "b1_chain_contains",
            &format!("rel_chandra_merlin/{n}"),
            || {
                let r = oocq_rel::contains(&r1, &r2);
                assert!(r);
                r
            },
        );
    }

    for n in [2usize, 4, 8, 12] {
        let q1 = star_query(&schema, n);
        let q2 = star_query(&schema, n / 2);
        h.run("b1_star_contains", &format!("oodb_cor34/{n}"), || {
            oocq_core::contains_terminal(&schema, &q1, &q2).unwrap()
        });
        let r1 = encode_positive(&schema, &q1);
        let r2 = encode_positive(&schema, &q2);
        h.run(
            "b1_star_contains",
            &format!("rel_chandra_merlin/{n}"),
            || oocq_rel::contains(&r1, &r2),
        );
    }
}

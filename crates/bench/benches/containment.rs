//! B1 — containment of terminal positive conjunctive queries (Cor. 3.4)
//! versus the classical Chandra–Merlin check on the untyped relational
//! encoding of the same queries.
//!
//! Series: chain(n) ⊆ chain(n-1) (positive verdict via folding) and
//! star(n) ⊆ star(n) for n in a sweep. Expected shape: both grow
//! polynomially on these shapes; the OODB check carries a small constant
//! overhead (equality-graph + typing indexes) over the bare relational
//! homomorphism search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oocq_gen::{chain_query, star_query, workload_schema};
use oocq_rel::encode_positive;
use std::hint::black_box;

fn bench_containment(c: &mut Criterion) {
    let schema = workload_schema(3);

    let mut g = c.benchmark_group("b1_chain_contains");
    for n in [2usize, 4, 8, 12, 16] {
        let q1 = chain_query(&schema, n);
        let q2 = chain_query(&schema, n - 1);
        g.bench_with_input(BenchmarkId::new("oodb_cor34", n), &n, |b, _| {
            b.iter(|| {
                let r = oocq_core::contains_terminal(&schema, &q1, &q2).unwrap();
                assert!(r);
                black_box(r)
            })
        });
        let r1 = encode_positive(&schema, &q1);
        let r2 = encode_positive(&schema, &q2);
        g.bench_with_input(BenchmarkId::new("rel_chandra_merlin", n), &n, |b, _| {
            b.iter(|| {
                let r = oocq_rel::contains(&r1, &r2);
                assert!(r);
                black_box(r)
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("b1_star_contains");
    for n in [2usize, 4, 8, 12] {
        let q1 = star_query(&schema, n);
        let q2 = star_query(&schema, n / 2);
        g.bench_with_input(BenchmarkId::new("oodb_cor34", n), &n, |b, _| {
            b.iter(|| black_box(oocq_core::contains_terminal(&schema, &q1, &q2).unwrap()))
        });
        let r1 = encode_positive(&schema, &q1);
        let r2 = encode_positive(&schema, &q2);
        g.bench_with_input(BenchmarkId::new("rel_chandra_merlin", n), &n, |b, _| {
            b.iter(|| black_box(oocq_rel::contains(&r1, &r2)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_containment
}
criterion_main!(benches);

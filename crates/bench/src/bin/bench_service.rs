//! Emits `BENCH_service.json` (experiment **B8**): cold-versus-warm
//! request latency of the `oocq-serve` engine with the canonical-form
//! decision cache, on the same `Strategy::Full` containment family as
//! `bench_containment` plus a multi-branch minimization workload.
//!
//! * **cold** — a fresh [`ServiceEngine`] (empty cache) per call: the
//!   request pays the full Theorem 3.1 branch enumeration (or the §4
//!   minimization pipeline).
//! * **warm** — one shared engine, warmed once: the request reduces to a
//!   schema fingerprint + canonical-form lookup.
//!
//! The binary also asserts the soundness contract end to end: cached and
//! cache-disabled engines must return byte-identical payloads, and the
//! warm path must be at least 5× faster than cold on every containment
//! entry (the acceptance bar for the cache actually short-circuiting the
//! branch engine).
//!
//! Usage: `bench_service [OUT.json]` (default `BENCH_service.json`).
//! Honors `OOCQ_BENCH_SAMPLES`, `OOCQ_BENCH_MIN_SAMPLE_MS`,
//! `OOCQ_BENCH_QUICK`.

use oocq_bench::{Harness, Stats};
use oocq_core::EngineConfig;
use oocq_service::{parse_request, CanonicalDecisionCache, Request, ServiceEngine};
use std::sync::Arc;

/// One terminal class `C` with a set attribute `items : {C}`, as schema
/// DSL text (the daemon receives schemas as text).
const SCHEMA: &str = "class C { items: {C}; }";

/// The left query of the `full(m, f)` containment family (see
/// `bench_containment`): `m` members, one pinned non-member, `f` floaters.
fn q1_text(members: usize, floaters: usize) -> String {
    let mut vars = Vec::new();
    let mut atoms = Vec::new();
    for i in 0..members {
        vars.push(format!("y{i}"));
        atoms.push(format!("y{i} in C & y{i} in x.items"));
    }
    vars.push("u".into());
    atoms.push("u in C & u not in x.items".into());
    for i in 0..floaters {
        vars.push(format!("z{i}"));
        atoms.push(format!("z{i} in C"));
    }
    format!(
        "{{ x | exists {}: x in C & {} }}",
        vars.join(", "),
        atoms.join(" & ")
    )
}

/// The right query: membership + non-membership + inequality forces
/// `Strategy::Full`.
const Q2: &str =
    "{ x | exists y, u2: x in C & y in C & u2 in C & y in x.items & u2 not in x.items & y != u2 }";

/// A positive query over a 3-way partitioned hierarchy whose expansion has
/// several branches, so cold minimization runs the pairwise §4 pipeline.
const MIN_SCHEMA: &str =
    "class V {} class A : V {} class B : V {} class D : V {} class K { r: {V}; } class S : K { r: {A}; }";
const MIN_QUERY: &str = "{ x | exists y, z: x in V & y in S & z in V & x in y.r & z in y.r }";

/// Build a ready engine: session `s`, queries `P` (left), `Q` (right),
/// `M` (minimization workload).
fn fresh_engine(cache: bool, members: usize, floaters: usize) -> ServiceEngine {
    let cache = cache.then(|| Arc::new(CanonicalDecisionCache::new(4096)));
    let e = ServiceEngine::with_cache(EngineConfig::serial(), cache);
    e.define_schema("s", SCHEMA).unwrap();
    e.define_query("s", "P", &q1_text(members, floaters))
        .unwrap();
    e.define_query("s", "Q", Q2).unwrap();
    e.define_schema("m", MIN_SCHEMA).unwrap();
    e.define_query("m", "M", MIN_QUERY).unwrap();
    e
}

/// Execute one request line against an engine, returning the payload.
fn exec(e: &ServiceEngine, line: &str) -> String {
    let req: Request = parse_request(line).unwrap();
    let snap = e.snapshot_for(&req).unwrap();
    let (result, _) = e.execute(&req, snap.as_ref());
    result.unwrap_or_else(|err| panic!("`{line}` failed: {err}"))
}

struct Entry {
    name: String,
    request: &'static str,
    cold: Stats,
    warm: Stats,
    members: usize,
    floaters: usize,
    assert_speedup: bool,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_service.json".into());
    let h = Harness::from_env();

    let mut entries = Vec::new();
    let workloads: [(&str, &'static str, usize, usize, bool); 4] = [
        ("full_m2_f2", "contains s P Q", 2, 2, true),
        ("full_m2_f3", "contains s P Q", 2, 3, true),
        ("full_m3_f3", "contains s P Q", 3, 3, true),
        ("minimize_partition", "minimize m M", 3, 3, false),
    ];
    for (name, request, members, floaters, assert_speedup) in workloads {
        // Contract: the cache must be decision-invisible.
        let with_cache = fresh_engine(true, members, floaters);
        let without = fresh_engine(false, members, floaters);
        let payload = exec(&with_cache, request);
        assert_eq!(
            payload,
            exec(&without, request),
            "{name}: cached payload differs from uncached"
        );
        assert_eq!(
            payload,
            exec(&with_cache, request),
            "{name}: warm payload differs from cold"
        );

        let cold = h.run("bench_service", &format!("{name}/cold"), || {
            let e = fresh_engine(true, members, floaters);
            exec(&e, request)
        });
        let warm_engine = fresh_engine(true, members, floaters);
        exec(&warm_engine, request); // warm the cache once
        let warm = h.run("bench_service", &format!("{name}/warm"), || {
            exec(&warm_engine, request)
        });
        let stats = warm_engine.cache().unwrap().stats();
        assert!(
            stats.contains_hits + stats.minimize_hits > 0,
            "{name}: warm runs never hit the cache: {stats:?}"
        );
        if assert_speedup {
            assert!(
                cold.median_ns >= 5.0 * warm.median_ns,
                "{name}: warm must be >= 5x faster than cold \
                 (cold {}, warm {})",
                Stats::human(cold.median_ns),
                Stats::human(warm.median_ns),
            );
        }
        entries.push(Entry {
            name: name.to_owned(),
            request,
            cold,
            warm,
            members,
            floaters,
            assert_speedup,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"experiment\": \"B8\",\n");
    json.push_str("  \"workload\": \"service_canonical_cache_cold_vs_warm\",\n");
    json.push_str(&format!(
        "  \"measurement\": {{ \"samples\": {}, \"min_sample_ns\": {} }},\n",
        h.samples, h.min_sample_ns
    ));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"request\": \"{}\", \"members\": {}, \"floaters\": {}, \
             \"cold_median_ns\": {:.0}, \"warm_median_ns\": {:.0}, \
             \"warm_speedup\": {:.1}, \"speedup_floor\": {} }}{}\n",
            json_escape(&e.name),
            json_escape(e.request),
            e.members,
            e.floaters,
            e.cold.median_ns,
            e.warm.median_ns,
            e.cold.median_ns / e.warm.median_ns,
            if e.assert_speedup { 5 } else { 1 },
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {out_path}");
}

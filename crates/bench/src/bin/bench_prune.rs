//! Emits `BENCH_prune.json` (experiment **B10**): how far the monotone
//! sub-lattice pruner and the most-constrained-first homomorphism search
//! cut into the `2^|T(S)|` membership-subset wall, measured in *branches
//! actually evaluated* (via [`oocq_core::BranchStats`]) and wall-clock
//! medians, against the exhaustive baseline (`EngineConfig::without_pruning`
//! / `SearchOrder::Static`).
//!
//! Fixtures:
//!
//! * **collapse_pin(f)** — `Q₁` pins `u ∉ x.items` next to `f` floaters;
//!   `Q₂`'s only negative atom maps to `u` with no danger bits, so the
//!   empty-`W` witness is stable and the pruner certifies the whole
//!   `2^f` block from one evaluation. Floor: ≥ 10× fewer evaluations.
//! * **corollary_gap(m, f)** — the full Theorem 3.1 enumeration against a
//!   *positive* `Q₂`: every witness is danger-free, so each consistent
//!   partition's block collapses at its empty subset and the evaluated
//!   count drops from `Σ_S 2^|T(S)|` to the number of partitions. Floor:
//!   ≥ 10× fewer evaluations.
//! * **adversarial(f)** — the prune-resistant budget-test family: `Q₂`'s
//!   non-membership maps to the first floater the current `W` excludes, so
//!   every witness carries a live danger bit and the pruner can retire
//!   almost nothing. Recorded honestly with no floor — this is the wall
//!   the pruner does *not* beat, only the warm-start softens it.
//! * **mcf_chain(L)** — a single-branch membership chain whose bound
//!   variables are declared in reverse, the worst case for the static
//!   declaration-order search; most-constrained-first propagates the chain
//!   with no backtracking. Floor: ≥ 10× fewer backtracks.
//!
//! Usage: `bench_prune [OUT.json]` (default `BENCH_prune.json`). Honors
//! `OOCQ_BENCH_SAMPLES`, `OOCQ_BENCH_MIN_SAMPLE_MS`, `OOCQ_BENCH_QUICK`.

use oocq_bench::{Harness, Stats};
use oocq_core::{
    contains_terminal_full_with, contains_terminal_with, BranchStats, Engine, EngineConfig,
    SearchOrder,
};
use oocq_query::{Query, QueryBuilder};
use oocq_schema::{AttrType, Schema, SchemaBuilder};

/// One terminal class `C` with a set attribute `items : {C}`.
fn bench_schema() -> Schema {
    let mut b = SchemaBuilder::new();
    let c = b.class("C").unwrap();
    b.attribute(c, "items", AttrType::SetOf(c)).unwrap();
    b.finish().unwrap()
}

/// `Q₁` of **collapse_pin(f)**: `x ∈ x.items` makes `x.items` a set term,
/// `u ∉ x.items` pins a variable no branch can make a member, and the `f`
/// floaters contribute the `2^f` membership subsets.
fn collapse_q1(schema: &Schema, floaters: usize) -> Query {
    let c = schema.class_id("C").unwrap();
    let items = schema.attr_id("items").unwrap();
    let mut b = QueryBuilder::new("x");
    let x = b.free();
    b.range(x, [c]);
    b.member(x, x, items);
    let u = b.var("u");
    b.range(u, [c]);
    b.non_member(u, x, items);
    for i in 0..floaters {
        let z = b.var(&format!("z{i}"));
        b.range(z, [c]);
    }
    b.build()
}

/// `Q₂` of **collapse_pin**: inequality-free, one non-membership that maps
/// to the pinned `u` in every branch.
fn collapse_q2(schema: &Schema) -> Query {
    let c = schema.class_id("C").unwrap();
    let items = schema.attr_id("items").unwrap();
    let mut b = QueryBuilder::new("x");
    let x = b.free();
    let u2 = b.var("u2");
    b.range(x, [c]).range(u2, [c]);
    b.non_member(u2, x, items);
    b.build()
}

/// `Q₁` of **corollary_gap** / **adversarial**: the `full(m, f)` family of
/// `bench_containment` — `m` members, one pinned non-member, `f` floaters.
fn full_q1(schema: &Schema, members: usize, floaters: usize) -> Query {
    let c = schema.class_id("C").unwrap();
    let items = schema.attr_id("items").unwrap();
    let mut b = QueryBuilder::new("x");
    let x = b.free();
    b.range(x, [c]);
    for i in 0..members {
        let y = b.var(&format!("y{i}"));
        b.range(y, [c]);
        b.member(y, x, items);
    }
    let u = b.var("u");
    b.range(u, [c]);
    b.non_member(u, x, items);
    for i in 0..floaters {
        let z = b.var(&format!("z{i}"));
        b.range(z, [c]);
    }
    b.build()
}

/// Positive `Q₂` of **corollary_gap**: no negative atoms, so every witness
/// is danger-free and every block collapses wholesale.
fn positive_q2(schema: &Schema) -> Query {
    let c = schema.class_id("C").unwrap();
    let items = schema.attr_id("items").unwrap();
    let mut b = QueryBuilder::new("x");
    let x = b.free();
    let y = b.var("y");
    b.range(x, [c]).range(y, [c]);
    b.member(y, x, items);
    b.build()
}

/// `Q₁` of **mcf_chain(L)**: a membership chain `p1 ∈ x.items, p2 ∈
/// p1.items, …` of length `L`.
fn chain_q1(schema: &Schema, len: usize) -> Query {
    let c = schema.class_id("C").unwrap();
    let items = schema.attr_id("items").unwrap();
    let mut b = QueryBuilder::new("x");
    let mut prev = b.free();
    b.range(prev, [c]);
    for i in 1..=len {
        let p = b.var(&format!("p{i}"));
        b.range(p, [c]);
        b.member(p, prev, items);
        prev = p;
    }
    b.build()
}

/// `Q₂` of **mcf_chain(L)**: the same chain with the bound variables
/// *declared* leaf-first, so the static declaration order assigns the
/// whole chain blind and validates it only at the last variable.
fn chain_q2(schema: &Schema, len: usize) -> Query {
    let c = schema.class_id("C").unwrap();
    let items = schema.attr_id("items").unwrap();
    let mut b = QueryBuilder::new("x");
    let x = b.free();
    b.range(x, [c]);
    let mut vars = Vec::with_capacity(len + 1);
    for i in (1..=len).rev() {
        let q = b.var(&format!("q{i}"));
        b.range(q, [c]);
        vars.push(q);
    }
    vars.reverse();
    vars.insert(0, x);
    for i in 1..=len {
        b.member(vars[i], vars[i - 1], items);
    }
    b.build()
}

/// One decision through a fresh [`Engine`], returning the verdict and the
/// left side's cumulative branch counters (exactly one decision deep).
fn probe(
    schema: &Schema,
    q1: &Query,
    q2: &Query,
    cfg: EngineConfig,
    full: bool,
) -> (bool, BranchStats) {
    let engine = Engine::new(cfg);
    let ps = engine.prepare_schema(schema);
    let p1 = engine.prepare(&ps, q1);
    let p2 = engine.prepare(&ps, q2);
    let holds = if full {
        engine.contains_full(&p1, &p2).unwrap()
    } else {
        engine.contains(&p1, &p2).unwrap()
    };
    (holds, p1.stats().branch_stats)
}

struct Entry {
    name: String,
    metric: &'static str,
    baseline_count: u64,
    pruned_count: u64,
    reduction_floor: u64,
    baseline: Stats,
    pruned: Stats,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_prune.json".into());
    let h = Harness::from_env();
    let schema = bench_schema();
    let pruned_cfg = EngineConfig::serial();
    let baseline_cfg = EngineConfig::serial().without_pruning();
    let mut entries = Vec::new();

    // --- collapse_pin(10): one stable witness retires the whole block. ---
    {
        let q1 = collapse_q1(&schema, 10);
        let q2 = collapse_q2(&schema);
        let (holds_p, sp) = probe(&schema, &q1, &q2, pruned_cfg.clone(), false);
        let (holds_b, sb) = probe(&schema, &q1, &q2, baseline_cfg.clone(), false);
        assert!(holds_p && holds_b, "collapse_pin: verdicts must hold");
        assert_eq!(sp.branches_planned, sb.branches_planned);
        let pruned = h.run("bench_prune", "collapse_pin_f10/pruned", || {
            contains_terminal_with(&schema, &q1, &q2, &pruned_cfg).unwrap()
        });
        let baseline = h.run("bench_prune", "collapse_pin_f10/unpruned", || {
            contains_terminal_with(&schema, &q1, &q2, &baseline_cfg).unwrap()
        });
        entries.push(Entry {
            name: "collapse_pin_f10".into(),
            metric: "branches_evaluated",
            baseline_count: sb.branches_evaluated,
            pruned_count: sp.branches_evaluated,
            reduction_floor: 10,
            baseline,
            pruned,
        });
    }

    // --- corollary_gap(1, 5): full Theorem 3.1 against a positive Q₂ —
    // every consistent partition's block collapses at its empty subset. ---
    {
        let q1 = full_q1(&schema, 1, 5);
        let q2 = positive_q2(&schema);
        let (holds_p, sp) = probe(&schema, &q1, &q2, pruned_cfg.clone(), true);
        let (holds_b, sb) = probe(&schema, &q1, &q2, baseline_cfg.clone(), true);
        assert!(holds_p && holds_b, "corollary_gap: verdicts must hold");
        assert_eq!(sp.branches_planned, sb.branches_planned);
        let pruned = h.run("bench_prune", "corollary_gap_m1_f5/pruned", || {
            contains_terminal_full_with(&schema, &q1, &q2, &pruned_cfg).unwrap()
        });
        let baseline = h.run("bench_prune", "corollary_gap_m1_f5/unpruned", || {
            contains_terminal_full_with(&schema, &q1, &q2, &baseline_cfg).unwrap()
        });
        entries.push(Entry {
            name: "corollary_gap_m1_f5".into(),
            metric: "branches_evaluated",
            baseline_count: sb.branches_evaluated,
            pruned_count: sp.branches_evaluated,
            reduction_floor: 10,
            baseline,
            pruned,
        });
    }

    // --- adversarial(12): the prune-resistant wall, recorded honestly. ---
    {
        let q1 = full_q1(&schema, 1, 12);
        let q2 = collapse_q2(&schema);
        let (holds_p, sp) = probe(&schema, &q1, &q2, pruned_cfg.clone(), false);
        let (holds_b, sb) = probe(&schema, &q1, &q2, baseline_cfg.clone(), false);
        assert!(holds_p && holds_b, "adversarial: verdicts must hold");
        assert_eq!(sp.branches_planned, sb.branches_planned);
        let pruned = h.run("bench_prune", "adversarial_f12/pruned", || {
            contains_terminal_with(&schema, &q1, &q2, &pruned_cfg).unwrap()
        });
        let baseline = h.run("bench_prune", "adversarial_f12/unpruned", || {
            contains_terminal_with(&schema, &q1, &q2, &baseline_cfg).unwrap()
        });
        entries.push(Entry {
            name: "adversarial_f12".into(),
            metric: "branches_evaluated",
            baseline_count: sb.branches_evaluated,
            pruned_count: sp.branches_evaluated,
            reduction_floor: 0,
            baseline,
            pruned,
        });
    }

    // --- mcf_chain(8): backtracks under static declaration order versus
    // most-constrained-first, on a single-branch decision. ---
    {
        let q1 = chain_q1(&schema, 8);
        let q2 = chain_q2(&schema, 8);
        let static_cfg = EngineConfig::serial().with_search_order(SearchOrder::Static);
        let (holds_p, sp) = probe(&schema, &q1, &q2, pruned_cfg.clone(), false);
        let (holds_b, sb) = probe(&schema, &q1, &q2, static_cfg.clone(), false);
        assert!(holds_p && holds_b, "mcf_chain: verdicts must hold");
        let pruned = h.run("bench_prune", "mcf_chain_l8/most_constrained", || {
            contains_terminal_with(&schema, &q1, &q2, &pruned_cfg).unwrap()
        });
        let baseline = h.run("bench_prune", "mcf_chain_l8/static_order", || {
            contains_terminal_with(&schema, &q1, &q2, &static_cfg).unwrap()
        });
        entries.push(Entry {
            name: "mcf_chain_l8".into(),
            metric: "mapping_backtracks",
            baseline_count: sb.mapping_backtracks,
            pruned_count: sp.mapping_backtracks,
            reduction_floor: 10,
            baseline,
            pruned,
        });
    }

    for e in &entries {
        let ratio = (e.baseline_count + 1) as f64 / (e.pruned_count + 1) as f64;
        println!(
            "bench_prune/{}: {} {} -> {} ({ratio:.1}x)",
            e.name, e.metric, e.baseline_count, e.pruned_count
        );
        if e.reduction_floor > 0 {
            assert!(
                ratio >= e.reduction_floor as f64,
                "{}: {} reduction {ratio:.1}x is under the {}x floor \
                 (baseline {}, pruned {})",
                e.name,
                e.metric,
                e.reduction_floor,
                e.baseline_count,
                e.pruned_count,
            );
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"experiment\": \"B10\",\n");
    json.push_str("  \"workload\": \"branch_pruning_vs_exhaustive_walk\",\n");
    json.push_str(&format!(
        "  \"measurement\": {{ \"samples\": {}, \"min_sample_ns\": {} }},\n",
        h.samples, h.min_sample_ns
    ));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"metric\": \"{}\", \
             \"baseline_count\": {}, \"pruned_count\": {}, \
             \"reduction\": {:.1}, \"reduction_floor\": {}, \
             \"baseline_median_ns\": {:.0}, \"pruned_median_ns\": {:.0}, \
             \"speedup\": {:.3} }}{}\n",
            json_escape(&e.name),
            e.metric,
            e.baseline_count,
            e.pruned_count,
            (e.baseline_count + 1) as f64 / (e.pruned_count + 1) as f64,
            e.reduction_floor,
            e.baseline.median_ns,
            e.pruned.median_ns,
            e.baseline.median_ns / e.pruned.median_ns,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {out_path}");
}

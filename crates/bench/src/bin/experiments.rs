//! Regenerates every experiment of EXPERIMENTS.md: the paper's worked
//! examples E1–E8 (verdict tables) and the measured summaries behind B3, B5
//! and B6. Criterion timing curves for B1–B4 come from `cargo bench`.
//!
//! Usage: `experiments [--e1 … --e8 --b3 --b5 --b6]` (no flag = run all).

use gen::StdRng;
use oocq_core as core;
use oocq_eval as eval;
use oocq_gen as gen;
use oocq_parser::{parse_query, parse_schema};
use oocq_query::{Query, UnionQuery};
use oocq_schema::Schema;
use std::time::Instant;

fn vehicle_schema() -> Schema {
    parse_schema(
        "class Vehicle {} class Auto : Vehicle {} class Trailer : Vehicle {}
         class Truck : Vehicle {} class Client { VehRented: {Vehicle}; }
         class Discount : Client { VehRented: {Auto}; } class Regular : Client {}",
    )
    .unwrap()
}

fn n1_schema() -> Schema {
    parse_schema(
        "class N1 { A: {G}; } class T1 : N1 {} class T2 : N1 { B: G; }
         class T3 : N1 { A: {I}; B: G; } class G {} class H : G {} class I : G {}",
    )
    .unwrap()
}

fn verdict(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn relate(schema: &Schema, q1: &Query, q2: &Query) -> String {
    let fwd = core::contains_terminal(schema, q1, q2).unwrap();
    let bwd = core::contains_terminal(schema, q2, q1).unwrap();
    format!("Q1⊆Q2: {:3}  Q2⊆Q1: {:3}", verdict(fwd), verdict(bwd))
}

fn section(title: &str) {
    println!("\n== {title} ==");
}

fn e1() {
    section("E1 (Example 1.1): Vehicle query narrows to Auto");
    let s = vehicle_schema();
    let q = parse_query(
        &s,
        "{ x | exists y: x in Vehicle & y in Discount & x in y.VehRented }",
    )
    .unwrap();
    let m = core::minimize_positive(&s, &q).unwrap();
    println!("paper claim : equivalent to the Auto query, search space minimal");
    println!("original    : {}", q.display(&s));
    println!("minimized   : {}", m.display(&s));
    let expected = parse_query(
        &s,
        "{ x | exists y: x in Auto & y in Discount & x in y.VehRented }",
    )
    .unwrap();
    let ok = core::union_equivalent(&s, &m, &UnionQuery::single(expected)).unwrap();
    println!("reproduced  : {}", verdict(ok));
}

fn e2() {
    section("E2 (Examples 1.2/4.1): Q == Q2' U Q5, search-space-optimal");
    let s = n1_schema();
    let q = parse_query(
        &s,
        "{ x | exists y, s: x in N1 & y in G & s in H & y = x.B & y in x.A & s in x.A }",
    )
    .unwrap();
    let m = core::minimize_positive(&s, &q).unwrap();
    println!("paper claim : Q2' = {{ x | x in T2 & y in H & y=x.B & y in x.A }} plus Q5");
    for sub in &m {
        println!("  subquery  : {}", sub.display(&s));
    }
    let cost = core::union_cost(&s, &m);
    let rendered: Vec<String> = cost
        .iter()
        .map(|(c, n)| format!("{}x{}", s.class_name(*c), n))
        .collect();
    println!("cost        : {}", rendered.join(" "));
    println!(
        "reproduced  : {}",
        verdict(m.len() == 2 && m.queries()[0].var_count() == 2 && m.queries()[1].var_count() == 3)
    );
}

fn e3() {
    section("E3 (Example 1.3): positive conditions imply x != y");
    let s = parse_schema("class C { A: V; } class V {} class T1 : V {} class T2 : V {}").unwrap();
    let q1 = parse_query(
        &s,
        "{ x | exists y, s, t: x in C & y in C & s in T1 & t in T2 & s = x.A & t = y.A & x != y }",
    )
    .unwrap();
    let q2 = parse_query(
        &s,
        "{ x | exists y, s, t: x in C & y in C & s in T1 & t in T2 & s = x.A & t = y.A }",
    )
    .unwrap();
    println!("paper claim : Q1 == Q2");
    println!("measured    : {}", relate(&s, &q1, &q2));
    println!(
        "reproduced  : {}",
        verdict(core::equivalent_terminal(&s, &q1, &q2).unwrap())
    );
}

fn e4() {
    section("E4 (Example 2.1): terminal expansion of the Vehicle query");
    let s = vehicle_schema();
    let q = parse_query(
        &s,
        "{ x | exists y: x in Vehicle & y in Discount & x in y.VehRented }",
    )
    .unwrap();
    let u = core::expand(&s, &q).unwrap();
    println!("paper claim : union of 3 terminal subqueries (Auto, Trailer, Truck)");
    for sub in &u {
        println!("  subquery  : {}", sub.display(&s));
    }
    println!("reproduced  : {}", verdict(u.len() == 3));
}

fn e5() {
    section("E5 (Example 3.1): Q1 strictly contained in Q2");
    let s = parse_schema("class C { A: D; B: {D}; } class D {}").unwrap();
    let q1 = parse_query(
        &s,
        "{ x | exists y, z: x in C & y in C & z in D & z = y.A & z in y.B & x = y }",
    )
    .unwrap();
    let q2 = parse_query(&s, "{ y | exists z: y in C & z in D & z = y.A }").unwrap();
    println!("paper claim : Q1 ⊆ Q2 and Q2 ⊄ Q1");
    println!("measured    : {}", relate(&s, &q1, &q2));
    let ok = core::contains_terminal(&s, &q1, &q2).unwrap()
        && !core::contains_terminal(&s, &q2, &q1).unwrap();
    println!("reproduced  : {}", verdict(ok));
}

fn e6() {
    section("E6 (Example 3.2): counting distinct objects");
    let s = parse_schema("class C {}").unwrap();
    let q1 = parse_query(
        &s,
        "{ x | exists y, z: x in C & y in C & z in C & x != y & y != z }",
    )
    .unwrap();
    let q2 = parse_query(&s, "{ x | exists y: x in C & y in C & x != y }").unwrap();
    let q3 = parse_query(
        &s,
        "{ x | exists y, z: x in C & y in C & z in C & x != y & y != z & x != z }",
    )
    .unwrap();
    println!("paper claim : Q1 == Q2, Q3 ⊊ Q1");
    println!("Q1 vs Q2    : {}", relate(&s, &q1, &q2));
    println!("Q3 vs Q1    : {}", relate(&s, &q3, &q1));
    let ok = core::equivalent_terminal(&s, &q1, &q2).unwrap()
        && core::contains_terminal(&s, &q3, &q1).unwrap()
        && !core::contains_terminal(&s, &q1, &q3).unwrap();
    println!("reproduced  : {}", verdict(ok));
}

fn e7() {
    section("E7 (Example 3.3): non-membership blocks one direction");
    let s = parse_schema("class T1 {} class T2 { A: {T1}; }").unwrap();
    let q1 = parse_query(&s, "{ x | exists y: x in T1 & y in T2 }").unwrap();
    let q2 = parse_query(&s, "{ x | exists y: x in T1 & y in T2 & x not in y.A }").unwrap();
    println!("paper claim : Q2 ⊆ Q1 and Q1 ⊄ Q2");
    println!("measured    : {}", relate(&s, &q1, &q2));
    let ok = core::contains_terminal(&s, &q2, &q1).unwrap()
        && !core::contains_terminal(&s, &q1, &q2).unwrap();
    println!("reproduced  : {}", verdict(ok));
}

fn e8() {
    section("E8 (Example 4.1): satisfiability verdicts of the 6 expanded subqueries");
    let s = n1_schema();
    let q = parse_query(
        &s,
        "{ x | exists y, s: x in N1 & y in G & s in H & y = x.B & y in x.A & s in x.A }",
    )
    .unwrap();
    let u = core::expand(&s, &q).unwrap();
    println!("paper claim : Q1,Q4 unsat (no B on T1); Q3,Q6 unsat (T3.A : {{I}}); Q2,Q5 sat");
    let mut ok = true;
    let expect = [false, false, true, true, false, false];
    for (i, sub) in u.iter().enumerate() {
        let sat = core::is_satisfiable(&s, sub).unwrap();
        ok &= sat == expect[i];
        let x_class = s.class_name(sub.terminal_class_of(sub.free_var()).unwrap());
        println!(
            "  x in {:2}  ->  {}",
            x_class,
            if sat { "SAT" } else { "UNSAT" }
        );
    }
    println!("reproduced  : {}", verdict(ok));
}

fn b3() {
    section("B3: expansion size vs branching (vars=3, Example-4.1 pattern)");
    println!(
        "{:>10} {:>12} {:>16} {:>10}",
        "branching", "expanded", "satisfiable", "time"
    );
    for branching in [2usize, 4, 8, 16] {
        let schema = gen::partition_schema(branching, 2, 1);
        let q = parse_query(
            &schema,
            "{ x | exists y, s: x in N & y in G & s in H & y = x.B & y in x.A & s in x.A }",
        )
        .unwrap();
        let t0 = Instant::now();
        let full = core::expand(&schema, &q).unwrap().len();
        let sat = core::expand_satisfiable(&schema, &q).unwrap().len();
        println!(
            "{:>10} {:>12} {:>16} {:>9.1?}",
            branching,
            full,
            sat,
            t0.elapsed()
        );
    }
}

fn b5() {
    section("B5: search-space cost before/after minimization");
    println!(
        "{:>10} {:>24} {:>24} {:>10}",
        "terminals", "expanded cost(sum)", "optimal cost(sum)", "time"
    );
    for terminals in [3usize, 6, 12, 24] {
        let schema = gen::partition_schema(terminals, 2, 1);
        let q = parse_query(
            &schema,
            "{ x | exists y, s: x in N & y in G & s in H & y = x.B & y in x.A & s in x.A }",
        )
        .unwrap();
        let expanded =
            core::expand_satisfiable(&schema, &oocq_query::normalize(&q, &schema).unwrap())
                .unwrap();
        let t0 = Instant::now();
        let m = core::minimize_positive(&schema, &q).unwrap();
        let dt = t0.elapsed();
        let sum =
            |c: &std::collections::BTreeMap<oocq_schema::ClassId, usize>| c.values().sum::<usize>();
        println!(
            "{:>10} {:>24} {:>24} {:>9.1?}",
            terminals,
            sum(&core::union_cost(&schema, &expanded)),
            sum(&core::union_cost(&schema, &m)),
            dt
        );
    }
}

fn b6() {
    section("B6: evaluation speedup of the minimized Example 1.1 query");
    let schema = vehicle_schema();
    let q = parse_query(
        &schema,
        "{ x | exists y: x in Vehicle & y in Discount & x in y.VehRented }",
    )
    .unwrap();
    let optimal = core::minimize_positive(&schema, &q).unwrap();
    let mut rng = StdRng::seed_from_u64(2026);
    println!(
        "{:>8} {:>10} {:>10} {:>11} {:>11} {:>8}",
        "objects", "|Vehicle|", "|Auto|", "naive", "minimized", "speedup"
    );
    for objects in [200usize, 1000, 4000] {
        let st = gen::random_state(
            &mut rng,
            &schema,
            &gen::StateParams {
                objects,
                fill_prob: 0.9,
                max_set: 8,
            },
        );
        let t0 = Instant::now();
        let before = eval::answer(&schema, &st, &q);
        let t_naive = t0.elapsed();
        let t0 = Instant::now();
        let after = eval::answer_union(&schema, &st, &optimal);
        let t_min = t0.elapsed();
        assert_eq!(before, after);
        println!(
            "{:>8} {:>10} {:>10} {:>10.1?} {:>10.1?} {:>7.1}x",
            objects,
            st.extent(schema.class_id("Vehicle").unwrap()).len(),
            st.extent(schema.class_id("Auto").unwrap()).len(),
            t_naive,
            t_min,
            t_naive.as_secs_f64() / t_min.as_secs_f64().max(1e-9)
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |flag: &str| args.is_empty() || args.iter().any(|a| a == flag);
    println!("oocq experiment harness — Chan, PODS 1992 reproduction");
    if want("--e1") {
        e1();
    }
    if want("--e2") {
        e2();
    }
    if want("--e3") {
        e3();
    }
    if want("--e4") {
        e4();
    }
    if want("--e5") {
        e5();
    }
    if want("--e6") {
        e6();
    }
    if want("--e7") {
        e7();
    }
    if want("--e8") {
        e8();
    }
    if want("--b3") {
        b3();
    }
    if want("--b5") {
        b5();
    }
    if want("--b6") {
        b6();
    }
}

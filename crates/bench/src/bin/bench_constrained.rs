//! Emits `BENCH_constrained.json` (experiment **B12**): what declared
//! schema constraints cost and buy through the [`Theory`] hook, measured
//! as verdict flips and wall-clock medians of the same decision with and
//! without the constraint block. The constraint-free run of each fixture
//! is also the theory hook's overhead probe: `active_theory` returns
//! `None` there, so any gap between the two runs is constraint
//! compilation, not hook plumbing.
//!
//! Fixtures (the three constraint kinds, each on the minimal schema from
//! the `oocq-core` theory tests):
//!
//! * **disjoint_flip** — `{x | x ∈ B} ⊆ {x | x ∈ T1}` on the diamond
//!   `T2 : B, P, Q`; `constraint disjoint P Q;` kills `T2` and flips
//!   *fails* to *holds*.
//! * **total_flip** — `{x | x ∈ T} ⊆ {x | x ∈ T & x.F = u}`;
//!   `constraint total T.F;` chases a witness for `u` in and flips
//!   *fails* to *holds*.
//! * **functional_flip** — two members of `w.Items` each binding one
//!   attribute vs. one member binding both; `constraint functional
//!   C.Items;` equates the members and flips *fails* to *holds*.
//! * **dead_range_vacuous** — `{x | x ∈ T2} ⊆ {x | x ∈ T2}` on the
//!   diamond: *holds* with witnesses plainly, *holds vacuously* (dead
//!   range) under disjointness — the verdict-kind flip the service's
//!   `satisfiable` verb surfaces as `UNSAT`.
//!
//! The binary asserts **at least three fails→holds verdict flips** before
//! writing anything: if constraint compilation stops changing verdicts,
//! the benchmark is measuring nothing and fails loudly.
//!
//! Usage: `bench_constrained [OUT.json]` (default `BENCH_constrained.json`).
//! Honors `OOCQ_BENCH_SAMPLES`, `OOCQ_BENCH_MIN_SAMPLE_MS`,
//! `OOCQ_BENCH_QUICK`.

use oocq_bench::{Harness, Stats};
use oocq_core::{decide_containment_with, dispatch_containment_with, Containment, EngineConfig};
use oocq_query::{Query, QueryBuilder, Term};
use oocq_schema::{AttrType, Constraint, Schema, SchemaBuilder};

/// `class P {} class Q {} class B {} class T1 : B {} class T2 : B, P, Q {}`
/// with `constraint disjoint P Q;` — the common descendant `T2` is dead.
fn disjoint_schema(with_constraint: bool) -> Schema {
    let mut b = SchemaBuilder::new();
    let p = b.class("P").unwrap();
    let q = b.class("Q").unwrap();
    let base = b.class("B").unwrap();
    let t1 = b.class("T1").unwrap();
    let t2 = b.class("T2").unwrap();
    b.subclass(t1, base).unwrap();
    b.subclass(t2, base).unwrap();
    b.subclass(t2, p).unwrap();
    b.subclass(t2, q).unwrap();
    if with_constraint {
        b.constraint(Constraint::Disjoint(p, q));
    }
    b.finish().unwrap()
}

/// `class U {} class T { F : U }` with `constraint total T.F;`.
fn total_schema(with_constraint: bool) -> Schema {
    let mut b = SchemaBuilder::new();
    let u = b.class("U").unwrap();
    let t = b.class("T").unwrap();
    let f = b.attribute(t, "F", AttrType::Object(u)).unwrap();
    if with_constraint {
        b.constraint(Constraint::Total(t, f));
    }
    b.finish().unwrap()
}

/// `class D {} class M { A : D  B : D } class C { Items : {M} }` with
/// `constraint functional C.Items;`.
fn functional_schema(with_constraint: bool) -> Schema {
    let mut b = SchemaBuilder::new();
    let d = b.class("D").unwrap();
    let m = b.class("M").unwrap();
    let c = b.class("C").unwrap();
    b.attribute(m, "A", AttrType::Object(d)).unwrap();
    b.attribute(m, "B", AttrType::Object(d)).unwrap();
    let items = b.attribute(c, "Items", AttrType::SetOf(m)).unwrap();
    if with_constraint {
        b.constraint(Constraint::Functional(c, items));
    }
    b.finish().unwrap()
}

fn range_query(s: &Schema, class: &str) -> Query {
    let mut b = QueryBuilder::new("x");
    let x = b.free();
    b.range(x, [s.class_id(class).unwrap()]);
    b.build()
}

/// `Q₂` of **total_flip**: `{x | x ∈ T, u ∈ U, x.F = u}`.
fn total_q2(s: &Schema) -> Query {
    let mut b = QueryBuilder::new("x");
    let x = b.free();
    let u = b.var("u");
    b.range(x, [s.class_id("T").unwrap()]);
    b.range(u, [s.class_id("U").unwrap()]);
    b.eq(Term::Attr(x, s.attr_id("F").unwrap()), Term::Var(u));
    b.build()
}

/// `(Q₁, Q₂)` of **functional_flip**: two members each binding one of
/// `A`/`B` vs. one member binding both.
fn functional_pair(s: &Schema) -> (Query, Query) {
    let (c, m, d) = (
        s.class_id("C").unwrap(),
        s.class_id("M").unwrap(),
        s.class_id("D").unwrap(),
    );
    let (a, bb, items) = (
        s.attr_id("A").unwrap(),
        s.attr_id("B").unwrap(),
        s.attr_id("Items").unwrap(),
    );
    let mut b = QueryBuilder::new("w");
    let w = b.free();
    let x = b.var("x");
    let y = b.var("y");
    let u = b.var("u");
    let v = b.var("v");
    b.range(w, [c])
        .range(x, [m])
        .range(y, [m])
        .range(u, [d])
        .range(v, [d]);
    b.member(x, w, items).member(y, w, items);
    b.eq(Term::Attr(x, a), Term::Var(u));
    b.eq(Term::Attr(y, bb), Term::Var(v));
    let q1 = b.build();

    let mut b = QueryBuilder::new("w");
    let w = b.free();
    let mm = b.var("m");
    let u = b.var("u");
    let v = b.var("v");
    b.range(w, [c]).range(mm, [m]).range(u, [d]).range(v, [d]);
    b.member(mm, w, items);
    b.eq(Term::Attr(mm, a), Term::Var(u));
    b.eq(Term::Attr(mm, bb), Term::Var(v));
    let q2 = b.build();
    (q1, q2)
}

fn verdict_label(v: &Containment) -> &'static str {
    match v {
        Containment::Holds(_) => "holds",
        Containment::HoldsVacuously(_) => "holds_vacuously",
        Containment::Fails { .. } => "fails",
        Containment::FailsRightUnsatisfiable(_) => "fails_right_unsat",
    }
}

struct Entry {
    name: String,
    plain_verdict: &'static str,
    constrained_verdict: &'static str,
    plain: Stats,
    constrained: Stats,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_constrained.json".into());
    let h = Harness::from_env();
    let cfg = EngineConfig::serial();
    let mut entries = Vec::new();

    // (name, plain schema, constrained schema, Q₁, Q₂)
    let disjoint_plain = disjoint_schema(false);
    let disjoint_con = disjoint_schema(true);
    let total_plain = total_schema(false);
    let total_con = total_schema(true);
    let functional_plain = functional_schema(false);
    let functional_con = functional_schema(true);
    let (func_q1, func_q2) = functional_pair(&functional_plain);
    let fixtures: Vec<(&str, &Schema, &Schema, Query, Query)> = vec![
        (
            "disjoint_flip",
            &disjoint_plain,
            &disjoint_con,
            range_query(&disjoint_plain, "B"),
            range_query(&disjoint_plain, "T1"),
        ),
        (
            "total_flip",
            &total_plain,
            &total_con,
            range_query(&total_plain, "T"),
            total_q2(&total_plain),
        ),
        (
            "functional_flip",
            &functional_plain,
            &functional_con,
            func_q1,
            func_q2,
        ),
        (
            "dead_range_vacuous",
            &disjoint_plain,
            &disjoint_con,
            range_query(&disjoint_plain, "T2"),
            range_query(&disjoint_plain, "T2"),
        ),
    ];

    for (name, plain, constrained, q1, q2) in fixtures {
        // `disjoint_flip` ranges over the non-terminal `B`, so it goes
        // through the positive-query dispatcher (a boolean verdict); the
        // other fixtures are terminal and keep the full verdict kind.
        let terminal = q1.is_terminal(plain) && q2.is_terminal(plain);
        let verdict = |schema: &Schema| -> &'static str {
            if terminal {
                verdict_label(&decide_containment_with(schema, &q1, &q2, &cfg).unwrap())
            } else if dispatch_containment_with(schema, &q1, &q2, &cfg).unwrap() {
                "holds"
            } else {
                "fails"
            }
        };
        let vp = verdict(plain);
        let vc = verdict(constrained);
        let plain_stats = h.run("bench_constrained", &format!("{name}/plain"), || {
            verdict(plain)
        });
        let con_stats = h.run("bench_constrained", &format!("{name}/constrained"), || {
            verdict(constrained)
        });
        entries.push(Entry {
            name: name.into(),
            plain_verdict: vp,
            constrained_verdict: vc,
            plain: plain_stats,
            constrained: con_stats,
        });
    }

    // The floor: constraint compilation must still flip at least three
    // fails verdicts to holds. If it stops doing that, the theory layer
    // is inert and this benchmark measures nothing.
    let flips = entries
        .iter()
        .filter(|e| e.plain_verdict == "fails" && e.constrained_verdict == "holds")
        .count();
    assert!(
        flips >= 3,
        "expected >= 3 fails->holds verdict flips, got {flips}: {:?}",
        entries
            .iter()
            .map(|e| format!(
                "{}: {} -> {}",
                e.name, e.plain_verdict, e.constrained_verdict
            ))
            .collect::<Vec<_>>(),
    );
    assert!(
        entries
            .iter()
            .any(|e| e.constrained_verdict == "holds_vacuously"),
        "expected the dead-range fixture to go vacuous under disjointness",
    );

    for e in &entries {
        println!(
            "bench_constrained/{}: {} -> {} ({:.0}ns -> {:.0}ns, x{:.2})",
            e.name,
            e.plain_verdict,
            e.constrained_verdict,
            e.plain.median_ns,
            e.constrained.median_ns,
            e.constrained.median_ns / e.plain.median_ns,
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"experiment\": \"B12\",\n");
    json.push_str("  \"workload\": \"constraint_theory_verdict_flips\",\n");
    json.push_str(&format!(
        "  \"measurement\": {{ \"samples\": {}, \"min_sample_ns\": {} }},\n",
        h.samples, h.min_sample_ns
    ));
    json.push_str(&format!("  \"verdict_flips\": {flips},\n"));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"plain_verdict\": \"{}\", \
             \"constrained_verdict\": \"{}\", \
             \"plain_median_ns\": {:.0}, \"constrained_median_ns\": {:.0}, \
             \"overhead\": {:.3} }}{}\n",
            json_escape(&e.name),
            e.plain_verdict,
            e.constrained_verdict,
            e.plain.median_ns,
            e.constrained.median_ns,
            e.constrained.median_ns / e.plain.median_ns,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {out_path}");
}

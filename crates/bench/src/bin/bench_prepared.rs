//! Emits `BENCH_prepared.json` (experiment **B9**): repeated-decision
//! latency of the prepared [`oocq_core::Engine`] session against the
//! one-shot free functions, on the `Strategy::Full` containment family of
//! `bench_containment` plus a multi-branch minimization workload and an
//! isomorphic-equivalence workload.
//!
//! * **unprepared** — every call goes through the free-function path
//!   (`contains_terminal_with`, `minimize_positive_with`,
//!   `equivalent_terminal_with`), re-deriving analysis, terminal classes,
//!   branch indexes, and canonical forms per call.
//! * **prepared** — one `Engine` session holding `PreparedQuery` handles:
//!   artifacts are memoized on the handles and decisions are memoized in
//!   the session's canonical decision cache, so a repeated decision reduces
//!   to a lookup over pre-interned keys. The `equivalent_renamed` entry
//!   runs without any decision cache — its speedup comes purely from the
//!   memoized canonical forms feeding the isomorphism fast path.
//!
//! The binary asserts the two paths return identical verdicts and that the
//! prepared path is at least 2× faster (median) on every entry — the
//! acceptance bar for the prepared layer actually skipping rebuild work.
//!
//! Usage: `bench_prepared [OUT.json]` (default `BENCH_prepared.json`).
//! Honors `OOCQ_BENCH_SAMPLES`, `OOCQ_BENCH_MIN_SAMPLE_MS`,
//! `OOCQ_BENCH_QUICK`.

use oocq_bench::{Harness, Stats};
use oocq_core::{
    contains_terminal_with, equivalent_terminal_with, minimize_positive_with, Engine, EngineConfig,
};
use oocq_parser::{parse_query, parse_schema};
use oocq_service::CanonicalDecisionCache;
use std::sync::Arc;

/// One terminal class `C` with a set attribute `items : {C}`.
const SCHEMA: &str = "class C { items: {C}; }";

/// The left query of the `full(m, f)` containment family (see
/// `bench_containment`): `m` members, one pinned non-member, `f` floaters.
/// `prefix` renames every bound variable, producing isomorphic copies.
fn q1_text(members: usize, floaters: usize, prefix: &str) -> String {
    let mut vars = Vec::new();
    let mut atoms = Vec::new();
    for i in 0..members {
        vars.push(format!("{prefix}y{i}"));
        atoms.push(format!("{prefix}y{i} in C & {prefix}y{i} in x.items"));
    }
    vars.push(format!("{prefix}u"));
    atoms.push(format!("{prefix}u in C & {prefix}u not in x.items"));
    for i in 0..floaters {
        vars.push(format!("{prefix}z{i}"));
        atoms.push(format!("{prefix}z{i} in C"));
    }
    format!(
        "{{ x | exists {}: x in C & {} }}",
        vars.join(", "),
        atoms.join(" & ")
    )
}

/// The right query: membership + non-membership + inequality forces
/// `Strategy::Full`.
const Q2: &str =
    "{ x | exists y, u2: x in C & y in C & u2 in C & y in x.items & u2 not in x.items & y != u2 }";

/// A positive query over a 3-way partitioned hierarchy whose expansion has
/// several branches, so unprepared minimization runs the full §4 pipeline
/// per call.
const MIN_SCHEMA: &str =
    "class V {} class A : V {} class B : V {} class D : V {} class K { r: {V}; } class S : K { r: {A}; }";
const MIN_QUERY: &str = "{ x | exists y, z: x in V & y in S & z in V & x in y.r & z in y.r }";

struct Entry {
    name: &'static str,
    op: &'static str,
    unprepared: Stats,
    prepared: Stats,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_prepared.json".into());
    let h = Harness::from_env();
    let cfg = EngineConfig::serial();
    let mut entries = Vec::new();

    // --- Repeated Strategy::Full containment. ---
    let schema = parse_schema(SCHEMA).unwrap();
    let q1 = parse_query(&schema, &q1_text(2, 2, "")).unwrap();
    let q2 = parse_query(&schema, Q2).unwrap();
    {
        let engine = Engine::serial().with_cache(Arc::new(CanonicalDecisionCache::new(4096)));
        let ps = engine.prepare_schema(&schema);
        let (p1, p2) = (engine.prepare(&ps, &q1), engine.prepare(&ps, &q2));
        let free = contains_terminal_with(&schema, &q1, &q2, &cfg).unwrap();
        assert_eq!(
            engine.contains(&p1, &p2).unwrap(),
            free,
            "full_m2_f2: prepared verdict differs from free function"
        );
        let unprepared = h.run("bench_prepared", "full_m2_f2/unprepared", || {
            contains_terminal_with(&schema, &q1, &q2, &cfg).unwrap()
        });
        let prepared = h.run("bench_prepared", "full_m2_f2/prepared", || {
            engine.contains(&p1, &p2).unwrap()
        });
        entries.push(Entry {
            name: "full_m2_f2",
            op: "contains",
            unprepared,
            prepared,
        });
    }

    // --- Repeated §4 minimization. ---
    let min_schema = parse_schema(MIN_SCHEMA).unwrap();
    let min_q = parse_query(&min_schema, MIN_QUERY).unwrap();
    {
        let engine = Engine::serial().with_cache(Arc::new(CanonicalDecisionCache::new(4096)));
        let ps = engine.prepare_schema(&min_schema);
        let p = engine.prepare(&ps, &min_q);
        let free = minimize_positive_with(&min_schema, &min_q, &cfg).unwrap();
        assert_eq!(
            engine.minimize(&p).unwrap(),
            free,
            "minimize_partition: prepared result differs from free function"
        );
        let unprepared = h.run("bench_prepared", "minimize_partition/unprepared", || {
            minimize_positive_with(&min_schema, &min_q, &cfg).unwrap()
        });
        let prepared = h.run("bench_prepared", "minimize_partition/prepared", || {
            engine.minimize(&p).unwrap()
        });
        entries.push(Entry {
            name: "minimize_partition",
            op: "minimize",
            unprepared,
            prepared,
        });
    }

    // --- Equivalence of isomorphic copies, no decision cache: the prepared
    // speedup comes purely from the memoized canonical forms feeding the
    // isomorphism fast path. ---
    let r1 = parse_query(&schema, &q1_text(2, 2, "a")).unwrap();
    {
        let engine = Engine::serial();
        let ps = engine.prepare_schema(&schema);
        let (p1, pr) = (engine.prepare(&ps, &q1), engine.prepare(&ps, &r1));
        let free = equivalent_terminal_with(&schema, &q1, &r1, &cfg).unwrap();
        assert_eq!(
            engine.equivalent(&p1, &pr).unwrap(),
            free,
            "equivalent_renamed: prepared verdict differs from free function"
        );
        assert!(
            free,
            "equivalent_renamed: the renamed copy must be equivalent"
        );
        let unprepared = h.run("bench_prepared", "equivalent_renamed/unprepared", || {
            equivalent_terminal_with(&schema, &q1, &r1, &cfg).unwrap()
        });
        let prepared = h.run("bench_prepared", "equivalent_renamed/prepared", || {
            engine.equivalent(&p1, &pr).unwrap()
        });
        entries.push(Entry {
            name: "equivalent_renamed",
            op: "equivalent",
            unprepared,
            prepared,
        });
    }

    for e in &entries {
        assert!(
            e.unprepared.median_ns >= 2.0 * e.prepared.median_ns,
            "{}: prepared must be >= 2x faster than unprepared \
             (unprepared {}, prepared {})",
            e.name,
            Stats::human(e.unprepared.median_ns),
            Stats::human(e.prepared.median_ns),
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"experiment\": \"B9\",\n");
    json.push_str("  \"workload\": \"prepared_engine_vs_free_functions\",\n");
    json.push_str(&format!(
        "  \"measurement\": {{ \"samples\": {}, \"min_sample_ns\": {} }},\n",
        h.samples, h.min_sample_ns
    ));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"op\": \"{}\", \
             \"unprepared_median_ns\": {:.0}, \"prepared_median_ns\": {:.0}, \
             \"prepared_speedup\": {:.1}, \"speedup_floor\": 2 }}{}\n",
            e.name,
            e.op,
            e.unprepared.median_ns,
            e.prepared.median_ns,
            e.unprepared.median_ns / e.prepared.median_ns,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {out_path}");
}

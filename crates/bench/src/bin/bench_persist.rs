//! Emits `BENCH_persist.json` (experiment **B13**): cold-start versus
//! warm-restart request latency of the `oocq-serve` engine with the
//! disk-backed second-tier decision cache, on the B8 `Strategy::Full`
//! containment family.
//!
//! Three measurement points per workload:
//!
//! * **cold** — a fresh memory-only [`ServiceEngine`] per call: the
//!   request pays the full Theorem 3.1 branch enumeration. This is also
//!   what *every* request used to pay right after a deploy.
//! * **warm** — one shared engine, warmed once: the in-memory tier-1 hit
//!   (the B8 reference point).
//! * **warm_restart** — per call, a *brand-new* engine over a cache
//!   directory populated by a previous process-lifetime: construction
//!   replays the verdict log into both tiers, and the request is served
//!   from the pre-warmed cache without ever running the decision engine.
//!   The measurement deliberately includes the log-load cost — it is the
//!   honest "first request after deploy" number.
//!
//! The binary asserts in-binary that the restart-warmed path is at least
//! 5× faster than cold on every containment entry, and that restarted
//! payloads are byte-identical to cold ones.
//!
//! Usage: `bench_persist [OUT.json]` (default `BENCH_persist.json`).
//! Honors `OOCQ_BENCH_SAMPLES`, `OOCQ_BENCH_MIN_SAMPLE_MS`,
//! `OOCQ_BENCH_QUICK`.

use oocq_bench::{Harness, Stats};
use oocq_core::EngineConfig;
use oocq_service::{parse_request, CanonicalDecisionCache, Request, ServiceEngine};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One terminal class `C` with a set attribute `items : {C}` (B8 schema).
const SCHEMA: &str = "class C { items: {C}; }";

/// The left query of the `full(m, f)` containment family: `m` members,
/// one pinned non-member, `f` floaters.
fn q1_text(members: usize, floaters: usize) -> String {
    let mut vars = Vec::new();
    let mut atoms = Vec::new();
    for i in 0..members {
        vars.push(format!("y{i}"));
        atoms.push(format!("y{i} in C & y{i} in x.items"));
    }
    vars.push("u".into());
    atoms.push("u in C & u not in x.items".into());
    for i in 0..floaters {
        vars.push(format!("z{i}"));
        atoms.push(format!("z{i} in C"));
    }
    format!(
        "{{ x | exists {}: x in C & {} }}",
        vars.join(", "),
        atoms.join(" & ")
    )
}

/// The right query: membership + non-membership + inequality forces
/// `Strategy::Full`.
const Q2: &str =
    "{ x | exists y, u2: x in C & y in C & u2 in C & y in x.items & u2 not in x.items & y != u2 }";

const REQUEST: &str = "contains s P Q";

/// Build a ready engine around the given cache: session `s`, queries `P`
/// (left) and `Q` (right).
fn engine_with(cache: CanonicalDecisionCache, members: usize, floaters: usize) -> ServiceEngine {
    let e = ServiceEngine::with_cache(EngineConfig::serial(), Some(Arc::new(cache)));
    e.define_schema("s", SCHEMA).unwrap();
    e.define_query("s", "P", &q1_text(members, floaters))
        .unwrap();
    e.define_query("s", "Q", Q2).unwrap();
    e
}

fn restarted_engine(dir: &Path, members: usize, floaters: usize) -> ServiceEngine {
    let cache = CanonicalDecisionCache::with_persistence(4096, dir, 65536)
        .expect("cache directory must open");
    engine_with(cache, members, floaters)
}

/// Execute one request line against an engine, returning the payload.
fn exec(e: &ServiceEngine, line: &str) -> String {
    let req: Request = parse_request(line).unwrap();
    let snap = e.snapshot_for(&req).unwrap();
    let (result, _) = e.execute(&req, snap.as_ref());
    result.unwrap_or_else(|err| panic!("`{line}` failed: {err}"))
}

struct Entry {
    name: String,
    cold: Stats,
    warm: Stats,
    warm_restart: Stats,
    members: usize,
    floaters: usize,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_persist.json".into());
    let h = Harness::from_env();
    let scratch: PathBuf =
        std::env::temp_dir().join(format!("oocq-bench-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let mut entries = Vec::new();
    // The two heavier B8 workloads: their cold decision cost (≈12 ms and
    // ≈51 ms release-mode) dwarfs the per-restart session setup + log
    // replay (≈1.5 ms), which is the honest comparison the 5× floor
    // guards. `full_m2_f2`'s decision is cheap enough that session
    // *parsing* dominates both sides, so it proves nothing about the
    // persistent tier and is left to B8.
    let workloads: [(&str, usize, usize); 2] = [("full_m2_f3", 2, 3), ("full_m3_f3", 3, 3)];
    for (name, members, floaters) in workloads {
        let dir = scratch.join(name);

        // Populate the directory from a first process-lifetime, and pin
        // the payload the restarted engine must reproduce.
        let payload = {
            let first = restarted_engine(&dir, members, floaters);
            exec(&first, REQUEST)
        };

        // Contract: a restarted engine answers byte-identically, from the
        // persistent tier (no decision recomputation — the lookup hits).
        let restarted = restarted_engine(&dir, members, floaters);
        let persist = restarted.cache().unwrap().persist_stats().unwrap();
        assert!(persist.loaded > 0, "{name}: restart loaded no records");
        assert_eq!(
            exec(&restarted, REQUEST),
            payload,
            "{name}: restarted payload differs from the original"
        );
        let stats = restarted.cache().unwrap().stats();
        assert!(
            stats.contains_hits > 0 && stats.contains_misses == 0,
            "{name}: restarted engine recomputed instead of hitting: {stats:?}"
        );
        // Release the directory lock: a live engine would force every
        // measured restart below to lose it and run memory-only.
        drop(restarted);

        let cold = h.run("bench_persist", &format!("{name}/cold"), || {
            let e = engine_with(CanonicalDecisionCache::new(4096), members, floaters);
            exec(&e, REQUEST)
        });
        let warm_engine = engine_with(CanonicalDecisionCache::new(4096), members, floaters);
        exec(&warm_engine, REQUEST); // warm the in-memory cache once
        let warm = h.run("bench_persist", &format!("{name}/warm"), || {
            exec(&warm_engine, REQUEST)
        });
        let warm_restart = h.run("bench_persist", &format!("{name}/warm_restart"), || {
            let e = restarted_engine(&dir, members, floaters);
            exec(&e, REQUEST)
        });

        // The acceptance floor: restart-warmed (log replay included) must
        // beat cold by at least 5× on the hot path.
        assert!(
            cold.median_ns >= 5.0 * warm_restart.median_ns,
            "{name}: warm restart must be >= 5x faster than cold \
             (cold {}, restart {})",
            Stats::human(cold.median_ns),
            Stats::human(warm_restart.median_ns),
        );
        entries.push(Entry {
            name: name.to_owned(),
            cold,
            warm,
            warm_restart,
            members,
            floaters,
        });
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"experiment\": \"B13\",\n");
    json.push_str("  \"workload\": \"persistent_cache_cold_vs_warm_restart\",\n");
    json.push_str(&format!(
        "  \"measurement\": {{ \"samples\": {}, \"min_sample_ns\": {} }},\n",
        h.samples, h.min_sample_ns
    ));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"request\": \"{}\", \"members\": {}, \"floaters\": {}, \
             \"cold_median_ns\": {:.0}, \"warm_median_ns\": {:.0}, \
             \"warm_restart_median_ns\": {:.0}, \"restart_speedup\": {:.1}, \
             \"speedup_floor\": 5 }}{}\n",
            e.name,
            REQUEST,
            e.members,
            e.floaters,
            e.cold.median_ns,
            e.warm.median_ns,
            e.warm_restart.median_ns,
            e.cold.median_ns / e.warm_restart.median_ns,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {out_path}");
}

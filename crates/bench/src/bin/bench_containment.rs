//! Emits `BENCH_containment.json`: median wall-clock time of the Theorem
//! 3.1 decision procedure on Strategy::Full workloads, serial versus
//! parallel, so the perf trajectory of the branch engine is tracked across
//! PRs in a machine-readable file.
//!
//! The workload family `full(m, f)` is built so that `strategy_for`
//! selects the full Theorem 3.1 enumeration and every augmentation branch
//! admits a witness (the verdict is `Holds`, so the engine cannot
//! early-exit and the branch count equals the witness count):
//!
//! * `Q₁ = { x | ∃ y₁…y_m, u, z₁…z_f : yᵢ ∈ x.items & u ∉ x.items }` over a
//!   single terminal class — the `m` members feed the equality-augmentation
//!   lattice, the `f` floaters plus `x` are membership candidates (`2^(f+1)`
//!   subsets per consistent partition), and `u` pins a variable that no
//!   branch can make a member.
//! * `Q₂ = { x | ∃ y, u₂ : y ∈ x.items & u₂ ∉ x.items & y ≠ u₂ }` — one
//!   inequality plus one non-membership forces `Strategy::Full`; the
//!   mapping `y ↦ y₁, u₂ ↦ u` works in every branch.
//!
//! Usage: `bench_containment [OUT.json]` (default `BENCH_containment.json`
//! in the current directory). Honors `OOCQ_THREADS`, `OOCQ_BENCH_SAMPLES`,
//! `OOCQ_BENCH_MIN_SAMPLE_MS`, `OOCQ_BENCH_QUICK`.

use oocq_bench::{Harness, Stats};
use oocq_core::{decide_containment_with, strategy_for, Containment, EngineConfig, Strategy};
use oocq_query::{Query, QueryBuilder};
use oocq_schema::{AttrType, Schema, SchemaBuilder};

/// One terminal class `C` with a set attribute `items : {C}`.
fn bench_schema() -> Schema {
    let mut b = SchemaBuilder::new();
    let c = b.class("C").unwrap();
    b.attribute(c, "items", AttrType::SetOf(c)).unwrap();
    b.finish().unwrap()
}

/// The left query of `full(m, f)` (see module docs).
fn q1(schema: &Schema, members: usize, floaters: usize) -> Query {
    let c = schema.class_id("C").unwrap();
    let items = schema.attr_id("items").unwrap();
    let mut b = QueryBuilder::new("x");
    let x = b.free();
    b.range(x, [c]);
    for i in 0..members {
        let y = b.var(&format!("y{i}"));
        b.range(y, [c]);
        b.member(y, x, items);
    }
    let u = b.var("u");
    b.range(u, [c]);
    b.non_member(u, x, items);
    for i in 0..floaters {
        let z = b.var(&format!("z{i}"));
        b.range(z, [c]);
    }
    b.build()
}

/// The right query: membership + non-membership + inequality, so
/// `strategy_for` picks the full Theorem 3.1 enumeration.
fn q2(schema: &Schema) -> Query {
    let c = schema.class_id("C").unwrap();
    let items = schema.attr_id("items").unwrap();
    let mut b = QueryBuilder::new("x");
    let x = b.free();
    let y = b.var("y");
    let u2 = b.var("u2");
    b.range(x, [c]).range(y, [c]).range(u2, [c]);
    b.member(y, x, items);
    b.non_member(u2, x, items);
    b.neq_vars(y, u2);
    b.build()
}

struct Entry {
    name: String,
    branches: usize,
    verdict: &'static str,
    serial: Stats,
    parallel: Stats,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_containment.json".into());
    let h = Harness::from_env();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Exercise the threaded path even on a single-core host (the engine
    // clamps workers to the branch count, never to the core count).
    let par_cfg = {
        let mut cfg = EngineConfig::from_env();
        cfg.threads = cfg.threads.max(2);
        cfg.min_parallel_branches = 1;
        cfg
    };
    let serial_cfg = EngineConfig::serial();

    let schema = bench_schema();
    let right = q2(&schema);
    assert_eq!(
        strategy_for(&right),
        Strategy::Full,
        "workload must exercise the full Theorem 3.1 enumeration"
    );

    let mut entries = Vec::new();
    for (members, floaters) in [(1usize, 1usize), (2, 2), (2, 3), (3, 3)] {
        let left = q1(&schema, members, floaters);
        let name = format!("full_m{members}_f{floaters}");

        let serial_cert = decide_containment_with(&schema, &left, &right, &serial_cfg).unwrap();
        let par_cert = decide_containment_with(&schema, &left, &right, &par_cfg).unwrap();
        assert_eq!(
            serial_cert, par_cert,
            "{name}: parallel certificate diverges from serial"
        );
        let (branches, verdict) = match &serial_cert {
            Containment::Holds(ws) => (ws.len(), "holds"),
            Containment::HoldsVacuously(_) => (0, "holds_vacuously"),
            _ => (0, "fails"),
        };
        assert_eq!(verdict, "holds", "{name}: workload must decide Holds");
        assert!(
            branches >= 12,
            "{name}: only {branches} enumerable branches, need >= 12"
        );

        let serial = h.run("bench_containment", &format!("{name}/serial"), || {
            decide_containment_with(&schema, &left, &right, &serial_cfg).unwrap()
        });
        let parallel = h.run(
            "bench_containment",
            &format!("{name}/parallel_t{}", par_cfg.threads),
            || decide_containment_with(&schema, &left, &right, &par_cfg).unwrap(),
        );
        entries.push(Entry {
            name,
            branches,
            verdict,
            serial,
            parallel,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str("  \"workload\": \"theorem_3_1_full_enumeration\",\n");
    json.push_str("  \"strategy\": \"Full\",\n");
    json.push_str(&format!(
        "  \"host\": {{ \"cores\": {cores}, \"parallel_threads\": {} }},\n",
        par_cfg.threads
    ));
    json.push_str(&format!(
        "  \"measurement\": {{ \"samples\": {}, \"min_sample_ns\": {} }},\n",
        h.samples, h.min_sample_ns
    ));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"branches\": {}, \"verdict\": \"{}\", \
             \"serial_median_ns\": {:.0}, \"parallel_median_ns\": {:.0}, \
             \"speedup\": {:.3} }}{}\n",
            json_escape(&e.name),
            e.branches,
            e.verdict,
            e.serial.median_ns,
            e.parallel.median_ns,
            e.serial.median_ns / e.parallel.median_ns,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {out_path}");
}

//! # oocq-bench
//!
//! Benchmark harness for the `oocq` workspace: Criterion benches (one per
//! experiment family B1–B6 of EXPERIMENTS.md) plus the `experiments` binary
//! that regenerates every paper-example verdict (E1–E8) and the summary
//! measurements in table form.

#![forbid(unsafe_code)]

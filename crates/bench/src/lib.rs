//! # oocq-bench
//!
//! Benchmark harness for the `oocq` workspace: a dependency-free
//! measurement core (this module), one bench target per experiment family
//! A1/B1–B6 of EXPERIMENTS.md, the `experiments` binary that regenerates
//! every paper-example verdict (E1–E8), and the `bench_containment` binary
//! that emits the machine-readable `BENCH_containment.json` tracked in the
//! repository root.
//!
//! ## Measurement model
//!
//! Each benchmark point is measured as the **median of `samples` batches**,
//! where a batch runs the closure enough times (`iters`, auto-calibrated)
//! that one batch takes at least `min_sample` wall-clock time. The median
//! over batches is robust against scheduler noise without needing an
//! external statistics crate. Knobs (environment variables):
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `OOCQ_BENCH_SAMPLES` | 11 | batches per point |
//! | `OOCQ_BENCH_MIN_SAMPLE_MS` | 5 | minimum batch wall-clock time |
//! | `OOCQ_BENCH_QUICK` | unset | set to `1` for a fast smoke run (3 × 1 ms) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// One measured benchmark point.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Median nanoseconds per iteration across batches.
    pub median_ns: f64,
    /// Fastest batch, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest batch, nanoseconds per iteration.
    pub max_ns: f64,
    /// Iterations per batch (auto-calibrated).
    pub iters: u64,
    /// Number of batches measured.
    pub samples: usize,
}

impl Stats {
    /// Render a duration in adaptive units (`ns`, `µs`, `ms`, `s`).
    pub fn human(ns: f64) -> String {
        if ns < 1_000.0 {
            format!("{ns:.1} ns")
        } else if ns < 1_000_000.0 {
            format!("{:.2} µs", ns / 1_000.0)
        } else if ns < 1_000_000_000.0 {
            format!("{:.2} ms", ns / 1_000_000.0)
        } else {
            format!("{:.3} s", ns / 1_000_000_000.0)
        }
    }
}

/// Measurement configuration, usually read from the environment once per
/// bench binary.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// Batches per benchmark point.
    pub samples: usize,
    /// Minimum wall-clock nanoseconds per batch.
    pub min_sample_ns: u128,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::from_env()
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl Harness {
    /// Read the measurement knobs from the environment (see module docs).
    pub fn from_env() -> Harness {
        if std::env::var("OOCQ_BENCH_QUICK").is_ok_and(|v| v.trim() == "1") {
            return Harness {
                samples: 3,
                min_sample_ns: 1_000_000,
            };
        }
        Harness {
            samples: env_usize("OOCQ_BENCH_SAMPLES").unwrap_or(11).max(1),
            min_sample_ns: env_usize("OOCQ_BENCH_MIN_SAMPLE_MS").unwrap_or(5).max(1) as u128
                * 1_000_000,
        }
    }

    /// Measure `f`, printing one `group/id` line, and return the stats.
    ///
    /// The closure's return value is passed through [`std::hint::black_box`]
    /// so the work cannot be optimized away.
    pub fn run<R>(&self, group: &str, id: &str, mut f: impl FnMut() -> R) -> Stats {
        // Calibrate: grow the batch size until one batch meets the floor.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed().as_nanos();
            if elapsed >= self.min_sample_ns || iters >= 1 << 30 {
                break;
            }
            // Aim straight for the floor with 20% headroom, at least 2×.
            let target = (self.min_sample_ns as f64 * 1.2 / (elapsed.max(1) as f64 / iters as f64))
                .ceil() as u64;
            iters = target.max(iters * 2);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let stats = Stats {
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            iters,
            samples: per_iter.len(),
        };
        println!(
            "{group}/{id}: median {} (min {}, max {}; {} × {} iters)",
            Stats::human(stats.median_ns),
            Stats::human(stats.min_ns),
            Stats::human(stats.max_ns),
            stats.samples,
            stats.iters,
        );
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_meets_sample_floor() {
        let h = Harness {
            samples: 3,
            min_sample_ns: 100_000,
        };
        let mut n: u64 = 0;
        let stats = h.run("test", "spin", || {
            n = n.wrapping_add(1);
            n
        });
        assert!(stats.iters >= 1);
        assert!(stats.median_ns > 0.0);
        assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.max_ns);
    }

    #[test]
    fn human_units_scale() {
        assert!(Stats::human(12.0).ends_with("ns"));
        assert!(Stats::human(12_000.0).ends_with("µs"));
        assert!(Stats::human(12_000_000.0).ends_with("ms"));
        assert!(Stats::human(12_000_000_000.0).ends_with(" s"));
    }
}

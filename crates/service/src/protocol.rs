//! The line-delimited request/response protocol of `oocq-serve`.
//!
//! Every request is one line; every response is one line. Multi-line
//! payloads (schema text, programs, transcripts) travel escaped: literal
//! newline ↔ `\n`, literal backslash ↔ `\\`.
//!
//! ```text
//! request  := ping | stats (on|off|show) | quit
//!           | schema <session> <escaped-schema-text>
//!           | query <session> <name> <escaped-query-text>
//!           | constraint <session> <escaped-constraint-text>
//!           | satisfiable <session> <query>
//!           | contains <session> <q1> <q2>
//!           | equiv <session> <q1> <q2>
//!           | explain <session> <q1> <q2>
//!           | expand <session> <query>
//!           | minimize <session> <query>
//!           | run <escaped-program-text>
//!           | limit=<n> <decision-request>
//! response := [<seq>] ok <escaped-payload>[ # <stats>]
//!           | [<seq>] err <escaped-message>[ # <stats>]
//! ```
//!
//! A decision request may carry a leading `limit=<n>` option: the engine
//! charges one work unit per Theorem 3.1 branch (and per §4 subquery/pair)
//! and answers `err timeout …` once `n` units are spent, leaving the
//! session, cache, and connection fully usable. The same mechanism backs
//! the connection-wide `OOCQ_DEADLINE_MS` wall-clock deadline.
//!
//! `<seq>` is the 0-based position of the request in the input stream;
//! responses are emitted in request order regardless of which worker
//! finished first. The optional ` # ` suffix (toggled with `stats on|off`,
//! default on) reports `cached=<hits> decided=<engine decisions>
//! wall_us=<microseconds> threads=<pool size>` for decision commands.

/// Escape a payload onto one line: `\` → `\\`, newline → `\n`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Invert [`escape`]. Unknown escapes keep the escaped character; a
/// trailing lone backslash is kept literally.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `ping` — liveness check, answers `ok pong`.
    Ping,
    /// `stats on|off` — toggle the ` # …` stats suffix for this connection.
    Stats(bool),
    /// `stats show` — one-line report of cache traffic, coalescing
    /// counters, and this connection's decision backlog. Answered inline
    /// (the counters are live; the response is *not* part of the
    /// deterministic-transcript contract).
    StatsShow,
    /// `quit` — drain in-flight work, then close the connection.
    Quit,
    /// `schema <session> <text>` — create/replace a named session.
    DefineSchema { session: String, text: String },
    /// `query <session> <name> <text>` — bind a named query in a session.
    DefineQuery {
        session: String,
        name: String,
        text: String,
    },
    /// `constraint <session> <text>` — add a constraint declaration (DSL
    /// syntax without the keyword, e.g. `disjoint A B`) to the session's
    /// schema, re-validating it and re-preparing every bound query.
    DefineConstraint { session: String, text: String },
    /// `satisfiable <session> <query>` — Proposition 2.1 branch report.
    Satisfiable { session: String, query: String },
    /// `contains <session> <q1> <q2>` — containment verdict.
    Contains {
        session: String,
        q1: String,
        q2: String,
    },
    /// `equiv <session> <q1> <q2>` — mutual containment.
    Equivalent {
        session: String,
        q1: String,
        q2: String,
    },
    /// `explain <session> <q1> <q2>` — rendered containment certificate.
    Explain {
        session: String,
        q1: String,
        q2: String,
    },
    /// `expand <session> <query>` — §2 expansion branches.
    Expand { session: String, query: String },
    /// `minimize <session> <query>` — §4 minimization.
    Minimize { session: String, query: String },
    /// `run <program>` — a full self-contained workbench program.
    Run { text: String },
    /// `limit=<n> <decision-request>` — the wrapped decision request under a
    /// work budget of `n` units; exhaustion answers `err timeout …`.
    Limited {
        /// Work-unit budget for this one request (positive).
        limit: u64,
        /// The wrapped decision request.
        inner: Box<Request>,
    },
}

impl Request {
    /// Does this request run engine decisions (and so belong on the worker
    /// pool), as opposed to mutating session state inline?
    pub fn is_decision(&self) -> bool {
        match self {
            Request::Ping
            | Request::Stats(_)
            | Request::StatsShow
            | Request::Quit
            | Request::DefineSchema { .. }
            | Request::DefineQuery { .. }
            | Request::DefineConstraint { .. } => false,
            Request::Limited { inner, .. } => inner.is_decision(),
            _ => true,
        }
    }
}

fn two_words(rest: &str) -> Option<(&str, &str)> {
    let rest = rest.trim();
    let (a, b) = rest.split_once(char::is_whitespace)?;
    Some((a, b.trim_start()))
}

/// Parse one request line. Returns a human-readable error for malformed
/// input (the server reports it as an `err` response, it never kills the
/// connection).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    if let Some(rest) = line.strip_prefix("limit=") {
        let (value, tail) = two_words(rest).ok_or("`limit=<n>` expects a request after it")?;
        let limit = value
            .parse::<u64>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("`limit=` expects a positive integer, got `{value}`"))?;
        let inner = parse_request(tail)?;
        if matches!(inner, Request::Limited { .. }) {
            return Err("`limit=` cannot be nested".to_owned());
        }
        if !inner.is_decision() {
            return Err("`limit=` applies only to decision requests".to_owned());
        }
        return Ok(Request::Limited {
            limit,
            inner: Box::new(inner),
        });
    }
    let (cmd, rest) = line
        .split_once(char::is_whitespace)
        .map(|(c, r)| (c, r.trim_start()))
        .unwrap_or((line, ""));
    let need = |n: usize| -> Result<Vec<&str>, String> {
        // First n-1 whitespace-separated words, then the remainder verbatim.
        let mut parts = Vec::with_capacity(n);
        let mut rest = rest;
        for _ in 0..n.saturating_sub(1) {
            let (word, tail) =
                two_words(rest).ok_or_else(|| format!("`{cmd}` expects {n} arguments"))?;
            parts.push(word);
            rest = tail;
        }
        if rest.is_empty() {
            return Err(format!("`{cmd}` expects {n} arguments"));
        }
        parts.push(rest);
        Ok(parts)
    };
    match cmd {
        "" => Err("empty request".to_owned()),
        "ping" => Ok(Request::Ping),
        "quit" => Ok(Request::Quit),
        "stats" => match rest {
            "on" => Ok(Request::Stats(true)),
            "off" => Ok(Request::Stats(false)),
            "show" => Ok(Request::StatsShow),
            other => Err(format!(
                "`stats` expects `on`, `off`, or `show`, got `{other}`"
            )),
        },
        "schema" => {
            let p = need(2)?;
            Ok(Request::DefineSchema {
                session: p[0].to_owned(),
                text: unescape(p[1]),
            })
        }
        "query" => {
            let p = need(3)?;
            Ok(Request::DefineQuery {
                session: p[0].to_owned(),
                name: p[1].to_owned(),
                text: unescape(p[2]),
            })
        }
        "constraint" => {
            let p = need(2)?;
            Ok(Request::DefineConstraint {
                session: p[0].to_owned(),
                text: unescape(p[1]),
            })
        }
        "satisfiable" => {
            let p = need(2)?;
            Ok(Request::Satisfiable {
                session: p[0].to_owned(),
                query: p[1].to_owned(),
            })
        }
        "contains" | "equiv" | "explain" => {
            let p = need(3)?;
            let (session, q1, q2) = (p[0].to_owned(), p[1].to_owned(), p[2].to_owned());
            Ok(match cmd {
                "contains" => Request::Contains { session, q1, q2 },
                "equiv" => Request::Equivalent { session, q1, q2 },
                _ => Request::Explain { session, q1, q2 },
            })
        }
        "expand" => {
            let p = need(2)?;
            Ok(Request::Expand {
                session: p[0].to_owned(),
                query: p[1].to_owned(),
            })
        }
        "minimize" => {
            let p = need(2)?;
            Ok(Request::Minimize {
                session: p[0].to_owned(),
                query: p[1].to_owned(),
            })
        }
        "run" => Ok(Request::Run {
            text: unescape(need(1)?[0]),
        }),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Per-request execution statistics, rendered as the ` # …` suffix.
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestStats {
    /// Engine decisions answered from the decision cache.
    pub cached: u64,
    /// Engine decisions actually computed (branch-engine runs).
    pub decided: u64,
    /// Wall-clock time spent executing the request, in microseconds.
    pub wall_us: u64,
    /// Worker-pool size the request ran under.
    pub threads: usize,
}

/// Render one response line (without the trailing newline).
pub fn render_response(
    seq: u64,
    result: &Result<String, String>,
    stats: Option<&RequestStats>,
) -> String {
    let mut line = match result {
        Ok(payload) => format!("[{seq}] ok {}", escape(payload)),
        Err(msg) => format!("[{seq}] err {}", escape(msg)),
    };
    if let Some(st) = stats {
        let _ = std::fmt::Write::write_fmt(
            &mut line,
            format_args!(
                " # cached={} decided={} wall_us={} threads={}",
                st.cached, st.decided, st.wall_us, st.threads
            ),
        );
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips() {
        for s in [
            "",
            "plain",
            "two\nlines",
            "back\\slash",
            "mix \\n literal\nand\\\nescaped",
            "trailing\n",
        ] {
            assert_eq!(unescape(&escape(s)), s, "round trip of {s:?}");
        }
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(unescape("lone\\"), "lone\\");
        assert_eq!(unescape("\\x"), "x");
    }

    #[test]
    fn parses_every_command() {
        assert_eq!(parse_request(" ping "), Ok(Request::Ping));
        assert_eq!(parse_request("quit"), Ok(Request::Quit));
        assert_eq!(parse_request("stats on"), Ok(Request::Stats(true)));
        assert_eq!(parse_request("stats off"), Ok(Request::Stats(false)));
        assert_eq!(parse_request("stats show"), Ok(Request::StatsShow));
        assert!(!Request::StatsShow.is_decision());
        assert!(parse_request("limit=10 stats show").is_err());
        assert_eq!(
            parse_request("schema s class C {}\\nclass D : C {}"),
            Ok(Request::DefineSchema {
                session: "s".into(),
                text: "class C {}\nclass D : C {}".into(),
            })
        );
        assert_eq!(
            parse_request("query s Q { x | x in C }"),
            Ok(Request::DefineQuery {
                session: "s".into(),
                name: "Q".into(),
                text: "{ x | x in C }".into(),
            })
        );
        assert_eq!(
            parse_request("satisfiable s Q"),
            Ok(Request::Satisfiable {
                session: "s".into(),
                query: "Q".into(),
            })
        );
        assert_eq!(
            parse_request("contains s A B"),
            Ok(Request::Contains {
                session: "s".into(),
                q1: "A".into(),
                q2: "B".into(),
            })
        );
        assert_eq!(
            parse_request("equiv s A B"),
            Ok(Request::Equivalent {
                session: "s".into(),
                q1: "A".into(),
                q2: "B".into(),
            })
        );
        assert_eq!(
            parse_request("explain s A B"),
            Ok(Request::Explain {
                session: "s".into(),
                q1: "A".into(),
                q2: "B".into(),
            })
        );
        assert_eq!(
            parse_request("expand s Q"),
            Ok(Request::Expand {
                session: "s".into(),
                query: "Q".into(),
            })
        );
        assert_eq!(
            parse_request("minimize s Q"),
            Ok(Request::Minimize {
                session: "s".into(),
                query: "Q".into(),
            })
        );
        assert_eq!(
            parse_request("run schema { class C {} }"),
            Ok(Request::Run {
                text: "schema { class C {} }".into(),
            })
        );
    }

    #[test]
    fn limit_option_wraps_decision_requests() {
        assert_eq!(
            parse_request("limit=100 contains s A B"),
            Ok(Request::Limited {
                limit: 100,
                inner: Box::new(Request::Contains {
                    session: "s".into(),
                    q1: "A".into(),
                    q2: "B".into(),
                }),
            })
        );
        assert_eq!(
            parse_request("limit=1 run ping"),
            Ok(Request::Limited {
                limit: 1,
                inner: Box::new(Request::Run {
                    text: "ping".into()
                }),
            })
        );
        assert!(parse_request("limit=100 contains s A B")
            .unwrap()
            .is_decision());
    }

    #[test]
    fn limit_option_rejects_bad_values_and_targets() {
        for bad in [
            "limit=",
            "limit=100",
            "limit=0 contains s A B",
            "limit=-1 contains s A B",
            "limit=abc contains s A B",
            "limit=9999999999999999999999 contains s A B",
            "limit=10 ping",
            "limit=10 quit",
            "limit=10 stats off",
            "limit=10 schema s class C {}",
            "limit=10 query s Q { x | x in C }",
            "limit=10 limit=10 contains s A B",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn malformed_requests_are_reported_not_fatal() {
        for bad in [
            "",
            "frobnicate",
            "stats maybe",
            "schema s",
            "query s Q",
            "contains s A",
            "minimize s",
            "run",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn decision_classification() {
        assert!(!parse_request("ping").unwrap().is_decision());
        assert!(!parse_request("schema s class C {}").unwrap().is_decision());
        assert!(parse_request("contains s A B").unwrap().is_decision());
        assert!(parse_request("run ping").unwrap().is_decision());
    }

    #[test]
    fn responses_render_with_and_without_stats() {
        assert_eq!(
            render_response(3, &Ok("two\nlines".into()), None),
            "[3] ok two\\nlines"
        );
        let st = RequestStats {
            cached: 2,
            decided: 5,
            wall_us: 1234,
            threads: 8,
        };
        assert_eq!(
            render_response(0, &Err("boom".into()), Some(&st)),
            "[0] err boom # cached=2 decided=5 wall_us=1234 threads=8"
        );
    }
}

//! The event-driven TCP serving reactor.
//!
//! The thread-per-connection loop ([`crate::server::accept_loop`], kept
//! behind `OOCQ_REACTOR=0` as a differential reference) spends one OS
//! thread — and one whole worker pool — per peer, so ten thousand mostly
//! idle connections cost ten thousand blocked threads. [`run`] replaces it
//! with a single event loop: every socket is nonblocking and registered
//! with a level-triggered [`crate::poll::Poller`]; each connection is a
//! small line-buffer state machine; and *all* connections share one
//! `OOCQ_THREADS` worker pool behind one bounded job queue.
//!
//! ## Determinism
//!
//! The per-connection protocol semantics are byte-identical to the
//! blocking [`crate::serve`] loop (corpus replays pin this): sequence
//! numbers are assigned in input order as lines are parsed, inline
//! commands mutate session state at parse time, decision requests capture
//! their session snapshot at parse time, and a per-connection reorder
//! buffer emits responses strictly in sequence order no matter how the
//! shared pool interleaves connections.
//!
//! ## Backpressure and fault isolation
//!
//! The reactor thread never blocks on anything but the poller: jobs are
//! handed to the pool with a nonblocking `try_push`, and a full queue
//! parks the job on its connection and masks the connection's read
//! interest until completions drain (the client's unread input is the
//! buffer, exactly like the blocking path). Per-connection output is
//! likewise bounded: a peer that stops reading has its request parsing
//! paused once its write buffer fills. A single line longer than the
//! input cap can never complete, so it is answered `err line too long`
//! and its remaining bytes are discarded through the next newline (or
//! EOF) instead of wedging the connection. Worker panics are confined to
//! their own request (`err internal …`), accept errors are classified
//! transient/fatal with exponential backoff that resets on success, and
//! connections beyond `OOCQ_MAX_CONNS` are answered `err busy` and
//! closed instead of accumulating.
//!
//! ## Singleflight coalescing
//!
//! Workers route coalescable decisions (`contains`/`equiv`/`minimize`
//! without a `limit=` option) through a [`Singleflight`] table keyed by
//! the same canonical identity the decision cache uses. The first request
//! for a key computes; concurrent identical requests park as waiters —
//! occupying no worker thread — and the verdict fans out to all of them
//! on completion. Budget semantics stay per-waiter: requests with an
//! explicit `limit=` bypass coalescing entirely (work accounting is
//! request-local), and a parked waiter whose own wall-clock deadline
//! expires is answered `err timeout` by the reactor without cancelling
//! the leader.

use crate::engine::{split_limit, ServiceEngine, Session};
use crate::flight::{FlightKey, JoinOutcome, Singleflight};
use crate::poll::{waker, PollEvent, Poller, WakeReceiver, Waker};
use crate::protocol::{parse_request, render_response, Request, RequestStats};
use crate::server::{busy_line, classify_accept_error, AcceptClass, Queue};
use oocq_core::Budget;
use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Token of the listening socket.
const LISTENER: u64 = 0;
/// Token of the worker→reactor wakeup channel.
const WAKER: u64 = 1;
/// First token handed to an accepted connection. Tokens are never reused,
/// so a late completion for a closed connection cannot reach a new one.
const FIRST_CONN: u64 = 2;

/// Input buffered per connection before read interest is masked (the rest
/// stays in the kernel socket buffer — level-triggered polling picks it
/// back up once the backlog drains).
const IN_CAP: usize = 1 << 20;
/// Output buffered per connection before request parsing pauses (a peer
/// that stops reading must not grow our heap).
const OUT_CAP: usize = 1 << 20;
/// Idle poll tick: the upper bound on how stale the `stop` flag, a
/// parked-waiter deadline, or a listener backoff expiry can get.
const IDLE_TICK: Duration = Duration::from_millis(200);
/// Initial accept backoff after a transient accept error.
const BASE_BACKOFF: Duration = Duration::from_millis(10);

/// One decision request in flight from a connection to the worker pool.
struct ReactorJob {
    conn: u64,
    seq: u64,
    req: Request,
    snapshot: Option<Arc<Session>>,
    stats_on: bool,
}

/// A request parked behind a singleflight leader.
struct Waiter {
    conn: u64,
    seq: u64,
    stats_on: bool,
    start: Instant,
}

/// A completion (or parking notice) posted by a worker to the reactor.
enum Note {
    /// The response line for `(conn, seq)` is ready.
    Done { conn: u64, seq: u64, line: String },
    /// `(conn, seq)` joined an in-flight computation as a waiter; the
    /// reactor must answer `err timeout` itself if `deadline` passes
    /// before the leader's fan-out arrives.
    Parked {
        conn: u64,
        seq: u64,
        key: FlightKey,
        deadline: Instant,
    },
}

/// The worker→reactor mailbox: posting wakes the blocked poller.
struct Board {
    notes: Mutex<Vec<Note>>,
    waker: Waker,
}

impl Board {
    fn post(&self, note: Note) {
        self.notes.lock().unwrap().push(note);
        self.waker.wake();
    }

    fn drain(&self) -> Vec<Note> {
        std::mem::take(&mut *self.notes.lock().unwrap())
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Unconsumed input bytes (complete lines are parsed out eagerly).
    inbuf: Vec<u8>,
    /// Response bytes not yet written, starting at `out_pos`.
    outbuf: Vec<u8>,
    out_pos: usize,
    /// Sequence number the next parsed line will get.
    next_seq: u64,
    /// Sequence number the reorder buffer emits next.
    next_emit: u64,
    /// Out-of-order completed responses awaiting `next_emit`.
    pending: HashMap<u64, String>,
    /// Decision requests dispatched (or stalled) but not yet answered.
    inflight: usize,
    stats_on: bool,
    /// No more input will be read (EOF, `quit`, or a read error).
    read_done: bool,
    /// A mid-stream read error to report, after buffered lines, as the
    /// connection's final response.
    read_err: Option<String>,
    /// `quit` seen: discard any remaining buffered input.
    quit: bool,
    /// An oversized line was answered `err line too long`; its remaining
    /// bytes are being discarded up to the next newline (or EOF).
    discarding: bool,
    /// A job the full worker queue handed back; retried when completions
    /// drain. While set, the connection parses no further input.
    stalled: Option<ReactorJob>,
    /// Interest set currently registered with the poller.
    want_read: bool,
    want_write: bool,
    /// The peer is unreachable (write error): discard output, drain
    /// in-flight work, close.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            next_emit: 0,
            pending: HashMap::new(),
            inflight: 0,
            stats_on: true,
            read_done: false,
            read_err: None,
            quit: false,
            discarding: false,
            stalled: None,
            want_read: true,
            want_write: false,
            dead: false,
        }
    }

    /// Hand a completed response to the reorder buffer; everything ready
    /// in sequence order moves to the output buffer.
    fn emit(&mut self, seq: u64, line: String) {
        self.pending.insert(seq, line);
        while let Some(l) = self.pending.remove(&self.next_emit) {
            if !self.dead {
                self.outbuf.extend_from_slice(l.as_bytes());
                self.outbuf.push(b'\n');
            }
            self.next_emit += 1;
        }
    }

    /// Should this connection stop parsing (and reading) input for now?
    fn paused(&self, per_conn_cap: usize) -> bool {
        self.stalled.is_some()
            || self.inflight >= per_conn_cap
            || self.outbuf.len() - self.out_pos >= OUT_CAP
    }

    /// Write as much buffered output as the socket accepts.
    fn flush(&mut self) {
        while self.out_pos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.out_pos >= self.outbuf.len() {
            self.outbuf.clear();
            self.out_pos = 0;
        }
    }

    /// Is this connection fully drained and ready to close?
    fn finished(&self) -> bool {
        if self.inflight > 0 || self.stalled.is_some() {
            return false;
        }
        if self.dead {
            return true;
        }
        self.read_done
            && self.read_err.is_none()
            && self.inbuf.is_empty()
            && self.pending.is_empty()
            && self.out_pos >= self.outbuf.len()
    }
}

/// Run the reactor on `listener` until `stop` is set or a fatal listener
/// error occurs. Blocks the calling thread (it becomes the event loop) and
/// owns a scoped `OOCQ_THREADS` worker pool shared by every connection.
pub fn run(
    listener: &TcpListener,
    engine: &ServiceEngine,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    let (wake_tx, wake_rx) = waker()?;
    poller.register(listener.as_raw_fd(), LISTENER, true, false)?;
    poller.register(wake_rx.raw_fd(), WAKER, true, false)?;
    let queue: Queue<ReactorJob> = Queue::new(engine.queue_bound());
    let flights: Singleflight<Waiter> = Singleflight::new();
    let board = Board {
        notes: Mutex::new(Vec::new()),
        waker: wake_tx,
    };
    let workers = engine.pool_threads().max(1);
    let mut result = Ok(());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker_loop(engine, &queue, &flights, &board));
        }
        let mut ev = EventLoop {
            engine,
            listener,
            poller: &mut poller,
            wake_rx: &wake_rx,
            queue: &queue,
            flights: &flights,
            board: &board,
            conns: HashMap::new(),
            parked: HashMap::new(),
            next_token: FIRST_CONN,
            per_conn_cap: engine.queue_bound(),
            listener_paused: false,
            listener_resume: None,
            accept_backoff: BASE_BACKOFF,
            workers,
        };
        result = ev.run(stop);
        queue.close();
    });
    result
}

/// Execute one request under `catch_unwind` so a panic becomes that
/// request's own error response (PR 5 contract) instead of a dead worker.
fn run_job(
    engine: &ServiceEngine,
    req: &Request,
    snapshot: Option<&Arc<Session>>,
    budget: Budget,
    start: Instant,
) -> (Result<String, String>, RequestStats) {
    match catch_unwind(AssertUnwindSafe(|| {
        engine.execute_budgeted(req, snapshot, budget)
    })) {
        Ok(out) => out,
        Err(_) => (
            Err("internal: worker panicked executing this request".to_owned()),
            RequestStats {
                cached: 0,
                decided: 0,
                wall_us: start.elapsed().as_micros() as u64,
                threads: engine.pool_threads(),
            },
        ),
    }
}

/// A worker thread: pop jobs, coalesce coalescable ones through the
/// singleflight table, post completions to the reactor's board.
fn worker_loop(
    engine: &ServiceEngine,
    queue: &Queue<ReactorJob>,
    flights: &Singleflight<Waiter>,
    board: &Board,
) {
    while let Some(job) = queue.pop() {
        let start = Instant::now();
        let ReactorJob {
            conn,
            seq,
            req,
            snapshot,
            stats_on,
        } = job;
        let (inner, limit) = split_limit(&req);
        let budget = engine.request_budget(limit);
        // `limit=` requests never coalesce: their work accounting is
        // request-local by definition, and the engine must trip *their*
        // budget, not share a leader's.
        let key = if engine.coalescing() && limit.is_none() {
            match engine.flight_key(inner, snapshot.as_ref(), &budget) {
                Ok(key) => key,
                Err(msg) => {
                    // The canonical labeling itself tripped the budget.
                    let stats = RequestStats {
                        cached: 0,
                        decided: 0,
                        wall_us: start.elapsed().as_micros() as u64,
                        threads: engine.pool_threads(),
                    };
                    let st = if stats_on { Some(&stats) } else { None };
                    board.post(Note::Done {
                        conn,
                        seq,
                        line: render_response(seq, &Err(msg), st),
                    });
                    continue;
                }
            }
        } else {
            None
        };
        let Some(key) = key else {
            let (result, stats) = run_job(engine, inner, snapshot.as_ref(), budget, start);
            let st = if stats_on { Some(&stats) } else { None };
            board.post(Note::Done {
                conn,
                seq,
                line: render_response(seq, &result, st),
            });
            continue;
        };
        match flights.join(&key, || Waiter {
            conn,
            seq,
            stats_on,
            start,
        }) {
            JoinOutcome::Joined => {
                // Parked: no worker thread is held. The reactor only needs
                // to hear about it when a deadline could expire first.
                if let Some(d) = engine.deadline() {
                    board.post(Note::Parked {
                        conn,
                        seq,
                        key,
                        deadline: start + d,
                    });
                }
            }
            JoinOutcome::Lead => {
                let (result, stats) = run_job(engine, inner, snapshot.as_ref(), budget, start);
                // Collect waiters *before* posting anything: everyone
                // parked behind this flight is answered from one verdict.
                for w in flights.complete(&key) {
                    let wstats = RequestStats {
                        cached: 0,
                        decided: 0,
                        wall_us: w.start.elapsed().as_micros() as u64,
                        threads: engine.pool_threads(),
                    };
                    let st = if w.stats_on { Some(&wstats) } else { None };
                    board.post(Note::Done {
                        conn: w.conn,
                        seq: w.seq,
                        line: render_response(w.seq, &result, st),
                    });
                }
                let st = if stats_on { Some(&stats) } else { None };
                board.post(Note::Done {
                    conn,
                    seq,
                    line: render_response(seq, &result, st),
                });
            }
        }
    }
}

struct EventLoop<'a> {
    engine: &'a ServiceEngine,
    listener: &'a TcpListener,
    poller: &'a mut Poller,
    wake_rx: &'a WakeReceiver,
    queue: &'a Queue<ReactorJob>,
    flights: &'a Singleflight<Waiter>,
    board: &'a Board,
    conns: HashMap<u64, Conn>,
    /// Waiters parked behind a leader whose deadline the reactor must
    /// enforce, keyed `(conn, seq)`.
    parked: HashMap<(u64, u64), (FlightKey, Instant)>,
    next_token: u64,
    /// Max decision requests in flight per connection before its parsing
    /// pauses (reuses the queue bound: one connection can at most fill the
    /// worker queue once over).
    per_conn_cap: usize,
    listener_paused: bool,
    listener_resume: Option<Instant>,
    accept_backoff: Duration,
    workers: usize,
}

impl EventLoop<'_> {
    fn run(&mut self, stop: &AtomicBool) -> std::io::Result<()> {
        let mut events: Vec<PollEvent> = Vec::new();
        let mut dirty: HashSet<u64> = HashSet::new();
        while !stop.load(SeqCst) {
            events.clear();
            let timeout = self.next_timeout();
            self.poller.wait(&mut events, Some(timeout))?;
            let mut accept_now = false;
            for ev in &events {
                match ev.token {
                    LISTENER => accept_now = true,
                    WAKER => {
                        // A drained wake byte is real activity — the only
                        // kind the sleep-poll fallback can't fabricate —
                        // so it resets that backend's idle backoff (a
                        // no-op on epoll).
                        if self.wake_rx.drain() > 0 {
                            self.poller.note_progress();
                        }
                    }
                    token => {
                        dirty.insert(token);
                    }
                }
            }
            // Drain completions every pass (not only on a waker event: the
            // wake byte may have coalesced into a previous drain).
            if self.apply_notes(&mut dirty) {
                self.poller.note_progress();
                // Queue slots freed: every stalled connection may proceed.
                dirty.extend(
                    self.conns
                        .iter()
                        .filter(|(_, c)| c.stalled.is_some() || c.paused(self.per_conn_cap))
                        .map(|(&t, _)| t),
                );
            }
            self.maybe_resume_listener();
            if accept_now {
                self.accept_burst(&mut dirty)?;
            }
            self.fire_deadlines(&mut dirty);
            for token in dirty.drain() {
                self.pump(token);
            }
        }
        Ok(())
    }

    /// How long the poller may sleep: until the next parked-waiter
    /// deadline or listener-backoff expiry, capped by the idle tick.
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut t = IDLE_TICK;
        for (_, deadline) in self.parked.values() {
            t = t.min(deadline.saturating_duration_since(now));
        }
        if let Some(resume) = self.listener_resume {
            t = t.min(resume.saturating_duration_since(now));
        }
        t
    }

    /// Apply worker completions; returns whether any note arrived.
    fn apply_notes(&mut self, dirty: &mut HashSet<u64>) -> bool {
        let notes = self.board.drain();
        let any = !notes.is_empty();
        for note in notes {
            match note {
                Note::Done { conn, seq, line } => {
                    self.parked.remove(&(conn, seq));
                    if let Some(c) = self.conns.get_mut(&conn) {
                        c.inflight -= 1;
                        c.emit(seq, line);
                        dirty.insert(conn);
                    }
                }
                Note::Parked {
                    conn,
                    seq,
                    key,
                    deadline,
                } => {
                    // A fan-out racing ahead of this notice already
                    // answered the seq; the stale entry is harmless — its
                    // expiry finds no waiter to remove and does nothing.
                    if self.conns.contains_key(&conn) {
                        self.parked.insert((conn, seq), (key, deadline));
                    }
                }
            }
        }
        any
    }

    /// Answer `err timeout` for parked waiters whose own deadline passed
    /// while their leader is still computing. The flight table arbitrates
    /// the race with fan-out: whoever removes the waiter first answers it.
    fn fire_deadlines(&mut self, dirty: &mut HashSet<u64>) {
        if self.parked.is_empty() {
            return;
        }
        let now = Instant::now();
        let expired: Vec<((u64, u64), FlightKey)> = self
            .parked
            .iter()
            .filter(|(_, (_, deadline))| *deadline <= now)
            .map(|(&at, (key, _))| (at, key.clone()))
            .collect();
        for ((conn, seq), key) in expired {
            self.parked.remove(&(conn, seq));
            let Some(w) = self
                .flights
                .remove_waiter(&key, |w| w.conn == conn && w.seq == seq)
            else {
                continue; // the leader's fan-out owns this response
            };
            if let Some(c) = self.conns.get_mut(&conn) {
                c.inflight -= 1;
                let stats = RequestStats {
                    cached: 0,
                    decided: 0,
                    wall_us: w.start.elapsed().as_micros() as u64,
                    threads: self.workers,
                };
                let st = if w.stats_on { Some(&stats) } else { None };
                let msg =
                    "timeout: request deadline expired awaiting a coalesced result".to_owned();
                c.emit(seq, render_response(seq, &Err(msg), st));
                dirty.insert(conn);
            }
        }
    }

    fn maybe_resume_listener(&mut self) {
        if !self.listener_paused {
            return;
        }
        if let Some(resume) = self.listener_resume {
            if Instant::now() >= resume
                && self
                    .poller
                    .register(self.listener.as_raw_fd(), LISTENER, true, false)
                    .is_ok()
            {
                self.listener_paused = false;
                self.listener_resume = None;
            }
        }
    }

    /// Accept everything pending. Over-cap connections get a best-effort
    /// `err busy` line and are dropped; transient accept errors pause the
    /// listener with exponential backoff (reset on success); fatal ones
    /// abort the reactor.
    fn accept_burst(&mut self, dirty: &mut HashSet<u64>) -> std::io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.accept_backoff = BASE_BACKOFF;
                    if self.conns.len() >= self.engine.max_conns() {
                        // The accepted socket is still blocking (accept
                        // does not inherit O_NONBLOCK); a short write to a
                        // fresh socket buffer cannot stall the loop.
                        let mut stream = stream;
                        let _ = stream.write_all(busy_line(self.engine.max_conns()).as_bytes());
                        let _ = stream.write_all(b"\n");
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, true, false)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(token, Conn::new(stream));
                    dirty.insert(token);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => match classify_accept_error(&e) {
                    AcceptClass::Transient => {
                        eprintln!(
                            "oocq-serve: accept failed: {e}; pausing accepts for {:?}",
                            self.accept_backoff
                        );
                        let _ = self.poller.deregister(self.listener.as_raw_fd());
                        self.listener_paused = true;
                        self.listener_resume = Some(Instant::now() + self.accept_backoff);
                        self.accept_backoff = (self.accept_backoff * 2).min(Duration::from_secs(1));
                        break;
                    }
                    AcceptClass::Fatal => {
                        eprintln!("oocq-serve: accept failed fatally: {e}");
                        return Err(e);
                    }
                },
            }
        }
        Ok(())
    }

    /// Advance one connection's state machine: retry a stalled job, read,
    /// parse and dispatch complete lines, flush output, re-register
    /// interest — or close it once fully drained.
    fn pump(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        if conn.dead {
            // The in-flight count still drains through Done notes; the
            // stalled job never reached the queue, so account for it here.
            if conn.stalled.take().is_some() {
                conn.inflight -= 1;
            }
        } else {
            if let Some(job) = conn.stalled.take() {
                if let Err(job) = self.queue.try_push(job) {
                    conn.stalled = Some(job);
                }
            }
            self.read_some(&mut conn);
            self.process_lines(token, &mut conn);
            conn.flush();
        }
        if conn.finished() {
            self.close_conn(token, conn);
            return;
        }
        // A failed interest update marks the connection dead, which may
        // make it finished (nothing left to drain) — re-check rather than
        // parking it with a desynced interest set and no wakeup path.
        self.update_interest(token, &mut conn);
        if conn.finished() {
            self.close_conn(token, conn);
            return;
        }
        self.conns.insert(token, conn);
    }

    /// Deregister and drop a drained connection (dropping the [`Conn`]
    /// closes the socket), discarding any parked-deadline entries for it.
    fn close_conn(&mut self, token: u64, conn: Conn) {
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.parked.retain(|&(c, _), _| c != token);
    }

    /// Nonblocking read into the connection's input buffer, bounded by
    /// `IN_CAP` and the pause predicate.
    fn read_some(&self, conn: &mut Conn) {
        if conn.read_done || conn.paused(self.per_conn_cap) {
            return;
        }
        let mut buf = [0u8; 16 * 1024];
        while conn.inbuf.len() < IN_CAP {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_done = true;
                    break;
                }
                Ok(n) => conn.inbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Report the error as the connection's final response
                    // (after any complete buffered lines), mirroring the
                    // blocking path's mid-stream read error contract.
                    conn.read_done = true;
                    conn.read_err = Some(format!("read error: {e}; closing connection"));
                    break;
                }
            }
        }
    }

    /// Parse and handle every complete buffered line (plus the final
    /// unterminated line at EOF, matching `BufRead::lines`), stopping when
    /// the connection pauses.
    fn process_lines(&self, token: u64, conn: &mut Conn) {
        let mut consumed = 0usize;
        loop {
            if conn.quit || conn.dead {
                consumed = conn.inbuf.len();
                break;
            }
            // Discarding runs even while paused: it consumes bytes without
            // dispatching jobs or growing the output buffer, and stopping
            // it would let the oversized line pin the input buffer at its
            // cap with read interest masked — the connection could never
            // make progress again.
            if conn.discarding {
                match conn.inbuf[consumed..].iter().position(|&b| b == b'\n') {
                    Some(idx) => {
                        consumed += idx + 1;
                        conn.discarding = false;
                        continue;
                    }
                    None => {
                        consumed = conn.inbuf.len();
                        if conn.read_done {
                            // EOF mid-discard: the unterminated tail
                            // belongs to the already-answered oversized
                            // line; only a read error still needs its
                            // final response.
                            if let Some(msg) = conn.read_err.take() {
                                let seq = conn.next_seq;
                                conn.next_seq += 1;
                                conn.emit(seq, render_response(seq, &Err(msg), None));
                            }
                        }
                        break;
                    }
                }
            }
            if conn.paused(self.per_conn_cap) {
                break;
            }
            match conn.inbuf[consumed..].iter().position(|&b| b == b'\n') {
                Some(idx) => {
                    let start = consumed;
                    let mut end = consumed + idx;
                    consumed = end + 1;
                    if end > start && conn.inbuf[end - 1] == b'\r' {
                        end -= 1;
                    }
                    let line = String::from_utf8_lossy(&conn.inbuf[start..end]).into_owned();
                    self.handle_line(token, conn, &line);
                }
                None => {
                    // A line that has already outgrown the input buffer can
                    // never complete (read interest would mask at the cap
                    // and wedge the connection): answer it now, in sequence
                    // order, and discard its bytes through the newline.
                    if conn.inbuf.len() - consumed >= IN_CAP {
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        let msg =
                            format!("line too long: request lines are capped at {IN_CAP} bytes");
                        let stats = RequestStats {
                            cached: 0,
                            decided: 0,
                            wall_us: 0,
                            threads: self.workers,
                        };
                        let st = if conn.stats_on { Some(&stats) } else { None };
                        conn.emit(seq, render_response(seq, &Err(msg), st));
                        conn.discarding = true;
                        continue;
                    }
                    if conn.read_done {
                        if conn.read_err.is_none() && consumed < conn.inbuf.len() {
                            let line =
                                String::from_utf8_lossy(&conn.inbuf[consumed..]).into_owned();
                            consumed = conn.inbuf.len();
                            self.handle_line(token, conn, &line);
                            continue;
                        }
                        consumed = conn.inbuf.len();
                        if let Some(msg) = conn.read_err.take() {
                            let seq = conn.next_seq;
                            conn.next_seq += 1;
                            conn.emit(seq, render_response(seq, &Err(msg), None));
                        }
                    }
                    break;
                }
            }
        }
        conn.inbuf.drain(..consumed);
    }

    /// One request line: inline commands are answered (and session state
    /// mutated) immediately in input order; decision requests capture
    /// their snapshot now and go to the shared pool.
    fn handle_line(&self, token: u64, conn: &mut Conn, line: &str) {
        if line.trim().is_empty() {
            return;
        }
        let start = Instant::now();
        let parsed = parse_request(line);
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let inline: Result<String, String> = match &parsed {
            Err(e) => Err(e.clone()),
            Ok(req) if req.is_decision() => match self.engine.snapshot_for(req) {
                Ok(snapshot) => {
                    conn.inflight += 1;
                    let job = ReactorJob {
                        conn: token,
                        seq,
                        req: req.clone(),
                        snapshot,
                        stats_on: conn.stats_on,
                    };
                    if let Err(job) = self.queue.try_push(job) {
                        conn.stalled = Some(job);
                    }
                    return;
                }
                Err(e) => Err(e),
            },
            Ok(Request::Ping) => Ok("pong".to_owned()),
            Ok(Request::Stats(on)) => {
                conn.stats_on = *on;
                Ok(format!("stats {}", if *on { "on" } else { "off" }))
            }
            Ok(Request::StatsShow) => Ok(self
                .engine
                .stats_report(&self.flights.stats(), conn.inflight)),
            Ok(Request::Quit) => Ok("bye".to_owned()),
            Ok(Request::DefineSchema { session, text }) => self.engine.define_schema(session, text),
            Ok(Request::DefineQuery {
                session,
                name,
                text,
            }) => self.engine.define_query(session, name, text),
            Ok(Request::DefineConstraint { session, text }) => {
                self.engine.define_constraint(session, text)
            }
            Ok(other) => Err(format!("internal: unhandled request `{other:?}`")),
        };
        let stats = RequestStats {
            cached: 0,
            decided: 0,
            wall_us: start.elapsed().as_micros() as u64,
            threads: self.workers,
        };
        let st = if conn.stats_on { Some(&stats) } else { None };
        conn.emit(seq, render_response(seq, &inline, st));
        if matches!(parsed, Ok(Request::Quit)) {
            conn.quit = true;
            conn.read_done = true;
        }
    }

    /// Re-register the connection's interest set when it changed. Interest
    /// masking is what keeps level-triggered polling from busy-looping:
    /// a paused connection stops reporting readable, a drained one stops
    /// reporting writable.
    fn update_interest(&self, token: u64, conn: &mut Conn) {
        let want_read = !conn.read_done
            && !conn.dead
            && !conn.paused(self.per_conn_cap)
            && conn.inbuf.len() < IN_CAP;
        let want_write = !conn.dead && conn.out_pos < conn.outbuf.len();
        if (want_read, want_write) != (conn.want_read, conn.want_write) {
            match self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want_read, want_write)
            {
                Ok(()) => {
                    conn.want_read = want_read;
                    conn.want_write = want_write;
                }
                // The registered interest set is now unknowable; treat it
                // like a peer failure: discard output, let in-flight work
                // drain through its completion notes, then close.
                Err(_) => conn.dead = true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CanonicalDecisionCache;
    use oocq_core::EngineConfig;
    use std::io::BufReader;
    use std::net::TcpStream;

    struct Harness {
        addr: std::net::SocketAddr,
        stop: Arc<AtomicBool>,
        handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
    }

    impl Harness {
        fn start(engine: ServiceEngine) -> Harness {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = stop.clone();
            let handle = std::thread::spawn(move || run(&listener, &engine, &stop2));
            Harness {
                addr,
                stop,
                handle: Some(handle),
            }
        }

        fn connect(&self) -> TcpStream {
            TcpStream::connect(self.addr).unwrap()
        }

        /// Send a whole program, read lines until the connection closes.
        fn roundtrip(&self, input: &str) -> String {
            let mut s = self.connect();
            s.write_all(input.as_bytes()).unwrap();
            s.shutdown(std::net::Shutdown::Write).unwrap();
            let mut out = String::new();
            BufReader::new(s).read_to_string(&mut out).unwrap();
            out
        }
    }

    impl Drop for Harness {
        fn drop(&mut self) {
            self.stop.store(true, SeqCst);
            if let Some(h) = self.handle.take() {
                h.join().unwrap().unwrap();
            }
        }
    }

    fn engine(threads: usize) -> ServiceEngine {
        ServiceEngine::with_cache(
            EngineConfig::with_threads(threads),
            Some(Arc::new(CanonicalDecisionCache::new(256))),
        )
    }

    const SESSION: &str = "stats off\n\
                           schema s class C {}\n\
                           query s Q { x | x in C }\n\
                           query s R { x | exists y: x in C & y in C & x != y }\n";

    #[test]
    fn a_session_round_trips_with_ordered_seqs() {
        let h = Harness::start(engine(4));
        let mut input = SESSION.to_owned();
        for _ in 0..8 {
            input.push_str("contains s R Q\ncontains s Q R\nminimize s R\n");
        }
        input.push_str("quit\n");
        let out = h.roundtrip(&input);
        let seqs: Vec<u64> = out
            .lines()
            .map(|l| l[1..l.find(']').unwrap()].parse().unwrap())
            .collect();
        let expected: Vec<u64> = (0..seqs.len() as u64).collect();
        assert_eq!(seqs, expected, "{out}");
        assert!(out.contains("ok holds"), "{out}");
        assert!(
            out.ends_with(&format!("[{}] ok bye\n", seqs.len() - 1)),
            "{out}"
        );
    }

    #[test]
    fn eof_without_quit_and_unterminated_final_line_drain_cleanly() {
        let h = Harness::start(engine(2));
        // No trailing newline on the last request: `BufRead::lines`
        // semantics say it still counts.
        let out =
            h.roundtrip("stats off\nschema s class C {}\nquery s Q { x | x in C }\ncontains s Q Q");
        assert!(out.ends_with("[3] ok holds\n"), "{out}");
    }

    /// The regression this pins: a single line longer than `IN_CAP` used
    /// to fill the input buffer with no newline in sight, mask read
    /// interest, and wedge the connection forever (with a level-triggered
    /// hangup event spinning the reactor at 100% CPU once the peer
    /// half-closed). It must instead be answered `err line too long` with
    /// its bytes discarded through the newline, leaving the connection
    /// fully usable.
    #[test]
    fn an_oversized_line_is_rejected_without_wedging_the_connection() {
        let h = Harness::start(engine(2));
        let mut s = h.connect();
        s.write_all(b"stats off\n").unwrap();
        // 1.5 MiB of garbage, then the newline that ends it, then more
        // requests that must still be served.
        s.write_all(&vec![b'x'; IN_CAP + IN_CAP / 2]).unwrap();
        s.write_all(b"\nping\nquit\n").unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        BufReader::new(s).read_to_string(&mut out).unwrap();
        assert!(out.contains("[1] err line too long"), "{out}");
        assert!(out.contains("[2] ok pong"), "{out}");
        assert!(out.ends_with("[3] ok bye\n"), "{out}");
    }

    /// The exact scenario from the wedge report: an oversized line that
    /// never gets its newline, followed by a half-close. The reactor must
    /// answer the error, drain the stream to EOF, and close — not hang.
    #[test]
    fn an_oversized_unterminated_line_drains_to_eof_and_closes() {
        let h = Harness::start(engine(2));
        let mut s = h.connect();
        s.write_all(b"stats off\n").unwrap();
        s.write_all(&vec![b'y'; 2 * IN_CAP]).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        // read_to_string returning at all proves the connection closed.
        BufReader::new(s).read_to_string(&mut out).unwrap();
        assert!(out.contains("[0] ok stats off"), "{out}");
        assert!(
            out.ends_with("[1] err line too long: request lines are capped at 1048576 bytes\n"),
            "{out}"
        );
    }

    #[test]
    fn a_panicking_request_is_isolated_to_its_own_response() {
        let h = Harness::start(engine(2));
        let out = h.roundtrip(
            "stats off\nschema s class C {}\nquery s Q { x | x in C }\n\
             contains s __panic__ Q\ncontains s Q Q\nping\nquit\n",
        );
        assert!(
            out.contains("[3] err internal: worker panicked executing this request"),
            "{out}"
        );
        assert!(out.contains("[4] ok holds"), "{out}");
        assert!(out.contains("[5] ok pong"), "{out}");
        assert!(out.ends_with("[6] ok bye\n"), "{out}");
    }

    #[test]
    fn connections_beyond_the_cap_get_err_busy() {
        let h = Harness::start(engine(1).with_max_conns(1));
        // Hold one connection open (mid-session, nothing sent).
        let held = h.connect();
        // Give the reactor a moment to register it.
        std::thread::sleep(Duration::from_millis(100));
        // The over-cap connection is answered without us sending a byte.
        let mut out = String::new();
        BufReader::new(h.connect())
            .read_to_string(&mut out)
            .unwrap();
        assert!(
            out.contains("err busy: connection limit (1) reached"),
            "{out}"
        );
        drop(held);
        // Capacity freed: the next connection is served normally.
        std::thread::sleep(Duration::from_millis(300));
        let out = h.roundtrip("stats off\nping\nquit\n");
        assert!(out.contains("[1] ok pong"), "{out}");
    }

    #[test]
    fn stats_show_reports_cache_and_coalescing_counters() {
        let h = Harness::start(engine(2));
        let out = h.roundtrip(
            "stats off\nschema s class C {}\nquery s Q { x | x in C }\n\
             contains s Q Q\ncontains s Q Q\nstats show\nquit\n",
        );
        let show = out
            .lines()
            .find(|l| l.starts_with("[5]"))
            .unwrap_or_else(|| panic!("no stats line in {out}"));
        assert!(show.contains("cache: contains_hits="), "{show}");
        assert!(show.contains("| coalesce: leaders="), "{show}");
        // The two decisions may still be in flight when `stats show` is
        // parsed (it answers inline), so only pin the field's presence.
        assert!(show.contains("| conn: backlog="), "{show}");
    }

    #[test]
    fn stats_suffix_toggles_like_the_blocking_path() {
        let h = Harness::start(engine(1));
        let out = h.roundtrip(
            "schema s class C {}\nquery s Q { x | x in C }\ncontains s Q Q\n\
             stats off\ncontains s Q Q\nquit\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains(" # cached=0 decided=0"), "{:?}", lines[0]);
        assert!(lines[2].contains("ok holds # cached="), "{:?}", lines[2]);
        assert!(!lines[4].contains('#'), "{:?}", lines[4]);
        assert_eq!(lines[4], "[4] ok holds");
    }

    /// K identical concurrent cold requests with the cache disabled: the
    /// singleflight table must run exactly one computation and fan the
    /// verdict out, while a concurrent `limit=`-budgeted request (which
    /// bypasses coalescing) trips its own `err timeout` without cancelling
    /// the leader. The coalesced check targets the engine's test-only
    /// `__slow__` latency hook, which holds the leader in flight for a
    /// full second — wide enough that every other connection's join is
    /// deterministic even on a loaded CI machine, so the counters below
    /// can assert *exactly one* leader instead of racing the scheduler.
    #[test]
    fn concurrent_identical_requests_coalesce_into_one_computation() {
        let h = Harness::start(ServiceEngine::with_cache(
            EngineConfig::with_threads(8),
            None,
        ));
        let vars: Vec<String> = (1..=12).map(|i| format!("x{i}")).collect();
        let chain: String = vars
            .windows(2)
            .map(|w| format!(" & {} != {}", w[0], w[1]))
            .collect();
        let big = format!(
            "{{ x0 | exists {}, z, y: x0 in T1{}{chain} & z in T1 & y in T2 & x0 in y.A & z not in y.A }}",
            vars.join(", "),
            vars.iter()
                .map(|v| format!(" & {v} in T1"))
                .collect::<String>(),
        );
        let setup = format!(
            "stats off\nschema s class T1 {{}} class T2 {{ A: {{T1}}; }}\n\
             query s Big {}\n\
             query s R {{ x | exists u, y: x in T1 & u in T1 & y in T2 & u not in y.A }}\n\
             query s __slow__ {{ x | x in T1 }}\nquit\n",
            crate::protocol::escape(&big),
        );
        assert!(h
            .roundtrip(&setup)
            .contains("[4] ok query __slow__ defined"));

        const K: usize = 6;
        let mut conns: Vec<TcpStream> = (0..K).map(|_| h.connect()).collect();
        let mut limited = h.connect();
        // Fire the identical slow check from K connections at once…
        for c in &mut conns {
            c.write_all(b"stats off\ncontains s __slow__ __slow__\nquit\n")
                .unwrap();
        }
        // …and a budgeted expensive check that must trip its own limit
        // while the coalesced flight is still in the air.
        limited
            .write_all(b"stats off\nlimit=50 contains s Big R\nquit\n")
            .unwrap();
        let mut verdicts = Vec::new();
        for c in conns.drain(..) {
            let mut out = String::new();
            BufReader::new(c).read_to_string(&mut out).unwrap();
            let verdict = out
                .lines()
                .find(|l| l.starts_with("[1]"))
                .unwrap_or_else(|| panic!("no verdict in {out}"))
                .to_owned();
            verdicts.push(verdict);
        }
        assert!(verdicts.iter().all(|v| v == &verdicts[0]), "{verdicts:?}");
        assert!(verdicts[0].contains("ok"), "{verdicts:?}");
        let mut lim_out = String::new();
        BufReader::new(limited)
            .read_to_string(&mut lim_out)
            .unwrap();
        assert!(lim_out.contains("[1] err timeout"), "{lim_out}");

        // The coalescing counters must show one leader absorbing the other
        // K-1 as waiters. (The limit= request bypasses the table, and the
        // cache is off, so nothing else can explain a single computation.)
        let show = h.roundtrip("stats off\nstats show\nquit\n");
        let line = show
            .lines()
            .find(|l| l.contains("coalesce:"))
            .unwrap_or_else(|| panic!("no coalesce line in {show}"));
        let field = |name: &str| -> u64 {
            let at = line
                .find(name)
                .unwrap_or_else(|| panic!("{name} in {line}"));
            line[at + name.len()..]
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert_eq!(field("leaders="), 1, "{line}");
        assert_eq!(field("waiters="), (K - 1) as u64, "{line}");
        assert_eq!(field("fanouts="), (K - 1) as u64, "{line}");
        assert_eq!(field("inflight="), 0, "{line}");
        assert!(line.contains("cache: disabled"), "{line}");
    }
}
